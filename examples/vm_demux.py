#!/usr/bin/env python
"""Section 8 future work, built: VM packet demultiplexing on the NIC.

"Offload-capable devices could perform more efficiently some of the
tasks that are performed today on the host CPUs, such as multiplexing
incoming network packets directly to the destination virtual machine."

Two guests share one host.  A traffic generator sprays packets across
their port ranges; the same workload runs through a host-based VMM
(classify + copy on the host CPU) and a NIC-offloaded demux (classify
on the device, DMA straight into the guest buffer).  Guest work is
identical either way — the VMM overhead is what disappears.

Run:  python examples/vm_demux.py
"""

from repro.api import (
    Address,
    Kernel,
    Machine,
    MachineSpec,
    OffloadedVmm,
    RandomStreams,
    Simulator,
    SoftwareVmm,
    Switch,
    UdpStack,
    units,
)

PACKETS = 400
SIZE = 1024


def run(vmm_cls):
    sim = Simulator()
    rng = RandomStreams(7)
    switch = Switch(sim, rng=rng.stream("switch"))

    host = Machine(sim, MachineSpec(name="vmm-host"))
    kernel = Kernel(host, rng)
    nic = host.add_nic()
    nic.attach_wire(switch.attach("vmm-host", nic.receive_packet))
    vmm = vmm_cls(kernel, nic)
    vm_a = vmm.add_guest("web", 1000, 1999)
    vm_b = vmm.add_guest("db", 2000, 2999)

    generator = Machine(sim, MachineSpec(name="gen"))
    gen_stack = UdpStack(Kernel(generator, rng), "gen")
    generator.add_nic()
    gen_stack.attach_nic(generator.device("nic0"), switch)
    sock = gen_stack.socket()

    def blast():
        for i in range(PACKETS):
            port = 1000 + (i % 2) * 1000 + (i % 5)
            yield from sock.sendto(Address("vmm-host", port), SIZE)
            yield sim.timeout(100_000)

    sim.spawn(blast())
    sim.run(until=units.s_to_ns(1))

    busy = host.cpu.busy_by_context
    demux_us = (busy.get("vmm", 0) + busy.get("kernel-isr", 0)
                + busy.get("kernel-copy", 0)) / 1000
    guest_us = (busy.get("guest-web", 0) + busy.get("guest-db", 0)) / 1000
    return {
        "delivered": vmm.delivered,
        "web": vm_a.packets_received,
        "db": vm_b.packets_received,
        "demux_us": demux_us,
        "guest_us": guest_us,
        "nic_us": nic.cpu.total_busy / 1000,
        "l2_accesses": host.l2.stats.accesses,
    }


def main():
    software = run(SoftwareVmm)
    offloaded = run(OffloadedVmm)
    header = (f"{'':12s}{'delivered':>10s}{'web/db':>10s}"
              f"{'demux CPU':>12s}{'guest CPU':>12s}{'NIC CPU':>10s}"
              f"{'L2 acc':>10s}")
    print(header)
    for label, r in (("software", software), ("offloaded", offloaded)):
        print(f"{label:12s}{r['delivered']:>10d}"
              f"{str(r['web']) + '/' + str(r['db']):>10s}"
              f"{r['demux_us']:>10.0f}us{r['guest_us']:>10.0f}us"
              f"{r['nic_us']:>8.0f}us{r['l2_accesses']:>10d}")
    assert software["web"] == offloaded["web"]
    assert software["db"] == offloaded["db"]
    assert offloaded["demux_us"] < software["demux_us"] / 3
    print("\nsame delivery, demux cost moved to the NIC — "
          "vm demux demo OK")


if __name__ == "__main__":
    main()
