#!/usr/bin/env python
"""Section 8's future work, built: advanced storage services.

"Programmable disks will provide an opportunity to run I/O-intensive
computations efficiently by running them closer to the data.  Potential
applications include content indexing and searching, virus scanning,
storage backup..."

This example implements a virus-scanning Offcode and runs the same scan
two ways over a 64 MB volume on a Smart Disk:

* **host scan** — every block is DMA'd across the I/O bus into host
  memory and scanned by the host CPU (streaming through the L2);
* **offloaded scan** — the Scanner Offcode is deployed *onto the disk
  controller*; blocks never leave the device, and the host does nothing.

Media access dominates, so both scans take similar wall-clock time —
but the host scan additionally moves the whole volume across the bus,
pollutes the L2 and burns host CPU, all of which the offloaded scan
never spends: "the proximity between the computational task and the
data on which it operates" is the whole trick.

Run:  python examples/smart_storage.py
"""

from repro.api import (
    DeploymentSpec,
    DeviceClass,
    DeviceClassFilter,
    DeviceSite,
    HOST_MEMORY,
    HydraRuntime,
    InterfaceSpec,
    Machine,
    MethodSpec,
    OdfDocument,
    Offcode,
    Simulator,
    units,
)

BLOCK = 4096
BLOCKS = 16 * 1024          # 64 MB volume
SCAN_NS_PER_BYTE = 0.8      # signature matching cost at 1 GHz-equivalent

ISCANNER = InterfaceSpec.from_methods(
    "IScanner",
    (MethodSpec("ScanVolume", params=(("blocks", "int"),), result="int"),))


class ScannerOffcode(Offcode):
    """Signature-scans blocks; placement decides who moves the data."""

    BINDNAME = "storage.Scanner"
    INTERFACES = (ISCANNER,)

    def ScanVolume(self, blocks):
        site = self.site
        on_disk = (isinstance(site, DeviceSite)
                   and site.device.device_class == DeviceClass.STORAGE)
        infected = 0
        for index in range(blocks):
            if on_disk:
                # Proximity: the block is already device-local.
                yield from site.device.read_block(index, BLOCK)
            else:
                # Host placement: the block crosses the I/O bus first
                # and is then walked through the host cache.
                disk = site.machine.device("disk0")
                yield from disk.read_block(index, BLOCK)
                yield from disk.bus.transfer("disk0", HOST_MEMORY, BLOCK)
                site.machine.l2.access_range(0x4000_0000 + index * BLOCK
                                             % (1 << 22), BLOCK)
            yield from site.execute(round(BLOCK * SCAN_NS_PER_BYTE),
                                    context="virus-scan")
            if index % 4099 == 0:      # a synthetic "signature hit"
                infected += 1
        return infected


def build_world():
    sim = Simulator()
    machine = Machine(sim)
    disk = machine.add_disk()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(
        bindname="storage.Scanner",
        guid=ScannerOffcode(runtime.host_site).guid,
        interfaces=[ISCANNER],
        targets=[DeviceClassFilter(DeviceClass.STORAGE),
                 DeviceClassFilter(DeviceClass.HOST)],
        image_bytes=32 * 1024)
    runtime.library.register("/offcodes/scanner.odf", odf)
    runtime.depot.register(odf.guid, ScannerOffcode)
    return sim, machine, disk, runtime


def run_scan(force_host: bool):
    sim, machine, disk, runtime = build_world()
    if force_host:
        # Pretend the disk is full: veto the storage target so the
        # resolver's host fallback kicks in.
        runtime.resolver.build_graph = _host_only(runtime)
    out = {}

    def application():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/offcodes/scanner.odf",)))
        out["location"] = result.location
        started = sim.now
        out["infected"] = yield from result.proxy.ScanVolume(BLOCKS)
        out["elapsed_ms"] = (sim.now - started) / units.MS

    sim.run_until_event(sim.spawn(application()))
    out["host_cpu_ms"] = machine.cpu.total_busy / units.MS
    out["disk_cpu_ms"] = disk.cpu.total_busy / units.MS
    out["bus_to_host_mb"] = (machine.bus.crossings.get(
        ("disk0", HOST_MEMORY), 0) * BLOCK) / (1 << 20)
    return out


def _host_only(runtime):
    original = runtime.resolver.build_graph

    def patched(documents, force_host_option=False, pinned=None,
                exclude=None, banned=None):
        graph = original(documents, force_host_option=True, pinned=pinned,
                         exclude=exclude, banned=banned)
        for node in graph.nodes.values():
            node.compat = (True,) + (False,) * (graph.num_devices - 1)
        return graph

    return patched


def main():
    host = run_scan(force_host=True)
    offloaded = run_scan(force_host=False)
    print(f"{'':14s}{'placement':>10s}{'elapsed':>12s}"
          f"{'host CPU':>12s}{'disk CPU':>12s}{'bus->host':>12s}")
    for label, result in (("host scan", host), ("offloaded", offloaded)):
        print(f"{label:14s}{result['location']:>10s}"
              f"{result['elapsed_ms']:>10.0f}ms"
              f"{result['host_cpu_ms']:>10.0f}ms"
              f"{result['disk_cpu_ms']:>10.0f}ms"
              f"{result['bus_to_host_mb']:>10.1f}MB")
    assert host["infected"] == offloaded["infected"]
    assert offloaded["host_cpu_ms"] < host["host_cpu_ms"] / 100
    # Only the proxy's tiny result reply crosses back; not the data.
    assert offloaded["bus_to_host_mb"] < 0.01
    print("same verdict, zero host involvement when offloaded — "
          "smart storage demo OK")


if __name__ == "__main__":
    main()
