#!/usr/bin/env python
"""Quickstart: offload your first Offcode with HYDRA.

Builds a host with a programmable NIC, registers an Offcode manifest
(ODF) and its implementation, deploys it with ``runtime.deploy`` and
invokes it transparently through a proxy — the whole programming model
of Sections 3 and 4 in ~80 lines.

Run:  python examples/quickstart.py
"""

from repro.api import (
    DeploymentSpec,
    DeviceClass,
    DeviceClassFilter,
    HydraRuntime,
    InterfaceSpec,
    Machine,
    MethodSpec,
    OdfDocument,
    Offcode,
    Simulator,
)

# 1. Describe the interface (the WSDL part of the manifest).
ICHECKSUM = InterfaceSpec.from_methods(
    "IChecksum",
    (MethodSpec("Compute", params=(("size", "int"),), result="int"),
     MethodSpec("Reset", one_way=True)))


# 2. Implement the Offcode.  The same class runs on the host or on any
#    device: it charges work through its execution *site*.
class ChecksumOffcode(Offcode):
    BINDNAME = "demo.Checksum"
    INTERFACES = (ICHECKSUM,)

    def __init__(self, site):
        super().__init__(site)
        self.total = 0

    def Compute(self, size):
        # ~1 cycle per byte on whatever CPU hosts us.
        yield from self.site.execute(size, context="checksum")
        self.total += size
        return size & 0xFFFF

    def Reset(self):
        self.total = 0


def main():
    # 3. Build a machine with a programmable NIC and a HYDRA runtime.
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)

    # 4. Register the manifest: this Offcode targets network devices,
    #    with the host as a declared fallback.
    odf = OdfDocument(
        bindname="demo.Checksum",
        guid=ChecksumOffcode(runtime.host_site).guid,
        interfaces=[ICHECKSUM],
        targets=[DeviceClassFilter(DeviceClass.NETWORK),
                 DeviceClassFilter(DeviceClass.HOST)],
        image_bytes=16 * 1024)
    runtime.library.register("/offcodes/checksum.odf", odf)
    runtime.depot.register(odf.guid, ChecksumOffcode)

    # 5. Deploy and invoke from an OA-application process.
    def application():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/offcodes/checksum.odf",)))
        print(f"deployed {result.offcode.bindname} "
              f"-> {result.location} "
              f"(strategy: {result.report.load_reports[0].strategy}, "
              f"load took "
              f"{result.report.load_reports[0].elapsed_ns / 1000:.0f} us)")
        checksum = yield from result.proxy.Compute(4096)
        print(f"Compute(4096) returned {checksum:#06x} "
              f"at t={sim.now / 1e6:.3f} ms")
        yield from result.proxy.Reset()
        print(f"device CPU busy: "
              f"{machine.device('nic0').cpu.total_busy / 1000:.1f} us; "
              f"host CPU busy: {machine.cpu.total_busy / 1000:.1f} us")

    sim.run_until_event(sim.spawn(application()))
    print("quickstart OK")


if __name__ == "__main__":
    main()
