#!/usr/bin/env python
"""TiVoPC end to end: the paper's Section 6 case study in one script.

Builds the full testbed (server, client with NIC/GPU/Smart-Disk, NAS,
gigabit switch), deploys the offloaded Video Server and the offloaded
Figure-8 client, streams for ten simulated seconds, then replays part
of the recording from the Smart Disk.

Run:  python examples/tivopc_demo.py
"""

from repro.api import (
    GuiController,
    OffloadedClient,
    OffloadedServer,
    Testbed,
    TestbedConfig,
)


def main():
    testbed = Testbed(TestbedConfig(seed=42))
    testbed.start()

    client = OffloadedClient(testbed)
    client.start()
    server = OffloadedServer(testbed)
    server.start()

    print("streaming for 10 simulated seconds...")
    testbed.run(10)

    print(f"\nserver:  {server.packets_sent} packets sent from the NIC, "
          f"{server.file.bytes_read // 1024} kB read from the NAS")
    print("client placements (Figure 8):")
    for offcode in (client.net_streamer, client.disk_streamer,
                    client.decoder, client.display, client.file):
        print(f"  {offcode.bindname:24s} -> {offcode.location}")
    print(f"client:  {client.chunks_received} chunks handled, "
          f"{client.frames_shown} frames on screen, "
          f"{client.bytes_recorded // 1024} kB recorded to the NAS")

    server_util = testbed.server.machine.cpu.utilization()
    client_util = testbed.client.machine.cpu.utilization()
    print(f"\nhost CPU utilization: server {server_util:.1%}, "
          f"client {client_util:.1%}  (both ~= idle: everything runs "
          "on the peripherals)")
    bus = testbed.client.machine.bus
    print(f"client bus: NIC->GPU {bus.crossings.get(('nic0', 'gpu0'), 0)} "
          f"crossings, NIC->disk "
          f"{bus.crossings.get(('nic0', 'disk0'), 0)}, host-memory "
          f"{bus.host_memory_crossings()} (deployment only)")

    # The one host component: the GUI, exercising its controls.
    gui = GuiController(client)
    sim = testbed.sim
    sim.run_until_event(sim.spawn(gui.pause()))
    frames_at_pause = client.frames_shown
    testbed.run(2)
    print(f"\nGUI pause: picture frozen at {frames_at_pause} frames "
          f"while {client.chunks_received} chunks kept recording")
    sim.run_until_event(sim.spawn(gui.play()))
    testbed.run(2)
    print(f"GUI play: viewing resumed, now {client.frames_shown} frames")

    print("\nstopping the broadcast; rewinding from the Smart Disk...")
    server.stop()
    testbed.run(0.2)
    frames_before = client.frames_shown
    gui.rewind()
    testbed.run(3)
    print(f"playback decoded {client.frames_shown - frames_before} "
          "more frames from the recording")
    print("tivopc demo OK")


if __name__ == "__main__":
    main()
