#!/usr/bin/env python
"""The paper's own running example: Figures 3 and 4, executed.

Figure 4's ODF (a Socket Offcode that *Pulls* a Checksum Offcode onto
the same network device) is parsed from the very XML schema the paper
prints; Figure 3's channel-creation sequence (GetOffcode the executive,
configure a reliable zero-copy unicast channel, InstallCallHandler,
ConnectOffcode) then runs against the deployed Offcode.

Run:  python examples/checksum_offload.py
"""

from repro.api import (
    ChannelConfig,
    DeploymentSpec,
    DeviceClass,
    HydraRuntime,
    Machine,
    Offcode,
    Proxy,
    Simulator,
    parse_wsdl,
)

# Figure 4, as well-formed XML (GUIDs are the paper's own numbers).
SOCKET_ODF = """
<offcode>
  <package>
    <bindname>hydra.net.utils.Socket</bindname>
    <GUID>7070714</GUID>
    <interface>
      <include>"/offcodes/socket.wsdl"</include>
    </interface>
  </package>
  <sw-env>
    <import>
      <file>"/offcodes/checksum.odf"</file>
      <bindname>hydra.net.utils.Checksum</bindname>
      <reference type="Pull" pri="0"/>
      <GUID>6060843</GUID>
    </import>
  </sw-env>
  <targets>
    <device-class id="0x0001">
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
      <vendor>3COM</vendor>
    </device-class>
  </targets>
</offcode>
"""

SOCKET_WSDL = """
<definitions name="Socket" guid="7070714">
  <portType name="ISocket">
    <operation name="Send" result="xsd:int">
      <part name="size" type="xsd:int"/>
    </operation>
  </portType>
</definitions>
"""

CHECKSUM_ODF = """
<offcode>
  <package>
    <bindname>hydra.net.utils.Checksum</bindname>
    <GUID>6060843</GUID>
    <interface>
      <include>"/offcodes/checksum.wsdl"</include>
    </interface>
  </package>
  <targets>
    <device-class>
      <name>Network Device</name>
    </device-class>
  </targets>
</offcode>
"""

CHECKSUM_WSDL = """
<definitions name="Checksum" guid="6060843">
  <portType name="IChecksum">
    <operation name="Compute" result="xsd:int">
      <part name="size" type="xsd:int"/>
    </operation>
  </portType>
</definitions>
"""

# The interface specs come from the WSDL documents themselves, so the
# implementations answer to the paper's GUIDs (7070714 / 6060843).
ISOCKET = parse_wsdl(SOCKET_WSDL)
ICHECKSUM = parse_wsdl(CHECKSUM_WSDL)


class ChecksumOffcode(Offcode):
    BINDNAME = "hydra.net.utils.Checksum"
    INTERFACES = (ICHECKSUM,)

    def Compute(self, size):
        yield from self.site.execute(size, context="checksum")
        return (size * 31) & 0xFFFF


class SocketOffcode(Offcode):
    BINDNAME = "hydra.net.utils.Socket"
    INTERFACES = (ISOCKET,)

    def __init__(self, site):
        super().__init__(site)
        self.sent = 0

    def Send(self, size):
        # The Pull constraint guarantees our Checksum peer is co-located;
        # reach it through the device runtime (the paper's GetOffcode).
        peer = self.site.device.firmware.find("hydra.net.utils.Checksum")
        checksum = yield from peer.Compute(size)
        self.sent += size
        return checksum


def main():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()   # a 3Com NIC, matching the ODF's vendor filter
    runtime = HydraRuntime(machine)

    # Register the paper's manifests and the implementations.
    library = runtime.library
    library.register_wsdl("/offcodes/socket.wsdl", SOCKET_WSDL)
    library.register_wsdl("/offcodes/checksum.wsdl", CHECKSUM_WSDL)
    library.register("/offcodes/socket.odf", SOCKET_ODF)
    library.register("/offcodes/checksum.odf", CHECKSUM_ODF)
    socket_doc = library.load("/offcodes/socket.odf")
    checksum_doc = library.load("/offcodes/checksum.odf")
    runtime.depot.register(socket_doc.guid, SocketOffcode,
                           device_class=DeviceClass.NETWORK)
    runtime.depot.register(checksum_doc.guid, ChecksumOffcode,
                           device_class=DeviceClass.NETWORK)

    def application():
        # Deploy the Socket Offcode (the Figure 3 preamble).
        result = yield from runtime.deploy(DeploymentSpec(
            odf_paths=("/offcodes/socket.odf",), interface="ISocket"))
        ocode = result.offcode
        print(f"Socket deployed to {ocode.location}; Pull dragged "
              f"Checksum to "
              f"{runtime.get_offcode('hydra.net.utils.Checksum').location}")

        # Figure 3, line by line.
        exec_offcode = runtime.get_offcode("hydra.ChannelExecutive")
        print(f"ChannelExecutive reports "
              f"{exec_offcode.ProviderCount()} providers")
        config = (ChannelConfig.unicast().zero_copy()
                  .with_target(ocode.location))
        channel = runtime.create_channel(config)
        channel.creator_endpoint.install_call_handler(
            lambda message: print(f"  handler: spontaneous message "
                                  f"{message.payload!r}"))
        runtime.connect_offcode(channel, ocode)

        # Transparent invocation over our own channel.
        proxy = Proxy(socket_doc.interface("ISocket"), channel,
                      channel.creator_endpoint)
        value = yield from proxy.Send(1500)
        print(f"Send(1500) -> checksum {value:#06x} "
              f"(computed on {ocode.location})")

    sim.run_until_event(sim.spawn(application()))
    print("checksum offload demo OK")


if __name__ == "__main__":
    main()
