#!/usr/bin/env python
"""The Section-5 layout optimizer, stand-alone.

Builds the TiVoPC client's offloading layout graph by hand, solves it
under both of the paper's objectives with the exact solvers, and then
shows the scenario the paper warns about: a contended layout where the
greedy baseline is demonstrably suboptimal.

Run:  python examples/layout_optimizer.py
"""

from repro.api import (
    BranchAndBoundSolver,
    BusCapabilityMatrix,
    ConstraintType,
    GreedySolver,
    LayoutGraph,
    MaximizeBusUsage,
    MaximizeOffloading,
    MinimizeBusCrossings,
    ScipyMilpSolver,
    TrafficMatrix,
)

DEVICES = ("host", "nic", "gpu", "disk")


def tivopc_graph() -> LayoutGraph:
    """Figure 8 as a layout graph: who may run where, with constraints."""
    graph = LayoutGraph(DEVICES)
    #                    host   nic    gpu    disk
    graph.add_node("net-streamer", [True, True, False, False], price=2.0)
    graph.add_node("disk-streamer", [True, False, False, True], price=2.0)
    graph.add_node("decoder", [True, True, True, False], price=4.0)
    graph.add_node("display", [False, False, True, False], price=1.0)
    graph.add_node("file", [True, False, False, True], price=2.0)
    graph.constrain("net-streamer", "disk-streamer", ConstraintType.GANG)
    graph.constrain("net-streamer", "decoder", ConstraintType.GANG)
    graph.constrain("decoder", "display", ConstraintType.PULL)
    graph.constrain("file", "disk-streamer", ConstraintType.PULL)
    return graph


def show(result, graph):
    for name in graph.nodes:
        device = graph.devices[result.placement[name]]
        print(f"    {name:14s} -> {device}")
    print(f"    objective = {result.objective:.1f} "
          f"({result.solver}, explored {result.nodes_explored} nodes)")


def main():
    graph = tivopc_graph()
    solver = BranchAndBoundSolver()

    print("TiVoPC layout under Maximize-Offloading:")
    result = solver.solve(MaximizeOffloading().build(graph))
    show(result, graph)
    assert graph.check_placement(result.placement) == []

    print("\nSame graph under Maximize-Bus-Usage (uniform 4.0 caps):")
    capability = BusCapabilityMatrix.uniform(DEVICES, 4.0)
    result = solver.solve(MaximizeBusUsage(capability).build(graph))
    show(result, graph)

    if ScipyMilpSolver.available():
        milp = ScipyMilpSolver().solve(MaximizeOffloading().build(graph))
        print(f"\nscipy.optimize.milp agrees: objective "
              f"{milp.objective:.1f}")

    # The paper's warning, concretely: one big Offcode poisons greedy.
    print("\nGreedy vs exact on a contended layout:")
    contended = LayoutGraph(DEVICES)
    contended.add_node("big", [True, True, False, False], price=6.0)
    contended.add_node("small-a", [True, True, False, False], price=4.0)
    contended.add_node("small-b", [True, True, False, False], price=4.0)
    problem = MaximizeBusUsage(
        BusCapabilityMatrix.uniform(DEVICES, 4.0)).build(contended)
    greedy = GreedySolver().solve(problem)
    exact = BranchAndBoundSolver().solve(problem)
    print(f"    greedy offloads 'big' first: objective "
          f"{greedy.objective:.1f}")
    print(f"    exact leaves 'big' home, offloads both smalls: "
          f"objective {exact.objective:.1f}")
    assert exact.objective > greedy.objective

    # Section 6.3's reasoning, automated: give the solver only traffic
    # volumes and it derives "the Decoder goes to the GPU" by itself.
    print("\nTraffic-aware placement (no Pull constraints given):")
    free_graph = LayoutGraph(DEVICES)
    free_graph.add_node("net-streamer", [False, True, False, False])
    free_graph.add_node("disk-streamer", [True, False, False, True])
    free_graph.add_node("decoder", [True, True, True, False])
    free_graph.add_node("display", [False, False, True, False])
    free_graph.add_node("file", [True, False, False, True])
    traffic = TrafficMatrix()
    traffic.set_flow("net-streamer", "decoder", 1.0)
    traffic.set_flow("net-streamer", "disk-streamer", 1.0)
    traffic.set_flow("decoder", "display", 20.0)   # raw frames are 20x
    traffic.set_flow("disk-streamer", "file", 1.0)
    result = MinimizeBusCrossings(traffic).solve(free_graph)
    show(result, free_graph)
    assert result.placement["decoder"] == DEVICES.index("gpu")
    print("    (raw-frame traffic alone pins the decoder to the GPU)")
    print("layout optimizer demo OK")


if __name__ == "__main__":
    main()
