#!/usr/bin/env python
"""In-network packet telemetry: sPIN handlers in the NIC's rx path.

A telemetry Offcode deploys onto a sPIN-capable NIC (its manifest
*requires* the ``spin`` feature) and installs a three-handler packet
program: the header handler counts flows and drops a denylisted port
in-network, every 10th packet escalates to the host for deep
inspection, and the payload handler's byte-walk cost is priced against
a per-packet cycle budget — jumbo frames would blow it, so the device
model punts them to the classic host path unrun.

Run:  python examples/packet_telemetry.py
"""

from repro.api import (
    Address,
    DeploymentSpec,
    DeviceClass,
    DeviceClassFilter,
    DROP,
    HydraRuntime,
    InterfaceSpec,
    Machine,
    MethodSpec,
    OdfDocument,
    Offcode,
    Packet,
    SoftwareRequirements,
    SPIN_FEATURE,
    SpinHandlers,
    Switch,
    Simulator,
    TO_HOST,
)

ITELEMETRY = InterfaceSpec.from_methods(
    "ITelemetry", (MethodSpec("Snapshot", params=(), result="any"),))

BLOCKED_PORT = 6667
SAMPLE_EVERY = 10


class TelemetryOffcode(Offcode):
    """Counts flows, filters and samples — from inside the NIC."""

    BINDNAME = "demo.Telemetry"
    INTERFACES = (ITELEMETRY,)

    def __init__(self, site, guid=None):
        super().__init__(site, guid)
        self.flows = {}
        self.seen = 0

    def on_start(self):
        yield from super().on_start()
        self.site.device.install_handlers(SpinHandlers(
            header=self.header, payload=lambda p: None,
            completion=lambda p: None))

    def header(self, packet):
        name = f"{packet.src.host}:{packet.src.port}"
        self.flows[name] = self.flows.get(name, 0) + 1
        if packet.dst.port == BLOCKED_PORT:
            return DROP                      # filtered in-network
        self.seen += 1
        if self.seen % SAMPLE_EVERY == 0:
            return TO_HOST                   # escalate for inspection
        return None                          # consumed on the NIC

    def Snapshot(self):
        yield from self.site.execute(500, context="snapshot")
        return sorted(self.flows.items())


def main():
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_spin_nic()
    runtime = HydraRuntime(machine)

    switch = Switch(sim)
    nic.attach_wire(switch.attach("appliance", nic.receive_packet))
    generator_tx = switch.attach("gen", lambda packet: None)

    odf = OdfDocument(
        bindname=TelemetryOffcode.BINDNAME,
        guid=TelemetryOffcode(runtime.host_site).guid,
        interfaces=[ITELEMETRY],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        requirements=SoftwareRequirements(features=(SPIN_FEATURE,)),
        image_bytes=24 * 1024)
    runtime.library.register("/offcodes/telemetry.odf", odf)
    runtime.depot.register(odf.guid, TelemetryOffcode)

    def application():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/offcodes/telemetry.odf",)))
        telemetry = runtime.get_offcode(TelemetryOffcode.BINDNAME)
        print(f"telemetry deployed -> {telemetry.location} "
              f"(budget {nic.budget_ns:,} ns/packet)")

        for index in range(120):
            port = BLOCKED_PORT if index % 4 == 0 else 9000 + index % 4
            jumbo = index % 40 == 39         # blows the handler budget
            generator_tx(Packet(
                src=Address("gen", 5000 + index % 4),
                dst=Address("appliance", port),
                size_bytes=48_000 if jumbo else 1024,
                sent_at_ns=sim.now))
            yield sim.timeout(10_000)        # ~line pacing
        yield sim.timeout(2_000_000)         # drain

        snapshot = yield from result.proxy.Snapshot()
        print(f"flows observed: {len(snapshot)}")
        print(f"in-network: {nic.spin_consumed} consumed, "
              f"{nic.spin_dropped} dropped (denylist), "
              f"{nic.spin_to_host} escalated (sampling), "
              f"{nic.budget_overruns} over budget")
        print(f"host saw {nic.host_rx_ring.total_put} of "
              f"{nic.rx_packets} packets")
        assert nic.spin_handled + nic.budget_overruns == nic.rx_packets
        print("packet telemetry demo OK")

    sim.run_until_event(sim.spawn(application()))


if __name__ == "__main__":
    main()
