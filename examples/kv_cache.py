#!/usr/bin/env python
"""Offloaded KV cache: gets are one-sided RDMA reads, the host sleeps.

A cache Offcode lives on the smart disk and registers its slot table as
an RDMA memory region through the RNIC.  A *get* is then a one-sided
read: the host posts work requests against the region, rings one
doorbell per batch, and the RNIC bus-masters the slots back — no remote
dispatch, no descriptor ring, no interrupt.  The two-sided ``Get`` RPC
stays around as the fallback for hash collisions (and, in the chaos
drill, for a crashed RNIC).

Run:  python examples/kv_cache.py
"""

import zlib

from repro.api import (
    DeploymentSpec,
    DeviceClass,
    DeviceClassFilter,
    HydraRuntime,
    InterfaceSpec,
    Machine,
    MethodSpec,
    NicSpec,
    OdfDocument,
    Offcode,
    RDMA_FEATURE,
    Simulator,
)

SLOT_BYTES = 64
SLOTS = 128

IKVCACHE = InterfaceSpec.from_methods(
    "IKvCache",
    (MethodSpec("Get", params=(("key", "string"),), result="any"),
     MethodSpec("Put", params=(("key", "string"), ("value", "any")),
                result="int")))


def slot_offset(key):
    return (zlib.crc32(key.encode()) % SLOTS) * SLOT_BYTES


class KvCacheOffcode(Offcode):
    """Owns the table; mirrors each entry into its registered region."""

    BINDNAME = "demo.KvCache"
    INTERFACES = (IKVCACHE,)
    DISPATCH_COST_NS = 800

    def __init__(self, site, guid=None):
        super().__init__(site, guid)
        self.table = {}
        self.region = None

    def Get(self, key):
        yield from self.site.execute(600, context="kv-probe")
        return self.table.get(key)

    def Put(self, key, value):
        self.table[key] = value
        if self.region is not None:
            # The slot stores (key, value) so one-sided readers can
            # validate what they fetched against hash collisions.
            self.region.write_object(slot_offset(key), (key, value))
        yield from self.site.execute(900, context="kv-insert")
        return len(self.table)


def main():
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic(NicSpec(extra_features=(RDMA_FEATURE,)))
    machine.add_disk()
    runtime = HydraRuntime(machine)

    odf = OdfDocument(
        bindname=KvCacheOffcode.BINDNAME,
        guid=KvCacheOffcode(runtime.host_site).guid,
        interfaces=[IKVCACHE],
        targets=[DeviceClassFilter(DeviceClass.STORAGE),
                 DeviceClassFilter(DeviceClass.HOST)],
        image_bytes=48 * 1024)
    runtime.library.register("/offcodes/kv_cache.odf", odf)
    runtime.depot.register(odf.guid, KvCacheOffcode)

    keys = [f"user:{i:03d}" for i in range(32)]

    def application():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/offcodes/kv_cache.odf",)))
        cache = runtime.get_offcode(KvCacheOffcode.BINDNAME)
        print(f"cache deployed -> {cache.location}")

        # Register the cache's slot table as an RDMA memory region.
        provider = runtime.rdma_provider(nic.name)
        region = yield from provider.register_mr(
            cache.location, SLOTS * SLOT_BYTES, label="kv-table")
        cache.region = region
        print(f"registered {region.size} B on {region.owner} "
              f"(rkey {region.rkey:#x})")

        for key in keys:
            yield from result.proxy.Put(key, f"profile-of-{key}")

        # One-sided path: post a read per key, one doorbell per batch.
        qp = provider.create_qp(runtime.host_site)
        started = sim.now
        fetched = {}
        for base in range(0, len(keys), 8):
            chunk = keys[base:base + 8]
            ids = {qp.post_read(region, slot_offset(k), SLOT_BYTES): k
                   for k in chunk}
            for completion in (yield from qp.ring_doorbell()):
                key = ids[completion.wr_id]
                slot = completion.value
                if isinstance(slot, tuple) and slot[0] == key:
                    fetched[key] = slot[1]           # validated hit
                else:
                    fetched[key] = yield from result.proxy.Get(key)
        one_sided_ns = sim.now - started

        # The two-sided baseline: every get dispatches the Offcode.
        started = sim.now
        rpc = {}
        for key in keys:
            rpc[key] = yield from result.proxy.Get(key)
        rpc_ns = sim.now - started

        stats = provider.stats
        assert fetched == rpc
        assert stats.imbalance == 0        # posted == completed + failed
        print(f"one-sided: {len(keys)} gets in {one_sided_ns:,} sim-ns "
              f"({stats.doorbells} doorbells)")
        print(f"two-sided: {len(keys)} gets in {rpc_ns:,} sim-ns")
        print(f"speedup: {rpc_ns / one_sided_ns:.2f}x")
        print("kv cache demo OK")

    sim.run_until_event(sim.spawn(application()))


if __name__ == "__main__":
    main()
