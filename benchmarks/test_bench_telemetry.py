"""Telemetry overhead benchmark: the disabled path must stay free.

Every instrumented site guards on ``sim.telemetry is None`` — one
attribute check — so with telemetry disabled (the default) the engine
microbenchmark budget is a <= 2 % events/sec regression against
``PRE_TELEMETRY_EVENTS_PER_SEC``, the same workload measured at the
commit before instrumentation landed.

Two kinds of assertion, split by what wall-clock noise can touch:

* **Noise-free invariants, gated on the live run**: telemetry observes
  and never perturbs, so event count and final sim clock must be
  *identical* with the hub attached or absent; enabled tracing must
  actually record spans.
* **The 2 % budget, gated on the committed baseline**: the reference
  machine's wall clock jitters ~20 % between runs, far above the budget
  being measured, so the <= 2 % claim is pinned by the committed
  ``benchmarks/results/bench.json`` — regenerated with a paired
  best-of-N protocol whenever a deliberate perf change lands — and this
  test verifies the committed artifact upholds it.  The live run is
  additionally held to the perf-smoke job's standard 30 % tolerance.

The *enabled* cost is reported in the published artifact, not gated:
tracing is an opt-in diagnostic mode.
"""

import json

from conftest import publish

from harness import (
    DEFAULT_BENCH_JSON,
    PRE_TELEMETRY_EVENTS_PER_SEC,
    run_all,
)


def test_bench_telemetry_overhead(one_shot):
    report = one_shot(run_all,
                      ["engine_micro_tivopc", "engine_micro_telemetry"])
    disabled = report["benchmarks"]["engine_micro_tivopc"]
    enabled = report["benchmarks"]["engine_micro_telemetry"]
    publish("telemetry_overhead", "\n".join([
        "Telemetry overhead -- Simple server, 5 simulated seconds",
        f"disabled events/sec   {disabled['events_per_sec']:>12,.0f}",
        f"enabled events/sec    {enabled['events_per_sec']:>12,.0f}",
        f"pre-telemetry rate    {PRE_TELEMETRY_EVENTS_PER_SEC:>12,d}",
        f"disabled vs pre       {disabled['vs_pre_telemetry']:>12.3f}x",
        f"enabled tracing cost  {enabled['tracing_cost_vs_disabled']:>11.2f}x",
        f"spans recorded        {enabled['spans']:>12,d}",
    ]), data={"disabled": disabled, "enabled": enabled})

    # Telemetry observes, never perturbs: identical simulated work
    # whether the hub is attached or not (no events, no clock skew).
    assert disabled["events"] == 93_048
    assert enabled["events"] == 93_048
    assert disabled["sim_ns"] == enabled["sim_ns"] == 5_000_000_000
    # Enabled tracing actually recorded the offload path.
    assert enabled["spans"] > 1_000
    # Live floor at the perf-smoke tolerance (30 %): catches a real
    # disabled-path pessimisation without flaking on host noise.
    assert disabled["events_per_sec"] >= 0.70 * PRE_TELEMETRY_EVENTS_PER_SEC

    # The committed baseline carries the pinned <= 2 % budget.
    committed = json.loads(DEFAULT_BENCH_JSON.read_text())["benchmarks"]
    assert committed["engine_micro_tivopc"]["vs_pre_telemetry"] >= 0.98
    # ... and records the enabled-mode cost alongside it.
    assert "tracing_cost_vs_disabled" in committed["engine_micro_telemetry"]
