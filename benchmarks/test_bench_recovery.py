"""Recovery benchmark: NIC death mid-stream, host-fallback latency.

Not a paper artifact — the paper never kills a device — but the natural
robustness companion to Table 4: how long the fully offloaded client is
blind after its NIC's embedded processor dies, broken into detection
(watchdog) and repair (teardown + re-layout + host redeploy + rewiring),
plus how quickly the media pipeline is moving frames again.
"""

from conftest import publish

from repro import units
from repro.core import CheckpointConfig, WatchdogConfig
from repro.faults import FaultPlan
from repro.tivopc import OffloadedClient, OffloadedServer, Testbed, TestbedConfig

CRASH_AT_NS = 2 * units.SECOND
RUN_SECONDS = 8.0
CHECKPOINT_PERIOD_NS = 50 * units.MS
COMPARE_SECONDS = 5.0


def run_recovery_scenario():
    plan = FaultPlan().crash_device(CRASH_AT_NS, "client.nic0")
    watchdog_config = WatchdogConfig()
    testbed = Testbed(TestbedConfig(seed=3, fault_plan=plan,
                                    watchdog=watchdog_config))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=True)
    client.start()
    OffloadedServer(testbed).start()

    runtime = testbed.client_runtime
    testbed.run(CRASH_AT_NS / units.SECOND)
    frames_before_crash = client.frames_shown

    # Step in 1 ms increments to timestamp recovery milestones.
    while not (runtime.incidents and runtime.incidents[0].recovered):
        testbed.run(0.001)
    frames_at_recovery = client.frames_shown
    while client.frames_shown <= frames_at_recovery:
        testbed.run(0.001)
    first_frame_ns = testbed.sim.now

    testbed.run(RUN_SECONDS - testbed.sim.now / units.SECOND)
    incident = runtime.incidents[0]
    return testbed, client, incident, frames_before_crash, first_frame_ns


def render_recovery(testbed, client, incident, frames_before_crash,
                    first_frame_ns):
    watchdog = testbed.client_runtime.watchdog
    detection_ns = incident.died_at_ns - CRASH_AT_NS
    blind_ns = first_frame_ns - CRASH_AT_NS
    lines = [
        "Recovery after client NIC crash (fully offloaded client)",
        "=" * 58,
        f"crash injected at        {CRASH_AT_NS / units.MS:10.3f} ms",
        f"death declared at        {incident.died_at_ns / units.MS:10.3f} ms"
        f"   (detection {detection_ns / units.MS:.3f} ms at a "
        f"{watchdog.config.period_ns / units.MS:.0f} ms beat)",
        f"recovery complete at     {incident.recovered_at_ns / units.MS:10.3f} ms"
        f"   (repair {incident.latency_ns / units.MS:.3f} ms)",
        f"first frame after crash  {first_frame_ns / units.MS:10.3f} ms"
        f"   (blind for <= {blind_ns / units.MS:.0f} ms, 1 ms probe)",
        f"victim offcodes          {', '.join(incident.victims)}",
        f"fallback placement       "
        f"{incident.placement.get('tivopc.NetStreamer')}",
        f"frames shown  pre-crash  {frames_before_crash:10d}",
        f"frames shown  end of run {client.frames_shown:10d}",
        f"bytes recorded           {client.bytes_recorded:10d}",
        f"frames dropped at NIC    {testbed.client.nic.rx_dropped_dead:10d}",
    ]
    return "\n".join(lines)


def test_bench_recovery(one_shot):
    testbed, client, incident, frames_before_crash, first_frame_ns = \
        one_shot(run_recovery_scenario)
    publish("recovery",
            render_recovery(testbed, client, incident, frames_before_crash,
                            first_frame_ns),
            data={
                "crash_at_ns": CRASH_AT_NS,
                "died_at_ns": incident.died_at_ns,
                "recovered_at_ns": incident.recovered_at_ns,
                "repair_latency_ns": incident.latency_ns,
                "first_frame_after_crash_ns": first_frame_ns,
                "victims": list(incident.victims),
                "frames_before_crash": frames_before_crash,
                "frames_end_of_run": client.frames_shown,
                "bytes_recorded": client.bytes_recorded,
                "rx_dropped_dead": testbed.client.nic.rx_dropped_dead,
            })

    assert incident.recovered
    assert incident.latency_ns > 0
    # Detection is bounded by period * threshold + deadline.
    cfg = testbed.client_runtime.watchdog.config
    bound = cfg.period_ns * cfg.miss_threshold + cfg.deadline_ns \
        + cfg.period_ns
    assert incident.died_at_ns - CRASH_AT_NS <= bound
    # The pipeline kept going afterwards, and quickly.
    assert client.frames_shown > frames_before_crash
    assert client.net_streamer.location == "host"
    assert first_frame_ns - CRASH_AT_NS < 100 * units.MS


# -- checkpointed vs cold recovery ----------------------------------------------------


def _run_crash(checkpoint):
    """One NIC-crash run; probe the Streamer counter around the crash."""
    plan = FaultPlan().crash_device(CRASH_AT_NS, "client.nic0")
    testbed = Testbed(TestbedConfig(seed=3, fault_plan=plan,
                                    watchdog=WatchdogConfig(),
                                    checkpoint=checkpoint))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=True)
    client.start()
    testbed.run(0.2)
    OffloadedServer(testbed).start()
    runtime = testbed.client_runtime
    testbed.run(CRASH_AT_NS / units.SECOND - testbed.sim.now / units.SECOND
                - 0.001)
    chunks_at_crash = client.net_streamer.chunks_handled
    # Step in 1 ms increments so the replacement's counter is probed
    # right at the restore, before new traffic blurs what was carried.
    while not (runtime.incidents and runtime.incidents[0].recovered):
        testbed.run(0.001)
    counter_at_restore = client.net_streamer.chunks_handled
    testbed.run(COMPARE_SECONDS - testbed.sim.now / units.SECOND)
    incident = runtime.incidents[0]
    return {
        "chunks_at_crash": chunks_at_crash,
        "counter_at_restore": counter_at_restore,
        "state_lost_chunks": chunks_at_crash - counter_at_restore,
        "counter_end_of_run": client.net_streamer.chunks_handled,
        "restored": list(incident.restored),
        "detection_ns": incident.died_at_ns - CRASH_AT_NS,
        "repair_latency_ns": incident.latency_ns,
    }


def run_checkpoint_comparison():
    return {
        "cold": _run_crash(None),
        "checkpointed": _run_crash(
            CheckpointConfig(period_ns=CHECKPOINT_PERIOD_NS)),
    }


def render_checkpoint_comparison(modes):
    lines = [
        "Checkpointed vs cold recovery (client NIC crash, Streamer state)",
        "=" * 64,
        f"{'':14s}{'at crash':>10s}{'at restore':>12s}"
        f"{'lost':>8s}{'repair ms':>11s}",
    ]
    for mode in ("cold", "checkpointed"):
        m = modes[mode]
        lines.append(
            f"{mode:14s}{m['chunks_at_crash']:>10d}"
            f"{m['counter_at_restore']:>12d}"
            f"{m['state_lost_chunks']:>8d}"
            f"{m['repair_latency_ns'] / units.MS:>11.3f}")
    lines.append(
        f"checkpoint period {CHECKPOINT_PERIOD_NS / units.MS:.0f} ms — "
        "a crash costs at most one period of Streamer history instead "
        "of all of it.")
    return "\n".join(lines)


def test_bench_recovery_checkpointed_vs_cold(one_shot):
    modes = one_shot(run_checkpoint_comparison)
    publish("recovery_checkpoint",
            render_checkpoint_comparison(modes),
            data={"checkpoint_period_ns": CHECKPOINT_PERIOD_NS,
                  "crash_at_ns": CRASH_AT_NS, **modes})

    cold, warm = modes["cold"], modes["checkpointed"]
    # Cold recovery redeploys a blank Streamer: all pre-crash counter
    # history is gone.  ~2 s at 200 chunks/s were at stake.
    assert cold["restored"] == []
    assert cold["chunks_at_crash"] > 300
    assert cold["state_lost_chunks"] == cold["chunks_at_crash"]
    # Checkpointed recovery restores the last snapshot: the loss window
    # is bounded by one checkpoint period (plus the probe step).
    stream_interval_ns = 5 * units.MS
    period_chunks = CHECKPOINT_PERIOD_NS // stream_interval_ns
    assert "tivopc.NetStreamer" in warm["restored"]
    assert 0 <= warm["state_lost_chunks"] <= period_chunks + 2
    # Restoring state must not meaningfully slow the repair itself.
    assert warm["repair_latency_ns"] < 10 * cold["repair_latency_ns"]
