"""Table 4: client-side CPU utilization, plus the client L2 claim.

Paper rows (%): Idle 2.90/2.86/0.09, User-space 7.30/6.90/0.32,
Offloaded 2.90/2.86/0.09.  "The offloading is complete in the sense
that there are no components left on the host processor."  The text
adds: the non-offloaded client generates 12 % more L2 misses, "much of
this ... due to the MPEG decoding process."
"""

from conftest import client_results, publish

from repro.evaluation import render_client_l2, render_table4


def test_bench_table4(one_shot):
    results = one_shot(client_results)
    publish("table4", render_table4(results), data=results)
    publish("client_l2", render_client_l2(results),
            data={name: results[name].l2_miss_rate for name in results})

    idle = results["idle"].cpu.average
    user = results["user-space"].cpu.average
    offloaded = results["offloaded"].cpu.average

    assert 0.025 < idle < 0.033
    assert 0.060 < user < 0.080
    # Full offload: client CPU == idle CPU.
    assert abs(offloaded - idle) < 0.004
    # The user-space client did real media work.
    assert results["user-space"].frames > 100
    assert results["user-space"].recorded_bytes > 1_000_000
    # The offloaded client did the same work without the host.
    assert results["offloaded"].frames > 100
    assert results["offloaded"].recorded_bytes > 1_000_000

    # L2: +~12 % for the user-space client, idle-equal when offloaded.
    idle_l2 = results["idle"].l2_miss_rate
    user_l2 = results["user-space"].l2_miss_rate / idle_l2
    off_l2 = results["offloaded"].l2_miss_rate / idle_l2
    assert 1.06 < user_l2 < 1.20
    assert abs(off_l2 - 1.0) < 0.03
