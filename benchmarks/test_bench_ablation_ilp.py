"""Ablation: exact ILP vs greedy layout placement (Section 5).

The paper's justification for the ILP formulation: "simple graphs are
usually trivial to solve, while for complex scenarios a greedy solution
is not always optimal."  Random constrained layout graphs under the
Maximize-Bus-Usage objective (tight capability budgets) must show the
greedy baseline losing objective value — and sometimes failing outright
where backtracking succeeds.
"""

from conftest import publish

from repro.evaluation import render_ilp_ablation, run_ilp_vs_greedy


def test_bench_ablation_ilp(one_shot):
    result = one_shot(run_ilp_vs_greedy, 40, 8, 3, 7, True)
    publish("ablation_ilp", render_ilp_ablation(result))

    assert result.graphs >= 20
    # The Section 5 claim, quantified: greedy is not always optimal.
    assert result.greedy_suboptimal + result.greedy_failures > 0
    assert result.mean_gap >= 0.0
    assert result.worst_gap > 0.0
    # The exact solver never loses to greedy (sanity of "exact").
    assert result.total_greedy_objective <= result.total_exact_objective


def test_bench_ilp_trivial_graphs_greedy_matches(one_shot):
    """The flip side: on unconstrained objectives greedy usually ties —
    'simple graphs are usually trivial to solve'."""
    result = one_shot(run_ilp_vs_greedy, 30, 5, 3, 11, False)
    assert result.graphs >= 15
    solved = result.graphs - result.greedy_failures
    assert solved > 0
    # Most instances are solved optimally by greedy without budgets.
    assert result.greedy_suboptimal <= 0.4 * solved
