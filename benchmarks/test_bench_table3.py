"""Table 3: server-side CPU utilization.

Paper rows (%): Idle 2.90/2.86/0.09, Simple 7.50/7.50/0.12,
Sendfile 5.90/6.20/0.08, Offloaded 2.90/2.86/0.09.  The headline: the
offloaded server is indistinguishable from an idle machine.
"""

from conftest import publish, server_results

from repro.evaluation import render_table3


def test_bench_table3(one_shot):
    results = one_shot(server_results)
    publish("table3", render_table3(results), data=results)

    idle = results["idle"].cpu.average
    simple = results["simple"].cpu.average
    sendfile = results["sendfile"].cpu.average
    offloaded = results["offloaded"].cpu.average

    # Absolute levels near the paper's.
    assert 0.025 < idle < 0.033
    assert 0.070 < simple < 0.080
    assert 0.057 < sendfile < 0.067
    # Ordering: simple > sendfile > offloaded ~= idle.
    assert simple > sendfile > offloaded
    assert abs(offloaded - idle) < 0.003
    # Magnitude of the win: offloading removes the entire server load.
    assert (simple - idle) / (abs(offloaded - idle) + 1e-4) > 10
