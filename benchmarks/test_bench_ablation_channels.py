"""Ablation: zero-copy (direct) vs copying channels (Section 4.1).

Figure 6's zero-copy architecture exists because copying channels charge
the host CPU per payload byte and stream the data through the L2.  The
sweep sends messages of increasing size over a host->NIC channel in both
buffering modes and reports per-message host CPU cost: the copy mode's
cost must grow linearly with size while the direct mode stays flat, so
the gap widens with message size.
"""

from conftest import publish

from repro.core import (
    Buffering,
    ChannelConfig,
    ChannelExecutive,
    DmaChannelProvider,
    LoopbackProvider,
    MemoryManager,
    Offcode,
    OffcodeState,
)
from repro.core.sites import DeviceSite, HostSite
from repro.evaluation import format_table
from repro.hw import Machine
from repro.sim import Simulator

SIZES = (256, 1024, 4096, 16384, 65536)
MESSAGES = 50


class SinkOffcode(Offcode):
    BINDNAME = "bench.Sink"


def channel_cpu_cost(buffering: Buffering, size: int) -> float:
    """Average host CPU ns per message for one (mode, size) point."""
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    executive = ChannelExecutive()
    memory = MemoryManager(machine)
    executive.register_provider(LoopbackProvider(machine))
    executive.register_provider(DmaChannelProvider(machine, nic, memory))
    host = HostSite(machine)
    sink = SinkOffcode(DeviceSite(nic))
    sink.state = OffcodeState.RUNNING
    channel = executive.create_channel(
        ChannelConfig(buffering=buffering, ring_slots=256), host)
    endpoint = executive.connect_offcode(channel, sink)
    endpoint.install_call_handler(lambda message: None)

    def writer():
        for _ in range(MESSAGES):
            yield from channel.creator_endpoint.write(b"", size)

    sim.run_until_event(sim.spawn(writer()))
    return machine.cpu.total_busy / MESSAGES


def test_bench_ablation_channels(one_shot):
    def sweep():
        rows = []
        for size in SIZES:
            direct = channel_cpu_cost(Buffering.DIRECT, size)
            copy = channel_cpu_cost(Buffering.COPY, size)
            rows.append((size, direct, copy))
        return rows

    rows = one_shot(sweep)
    publish("ablation_channels", format_table(
        "Ablation: host CPU ns/message, zero-copy vs copying channel",
        ["message bytes", "direct (zero-copy)", "copy mode", "ratio"],
        [[str(s), f"{d:.0f}", f"{c:.0f}", f"{c / d:.1f}x"]
         for s, d, c in rows]))

    directs = [d for _s, d, _c in rows]
    copies = [c for _s, _d, c in rows]
    # Copy cost grows ~linearly with size; direct stays flat.
    assert copies[-1] > 20 * copies[0] * (SIZES[0] / SIZES[0])
    assert directs[-1] < 4 * directs[0]
    # The gap widens: at 64 kB the copy path is far more expensive.
    assert copies[-1] / directs[-1] > 10
    # Even at 1 kB (the paper's packet size) zero-copy wins.
    assert copies[1] > directs[1]
