"""Ablation: energy of the server machine under each server variant.

Offloading argument #3 (Section 1.1): "a Pentium 4 2.8 GHz processor
consumes 68 W whereas an Intel XScale 600 MHz processor ... consumes
0.5 W, two orders of magnitude less.  By offloading suitable operations
to low-powered peripherals, we reduce the overall system power
consumption."  The offloaded server must shift its marginal energy from
the host CPU to the NIC CPU, where the same logical work costs ~100x
less power.
"""

from conftest import publish

from repro.evaluation import render_power_ablation, run_power_comparison


def test_bench_ablation_power(one_shot):
    results = one_shot(run_power_comparison, 20.0)
    publish("ablation_power", render_power_ablation(results))

    simple = results["simple"]
    sendfile = results["sendfile"]
    offloaded = results["offloaded"]

    # Host CPU energy: simple > sendfile > offloaded.
    assert simple.host_joules > sendfile.host_joules > \
        offloaded.host_joules
    # The offloaded variant moved work onto the NIC...
    assert offloaded.device_joules > simple.device_joules
    # ...but the NIC's absolute energy is tiny next to the host delta.
    host_saving = simple.host_joules - offloaded.host_joules
    device_cost = offloaded.device_joules - simple.device_joules
    assert host_saving > 20 * device_cost
    # Machine totals follow.
    assert offloaded.total_joules < simple.total_joules
