"""Fleet scaling benchmark: sharded throughput and scaling efficiency.

Two kinds of assertion, split by what wall-clock noise can touch:

* **Noise-free invariants, gated on the live run**: the sharded
  population conserves chunks (per shard and in aggregate), dispatches
  ~1 simulation event per chunk (the scale model's contract), and
  labels its scaling numbers with their basis — ``measured`` when the
  affinity mask covers the worker count, ``projected_lpt`` otherwise.
* **The >= 3x-at-4-workers bar, gated on the committed baseline**:
  regenerated on the reference machine whenever a deliberate perf
  change lands; this test verifies the committed artifact upholds it
  so the scaling claim cannot regress silently.
"""

import json

from conftest import publish

from harness import (
    DEFAULT_BENCH_JSON,
    FLEET_CLIENTS,
    FLEET_SHARDS,
    run_all,
)


def test_bench_fleet_scaling(one_shot):
    report = one_shot(run_all, ["fleet"], repeat=1)
    fleet = report["benchmarks"]["fleet"]
    publish("fleet_scaling", "\n".join([
        f"Fleet scaling -- {FLEET_CLIENTS} chunk-fidelity subscribers, "
        f"{FLEET_SHARDS} shards",
        f"1-worker rate        {fleet['events_per_sec']:>14,.0f} ev/s",
        f"2-worker rate        {fleet['events_per_sec_2w']:>14,.0f} ev/s "
        f"({fleet['speedup_basis_2w']})",
        f"4-worker rate        {fleet['events_per_sec_4w']:>14,.0f} ev/s "
        f"({fleet['speedup_basis_4w']})",
        f"speedup 2w / 4w      {fleet['speedup_2w']:>8.2f}x / "
        f"{fleet['speedup_4w']:.2f}x",
        f"efficiency 2w / 4w   {fleet['efficiency_2w']:>8.2f} / "
        f"{fleet['efficiency_4w']:.2f}",
        f"dispatch+merge       {fleet['dispatch_merge_overhead_s']:>11.3f} s",
        f"supervision overhead {fleet['supervision_overhead']:>11.3f}x "
        f"({fleet['supervised_wall_s']:.3f}s vs "
        f"{fleet['unsupervised_wall_s']:.3f}s bare pool)",
    ]), data=fleet)

    # Simulated work is seeded and exact whatever the worker count.
    assert fleet["conservation_ok"] == 1
    assert fleet["clients"] == FLEET_CLIENTS
    assert fleet["sim_ns"] == FLEET_SHARDS * 2_000_000_000
    # The chunk tier's reason to exist: ~1 event per chunk.  399 chunks
    # per subscriber over 2 s at 5 ms pacing, plus one horizon wakeup.
    assert fleet["events"] == FLEET_CLIENTS * 401
    # Scaling numbers must declare what they are.
    assert fleet["speedup_basis_2w"] in ("measured", "projected_lpt")
    assert fleet["speedup_basis_4w"] in ("measured", "projected_lpt")
    assert fleet["speedup_2w"] > 0 and fleet["speedup_4w"] > 0
    # The live run must carry the supervision-overhead pair (sane, not
    # gated here: a shared runner's wall clock is too noisy to assert a
    # percentage on).
    assert fleet["supervised_wall_s"] > 0
    assert fleet["unsupervised_wall_s"] > 0
    assert fleet["supervision_overhead"] > 0

    # The committed baseline carries the acceptance bar: >= 3x aggregate
    # events/sec at 4 workers vs 1, with its basis recorded.
    committed = json.loads(DEFAULT_BENCH_JSON.read_text())["benchmarks"]
    assert committed["fleet"]["speedup_4w"] >= 3.0
    assert committed["fleet"]["events_per_sec_4w"] >= \
        3.0 * committed["fleet"]["events_per_sec"]
    assert "speedup_basis_4w" in committed["fleet"]
    # Crash-safe dispatch must stay essentially free: on the reference
    # machine the SupervisedPool costs <= 3 % wall over the bare pool.
    assert committed["fleet"]["supervision_overhead"] <= 1.03
