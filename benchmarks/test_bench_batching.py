"""Vectored call batching: throughput, bus transactions, and jitter.

The dispatch harness mirrors the TiVoPC hot path — a programmable NIC
multicasting 188-byte MPEG transport chunks to the GPU and the smart
disk over peer DMA — but drives the channel directly so the measured
quantity is the *channel* cost, not the Streamer's extraction budget.

Two phases:

* **burst** — back-to-back writes.  The adaptive batcher coalesces to
  its default watermarks and each 32-entry batch rides one hardware
  multicast transaction; claims: >= 3x messages/second and >= 5x fewer
  bus transactions than the classic per-message path.
* **paced** — one chunk every 100 us.  The EWMA estimator sees a full
  batch could never form inside the deadline and bypasses coalescing,
  so delivery jitter stays no worse than the unbatched channel.

The rendered comparison is published to ``results/batching.txt``.
"""

from __future__ import annotations

from conftest import publish

from repro.api import (
    ChannelConfig,
    HydraRuntime,
    JitterCollector,
    Machine,
    Simulator,
)

CHUNK_BYTES = 188            # one MPEG transport-stream packet
BURST_MESSAGES = 1920        # 60 full batches at the default watermark
PACED_MESSAGES = 300
PACED_INTERVAL_NS = 100_000  # 100 us between chunks (a paced stream)


class DispatchRun:
    """Result of one harness run (one channel mode, one arrival process)."""

    def __init__(self, label):
        self.label = label
        self.messages = 0
        self.elapsed_ns = 0
        self.bus_transactions = 0
        self.sg_transfers = 0
        self.sg_entries = 0
        self.coalesced = 0
        self.bypassed = 0
        self.flushes = 0
        self.jitter = JitterCollector()

    @property
    def msgs_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.messages * 1e9 / self.elapsed_ns


def run_dispatch(label, batched, messages, interval_ns=0):
    """Drive ``messages`` chunks NIC -> {GPU, disk} and measure."""
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    machine.add_gpu()
    machine.add_disk()
    machine.bus.record_log = True   # one TransferRecord per transaction
    runtime = HydraRuntime(machine)

    config = (ChannelConfig.multicast().reliable().sequential()
              .zero_copy().labeled("bench.batching"))
    if batched:
        config = config.batched()   # default BatchConfig watermarks
    channel = runtime.executive.create_channel(
        config, runtime.device_runtime("nic0").site)
    runtime.executive.connect_site(channel,
                                   runtime.device_runtime("gpu0").site)
    runtime.executive.connect_site(channel,
                                   runtime.device_runtime("disk0").site)
    source = channel.creator_endpoint
    sinks = [e for e in channel.endpoints if e is not source]

    result = DispatchRun(label)

    def drain(endpoint, collector):
        while True:
            yield from endpoint.read()
            if collector is not None:
                collector.record(sim.now)
            result.elapsed_ns = sim.now

    sim.spawn(drain(sinks[0], result.jitter), name="drain-gpu")
    sim.spawn(drain(sinks[1], None), name="drain-disk")

    def sender():
        for seq in range(messages):
            yield from source.write(("chunk", seq), CHUNK_BYTES)
            if interval_ns:
                yield sim.timeout(interval_ns)
        if channel.batcher is not None:
            yield from channel.batcher.flush_all()

    sim.spawn(sender(), name="sender")
    sim.run()

    result.messages = messages
    result.bus_transactions = len(machine.bus.transfers)
    result.sg_transfers = machine.bus.sg_transfers
    result.sg_entries = machine.bus.sg_entries
    if channel.batcher is not None:
        stats = channel.batcher.stats()
        result.coalesced = stats.coalesced
        result.bypassed = stats.bypassed
        result.flushes = stats.flushes
    return result


def render(burst_plain, burst_batched, paced_plain, paced_batched):
    speedup = burst_batched.msgs_per_sec / burst_plain.msgs_per_sec
    txn_ratio = (burst_plain.bus_transactions
                 / max(1, burst_batched.bus_transactions))
    lines = [
        "Vectored call batching -- NIC multicast to GPU + disk, "
        f"{CHUNK_BYTES}-byte chunks",
        "",
        f"{'phase / mode':<24}{'msgs':>7}{'elapsed ms':>12}"
        f"{'msgs/sec':>12}{'bus txns':>10}{'sg txns':>9}",
    ]
    for run in (burst_plain, burst_batched, paced_plain, paced_batched):
        lines.append(
            f"{run.label:<24}{run.messages:>7}"
            f"{run.elapsed_ns / 1e6:>12.3f}"
            f"{run.msgs_per_sec:>12.0f}"
            f"{run.bus_transactions:>10}"
            f"{run.sg_transfers:>9}")
    lines += [
        "",
        f"burst speedup:            {speedup:.2f}x messages/second",
        f"burst bus transactions:   {txn_ratio:.1f}x fewer "
        f"({burst_plain.bus_transactions} -> "
        f"{burst_batched.bus_transactions})",
        f"batched burst:            {burst_batched.coalesced} coalesced, "
        f"{burst_batched.bypassed} bypassed, "
        f"{burst_batched.flushes} vectored flushes "
        f"({burst_batched.sg_entries} sg entries)",
        f"paced adaptive bypass:    {paced_batched.bypassed} of "
        f"{paced_batched.messages} chunks took the per-message path",
    ]
    plain_j = paced_plain.jitter.stats()
    batched_j = paced_batched.jitter.stats()
    lines += [
        f"paced jitter (unbatched): median {plain_j.median:.4f} ms, "
        f"stdev {plain_j.stdev:.4f} ms over {plain_j.count} gaps",
        f"paced jitter (batched):   median {batched_j.median:.4f} ms, "
        f"stdev {batched_j.stdev:.4f} ms over {batched_j.count} gaps",
    ]
    return "\n".join(lines)


def test_batching_throughput_and_jitter(one_shot):
    def experiment():
        burst_plain = run_dispatch("burst / unbatched", False,
                                   BURST_MESSAGES)
        burst_batched = run_dispatch("burst / batched", True,
                                     BURST_MESSAGES)
        paced_plain = run_dispatch("paced / unbatched", False,
                                   PACED_MESSAGES, PACED_INTERVAL_NS)
        paced_batched = run_dispatch("paced / batched", True,
                                     PACED_MESSAGES, PACED_INTERVAL_NS)
        return burst_plain, burst_batched, paced_plain, paced_batched

    burst_plain, burst_batched, paced_plain, paced_batched = \
        one_shot(experiment)

    def as_data(run):
        return {
            "messages": run.messages,
            "elapsed_ns": run.elapsed_ns,
            "msgs_per_sec": run.msgs_per_sec,
            "bus_transactions": run.bus_transactions,
            "sg_transfers": run.sg_transfers,
            "sg_entries": run.sg_entries,
            "coalesced": run.coalesced,
            "bypassed": run.bypassed,
            "flushes": run.flushes,
            "jitter": run.jitter.stats(),
        }

    publish("batching",
            render(burst_plain, burst_batched, paced_plain, paced_batched),
            data={run.label: as_data(run)
                  for run in (burst_plain, burst_batched,
                              paced_plain, paced_batched)})

    # Every chunk arrived, in both modes.
    assert burst_plain.messages == burst_batched.messages == BURST_MESSAGES

    # Tentpole claims at the default watermark.
    assert burst_batched.msgs_per_sec >= 3.0 * burst_plain.msgs_per_sec
    assert (burst_batched.bus_transactions
            <= burst_plain.bus_transactions / 5.0)
    assert burst_batched.sg_transfers > 0

    # Paced traffic: the adaptive estimator steps aside, so jitter is no
    # worse than the classic per-message channel.
    plain_j = paced_plain.jitter.stats()
    batched_j = paced_batched.jitter.stats()
    assert batched_j.count == plain_j.count
    assert batched_j.stdev <= plain_j.stdev * 1.05 + 1e-9
    assert batched_j.median <= plain_j.median * 1.05 + 1e-9
