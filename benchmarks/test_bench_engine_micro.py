"""Engine microbenchmark: loop throughput on the reference workload.

The hot-path overhaul (__slots__ event types, pooled fast-path timeouts,
lazy cancellation, dict-LRU cache inner loop) was accepted against a
>= 2x events/second bar on a CPU-bound TiVoPC run.  This benchmark
re-measures that workload through :mod:`harness` and publishes both the
human-readable summary and the machine-readable JSON entry.
"""

from conftest import publish

from harness import (
    PRE_OVERHAUL_EVENTS_PER_SEC,
    PRE_WHEEL_ENGINE_MICRO_EVENTS_PER_SEC,
    run_all,
)


def test_bench_engine_micro(one_shot):
    report = one_shot(run_all, ["engine_micro_tivopc"])
    metrics = report["benchmarks"]["engine_micro_tivopc"]
    publish("engine_micro", "\n".join([
        "Engine microbenchmark -- Simple server, 5 simulated seconds",
        f"events processed      {metrics['events']:>12,d}",
        f"wall clock            {metrics['wall_s']:>12.3f} s",
        f"events/second         {metrics['events_per_sec']:>12,.0f}",
        f"fused resumes         {metrics['fused_resumes']:>12,d}",
        f"pre-overhaul rate     {PRE_OVERHAUL_EVENTS_PER_SEC:>12,d}",
        f"speedup               {metrics['speedup_vs_pre_overhaul']:>12.2f}x",
        f"pre-wheel rate        {PRE_WHEEL_ENGINE_MICRO_EVENTS_PER_SEC:>12,d}",
        f"speedup vs pre-wheel  {metrics['speedup_vs_pre_wheel']:>12.2f}x",
    ]), data=metrics)

    # The simulated work is fixed: same events, same final clock.
    assert metrics["events"] == 93_048
    assert metrics["sim_ns"] == 5_000_000_000
    # The hot sleeps dispatch through the fused bare-int fast path (the
    # pooled _Deferred handles now serve only value-carrying sleeps, so
    # pool_recycled no longer measures the hot path).
    assert metrics["fused_resumes"] > 10_000
    # The overhaul's acceptance bar, measured best-of-N to shrug off
    # scheduler noise.  PRE_OVERHAUL_EVENTS_PER_SEC was recorded on the
    # reference machine immediately before the overhaul landed.
    assert metrics["events_per_sec"] >= 2.0 * PRE_OVERHAUL_EVENTS_PER_SEC
    # The timer-wheel core's bar is >= 3x the committed pre-wheel
    # baseline; the full-strength gate is the perf-smoke check against
    # the committed bench.json (whose entry records the 3x), so this
    # in-test floor is set a noise margin below it.
    assert metrics["events_per_sec"] >= 2.0 * PRE_WHEEL_ENGINE_MICRO_EVENTS_PER_SEC
