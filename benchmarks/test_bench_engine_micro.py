"""Engine microbenchmark: loop throughput on the reference workload.

The hot-path overhaul (__slots__ event types, pooled fast-path timeouts,
lazy cancellation, dict-LRU cache inner loop) was accepted against a
>= 2x events/second bar on a CPU-bound TiVoPC run.  This benchmark
re-measures that workload through :mod:`harness` and publishes both the
human-readable summary and the machine-readable JSON entry.
"""

from conftest import publish

from harness import PRE_OVERHAUL_EVENTS_PER_SEC, run_all


def test_bench_engine_micro(one_shot):
    report = one_shot(run_all, ["engine_micro_tivopc"])
    metrics = report["benchmarks"]["engine_micro_tivopc"]
    publish("engine_micro", "\n".join([
        "Engine microbenchmark -- Simple server, 5 simulated seconds",
        f"events processed      {metrics['events']:>12,d}",
        f"wall clock            {metrics['wall_s']:>12.3f} s",
        f"events/second         {metrics['events_per_sec']:>12,.0f}",
        f"pooled recycles       {metrics['pool_recycled']:>12,d}",
        f"pre-overhaul rate     {PRE_OVERHAUL_EVENTS_PER_SEC:>12,d}",
        f"speedup               {metrics['speedup_vs_pre_overhaul']:>12.2f}x",
    ]), data=metrics)

    # The simulated work is fixed: same events, same final clock.
    assert metrics["events"] == 93_048
    assert metrics["sim_ns"] == 5_000_000_000
    # The free list is actually recycling the fast-path timeouts.
    assert metrics["pool_recycled"] > 10_000
    # The overhaul's acceptance bar, measured best-of-3 to shrug off
    # scheduler noise.  PRE_OVERHAUL_EVENTS_PER_SEC was recorded on the
    # reference machine immediately before the overhaul landed.
    assert metrics["events_per_sec"] >= 2.0 * PRE_OVERHAUL_EVENTS_PER_SEC
