"""Machine-readable performance harness.

Times a fixed set of simulator workloads and writes the numbers as JSON
so regressions are caught by a diff, not by eyeballing pytest-benchmark
output.  Two subcommands:

``run``
    Execute every harness benchmark and write
    ``benchmarks/results/bench.json`` (or ``--out``).  Each entry
    records wall-clock seconds, simulated nanoseconds, events processed
    and events/second.

``check``
    Compare a fresh ``--current`` run against the committed
    ``--baseline`` and exit non-zero if any benchmark's events/second
    dropped by more than ``--tolerance`` (default 20 %).  CI runs this
    on every push (the *perf-smoke* job).

The committed ``benchmarks/results/bench.json`` is the baseline; re-run
``python benchmarks/harness.py run`` on the reference machine and commit
the result whenever a deliberate perf change lands.

``PRE_OVERHAUL_EVENTS_PER_SEC`` pins the hot-path overhaul's "before"
number (same machine, same scenario, commit e5fa1f2) so the recorded
speedup is visible in the JSON artifact itself.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, Optional, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import units                                   # noqa: E402
from repro.faults import FaultPlan                        # noqa: E402
from repro.sim.engine import Simulator                    # noqa: E402
from repro.tivopc.client import (                         # noqa: E402
    MeasurementClient,
    OffloadedClient,
)
from repro.tivopc.components import StreamerOffcode       # noqa: E402
from repro.tivopc.server import OffloadedServer, SimpleServer  # noqa: E402
from repro.tivopc.testbed import Testbed, TestbedConfig   # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
DEFAULT_BENCH_JSON = RESULTS_DIR / "bench.json"

# events/sec of the engine microbenchmark *before* the hot-path overhaul
# (__slots__, pooled timeouts, lazy cancellation, cache fast path),
# measured on the reference machine.  The overhaul's acceptance bar is
# >= 2x this number; `run` records the achieved ratio in bench.json.
PRE_OVERHAUL_EVENTS_PER_SEC = 51_373

# events/sec of the same microbenchmark immediately *before* the
# telemetry instrumentation landed (commit 1b84aef, best of 8 on the
# reference machine the same session the instrumented baseline was
# committed — wall-clock noise on that machine is ~5 %, so paired
# best-of-N is the only fair protocol).  The instrumentation's
# acceptance bar: with telemetry disabled (the default) the hot path
# pays one attribute check per site and may not regress more than 2 %
# against this number (benchmarks/test_bench_telemetry.py).
PRE_TELEMETRY_EVENTS_PER_SEC = 114_888

# events/sec immediately *before* the timer-wheel scheduler core landed
# (the committed bench.json baselines of that commit — the binary-heap
# queue, eager cache classification).  The wheel's acceptance bar is
# >= 3x on both the reference workload and the pure-loop storm; `run`
# records the achieved ratios in bench.json.
PRE_WHEEL_ENGINE_MICRO_EVENTS_PER_SEC = 114_837
PRE_WHEEL_TIMEOUT_STORM_EVENTS_PER_SEC = 784_790

# Simulated seconds per harness scenario: long enough to amortize setup,
# short enough for a CI smoke job.
MICRO_SECONDS = 5.0

# The sharded fleet scenario: a chunk-fidelity population big enough
# that per-shard simulation dominates dispatch + merge, small enough
# for a smoke job.
FLEET_CLIENTS = 1024
FLEET_SHARDS = 8
FLEET_SECONDS = 2.0


def _timed_testbed_run(server_cls, seconds: float,
                       telemetry: bool = False) -> Dict[str, float]:
    """Run one TiVoPC scenario and report loop throughput."""
    testbed = Testbed(TestbedConfig(seed=0, telemetry=telemetry))
    testbed.start()
    MeasurementClient(testbed).start()
    server_cls(testbed).start()
    start = time.perf_counter()
    testbed.run(seconds)
    wall_s = time.perf_counter() - start
    events = testbed.sim.events_processed
    metrics = {
        "wall_s": wall_s,
        "sim_ns": testbed.sim.now,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "pool_recycled": testbed.sim.pool_recycled,
        "fused_resumes": testbed.sim.fused_resumes,
    }
    if testbed.telemetry is not None:
        metrics["spans"] = len(testbed.telemetry.spans)
        metrics["instants"] = len(testbed.telemetry.events)
    return metrics


def bench_engine_micro_tivopc() -> Dict[str, float]:
    """The overhaul's reference workload: Simple server, 5 sim-seconds.

    CPU-bound on the host models (copies, cache walks, per-packet
    syscalls), so it exercises the pooled-timeout fast path, lazy
    cancellation and the cache inner loop together.
    """
    metrics = _timed_testbed_run(SimpleServer, MICRO_SECONDS)
    metrics["pre_overhaul_events_per_sec"] = PRE_OVERHAUL_EVENTS_PER_SEC
    metrics["speedup_vs_pre_overhaul"] = (
        metrics["events_per_sec"] / PRE_OVERHAUL_EVENTS_PER_SEC)
    # Telemetry is disabled here, so this ratio is the disabled-path
    # cost of the instrumentation (one attribute check per site).
    metrics["pre_telemetry_events_per_sec"] = PRE_TELEMETRY_EVENTS_PER_SEC
    metrics["vs_pre_telemetry"] = (
        metrics["events_per_sec"] / PRE_TELEMETRY_EVENTS_PER_SEC)
    metrics["pre_wheel_events_per_sec"] = (
        PRE_WHEEL_ENGINE_MICRO_EVENTS_PER_SEC)
    metrics["speedup_vs_pre_wheel"] = (
        metrics["events_per_sec"] / PRE_WHEEL_ENGINE_MICRO_EVENTS_PER_SEC)
    return metrics


def bench_engine_micro_telemetry() -> Dict[str, float]:
    """The reference workload with a telemetry hub attached.

    Same simulated work as ``engine_micro_tivopc`` — spans are recorded
    without creating sim events, so ``events`` must match exactly — but
    every instrumented site now mints spans/instants.  The recorded
    ``tracing_cost_vs_disabled`` is the price of *enabled* tracing;
    the disabled-path bar lives in the plain microbenchmark against
    ``PRE_TELEMETRY_EVENTS_PER_SEC``.
    """
    metrics = _timed_testbed_run(SimpleServer, MICRO_SECONDS,
                                 telemetry=True)
    metrics["pre_telemetry_events_per_sec"] = PRE_TELEMETRY_EVENTS_PER_SEC
    metrics["tracing_cost_vs_disabled"] = (
        PRE_TELEMETRY_EVENTS_PER_SEC / metrics["events_per_sec"]
        if metrics["events_per_sec"] else 0.0)
    return metrics


def bench_offloaded_tivopc() -> Dict[str, float]:
    """The offloaded scenario: lighter host, heavier device/bus models."""
    return _timed_testbed_run(OffloadedServer, MICRO_SECONDS)


def bench_retransmit_path() -> Dict[str, float]:
    """The offloaded pipeline with the ack/retransmit protocol under fire.

    8 % loss + 4 % corruption armed on the media label before the server
    starts, so every chunk crosses the sliding-window protocol: sequence
    stamping, checksum verification, retransmit timers and duplicate
    suppression all sit on the timed path.  The retransmit counters are
    recorded so the artifact proves the protocol actually fired.
    """
    plan = FaultPlan().channel_noise(
        150 * units.MS, StreamerOffcode.DATA_LABEL, loss=0.08, corrupt=0.04)
    testbed = Testbed(TestbedConfig(seed=0, fault_plan=plan))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=True)
    client.start()
    testbed.run(0.2)                      # noise arms during warmup
    OffloadedServer(testbed).start()
    start = time.perf_counter()
    testbed.run(MICRO_SECONDS)
    wall_s = time.perf_counter() - start
    events = testbed.sim.events_processed
    reliable = [channel
                for channel in testbed.client_runtime.executive.channels
                if channel._rel is not None]
    return {
        "wall_s": wall_s,
        "sim_ns": testbed.sim.now,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "pool_recycled": testbed.sim.pool_recycled,
        "retransmits": sum(c.stats().retransmits for c in reliable),
        "dup_dropped": sum(c.stats().dup_dropped for c in reliable),
        "chunks_received": client.chunks_received,
    }


def bench_migration_downtime() -> Dict[str, float]:
    """Live-migration cutover cost: the drain scenario's blackout window.

    Runs the chaos ``drain`` preset (offloaded pipeline, channel noise,
    standby NIC) and migrates the network Streamer onto ``nic1``
    mid-stream.  ``downtime_ns`` is the simulated quiesce→restore
    window during which the proxy gate holds callers — the number the
    paper's availability story turns on — and the exactly-once evidence
    (chunks handled vs packets sent) is recorded alongside it.  The
    simulated work is seeded, so every field except wall-clock is
    byte-stable.
    """
    from dataclasses import replace
    from repro.faults.chaos import PROFILES, run_chaos_scenario

    profile = replace(PROFILES["drain"], seconds=MICRO_SECONDS)
    start = time.perf_counter()
    run = run_chaos_scenario(0, profile)
    wall_s = time.perf_counter() - start
    sim = run.testbed.sim
    record = run.migration.get("record")
    sent = run.server.packets_sent
    handled = run.client.chunks_received
    return {
        "wall_s": wall_s,
        "sim_ns": sim.now,
        "events": sim.events_processed,
        "events_per_sec": sim.events_processed / wall_s if wall_s else 0.0,
        "pool_recycled": sim.pool_recycled,
        "downtime_ns": (record.downtime_ns if record is not None
                        and record.downtime_ns is not None else -1),
        "migration_replayed": record.replayed if record else -1,
        "migration_shed": record.shed if record else -1,
        "packets_sent": sent,
        "chunks_received": handled,
        "exactly_once": 1 if sent == handled else 0,
    }


def bench_timeout_storm() -> Dict[str, float]:
    """Pure event-loop throughput: 64 processes trading pooled timeouts.

    No hardware models at all — isolates Event allocation, heap churn
    and Process resumption, the layers the free list targets.
    """
    sim = Simulator()

    def ticker(period_ns: int):
        # Bare-int yield: the allocation-free fast-path sleep token
        # (what sim.clock.after(dt) returns).
        while True:
            yield period_ns

    for i in range(64):
        sim.spawn(ticker(1_000 + i), name=f"storm-{i}")
    horizon_ns = int(units.MS) * 10
    start = time.perf_counter()
    sim.run(until=horizon_ns)
    wall_s = time.perf_counter() - start
    rate = sim.events_processed / wall_s if wall_s else 0.0
    return {
        "wall_s": wall_s,
        "sim_ns": sim.now,
        "events": sim.events_processed,
        "events_per_sec": rate,
        "pool_recycled": sim.pool_recycled,
        "fused_resumes": sim.fused_resumes,
        "pre_wheel_events_per_sec": PRE_WHEEL_TIMEOUT_STORM_EVENTS_PER_SEC,
        "speedup_vs_pre_wheel": rate / PRE_WHEEL_TIMEOUT_STORM_EVENTS_PER_SEC,
    }


def bench_timer_churn() -> Dict[str, float]:
    """Timer arm/cancel churn: the wheel's removal and reclaim paths.

    32 processes each keep a sliding fan of pending ``clock.after(fn)``
    timers and cancel three quarters of them well before the deadline —
    the retransmit pattern (arm a timeout per packet, cancel on ack)
    that a heap serves badly: cancelled entries pile up until pop time.
    Exercises in-slot removal, lazy cancellation inside the active
    window, and the dead-timer reclaim sweep.  ``dead_timers`` at exit
    is recorded to prove cancellations cannot accumulate.
    """
    from collections import deque

    sim = Simulator()
    fired = [0]

    def _tick() -> None:
        fired[0] += 1

    def churner(k: int):
        pending = deque()
        i = 0
        while True:
            pending.append(
                sim.clock.after(4_000 + ((i * 37 + k) % 512), _tick))
            if len(pending) >= 8:
                timer = pending.popleft()
                if i % 4:
                    timer.cancel()
            i += 1
            yield 250

    for k in range(32):
        sim.spawn(churner(k), name=f"churn-{k}")
    horizon_ns = int(units.MS) * 2
    start = time.perf_counter()
    sim.run(until=horizon_ns)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": wall_s,
        "sim_ns": sim.now,
        "events": sim.events_processed,
        "events_per_sec": sim.events_processed / wall_s if wall_s else 0.0,
        "timers_fired": fired[0],
        "dead_timers_at_exit": sim.dead_timers,
        "fused_resumes": sim.fused_resumes,
    }


def bench_fleet() -> Dict[str, float]:
    """Sharded fleet throughput and its parallel scaling efficiency.

    Runs the chunk-fidelity population (``FLEET_CLIENTS`` subscribers,
    ``FLEET_SHARDS`` shards) at 1, 2 and 4 workers.  The regression-
    gated ``events_per_sec`` is the 1-worker aggregate rate — stable on
    any runner.  Scaling is *measured* whenever the CPU affinity mask
    covers the worker count; on smaller runners the multi-worker runs
    would only measure oversubscription, so the harness instead projects
    the makespan from the measured per-shard walls with the pool's
    longest-processing-time dispatch model plus the measured
    dispatch+merge overhead, and says so via ``speedup_basis`` — the
    artifact never passes a projection off as a measurement.
    """
    from repro.evaluation.fleet import FleetConfig, lpt_makespan, run_fleet
    from repro.evaluation.parallel import default_workers
    from repro.tivopc.population import PopulationConfig

    population = PopulationConfig(clients=FLEET_CLIENTS,
                                  seconds=FLEET_SECONDS, fleet_seed=0)
    affinity = default_workers()

    base = run_fleet(FleetConfig(population=population,
                                 shards=FLEET_SHARDS, workers=1))
    shard_walls = [s.wall_s for s in base.shards]
    # Everything the 1-worker wall spends outside shard simulation:
    # task pickling, result unpickling, snapshot merge, QoE folds.
    overhead_s = max(0.0, base.wall_s - sum(shard_walls))

    rate_1w = base.events_per_sec
    metrics: Dict[str, float] = {
        "wall_s": base.wall_s,
        "sim_ns": sum(s.sim_ns for s in base.shards),
        "events": base.events,
        "events_per_sec": rate_1w,
        "clients": FLEET_CLIENTS,
        "shards": FLEET_SHARDS,
        "conservation_ok": 1 if base.ok else 0,
        "affinity_cpus": affinity,
        "dispatch_merge_overhead_s": overhead_s,
    }
    for workers in (2, 4):
        if affinity >= workers:
            wall = run_fleet(FleetConfig(population=population,
                                         shards=FLEET_SHARDS,
                                         workers=workers)).wall_s
            basis = "measured"
        else:
            wall = lpt_makespan(shard_walls, workers) + overhead_s
            basis = "projected_lpt"
        speedup = base.wall_s / wall if wall > 0 else 0.0
        metrics[f"wall_s_{workers}w"] = wall
        metrics[f"events_per_sec_{workers}w"] = (
            base.events / wall if wall > 0 else 0.0)
        metrics[f"speedup_{workers}w"] = speedup
        metrics[f"efficiency_{workers}w"] = speedup / workers
        metrics[f"speedup_basis_{workers}w"] = basis
    metrics.update(_fleet_supervision_overhead(population))
    return metrics


def _fleet_supervision_overhead(population) -> Dict[str, float]:
    """Cost of crash-safe dispatch: SupervisedPool vs bare Pool.

    Times the same shard batch through the supervised dispatcher (pipes,
    liveness scans, timeout/retry bookkeeping) and through the bare
    ``Pool.imap_unordered`` baseline it replaced, best of 3 each.  The
    acceptance bar — supervision costs <= 3 % wall — is gated on the
    committed bench.json by ``test_bench_fleet.py``.  Hedging is off
    here: it is a latency *optimization* that spends CPU speculatively,
    which on a small affinity mask would measure CPU contention, not
    dispatcher overhead.
    """
    from repro.evaluation.fleet import FleetConfig, _run_shard
    from repro.evaluation.parallel import map_unordered
    from repro.evaluation.supervised import SupervisionPolicy

    config = FleetConfig(population=population, shards=FLEET_SHARDS,
                         workers=2)
    tasks = [(shard_id, config) for shard_id in range(FLEET_SHARDS)]
    policy = SupervisionPolicy(hedge=False)

    def timed(supervised: bool) -> float:
        start = time.perf_counter()
        for _ in map_unordered(_run_shard, tasks, workers=2,
                               supervised=supervised, policy=policy
                               if supervised else None):
            pass
        return time.perf_counter() - start

    # Interleaved best-of-3 pairs: frequency scaling and cache warmth
    # drift over seconds, so timing all of one variant then all of the
    # other folds that drift into the ratio.
    pairs = [(timed(False), timed(True)) for _ in range(3)]
    unsupervised = min(u for u, _ in pairs)
    supervised = min(s for _, s in pairs)
    return {
        "unsupervised_wall_s": unsupervised,
        "supervised_wall_s": supervised,
        "supervision_overhead": (supervised / unsupervised
                                 if unsupervised > 0 else 0.0),
    }


def bench_rdma_kv() -> Dict[str, float]:
    """One-sided RDMA gets vs two-sided RPC gets on the KV cache.

    The scenario runs both paths over the same populated cache: batched
    one-sided reads (one doorbell per batch, no remote dispatch) and the
    equivalent two-sided ``Get`` RPCs.  ``speedup_sim`` is the paper-
    style claim — simulated time for the RPC sweep over the one-sided
    sweep — gated on the committed baseline by ``test_bench_rdma.py``;
    ``events_per_sec`` is the usual wall-clock regression gate.
    """
    from repro.rdma.kv import run_kv_scenario

    start = time.perf_counter()
    report = run_kv_scenario(keys=192, batch=8)
    wall_s = time.perf_counter() - start
    one_sided_ns = report["one_sided_ns"]
    rpc_ns = report["rpc_ns"]
    return {
        "wall_s": wall_s,
        "sim_ns": report["sim_ns"],
        "events": report["events"],
        "events_per_sec": (report["events"] / wall_s if wall_s > 0
                           else 0.0),
        "keys": report["keys"],
        "one_sided_ns": one_sided_ns,
        "rpc_ns": rpc_ns,
        "speedup_sim": rpc_ns / one_sided_ns if one_sided_ns else 0.0,
        "one_sided_gets_per_sim_sec": (report["keys"] * 1e9 / one_sided_ns
                                       if one_sided_ns else 0.0),
        "rpc_gets_per_sim_sec": (report["keys"] * 1e9 / rpc_ns
                                 if rpc_ns else 0.0),
        "one_sided_host_cpu_ns": report["one_sided_host_cpu_ns"],
        "rpc_host_cpu_ns": report["rpc_host_cpu_ns"],
        "doorbells": report["doorbells"],
        "rdma_reads": report["rdma_reads"],
        "correct": 1.0 if report["correct"] else 0.0,
        "conservation_ok": 1.0 if report["imbalance"] == 0 else 0.0,
    }


def bench_spin_filter() -> Dict[str, float]:
    """The sPIN telemetry filter: packets through in-NIC handlers.

    Reports the in-network absorption rate (what fraction of the line
    the host never saw) alongside the wall-clock gate.
    """
    from repro.rdma.filter import run_filter_scenario

    start = time.perf_counter()
    report = run_filter_scenario(packets=400)
    wall_s = time.perf_counter() - start
    rx = report["rx_packets"]
    return {
        "wall_s": wall_s,
        "sim_ns": report["sim_ns"],
        "events": report["events"],
        "events_per_sec": (report["events"] / wall_s if wall_s > 0
                           else 0.0),
        "rx_packets": rx,
        "packets_per_sim_sec": (rx * 1e9 / report["elapsed_ns"]
                                if report["elapsed_ns"] else 0.0),
        "spin_handled": report["spin_handled"],
        "spin_dropped": report["spin_dropped"],
        "spin_to_host": report["spin_to_host"],
        "budget_overruns": report["budget_overruns"],
        "host_rx_packets": report["host_rx_packets"],
        "host_absorption": (1.0 - report["host_rx_packets"] / rx
                            if rx else 0.0),
        "host_cpu_ns": report["host_cpu_ns"],
        "accounted": 1.0 if report["accounted"] else 0.0,
    }


BENCHMARKS: Dict[str, Callable[[], Dict[str, float]]] = {
    "engine_micro_tivopc": bench_engine_micro_tivopc,
    "engine_micro_telemetry": bench_engine_micro_telemetry,
    "fleet": bench_fleet,
    "migration_downtime": bench_migration_downtime,
    "offloaded_tivopc": bench_offloaded_tivopc,
    "rdma_kv": bench_rdma_kv,
    "retransmit_path": bench_retransmit_path,
    "spin_filter": bench_spin_filter,
    "timeout_storm": bench_timeout_storm,
    "timer_churn": bench_timer_churn,
}


def run_all(names: Optional[Sequence[str]] = None,
            repeat: int = 3) -> Dict[str, Dict]:
    """Execute the named benchmarks (all by default); return the report.

    Each benchmark runs ``repeat`` times and the fastest run (highest
    events/sec) is reported — best-of-N is the standard defence against
    scheduler noise on shared CI runners.  The simulated work is
    deterministic, so only the wall-clock fields vary between runs.
    """
    selected = list(names) if names else sorted(BENCHMARKS)
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}; "
                       f"available: {sorted(BENCHMARKS)}")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1: {repeat}")
    report: Dict[str, Dict] = {"schema": 1, "benchmarks": {}}
    for name in selected:
        runs = [BENCHMARKS[name]() for _ in range(repeat)]
        report["benchmarks"][name] = max(
            runs, key=lambda m: m["events_per_sec"])
    return report


def check(baseline: Dict, current: Dict, tolerance: float) -> list:
    """Regressions: benchmarks whose events/sec dropped past tolerance."""
    failures = []
    for name, base in baseline.get("benchmarks", {}).items():
        base_rate = base.get("events_per_sec")
        cur = current.get("benchmarks", {}).get(name)
        if not base_rate or cur is None:
            continue
        cur_rate = cur.get("events_per_sec", 0.0)
        floor = base_rate * (1.0 - tolerance)
        if cur_rate < floor:
            failures.append((name, base_rate, cur_rate))
    return failures


def _cmd_run(args) -> int:
    report = run_all(args.benchmarks or None, repeat=args.repeat)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for name, metrics in report["benchmarks"].items():
        print(f"{name:24s} {metrics['events']:>9d} events  "
              f"{metrics['wall_s']:7.3f} s  "
              f"{metrics['events_per_sec']:>12,.0f} ev/s")
    print(f"wrote {out}")
    return 0


def _cmd_check(args) -> int:
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    current = json.loads(pathlib.Path(args.current).read_text())
    failures = check(baseline, current, args.tolerance)
    for name, base in baseline.get("benchmarks", {}).items():
        cur = current.get("benchmarks", {}).get(name, {})
        base_rate = base.get("events_per_sec", 0.0)
        cur_rate = cur.get("events_per_sec", 0.0)
        ratio = cur_rate / base_rate if base_rate else float("nan")
        print(f"{name:24s} baseline {base_rate:>12,.0f} ev/s  "
              f"current {cur_rate:>12,.0f} ev/s  ({ratio:.2f}x)")
    if failures:
        print(f"\nPERF REGRESSION (tolerance {args.tolerance:.0%}):")
        for name, base_rate, cur_rate in failures:
            print(f"  {name}: {base_rate:,.0f} -> {cur_rate:,.0f} ev/s "
                  f"({cur_rate / base_rate:.2f}x)")
        return 1
    print("\nperf check passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/harness.py",
        description="Machine-readable simulator performance harness.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run benchmarks, write JSON")
    run_p.add_argument("benchmarks", nargs="*", metavar="BENCH",
                       help=f"subset of {sorted(BENCHMARKS)} (default: all)")
    run_p.add_argument("--out", default=str(DEFAULT_BENCH_JSON),
                       help=f"output path (default: {DEFAULT_BENCH_JSON})")
    run_p.add_argument("--repeat", type=int, default=3,
                       help="runs per benchmark, best kept (default: 3)")
    run_p.set_defaults(func=_cmd_run)

    check_p = sub.add_parser("check", help="compare two bench.json files")
    check_p.add_argument("--baseline", required=True)
    check_p.add_argument("--current", required=True)
    check_p.add_argument("--tolerance", type=float, default=0.20,
                         help="allowed events/sec drop (default: 0.20)")
    check_p.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
