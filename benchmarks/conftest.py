"""Shared machinery for the benchmark harness.

Several paper artifacts come from the *same* experimental run (Figure 9
and Tables 2/3 and Figure 10 all observe the four server scenarios;
Table 4 and the client-L2 claim share the client scenarios), exactly as
in the paper.  The cache below runs each underlying experiment once per
pytest session; the first benchmark that needs a result pays for it
inside its timed section, the rest reuse it.

Rendered tables are printed and also written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import pathlib
from typing import Dict

import pytest

from repro.evaluation import (
    run_all_client_scenarios,
    run_all_server_scenarios,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Simulated seconds per scenario.  The paper ran 10 minutes; 25 s gives
# ~5000 packets per server scenario, plenty for stable medians.
SERVER_SECONDS = 25.0
CLIENT_SECONDS = 25.0

_cache: Dict[str, object] = {}


def server_results():
    if "server" not in _cache:
        _cache["server"] = run_all_server_scenarios(seconds=SERVER_SECONDS)
    return _cache["server"]


def client_results():
    if "client" not in _cache:
        _cache["client"] = run_all_client_scenarios(seconds=CLIENT_SECONDS)
    return _cache["client"]


def publish(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture()
def one_shot(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
