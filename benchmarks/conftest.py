"""Shared machinery for the benchmark harness.

Several paper artifacts come from the *same* experimental run (Figure 9
and Tables 2/3 and Figure 10 all observe the four server scenarios;
Table 4 and the client-L2 claim share the client scenarios), exactly as
in the paper.  The cache below runs each underlying experiment once per
pytest session; the first benchmark that needs a result pays for it
inside its timed section, the rest reuse it.

Rendered tables are printed and also written to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Optional

import pytest

from repro.evaluation import (
    run_all_client_scenarios,
    run_all_server_scenarios,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Simulated seconds per scenario.  The paper ran 10 minutes; 25 s gives
# ~5000 packets per server scenario, plenty for stable medians.
SERVER_SECONDS = 25.0
CLIENT_SECONDS = 25.0

_cache: Dict[str, object] = {}


def server_results():
    if "server" not in _cache:
        _cache["server"] = run_all_server_scenarios(seconds=SERVER_SECONDS)
    return _cache["server"]


def client_results():
    if "client" not in _cache:
        _cache["client"] = run_all_client_scenarios(seconds=CLIENT_SECONDS)
    return _cache["client"]


def to_jsonable(obj):
    """Recursively convert experiment results to JSON-serializable data.

    Handles dataclasses (SummaryStats, SweepPoint, ...), ``__slots__``
    record classes, mappings and sequences; anything else falls back to
    ``str`` so publishing never fails on an exotic field.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        return {s: to_jsonable(getattr(obj, s)) for s in slots}
    return str(obj)


def publish(name: str, text: str, data: Optional[object] = None) -> None:
    """Print a rendered artifact and persist it under results/.

    ``data`` (when given) is written alongside as ``results/<name>.json``
    so downstream tooling can diff numbers without parsing tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(to_jsonable(data), indent=2, sort_keys=True) + "\n")
    print("\n" + text)


@pytest.fixture()
def one_shot(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
