"""Table 2: client-side jitter statistics (median / average / stddev).

Paper row targets: Simple 6.99/7.00/0.5521, Sendfile 6.00/5.99/0.4720,
Offloaded 5.00/5.00/0.0369 (milliseconds).
"""

from conftest import publish, server_results

from repro.evaluation import PAPER_TABLE2, render_table2


def test_bench_table2(one_shot):
    results = one_shot(server_results)
    publish("table2", render_table2(results), data=results)

    for scenario, (p_med, p_avg, p_std) in PAPER_TABLE2.items():
        measured = results[scenario].jitter
        # Medians and averages within 5 % of the paper's values.
        assert abs(measured.median - p_med) / p_med < 0.05, scenario
        assert abs(measured.average - p_avg) / p_avg < 0.05, scenario
    # Standard deviations: correct order of magnitude per row, and the
    # paper's strict ordering across rows.
    assert 0.4 < results["simple"].jitter.stdev < 0.7
    assert 0.3 < results["sendfile"].jitter.stdev < 0.6
    assert 0.015 < results["offloaded"].jitter.stdev < 0.06
    assert (results["offloaded"].jitter.stdev
            < results["sendfile"].jitter.stdev
            < results["simple"].jitter.stdev)
