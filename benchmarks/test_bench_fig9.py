"""Figure 9: jitter histogram and CDF for the three server variants.

Shape requirements: the offloaded server's distribution is a narrow
spike at 5 ms; sendfile centres near 6 ms; the simple server centres
near 7 ms with the widest spread.  The CDF ordering matches: at any
quantile, offloaded < sendfile < simple.
"""

from conftest import publish, server_results, SERVER_SECONDS

from repro.evaluation import render_fig9


def test_bench_fig9(one_shot):
    results = one_shot(server_results)
    publish("fig9", render_fig9(results), data=results)

    simple = results["simple"].jitter
    sendfile = results["sendfile"].jitter
    offloaded = results["offloaded"].jitter

    # Means: ~7 / ~6 / exactly 5 ms.
    assert 6.7 < simple.average < 7.3
    assert 5.8 < sendfile.average < 6.3
    assert 4.98 < offloaded.average < 5.02
    # Spread ordering: offloaded is an order of magnitude tighter.
    assert offloaded.stdev < 0.08
    assert offloaded.stdev * 5 < sendfile.stdev
    assert sendfile.stdev < simple.stdev
    # Each scenario actually delivered a sustained stream.
    expected = SERVER_SECONDS * 1000 / 5   # one packet per 5 ms
    for name in ("simple", "sendfile", "offloaded"):
        assert results[name].packets > 0.55 * expected
