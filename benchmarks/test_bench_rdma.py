"""RDMA substrate benchmarks: one-sided KV gets and the sPIN filter.

Split the same way as the fleet benchmark: invariants that wall-clock
noise cannot touch (correctness, conservation, accounting identities)
gate on the live run, while the headline perf claim — one-sided batched
gets beat two-sided RPC gets — gates on the committed bench.json, so
the substrate's reason to exist cannot regress silently.
"""

import json

from conftest import publish

from harness import DEFAULT_BENCH_JSON, run_all


def test_bench_rdma_kv(one_shot):
    report = one_shot(run_all, ["rdma_kv"], repeat=1)
    kv = report["benchmarks"]["rdma_kv"]
    publish("rdma_kv", "\n".join([
        f"RDMA KV cache -- {kv['keys']:.0f} keys, one-sided vs RPC",
        f"one-sided sweep      {kv['one_sided_ns']:>14,.0f} sim-ns",
        f"two-sided sweep      {kv['rpc_ns']:>14,.0f} sim-ns",
        f"speedup              {kv['speedup_sim']:>13.2f}x",
        f"one-sided host CPU   {kv['one_sided_host_cpu_ns']:>14,.0f} ns",
        f"two-sided host CPU   {kv['rpc_host_cpu_ns']:>14,.0f} ns",
        f"doorbells / reads    {kv['doorbells']:>8.0f} / "
        f"{kv['rdma_reads']:.0f}",
    ]), data=kv)

    # Noise-free invariants on the live run.
    assert kv["correct"] == 1
    assert kv["conservation_ok"] == 1
    assert kv["speedup_sim"] > 1.0              # sim time, not wall time
    assert kv["one_sided_host_cpu_ns"] < kv["rpc_host_cpu_ns"]
    assert kv["doorbells"] * 2 <= kv["rdma_reads"]   # batching amortized

    # The committed baseline carries the acceptance bar: one-sided gets
    # beat two-sided RPC gets by a wide margin on the reference machine.
    committed = json.loads(DEFAULT_BENCH_JSON.read_text())["benchmarks"]
    assert committed["rdma_kv"]["speedup_sim"] >= 2.0
    assert (committed["rdma_kv"]["one_sided_gets_per_sim_sec"]
            > committed["rdma_kv"]["rpc_gets_per_sim_sec"])
    assert (committed["rdma_kv"]["one_sided_host_cpu_ns"]
            < committed["rdma_kv"]["rpc_host_cpu_ns"])


def test_bench_spin_filter(one_shot):
    report = one_shot(run_all, ["spin_filter"], repeat=1)
    spin = report["benchmarks"]["spin_filter"]
    publish("spin_filter", "\n".join([
        f"sPIN telemetry filter -- {spin['rx_packets']:.0f} packets "
        "received",
        f"handled in-network   {spin['spin_handled']:>10.0f}",
        f"dropped (denylist)   {spin['spin_dropped']:>10.0f}",
        f"escalated (sampled)  {spin['spin_to_host']:>10.0f}",
        f"budget overruns      {spin['budget_overruns']:>10.0f}",
        f"host saw             {spin['host_rx_packets']:>10.0f} packets "
        f"({100 * (1 - spin['host_absorption']):.1f} %)",
        f"host CPU on rx path  {spin['host_cpu_ns']:>10,.0f} ns",
    ]), data=spin)

    assert spin["accounted"] == 1      # handled + punted == received
    assert spin["spin_dropped"] > 0
    assert spin["budget_overruns"] > 0
    # In-network absorption is the point: the host sleeps through the
    # overwhelming majority of the line.
    assert spin["host_absorption"] >= 0.75
    committed = json.loads(DEFAULT_BENCH_JSON.read_text())["benchmarks"]
    assert committed["spin_filter"]["host_absorption"] >= 0.75
