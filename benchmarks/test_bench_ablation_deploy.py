"""Ablation: host-linked vs device-linked dynamic loading (Section 4.2).

The paper implements both strategies and motivates the host-linked one:
the naive device-side linker "is quite expensive in terms of device
resources".  Sweeping unresolved-symbol counts must show the
device-linked strategy paying an order of magnitude more device CPU
(600 MHz XScale vs 2.4 GHz P4 doing the same relocations) and shipping
more bytes (the symbol table travels with the object).
"""

from conftest import publish

from repro.core import DeviceLinkedLoader, HostLinkedLoader, OffcodeImage
from repro.core.sites import HostSite
from repro.evaluation import format_table
from repro.hw import Machine
from repro.sim import Simulator

SYMBOL_COUNTS = (4, 16, 64, 256)
IMAGE_BYTES = 64 * 1024


def load_once(loader, symbols: int):
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    host = HostSite(machine)
    image = OffcodeImage(bindname="bench", size_bytes=IMAGE_BYTES,
                         undefined_symbols=symbols)
    out = {}

    def proc():
        out["report"] = yield from loader.load(image, nic, host)

    sim.run_until_event(sim.spawn(proc()))
    return out["report"]


def test_bench_ablation_deploy(one_shot):
    def sweep():
        rows = []
        for symbols in SYMBOL_COUNTS:
            host_linked = load_once(HostLinkedLoader(), symbols)
            device_linked = load_once(DeviceLinkedLoader(), symbols)
            rows.append((symbols, host_linked, device_linked))
        return rows

    rows = one_shot(sweep)
    publish("ablation_deploy", format_table(
        "Ablation: Offcode loading, host-linked vs device-linked",
        ["symbols", "host-link us (dev cpu)", "device-link us (dev cpu)",
         "bytes host", "bytes device"],
        [[str(s),
          f"{h.elapsed_ns / 1000:.0f} ({h.device_cpu_ns / 1000:.0f})",
          f"{d.elapsed_ns / 1000:.0f} ({d.device_cpu_ns / 1000:.0f})",
          str(h.transferred_bytes), str(d.transferred_bytes)]
         for s, h, d in rows]))

    for symbols, host_linked, device_linked in rows:
        # Device-side linking burns far more device CPU...
        assert device_linked.device_cpu_ns > 3 * host_linked.device_cpu_ns
        # ...and ships the symbol table over the bus.
        assert (device_linked.transferred_bytes
                > host_linked.transferred_bytes)
        # Host-side linking burns more *host* CPU (that's the trade).
        assert host_linked.host_cpu_ns > device_linked.host_cpu_ns
    # The gap grows with symbol count (per-symbol device cost dominates).
    first_gap = rows[0][2].device_cpu_ns - rows[0][1].device_cpu_ns
    last_gap = rows[-1][2].device_cpu_ns - rows[-1][1].device_cpu_ns
    assert last_gap > 5 * first_gap
    # Pseudo Offcodes' raison d'etre: fewer symbols, cheaper loads.
    assert rows[0][2].elapsed_ns < rows[-1][2].elapsed_ns
