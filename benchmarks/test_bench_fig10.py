"""Figure 10: server-side L2 miss-rate slowdown, normalized to idle.

Paper bars: Simple ~1.07 (a 7 % increase), Sendfile ~= idle
("the effect on the L2 cache is negligible"), Offloaded = idle.
The mechanism: the simple server's read()/sendto() copies stream every
payload byte through the cache, evicting the resident working set;
sendfile's DMA + scatter-gather path never touches the data with the
CPU; the offloaded server leaves host memory entirely alone.
"""

from conftest import publish, server_results

from repro.evaluation import render_fig10


def test_bench_fig10(one_shot):
    results = one_shot(server_results)
    publish("fig10", render_fig10(results), data=results)

    idle = results["idle"].l2_miss_rate
    assert idle > 0.05   # the idle system has a real baseline to normalize by
    normalized = {name: results[name].l2_miss_rate / idle
                  for name in ("simple", "sendfile", "offloaded")}

    # Simple: a clear single-digit-percent increase.
    assert 1.03 < normalized["simple"] < 1.15
    # Sendfile: negligible (within 2 % of idle).
    assert abs(normalized["sendfile"] - 1.0) < 0.02
    # Offloaded: identical to idle (within sampling noise).
    assert abs(normalized["offloaded"] - 1.0) < 0.01
    # Ordering.
    assert normalized["simple"] > normalized["sendfile"]
