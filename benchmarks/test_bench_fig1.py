"""Figure 1: GHz/Gbps transmit and receive ratios vs packet size.

Shape requirements (the reproduction target): both ratios fall
monotonically with packet size; receive costs more than transmit at
every size; small packets burn multiple GHz per Gbps while 64 kB
packets approach the per-byte floor.
"""

from conftest import publish

from repro.evaluation import render_fig1, run_fig1
from repro.evaluation.foong import TcpCostModel


def test_bench_fig1(one_shot):
    series = one_shot(run_fig1)
    publish("fig1", render_fig1(series))

    sizes = [s for s, _tx, _rx in series]
    tx = [t for _s, t, _rx in series]
    rx = [r for _s, _tx, r in series]
    # Monotone decreasing in packet size.
    assert all(a > b for a, b in zip(tx, tx[1:]))
    assert all(a > b for a, b in zip(rx, rx[1:]))
    # Receive dearer than transmit throughout.
    assert all(r > t for t, r in zip(tx, rx))
    # Magnitudes: several GHz/Gbps at 64 B, below 1 at MTU and beyond.
    assert tx[0] > 4.0 and rx[0] > 8.0
    mtu_index = sizes.index(1460)
    assert rx[mtu_index] < 3.0
    assert tx[-1] < 0.3 and rx[-1] < 0.5
    # The headline argument: a 2.4 GHz CPU saturates below ~2 Gbps of
    # MTU-sized receive traffic — cycles can all go to networking.
    model = TcpCostModel()
    assert model.saturation_throughput_gbps(1460, "rx", 2.4) < 4.0
    assert model.cpu_utilization(64, "rx", 1.0, 2.4) > 1.0
