"""Ablation: peer-to-peer (PCIe) vs legacy PCI bus for the data plane.

The paper's footnote 2: "if the bus architecture allows it (e.g., PCIe),
this packet could be transferred in a single bus transaction" — one
NIC-originated transfer reaching both the GPU and the disk controller.
On classic PCI the same multicast must stage through host memory,
doubling transactions per destination and re-introducing the host-memory
crossings offloading exists to eliminate.

Both configurations run the full offloaded client; application output is
identical — only the bus bill differs.
"""

from conftest import publish

from repro.evaluation import format_table
from repro.hw.bus import BusSpec
from repro.tivopc import OffloadedClient, OffloadedServer, Testbed, \
    TestbedConfig

SECONDS = 10.0


def run_with_bus(bus: BusSpec):
    testbed = Testbed(TestbedConfig(seed=1, client_bus=bus))
    testbed.start()
    client = OffloadedClient(testbed)
    client.start()
    OffloadedServer(testbed).start()
    testbed.run(SECONDS)
    bus_model = testbed.client.machine.bus
    return {
        "chunks": client.chunks_received,
        "frames": client.frames_shown,
        "host_crossings": bus_model.host_memory_crossings(),
        "total_crossings": bus_model.total_crossings(),
        "bus_busy": bus_model.utilization(),
        "bytes_moved": bus_model.bytes_moved,
    }


def test_bench_ablation_bus(one_shot):
    def sweep():
        return {
            "pcie": run_with_bus(BusSpec()),
            "pci": run_with_bus(BusSpec.pci_legacy()),
        }

    results = one_shot(sweep)
    publish("ablation_bus", format_table(
        "Ablation: offloaded client on PCIe (peer-to-peer) vs legacy PCI",
        ["bus", "chunks", "host-mem crossings", "total crossings",
         "bus busy", "MB moved"],
        [[name,
          str(r["chunks"]),
          str(r["host_crossings"]),
          str(r["total_crossings"]),
          f"{r['bus_busy']:.2%}",
          f"{r['bytes_moved'] / (1 << 20):.1f}"]
         for name, r in results.items()]))

    pcie, pci = results["pcie"], results["pci"]
    # Same application behaviour either way.
    assert abs(pcie["chunks"] - pci["chunks"]) <= 2
    assert abs(pcie["frames"] - pci["frames"]) <= 2
    # PCIe: essentially no host-memory involvement (deployment only).
    assert pcie["host_crossings"] < 30
    # PCI: every data-plane packet staged through host memory twice
    # per destination pair -> thousands of crossings.
    assert pci["host_crossings"] > 2 * pci["chunks"]
    # And more transactions + bytes on the wire overall.
    assert pci["total_crossings"] > 1.5 * pcie["total_crossings"]
    assert pci["bytes_moved"] > 1.5 * pcie["bytes_moved"]
