"""Extension benches: rate and chunk-size sweeps (beyond the paper).

These generalize the paper's single operating point (1 kB / 5 ms) and
verify the offload advantage *scales*: host-server jitter and CPU grow
with stream rate and with payload size, while the firmware-paced server
stays flat on both axes.
"""

from conftest import publish

from repro.evaluation.sweeps import (
    render_sweep,
    run_chunk_size_sweep,
    run_rate_sweep,
)


def test_bench_ext_rate_sweep(one_shot):
    # workers=2 exercises the parallel runner; results are bit-identical
    # to a sequential run (tests/test_evaluation_parallel.py).
    results = one_shot(run_rate_sweep, (10.0, 5.0, 2.5),
                       ("simple", "offloaded"), 8.0, workers=2)
    publish("ext_rate_sweep", render_sweep(
        "Extension: jitter/CPU vs stream rate", results, "interval ms"),
        data=results)

    simple = results["simple"]
    offloaded = results["offloaded"]
    # The offloaded server keeps exact pace at every rate.
    for point in offloaded:
        assert point.achieved_rate_fraction > 0.995
        assert point.relative_jitter < 0.02
    # The simple server falls further behind as the interval shrinks.
    lags = [p.achieved_rate_fraction for p in simple]
    assert lags[0] > lags[-1]
    assert lags[-1] < 0.75        # at 2.5 ms it cannot keep up
    # Relative jitter of the host server grows with rate.
    rels = [p.relative_jitter for p in simple]
    assert rels[-1] > rels[0]
    # Host CPU grows with rate for simple, stays idle-flat offloaded.
    assert simple[-1].cpu_utilization > simple[0].cpu_utilization
    spread = (max(p.cpu_utilization for p in offloaded)
              - min(p.cpu_utilization for p in offloaded))
    assert spread < 0.01


def test_bench_ext_chunk_size_sweep(one_shot):
    results = one_shot(run_chunk_size_sweep, (1024, 4096, 16384),
                       ("simple", "offloaded"), 5.0, 8.0, workers=2)
    publish("ext_chunk_sweep", render_sweep(
        "Extension: jitter/CPU vs chunk size at 5 ms", results,
        "chunk bytes"),
        data=results)

    simple = results["simple"]
    offloaded = results["offloaded"]
    # Copy costs scale with payload: simple's CPU grows with chunk size.
    assert simple[-1].cpu_utilization > simple[0].cpu_utilization + 0.005
    # The offloaded server's host CPU does not move.
    spread = (max(p.cpu_utilization for p in offloaded)
              - min(p.cpu_utilization for p in offloaded))
    assert spread < 0.01
    # Pacing stays exact regardless of payload (the wire is not the
    # bottleneck at these sizes).
    for point in offloaded:
        assert abs(point.jitter.average - 5.0) < 0.05
