"""Deployment-pipeline cost: what does CreateOffcode actually take?

The framework's pitch is that deployment is automated; this bench prices
the automation.  One ``CreateOffcode`` covers ODF parsing, the ILP
solve, adaptation (compile for source-form Offcodes), dynamic loading
and two-phase bring-up.  Sweeps: object vs source form, host-linked vs
device-linked loaders, and growing closure sizes (chains of imports).
"""

from conftest import publish

from repro import units
from repro.core import (
    DeviceLinkedLoader,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
)
from repro.core.guid import Guid
from repro.core.layout.constraints import ConstraintType
from repro.core.odf import DeviceClassFilter, OdfDocument, OdfImport
from repro.evaluation import format_table
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

IDUMMY = InterfaceSpec.from_methods(
    "IBench", (MethodSpec("Nop", params=(), result="int"),))


class BenchOffcode(Offcode):
    BINDNAME = "bench.Node"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 0


def build_chain(runtime, length: int, form: str) -> str:
    """Register a chain of `length` Offcodes, each importing the next."""
    classes = {}
    for i in range(length):
        bindname = f"bench.Node{i}"
        classes[i] = type(f"Bench{i}", (BenchOffcode,),
                          {"BINDNAME": bindname})
        guid = Guid(10_000 + i)
        imports = []
        if i + 1 < length:
            imports.append(OdfImport(
                file=f"/chain/{i + 1}.odf", bindname=f"bench.Node{i + 1}",
                guid=Guid(10_001 + i), reference=ConstraintType.GANG))
        runtime.library.register(f"/chain/{i}.odf", OdfDocument(
            bindname=bindname, guid=guid, interfaces=[IDUMMY],
            imports=imports,
            targets=[DeviceClassFilter(DeviceClass.NETWORK)],
            form=form, image_bytes=32 * 1024))
        runtime.depot.register(guid, classes[i])
    return "/chain/0.odf"


def deploy_once(length: int, form: str = "object",
                device_linked: bool = False):
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    if device_linked:
        runtime.loaders.register("nic0", DeviceLinkedLoader())
    root = build_chain(runtime, length, form)
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode(root)

    sim.run_until_event(sim.spawn(app()))
    report = out["result"].report
    return {
        "elapsed_us": report.elapsed_ns / units.US,
        "offcodes": len(report.offcodes),
        "host_link_us": sum(r.host_cpu_ns for r in report.load_reports)
        / units.US,
        "device_link_us": sum(r.device_cpu_ns for r in report.load_reports)
        / units.US,
    }


def test_bench_deployment(one_shot):
    def sweep():
        return {
            "1 offcode, object": deploy_once(1),
            "4 offcodes, object": deploy_once(4),
            "8 offcodes, object": deploy_once(8),
            "4 offcodes, source": deploy_once(4, form="source"),
            "4 offcodes, dev-linked": deploy_once(4, device_linked=True),
        }

    results = one_shot(sweep)
    publish("deployment_cost", format_table(
        "Deployment pipeline cost (one CreateOffcode call)",
        ["configuration", "deployed", "elapsed us", "host-link us",
         "device-link us"],
        [[name, str(r["offcodes"]), f"{r['elapsed_us']:.0f}",
          f"{r['host_link_us']:.0f}", f"{r['device_link_us']:.0f}"]
         for name, r in results.items()]))

    # Cost grows with closure size but stays sub-millisecond-per-Offcode
    # scale (object form): automated deployment is cheap.
    assert results["4 offcodes, object"]["elapsed_us"] \
        > results["1 offcode, object"]["elapsed_us"]
    assert results["8 offcodes, object"]["elapsed_us"] \
        > results["4 offcodes, object"]["elapsed_us"]
    per_offcode = (results["8 offcodes, object"]["elapsed_us"] / 8)
    assert per_offcode < 2_000
    # Source form pays the cross-compile; device-linked pays device CPU.
    assert results["4 offcodes, source"]["elapsed_us"] \
        > 3 * results["4 offcodes, object"]["elapsed_us"]
    assert results["4 offcodes, dev-linked"]["device_link_us"] \
        > 3 * results["4 offcodes, object"]["device_link_us"]
