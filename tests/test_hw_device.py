"""Tests for programmable devices and the device memory allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError, DeviceMemoryError
from repro.hw.bus import HOST_MEMORY, Bus
from repro.hw.device import (
    DeviceClass,
    DeviceMemoryAllocator,
    DeviceSpec,
    ProgrammableDevice,
    XSCALE_CPU,
)
from repro.sim import Simulator


def make_device(sim, **overrides):
    bus = Bus(sim)
    defaults = dict(name="dev0", device_class=DeviceClass.NETWORK,
                    bus_type="pci", mac_type="ethernet", vendor="3COM")
    defaults.update(overrides)
    spec = DeviceSpec(**defaults)
    return ProgrammableDevice(sim, spec, bus)


# -- spec ---------------------------------------------------------------------

def test_spec_validates_device_class():
    with pytest.raises(DeviceError):
        DeviceSpec(name="x", device_class="toaster")


def test_spec_requires_positive_memory():
    with pytest.raises(DeviceError):
        DeviceSpec(name="x", device_class=DeviceClass.NETWORK,
                   local_memory_bytes=0)


def test_xscale_power_point_matches_paper():
    assert XSCALE_CPU.frequency_hz == pytest.approx(600e6)
    assert XSCALE_CPU.active_watts == pytest.approx(0.5)


def test_feature_query():
    spec = DeviceSpec(name="x", device_class=DeviceClass.NETWORK,
                      features=frozenset({"scatter-gather"}))
    assert spec.has_feature("scatter-gather")
    assert not spec.has_feature("mpeg-assist")


# -- matching (ODF device-class filters) ---------------------------------------

def test_matches_class_only():
    sim = Simulator()
    dev = make_device(sim)
    assert dev.matches(DeviceClass.NETWORK)
    assert not dev.matches(DeviceClass.STORAGE)


def test_matches_with_filters():
    sim = Simulator()
    dev = make_device(sim)
    assert dev.matches(DeviceClass.NETWORK, bus="pci", mac="ethernet",
                       vendor="3com")
    assert not dev.matches(DeviceClass.NETWORK, vendor="intel")
    assert not dev.matches(DeviceClass.NETWORK, bus="usb")


# -- DMA -------------------------------------------------------------------------

def test_dma_paths():
    sim = Simulator()
    dev = make_device(sim)
    dev.bus.attach("peer")
    txns = []

    def proc(sim, dev):
        txns.append((yield from dev.dma_to_host(100)))
        txns.append((yield from dev.dma_from_host(100)))
        txns.append((yield from dev.dma_to_peer("peer", 100)))

    sim.spawn(proc(sim, dev))
    sim.run()
    assert txns == [1, 1, 1]
    assert dev.bus.crossings[("dev0", HOST_MEMORY)] == 1
    assert dev.bus.crossings[(HOST_MEMORY, "dev0")] == 1
    assert dev.bus.crossings[("dev0", "peer")] == 1


# -- interrupts --------------------------------------------------------------------

def test_interrupt_delivery():
    sim = Simulator()
    dev = make_device(sim)
    received = []
    dev.set_interrupt_handler(lambda vec, payload: received.append((vec, payload)))
    dev.raise_interrupt("rx", "pkt")
    assert received == [("rx", "pkt")]
    assert dev.interrupts_raised == 1


def test_interrupt_without_handler_is_counted():
    sim = Simulator()
    dev = make_device(sim)
    dev.raise_interrupt("rx")
    assert dev.interrupts_raised == 1


# -- device CPU ----------------------------------------------------------------------

def test_run_on_device_charges_device_cpu():
    sim = Simulator()
    dev = make_device(sim)

    def proc(sim, dev):
        yield from dev.run_on_device(5000, context="fw")

    sim.spawn(proc(sim, dev))
    sim.run()
    assert dev.cpu.total_busy == 5000


# -- allocator ------------------------------------------------------------------------

def test_allocator_basic_alloc_free():
    alloc = DeviceMemoryAllocator(capacity=4096, base=0)
    r1 = alloc.allocate(100, label="a")
    r2 = alloc.allocate(100, label="b")
    assert r1.base != r2.base
    assert r1.size == 112  # 16-byte aligned
    assert alloc.used_bytes == 224
    alloc.free(r1)
    assert alloc.used_bytes == 112


def test_allocator_returns_distinct_addresses():
    alloc = DeviceMemoryAllocator(capacity=1 << 16)
    regions = [alloc.allocate(64) for _ in range(10)]
    bases = [r.base for r in regions]
    assert len(set(bases)) == 10


def test_allocator_exhaustion():
    alloc = DeviceMemoryAllocator(capacity=256)
    alloc.allocate(128)
    alloc.allocate(112)
    with pytest.raises(DeviceMemoryError):
        alloc.allocate(64)


def test_allocator_double_free_rejected():
    alloc = DeviceMemoryAllocator(capacity=1024)
    region = alloc.allocate(64)
    alloc.free(region)
    with pytest.raises(DeviceMemoryError):
        alloc.free(region)


def test_allocator_coalesces_free_space():
    alloc = DeviceMemoryAllocator(capacity=1024, base=0)
    a = alloc.allocate(256)
    b = alloc.allocate(256)
    c = alloc.allocate(512)
    alloc.free(a)
    alloc.free(b)
    alloc.free(c)
    # After coalescing, a full-size allocation must succeed again.
    big = alloc.allocate(1024)
    assert big.size == 1024


@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=512)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1, max_size=80))
@settings(max_examples=60, deadline=None)
def test_property_allocator_never_overlaps_and_conserves(ops):
    alloc = DeviceMemoryAllocator(capacity=8192, base=0)
    live = []
    for op, arg in ops:
        if op == "alloc":
            try:
                live.append(alloc.allocate(arg))
            except DeviceMemoryError:
                pass
        elif live:
            region = live.pop(arg % len(live))
            alloc.free(region)
    # No two live regions overlap.
    spans = sorted((r.base, r.end) for r in live)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    # Conservation: used + free == capacity.
    assert alloc.used_bytes + alloc.free_bytes == alloc.capacity
    assert alloc.used_bytes == sum(r.size for r in live)
