"""Tests for the units helpers and the exception hierarchy."""

import pytest

from repro import errors, units


# -- units ------------------------------------------------------------------------

def test_time_constants():
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.SECOND == 1_000_000_000
    assert units.MINUTE == 60 * units.SECOND


def test_time_conversions_roundtrip():
    assert units.ns_to_s(units.s_to_ns(1.5)) == pytest.approx(1.5)
    assert units.ns_to_ms(units.ms_to_ns(7.25)) == pytest.approx(7.25)
    assert units.ns_to_us(units.us_to_ns(0.5)) == pytest.approx(0.5)


def test_cycles_to_ns():
    assert units.cycles_to_ns(2_400, 2.4e9) == 1_000
    assert units.cycles_to_ns(1, 1e9) == 1
    with pytest.raises(ValueError):
        units.cycles_to_ns(100, 0)


def test_transfer_time():
    # 1000 bytes at 1 Gbps = 8 us.
    assert units.transfer_time_ns(1000, 1e9) == 8_000
    assert units.transfer_time_ns(0, 1e9) == 0
    with pytest.raises(ValueError):
        units.transfer_time_ns(10, 0)
    with pytest.raises(ValueError):
        units.transfer_time_ns(-1, 1e9)


def test_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert units.GBPS == 1_000_000_000


# -- error hierarchy ------------------------------------------------------------------

def test_all_errors_derive_from_repro_error():
    roots = [
        errors.SimulationError, errors.SchedulingError,
        errors.ProcessError, errors.InterruptError,
        errors.HardwareError, errors.BusError, errors.DeviceError,
        errors.DeviceMemoryError, errors.OSError_, errors.SyscallError,
        errors.SocketError, errors.FileSystemError, errors.HydraError,
        errors.ODFError, errors.OffcodeError, errors.InterfaceError,
        errors.MarshalError, errors.ChannelError,
        errors.ChannelClosedError, errors.ProviderError,
        errors.DepotError, errors.LoaderError, errors.DeploymentError,
        errors.LayoutError, errors.InfeasibleLayoutError,
        errors.SolverError, errors.ResourceError,
    ]
    for cls in roots:
        assert issubclass(cls, errors.ReproError), cls


def test_subsystem_grouping():
    assert issubclass(errors.InterruptError, errors.ProcessError)
    assert issubclass(errors.ChannelClosedError, errors.ChannelError)
    assert issubclass(errors.InfeasibleLayoutError, errors.LayoutError)
    assert issubclass(errors.DeviceMemoryError, errors.DeviceError)
    # Cross-subsystem classes stay disjoint.
    assert not issubclass(errors.ChannelError, errors.HardwareError)
    assert not issubclass(errors.BusError, errors.HydraError)


def test_interrupt_error_carries_cause():
    exc = errors.InterruptError(cause={"reason": "stop"})
    assert exc.cause == {"reason": "stop"}
    assert "stop" in str(exc)
