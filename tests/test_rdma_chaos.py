"""Chaos and scenario tests for the RDMA substrate.

The drill: crash the RNIC mid-get and require that (a) every key is
still fetched exactly once with the right value (the client flips to
the two-sided RPC fallback), (b) the one-sided conservation law
``posted == completed + failed`` holds through the crash, and (c) the
watchdog machinery fences the dead NIC as a recovered incident.  The
telemetry adapters must report the same story through the metrics
registry.
"""

import pytest

from repro.rdma.filter import run_filter_scenario
from repro.rdma.kv import run_kv_chaos, run_kv_scenario
from repro.telemetry.adapters import bind_rdma, check_rdma_conservation
from repro.telemetry.metrics import MetricsRegistry


# -- the happy-path scenario --------------------------------------------------------

def test_kv_scenario_one_sided_wins():
    report = run_kv_scenario(keys=32, batch=8)
    assert report["correct"]
    assert report["one_sided_ns"] < report["rpc_ns"]
    assert report["one_sided_host_cpu_ns"] < report["rpc_host_cpu_ns"]
    assert report["imbalance"] == 0
    # Batching amortizes: far fewer doorbells than reads.
    assert report["doorbells"] * 2 <= report["rdma_reads"]
    assert report["one_sided_hits"] + report["fallback_gets"] >= 32


def test_kv_scenario_places_cache_off_host():
    report = run_kv_scenario(keys=8, batch=4)
    assert report["placement"] == "disk0"


# -- the chaos drill ---------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(3))
def test_kv_chaos_recovers_exactly_once(seed):
    report = run_kv_chaos(seed=seed)
    assert report["ok"], report
    assert report["exactly_once"]
    assert report["correct"]
    assert report["fell_back"]            # the crash forced the RPC path
    assert report["failed"] > 0           # in-flight verbs errored...
    assert report["conservation_ok"]      # ...but none were lost
    assert report["incident_recovered"]   # watchdog fenced the dead NIC


def test_kv_chaos_telemetry_after_crash():
    """The metrics registry tells the chaos story: failures counted,
    conservation law intact."""
    from repro.rdma.kv import build_kv_world, deploy_cache

    world = build_kv_world(slots=128)
    names = [f"key-{i}" for i in range(16)]

    def application():
        yield from deploy_cache(world, slots=128)
        for name in names:
            yield from world.proxy.Put(name, name.upper())
        yield from world.client.get_batch(names[:8])
        world.nic.health.crash()
        yield from world.client.get_batch(names[8:])

    world.sim.run_until_event(world.sim.spawn(application()))

    assert check_rdma_conservation(world.provider) == []
    registry = MetricsRegistry()
    bind_rdma(registry, world.provider, "test/rdma-nic0")
    snapshot = registry.snapshot()
    stats = world.provider.stats

    def value(metric):
        (sample,) = snapshot[metric]["samples"]
        assert sample["labels"] == {"provider": "test/rdma-nic0"}
        return sample["value"]

    assert value("repro_rdma_reads_total") == stats.reads
    assert value("repro_rdma_writes_total") == stats.writes
    assert value("repro_rdma_doorbells_total") == stats.doorbells
    assert value("repro_rdma_posted_total") == stats.posted
    assert value("repro_rdma_failed_total") == stats.failed > 0
    assert (value("repro_rdma_completed_total") + stats.failed
            == stats.posted)
    assert value("repro_rdma_conservation_imbalance") == 0
    assert value("repro_rdma_conservation_violations") == 0


def test_conservation_check_flags_cooked_books():
    from repro.rdma.verbs import RdmaStats

    class FakeProvider:
        name = "rdma-fake"
        stats = RdmaStats(posted=10, completed=6, failed=1, reads=6)

    violations = check_rdma_conservation(FakeProvider())
    assert violations and "leaks work requests" in violations[0]


# -- the sPIN filter scenario ------------------------------------------------------------

@pytest.mark.slow
def test_filter_scenario_accounts_every_packet():
    report = run_filter_scenario(packets=200)
    assert report["placement"] == "nic0"       # layout honored `spin`
    assert report["accounted"]                 # handled + punted == rx
    assert report["spin_dropped"] > 0          # denylist fired in-network
    assert report["spin_to_host"] > 0          # sampling escalated
    assert report["budget_overruns"] > 0       # jumbos punted by budget
    assert report["spin_consumed"] > 0
    # The host only saw escalated and punted packets, nothing else.
    assert report["host_rx_packets"] < report["rx_packets"] / 4
    assert report["flows_observed"] >= 8
