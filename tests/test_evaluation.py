"""Tests for the evaluation harness: Fig-1 model, drivers, reporting."""

import pytest

from repro.errors import ReproError
from repro.evaluation import (
    TcpCostModel,
    fig1_series,
    format_table,
    render_fig1,
    render_ilp_ablation,
    run_fig1,
    run_ilp_vs_greedy,
    run_server_scenario,
)
from repro.evaluation.experiments import (
    PAPER_TABLE2,
    run_client_scenario,
)


# -- Foong / Figure 1 model ------------------------------------------------------------

def test_tcp_model_validation():
    with pytest.raises(ReproError):
        TcpCostModel(tx_per_packet_cycles=0)
    model = TcpCostModel()
    with pytest.raises(ReproError):
        model.ghz_per_gbps(0, "tx")
    with pytest.raises(ReproError):
        model.ghz_per_gbps(100, "sideways")


def test_tcp_model_ratio_definition():
    model = TcpCostModel(tx_per_packet_cycles=800, tx_per_byte_cycles=1.0,
                         rx_per_packet_cycles=800, rx_per_byte_cycles=1.0)
    # (800 + 100) cycles over 800 bits = 1.125 cycles/bit.
    assert model.ghz_per_gbps(100, "tx") == pytest.approx(1.125)


def test_tcp_model_rx_dearer_and_monotone():
    model = TcpCostModel()
    series = fig1_series(model)
    for size, tx, rx in series:
        assert rx > tx
    ratios = [tx for _s, tx, _r in series]
    assert ratios == sorted(ratios, reverse=True)


def test_tcp_model_saturation_and_utilization():
    model = TcpCostModel()
    sat = model.saturation_throughput_gbps(1460, "rx", cpu_ghz=2.4)
    # At the saturation throughput, utilization is exactly 1.
    assert model.cpu_utilization(1460, "rx", sat, 2.4) == pytest.approx(1.0)
    with pytest.raises(ReproError):
        model.cpu_utilization(1460, "rx", 0)


def test_run_fig1_matches_model():
    series = run_fig1()
    assert len(series) == 12
    assert series[0][0] == 64


# -- reporting -------------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "333" in lines[-1]
    # All data rows are equally wide.
    assert len(lines[-1]) == len(lines[-2])


def test_render_fig1_contains_sizes():
    text = render_fig1(run_fig1())
    assert "65536" in text and "transmit" in text


# -- drivers (short runs) -----------------------------------------------------------------

def test_run_server_scenario_idle_has_no_jitter_rows():
    # Needs > 5 s: the sampler follows the paper's 5-second cadence.
    result = run_server_scenario("idle", seconds=6.0)
    assert result.jitter is None
    assert result.cpu.count >= 0
    assert result.l2_miss_rate > 0


def test_run_server_scenario_rejects_unknown():
    with pytest.raises(ValueError):
        run_server_scenario("bogus")
    with pytest.raises(ValueError):
        run_client_scenario("bogus")


def test_run_server_scenario_offloaded_short():
    result = run_server_scenario("offloaded", seconds=6.0)
    assert result.jitter is not None
    assert result.jitter.average == pytest.approx(5.0, abs=0.02)
    assert result.packets > 1000
    # Histogram and CDF are well-formed.
    bins = result.jitter_histogram(0.1)
    assert sum(count for _e, count in bins) == len(result.jitter_samples_ms)
    cdf = result.jitter_cdf()
    assert cdf[-1][1] == pytest.approx(1.0)


def test_paper_constants_shape():
    assert set(PAPER_TABLE2) == {"simple", "sendfile", "offloaded"}
    for row in PAPER_TABLE2.values():
        assert len(row) == 3


# -- ILP ablation -----------------------------------------------------------------------

def test_ilp_vs_greedy_small():
    result = run_ilp_vs_greedy(graphs=10, num_nodes=6, num_devices=3,
                               seed=3)
    assert result.graphs > 0
    assert result.total_greedy_objective <= result.total_exact_objective
    text = render_ilp_ablation(result)
    assert "greedy suboptimal" in text
