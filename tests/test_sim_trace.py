"""Tests for the tracing facility."""


from repro.core import (DeploymentSpec, HydraRuntime, InterfaceSpec,
                        MethodSpec, Offcode)
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator, Tracer
from repro.sim.trace import emit

IDUMMY = InterfaceSpec.from_methods(
    "ITrace", (MethodSpec("Nop", params=(), result="int"),))


class TracedOffcode(Offcode):
    BINDNAME = "trace.Demo"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 7


GUID = Guid(909)


def test_tracer_records_and_renders():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer
    sim.run(until=1_500_000)
    emit(sim, "custom", "something happened", key=5)
    assert tracer.emitted == 1
    record = tracer.records[0]
    assert record.time_ns == 1_500_000
    assert record.category == "custom"
    assert ("key", 5) in record.fields
    assert "1.500ms" in record.render()
    assert "something happened" in tracer.render()


def test_tracer_category_filter():
    sim = Simulator()
    tracer = Tracer(sim, categories={"a"})
    sim.tracer = tracer
    emit(sim, "a", "kept")
    emit(sim, "b", "dropped")
    assert [r.message for r in tracer.records] == ["kept"]
    assert tracer.wants("a") and not tracer.wants("b")


def test_tracer_disabled_and_capacity():
    sim = Simulator()
    tracer = Tracer(sim, capacity=3)
    sim.tracer = tracer
    for i in range(5):
        emit(sim, "x", f"m{i}")
    assert len(tracer.records) == 3
    assert tracer.records[0].message == "m2"
    tracer.enabled = False
    emit(sim, "x", "ignored")
    assert len(tracer.records) == 3
    tracer.clear()
    assert len(tracer.records) == 0


def test_emit_without_tracer_is_noop():
    sim = Simulator()
    emit(sim, "x", "nothing listens")   # must not raise


def test_deployment_and_channels_are_traced():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="trace.Demo", guid=GUID,
                      interfaces=[IDUMMY],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/t.odf", odf)
    runtime.depot.register(GUID, TracedOffcode)
    out = {}

    def app():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/t.odf",)))
        out["v"] = yield from result.proxy.Nop()

    sim.run_until_event(sim.spawn(app()))
    assert out["v"] == 7
    categories = {r.category for r in tracer.records}
    assert {"deploy", "offcode", "channel"} <= categories
    offcode_msgs = [r.message for r in tracer.of_category("offcode")]
    assert any("initialized" in m for m in offcode_msgs)
    assert any("started" in m for m in offcode_msgs)
    deploys = tracer.of_category("deploy")
    assert any("complete" in r.message for r in deploys)
    # Records are time-ordered and filterable by time.
    times = [r.time_ns for r in tracer.records]
    assert times == sorted(times)
    assert tracer.since(times[-1])[-1] is tracer.records[-1]
