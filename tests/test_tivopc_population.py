"""Population factory and the chunk-fidelity scale model.

The chunk tier's whole value is that its numbers can be trusted at
scales the detailed model cannot reach — so the pinned-tolerance
validation against the detailed tier is the load-bearing test here.
"""

import pytest

from repro.errors import ReproError
from repro.media.decoder import ChunkDecodeModel, DECODE_EXPANSION
from repro.tivopc.population import (
    CHUNK_TOLERANCES,
    PopulationConfig,
    client_seed,
    run_population,
    validate_fidelity,
)

# Small but long enough that hundreds of chunks flow per subscriber.
_SECONDS = 2.0


# -- ChunkDecodeModel ---------------------------------------------------------


def test_chunk_decode_accumulates_frames():
    model = ChunkDecodeModel(frame_bytes=4096)
    assert model.on_chunk(1024) == 0
    assert model.on_chunk(1024) == 0
    assert model.on_chunk(1024) == 0
    assert model.on_chunk(1024) == 1          # fourth kB completes a frame
    assert model.frames_decoded == 1
    assert model.bytes_decoded == 4096
    assert model.bytes_buffered == 0
    assert model.raw_bytes_out == 4096 * DECODE_EXPANSION


def test_chunk_decode_handles_oversized_chunks():
    model = ChunkDecodeModel(frame_bytes=1000)
    assert model.on_chunk(2500) == 2
    assert model.bytes_buffered == 500


def test_chunk_decode_rejects_bad_frame_size():
    with pytest.raises(ReproError):
        ChunkDecodeModel(frame_bytes=0)


# -- population config and determinism ----------------------------------------


def test_population_config_validation():
    with pytest.raises(ReproError):
        PopulationConfig(clients=0)
    with pytest.raises(ReproError):
        PopulationConfig(seconds=0)
    with pytest.raises(ReproError):
        PopulationConfig(fidelity="surely-not")
    with pytest.raises(ReproError):
        PopulationConfig(loss_rate=1.0)


def test_client_seed_depends_on_fleet_seed_and_gid():
    assert client_seed(0, 1) != client_seed(0, 2)
    assert client_seed(0, 1) != client_seed(1, 1)
    assert client_seed(3, 17) == client_seed(3, 17)


def test_subscriber_depends_only_on_global_id():
    """The re-partitioning contract: a subscriber's numbers must not
    change with the set of neighbours sharing its simulator."""
    config = PopulationConfig(clients=8, seconds=1.0, loss_rate=0.05,
                              fleet_seed=11)
    together = run_population(range(8), config)
    alone = run_population([5], config)
    grouped = next(s for s in together.subscribers if s.gid == 5)
    solo = alone.subscribers[0]
    assert grouped.chunks_sent == solo.chunks_sent
    assert grouped.chunks_delivered == solo.chunks_delivered
    assert grouped.chunks_lost == solo.chunks_lost
    assert grouped.completion_ns == solo.completion_ns
    assert grouped.mean_gap_ms == solo.mean_gap_ms


def test_chunk_population_conserves_chunks_under_loss():
    config = PopulationConfig(clients=16, seconds=1.0, loss_rate=0.1,
                              fleet_seed=2)
    result = run_population(range(16), config)
    totals = result.totals()
    assert totals["chunks_lost"] > 0           # loss actually fired
    for stats in result.subscribers:
        assert stats.conservation_imbalance() == 0
    assert totals["chunks_sent"] == (totals["chunks_delivered"]
                                     + totals["chunks_lost"])


def test_chunk_population_event_budget_is_per_chunk():
    """The scale model's reason to exist: ~1 event per chunk, not ~90."""
    config = PopulationConfig(clients=32, seconds=1.0)
    result = run_population(range(32), config)
    chunks = result.totals()["chunks_sent"]
    assert chunks > 0
    assert result.events <= chunks * 2


# -- fidelity validation ------------------------------------------------------


def test_chunk_tier_validates_against_detailed_model():
    """The acceptance bar: chunk counts, loss totals, completion times
    and mean gaps inside the pinned tolerances, subscriber for
    subscriber, against the full-testbed ground truth."""
    validation = validate_fidelity(
        PopulationConfig(clients=2, seconds=_SECONDS))
    assert validation.ok, validation.failures
    assert validation.max_chunks_rel <= CHUNK_TOLERANCES.chunks_rel
    assert validation.max_completion_rel <= CHUNK_TOLERANCES.completion_rel
    assert validation.max_loss_abs <= CHUNK_TOLERANCES.loss_abs
    assert validation.max_gap_rel <= CHUNK_TOLERANCES.gap_rel


def test_validate_fidelity_rejects_lossy_config():
    with pytest.raises(ReproError):
        validate_fidelity(PopulationConfig(clients=2, loss_rate=0.1))
