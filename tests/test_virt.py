"""Tests for the virtualization future-work module (paper Section 8)."""

import pytest

from repro import units
from repro.errors import ReproError
from repro.hostos import Kernel, UdpStack
from repro.hw import Machine, MachineSpec
from repro.net import Address, Switch
from repro.sim import RandomStreams, Simulator
from repro.virt import OffloadedVmm, SoftwareVmm


class VmmWorld:
    """A VMM host plus a traffic-generator host on one switch."""

    def __init__(self, vmm_cls, seed=21):
        self.sim = Simulator()
        rng = RandomStreams(seed)
        self.switch = Switch(self.sim, rng=rng.stream("switch"))
        # VMM host: kernel without background noise, NIC claimed by VMM.
        self.host = Machine(self.sim, MachineSpec(name="vmm-host"))
        self.kernel = Kernel(self.host, rng)
        nic = self.host.add_nic()
        transmit = self.switch.attach("vmm-host", nic.receive_packet)
        nic.attach_wire(transmit)
        self.vmm = vmm_cls(self.kernel, nic)
        self.vm_a = self.vmm.add_guest("vm-a", 1000, 1999)
        self.vm_b = self.vmm.add_guest("vm-b", 2000, 2999)
        # Generator host.
        gen = Machine(self.sim, MachineSpec(name="gen"))
        gen_kernel = Kernel(gen, rng)
        gen.add_nic()
        self.gen_stack = UdpStack(gen_kernel, "gen")
        self.gen_stack.attach_nic(gen.device("nic0"), self.switch)

    def blast(self, count, size=1024):
        sock = self.gen_stack.socket()
        sim = self.sim

        def sender():
            for i in range(count):
                port = 1000 + (i % 3) * 700   # 1000,1700,2400,...
                yield from sock.sendto(Address("vmm-host", port), size)
                yield sim.timeout(200_000)

        sim.spawn(sender())
        sim.run(until=sim.now + units.s_to_ns(1))


def test_software_vmm_routes_to_correct_guests():
    world = VmmWorld(SoftwareVmm)
    world.blast(30)
    # Ports 1000/1700 -> vm-a, 2400 -> vm-b.
    assert world.vm_a.packets_received == 20
    assert world.vm_b.packets_received == 10
    assert world.vmm.delivered == 30


def test_offloaded_vmm_routes_identically():
    world = VmmWorld(OffloadedVmm)
    world.blast(30)
    assert world.vm_a.packets_received == 20
    assert world.vm_b.packets_received == 10
    assert world.vmm.delivered == 30


def test_offloaded_vmm_saves_host_cpu():
    results = {}
    for cls in (SoftwareVmm, OffloadedVmm):
        world = VmmWorld(cls)
        world.blast(50)
        busy = world.host.cpu.busy_by_context
        results[cls.__name__] = {
            "vmm": busy.get("vmm", 0) + busy.get("kernel-isr", 0)
            + busy.get("kernel-copy", 0),
            "guest": busy.get("guest-vm-a", 0) + busy.get("guest-vm-b", 0),
            "total": world.host.cpu.total_busy,
        }
    soft = results["SoftwareVmm"]
    offl = results["OffloadedVmm"]
    # Guest work is identical; the demux overhead is what disappears.
    assert soft["guest"] == offl["guest"]
    assert offl["vmm"] < soft["vmm"] / 3
    assert offl["total"] < soft["total"]


def test_offloaded_vmm_charges_device_cpu():
    world = VmmWorld(OffloadedVmm)
    world.blast(20)
    nic = world.host.device("nic0")
    assert nic.cpu.busy_by_context.get("vmm-offload", 0) > 0


def test_software_vmm_copies_through_cache():
    caches = {}
    for cls in (SoftwareVmm, OffloadedVmm):
        world = VmmWorld(cls)
        world.blast(20)
        caches[cls.__name__] = world.host.l2.stats.accesses
    # The software VMM's guest copies stream payloads through the L2.
    assert caches["SoftwareVmm"] > caches["OffloadedVmm"] + 20 * 16


def test_unroutable_packets_counted():
    world = VmmWorld(OffloadedVmm)
    sock = world.gen_stack.socket()

    def sender():
        yield from sock.sendto(Address("vmm-host", 9999), 100)

    world.sim.spawn(sender())
    world.sim.run(until=world.sim.now + units.s_to_ns(0.5))
    assert world.vmm.unroutable == 1
    assert world.vm_a.packets_received == 0


def test_overlapping_guest_ranges_rejected():
    world = VmmWorld(SoftwareVmm)
    with pytest.raises(ReproError):
        world.vmm.add_guest("vm-c", 1500, 2500)
    with pytest.raises(ReproError):
        world.vmm.add_guest("vm-d", 500, 400)
