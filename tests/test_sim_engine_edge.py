"""Additional engine edge cases: condition failures, event timing."""

import pytest

from repro.errors import ProcessError, SchedulingError
from repro.sim import Simulator


def test_any_of_fails_if_first_child_fails():
    sim = Simulator()
    caught = []

    def failer():
        yield sim.timeout(5)
        raise ValueError("child died")

    def waiter():
        child = sim.spawn(failer())
        slow = sim.timeout(100)
        try:
            yield sim.any_of([child, slow])
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.run()
    assert caught == ["child died"]


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()
    caught = []

    def failer():
        yield sim.timeout(5)
        raise RuntimeError("boom")

    def waiter():
        child = sim.spawn(failer())
        slow = sim.timeout(1_000)
        try:
            yield sim.all_of([child, slow])
        except RuntimeError:
            caught.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    # Failure surfaced at t=5, not after the slow timeout.
    assert caught == [5]


def test_any_of_with_already_processed_event():
    sim = Simulator()
    done = sim.timeout(1)
    sim.run(until=10)
    out = []

    def waiter():
        result = yield sim.any_of([done, sim.timeout(50)])
        out.append((sim.now, list(result.values())))

    sim.spawn(waiter())
    sim.run()
    assert out == [(10, [None])]


def test_succeed_with_delay():
    sim = Simulator()
    event = sim.event()
    event.succeed("late", delay=42)
    out = []

    def waiter():
        value = yield event
        out.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert out == [(42, "late")]


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_unwaited_failed_event_escalates():
    sim = Simulator()
    sim.event().fail(ValueError("nobody listened"))
    with pytest.raises(ValueError, match="nobody listened"):
        sim.run()


def test_run_until_event_with_limit():
    sim = Simulator()

    def slow():
        yield sim.timeout(1_000)

    proc = sim.spawn(slow())
    with pytest.raises(ProcessError):
        sim.run_until_event(proc, limit=10)
    # Still completable afterwards.
    assert sim.run_until_event(proc) is None


def test_step_empty_queue_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.step()


def test_interrupt_non_waiting_process_rejected():
    sim = Simulator()
    started = []

    def immediate():
        started.append(True)
        if False:
            yield

    proc = sim.spawn(immediate())
    # The process has not begun (spawn schedules it); interrupting a
    # process that is not waiting on anything is an error.
    with pytest.raises(ProcessError):
        proc.interrupt()


def test_events_from_other_simulator_rejected():
    sim1 = Simulator()
    sim2 = Simulator()
    foreign = sim2.timeout(5)

    def waiter():
        yield foreign

    sim1.spawn(waiter())
    with pytest.raises(ProcessError):
        sim1.run()
