"""The blessed ``sim.clock`` scheduling API and its deprecation shims.

Covers the surface the timer-wheel core exports — ``after`` / ``at`` /
``every`` / ``timeout`` / ``fence`` and cancellable :class:`Timer` —
plus the one-shot DeprecationWarnings on the legacy ``Simulator.delay``
and ``Simulator.schedule`` entry points, and the zero-drift guarantee
of ``clock.every`` over a million firings.
"""

import warnings

import pytest

from repro.errors import SchedulingError
from repro.sim import Simulator, Timer


# -- after -----------------------------------------------------------------------


def test_after_plain_sleep_is_bare_int_token():
    sim = Simulator()
    token = sim.clock.after(1_000)
    assert token == 1_000 and isinstance(token, int)

    woke = []

    def sleeper():
        yield sim.clock.after(1_000)
        woke.append(sim.now)

    sim.spawn(sleeper())
    sim.run()
    assert woke == [1_000]


def test_after_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.clock.after(-1)
    with pytest.raises(SchedulingError):
        sim.clock.after(-1, value="x")


def test_after_value_resumes_generator_with_value():
    sim = Simulator()
    got = []

    def sleeper():
        got.append((yield sim.clock.after(500, value="payload")))

    sim.spawn(sleeper())
    sim.run()
    assert got == ["payload"]


def test_after_fn_returns_cancellable_timer():
    sim = Simulator()
    fired = []
    timer = sim.clock.after(2_000, lambda: fired.append(sim.now))
    assert isinstance(timer, Timer)
    assert timer.active
    sim.run()
    assert fired == [2_000]
    assert not timer.active
    assert timer.cancel() is False      # already fired


def test_after_fn_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = sim.clock.after(2_000, lambda: fired.append(sim.now))
    assert timer.cancel() is True
    sim.run()
    assert fired == []
    assert sim.dead_timers == 0         # removed in place, not left dead


# -- at --------------------------------------------------------------------------


def test_at_absolute_deadline():
    sim = Simulator()
    fired = []

    def starter():
        yield sim.clock.after(300)
        sim.clock.at(1_000, lambda: fired.append(sim.now))

    sim.spawn(starter())
    sim.run()
    assert fired == [1_000]


def test_at_in_the_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.clock.after(500)
        sim.clock.at(100, lambda: None)

    sim.spawn(proc())
    with pytest.raises(SchedulingError):
        sim.run()


# -- every -----------------------------------------------------------------------


def test_every_fires_at_exact_multiples():
    sim = Simulator()
    fires = []
    sim.clock.every(1_000, lambda: fires.append(sim.now))
    sim.run(until=5_500)
    assert fires == [1_000, 2_000, 3_000, 4_000, 5_000]


def test_every_first_overrides_initial_firing():
    sim = Simulator()
    fires = []
    sim.clock.every(1_000, lambda: fires.append(sim.now), first=100)
    sim.run(until=3_000)
    assert fires == [100, 1_100, 2_100, 3_000][:3]


def test_every_fn_may_cancel_its_own_timer():
    sim = Simulator()
    fires = []
    timer = sim.clock.every(1_000, lambda: (
        fires.append(sim.now),
        timer.cancel() if len(fires) >= 3 else None))
    sim.run(until=10_000)
    assert fires == [1_000, 2_000, 3_000]


def test_every_zero_drift_over_a_million_ticks():
    """The anchor-based schedule accumulates no drift: the millionth
    firing lands at exactly 1e6 * period, not 1e6 * period + epsilon.
    A naive ``now + period`` reschedule would need only one late firing
    (or one rounding slip) to shift every subsequent deadline.
    """
    sim = Simulator()
    period = 1_000
    count = [0]
    last = [0]

    def tick():
        count[0] += 1
        last[0] = sim.now

    timer = sim.clock.every(period, tick)
    sim.run(until=1_000_000 * period)
    assert count[0] == 1_000_000
    assert last[0] == 1_000_000 * period
    assert timer.fires == 1_000_000


def test_every_non_positive_period_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.clock.every(0, lambda: None)
    with pytest.raises(SchedulingError):
        sim.clock.every(-5, lambda: None)


# -- timeout & fence -------------------------------------------------------------


def test_timeout_is_storable_and_combinable():
    sim = Simulator()
    got = []

    def waiter():
        first = sim.clock.timeout(1_000, "a")
        second = sim.clock.timeout(2_000, "b")
        result = yield sim.any_of([first, second])
        got.append((sim.now, list(result.values())))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1_000, ["a"])]


def test_fence_runs_after_everything_at_the_instant():
    sim = Simulator()
    order = []

    def racer(tag):
        yield sim.clock.after(1_000)
        order.append(tag)

    def fencer():
        yield sim.clock.after(1_000)
        yield sim.clock.fence()
        order.append("fence")

    sim.spawn(fencer())
    for tag in ("a", "b"):
        sim.spawn(racer(tag))
    sim.run()
    assert order[-1] == "fence"
    assert set(order) == {"a", "b", "fence"}


# -- cancelled-timer hygiene ------------------------------------------------------


def test_far_future_cancel_counts_dead_then_reclaims():
    """A timer parked beyond the wheel horizon lives in the overflow
    heap; cancelling it cannot remove it in place, so it must show up
    in the ``dead_timers`` gauge until ``reclaim()`` sweeps it.
    """
    sim = Simulator()
    timers = [sim.clock.after(10 ** 12 + i, lambda: None)
              for i in range(16)]
    for timer in timers:
        assert timer.cancel() is True
    assert sim.dead_timers == len(timers)
    removed = sim.reclaim()
    assert removed == len(timers)
    assert sim.dead_timers == 0
    sim.run()                            # drains without firing anything


# -- deprecation shims ------------------------------------------------------------


def _reset_deprecation_latches():
    Simulator._delay_warned = False
    Simulator._schedule_warned = False


def test_sim_delay_shim_warns_once_and_still_sleeps():
    _reset_deprecation_latches()
    sim = Simulator()
    got = []

    def sleeper():
        got.append((yield sim.delay(1_000, "v")))

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sim.spawn(sleeper())
        sim.run()
        sim2 = Simulator()
        sim2.spawn(sleeper())            # second use: no second warning
        sim2.run()
    assert got == ["v", "v"]
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "clock.after" in str(deprecations[0].message)


def test_sim_schedule_shim_warns_once_and_still_fires():
    _reset_deprecation_latches()
    sim = Simulator()
    fired = []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        timer = sim.schedule(lambda: fired.append(sim.now), delay=500)
        sim.schedule(lambda: fired.append(sim.now), delay=700)
    assert isinstance(timer, Timer)
    sim.run()
    assert fired == [500, 700]
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "clock.after" in str(deprecations[0].message)
