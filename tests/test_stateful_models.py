"""Model-based stateful tests (hypothesis RuleBasedStateMachine).

Long random operation interleavings against reference models for the
two allocators whose corruption would silently poison everything above
them: the device memory allocator (loader correctness) and the resource
tree (teardown correctness).
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import DeviceMemoryError, ResourceError
from repro.hw.device import DeviceMemoryAllocator
from repro.core.resources import ResourceTree

import pytest


class AllocatorMachine(RuleBasedStateMachine):
    """Random alloc/free sequences vs an interval reference model."""

    regions = Bundle("regions")

    def __init__(self):
        super().__init__()
        self.allocator = DeviceMemoryAllocator(capacity=64 * 1024, base=0)
        self.live = {}

    @rule(target=regions, size=st.integers(min_value=1, max_value=9000))
    def allocate(self, size):
        try:
            region = self.allocator.allocate(size, label=f"r{size}")
        except DeviceMemoryError:
            # Only legitimate when a sufficiently large hole is absent.
            assert size > 0
            return None
        assert region.base % 16 == 0 or region.base == 0
        self.live[region.base] = region
        return region

    @rule(region=consumes(regions))
    def free(self, region):
        if region is None:
            return
        if region.base not in self.live:
            with pytest.raises(DeviceMemoryError):
                self.allocator.free(region)
            return
        self.allocator.free(region)
        del self.live[region.base]

    @invariant()
    def no_overlap_and_conserved(self):
        spans = sorted((r.base, r.end) for r in self.live.values())
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert (self.allocator.used_bytes
                == sum(r.size for r in self.live.values()))
        assert (self.allocator.used_bytes + self.allocator.free_bytes
                == self.allocator.capacity)


class ResourceTreeMachine(RuleBasedStateMachine):
    """Random track/attach/release sequences vs a parent-map model."""

    nodes = Bundle("nodes")

    def __init__(self):
        super().__init__()
        self.tree = ResourceTree()
        self.counter = 0
        self.parent_of = {}       # name -> parent name or None (root)
        self.alive = set()
        self.finalized = []

    def _descendants(self, name):
        out = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for child, parent in self.parent_of.items():
                if parent == current and child in self.alive:
                    out.add(child)
                    frontier.append(child)
        return out

    @rule(target=nodes)
    def track_root_child(self):
        name = f"n{self.counter}"
        self.counter += 1
        self.tree.track(name, finalizer=lambda n=name:
                        self.finalized.append(n))
        self.parent_of[name] = None
        self.alive.add(name)
        return name

    @rule(target=nodes, parent=nodes)
    def track_child(self, parent):
        if parent not in self.alive:
            return None
        name = f"n{self.counter}"
        self.counter += 1
        self.tree.track(name, parent=self.tree.lookup(parent),
                        finalizer=lambda n=name: self.finalized.append(n))
        self.parent_of[name] = parent
        self.alive.add(name)
        return name

    @rule(name=nodes)
    def release(self, name):
        if name is None:
            return
        if name not in self.alive:
            with pytest.raises(ResourceError):
                self.tree.release(name)
            return
        doomed = self._descendants(name)
        errors = self.tree.release(name)
        assert errors == []
        self.alive -= doomed
        # Every doomed node was finalized exactly once, in total.
        assert set(self.finalized) >= doomed

    @invariant()
    def live_count_matches_model(self):
        assert self.tree.live_count == len(self.alive)

    @invariant()
    def finalizers_ran_once_each(self):
        assert len(self.finalized) == len(set(self.finalized))


TestAllocatorStateful = AllocatorMachine.TestCase
TestAllocatorStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)

TestResourceTreeStateful = ResourceTreeMachine.TestCase
TestResourceTreeStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)
