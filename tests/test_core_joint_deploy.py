"""Tests for joint multi-application deployment (Section 5 motivation).

Two applications share one Offcode.  Deployed one at a time, the first
application pins the shared component wherever suits *it*; the second
application's Pull constraint then cannot be met and its root falls back
to the host.  Deployed jointly, the single ILP solve satisfies both.
"""

import pytest

from repro.core import HydraRuntime, InterfaceSpec, MethodSpec, Offcode
from repro.core.guid import Guid
from repro.core.layout.constraints import ConstraintType
from repro.core.odf import DeviceClassFilter, OdfDocument, OdfImport
from repro.hw import DeviceClass, Machine
from repro.hw.nic import NicSpec
from repro.sim import Simulator

IDUMMY = InterfaceSpec.from_methods(
    "IDummy", (MethodSpec("Nop", params=(), result="int"),))


class AppAOffcode(Offcode):
    BINDNAME = "joint.AppA"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 0


class AppBOffcode(Offcode):
    BINDNAME = "joint.AppB"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 0


class SharedOffcode(Offcode):
    BINDNAME = "joint.Shared"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 0


A_GUID, B_GUID, SHARED_GUID = Guid(71), Guid(72), Guid(73)


def make_runtime():
    sim = Simulator()
    machine = Machine(sim)
    # Name the NIC so it sorts before the GPU: placement ties then fall
    # toward the NIC, which is what makes sequential deployment go wrong.
    machine.add_nic(NicSpec(name="a-nic"))
    machine.add_gpu()
    runtime = HydraRuntime(machine)

    shared = OdfDocument(
        bindname="joint.Shared", guid=SHARED_GUID, interfaces=[IDUMMY],
        targets=[DeviceClassFilter(DeviceClass.NETWORK),
                 DeviceClassFilter(DeviceClass.DISPLAY)],
        image_bytes=8 * 1024)
    app_a = OdfDocument(
        bindname="joint.AppA", guid=A_GUID, interfaces=[IDUMMY],
        imports=[OdfImport(file="/shared.odf", bindname="joint.Shared",
                           guid=SHARED_GUID,
                           reference=ConstraintType.LINK)],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=8 * 1024)
    app_b = OdfDocument(
        bindname="joint.AppB", guid=B_GUID, interfaces=[IDUMMY],
        imports=[OdfImport(file="/shared.odf", bindname="joint.Shared",
                           guid=SHARED_GUID,
                           reference=ConstraintType.PULL,
                           priority=1)],   # droppable if all else fails
        targets=[DeviceClassFilter(DeviceClass.DISPLAY)],
        image_bytes=8 * 1024)
    runtime.library.register("/shared.odf", shared)
    runtime.library.register("/app-a.odf", app_a)
    runtime.library.register("/app-b.odf", app_b)
    runtime.depot.register(SHARED_GUID, SharedOffcode)
    runtime.depot.register(A_GUID, AppAOffcode)
    runtime.depot.register(B_GUID, AppBOffcode)
    return sim, machine, runtime


def test_sequential_deployment_pins_shared_badly():
    sim, machine, runtime = make_runtime()
    out = {}

    def app():
        yield from runtime.create_offcode("/app-a.odf")
        out["shared_at"] = runtime.get_offcode("joint.Shared").location
        result = yield from runtime.create_offcode("/app-b.odf")
        out["b_report"] = result.report

    sim.run_until_event(sim.spawn(app()))
    # App A's solve put the shared Offcode on the NIC (tie toward the
    # alphabetically-first compatible device).
    assert out["shared_at"] == "a-nic"
    # App B's Pull to the shared Offcode is now unsatisfiable: the
    # resolver had to *drop* the constraint to place App B at all.
    dropped = out["b_report"].layout.relaxed_constraints
    assert any(c.kind is ConstraintType.PULL for c in dropped)
    # App B runs, but not co-located with its Pull-mate.
    assert (runtime.get_offcode("joint.AppB").location
            != runtime.get_offcode("joint.Shared").location)


def test_joint_deployment_satisfies_both_apps():
    sim, machine, runtime = make_runtime()
    out = {}

    def app():
        out["report"] = yield from runtime.deploy_joint(
            ["/app-a.odf", "/app-b.odf"])

    sim.run_until_event(sim.spawn(app()))
    report = out["report"]
    assert report.roots == ["joint.AppA", "joint.AppB"]
    # Joint solve: shared goes to the GPU (satisfying B's Pull), A to
    # the NIC — every Offcode offloaded.
    assert runtime.get_offcode("joint.Shared").location == "gpu0"
    assert runtime.get_offcode("joint.AppB").location == "gpu0"
    assert runtime.get_offcode("joint.AppA").location == "a-nic"
    assert report.layout.host_fallbacks == []
    # The shared Offcode exists exactly once.
    assert len([n for n in report.offcodes if n == "joint.Shared"]) == 1


def test_joint_deployment_with_overlap_reuses():
    """Joint deploy after a prior deployment still reuses instances."""
    sim, machine, runtime = make_runtime()
    out = {}

    def app():
        yield from runtime.create_offcode("/shared.odf")
        out["first"] = runtime.get_offcode("joint.Shared")
        out["report"] = yield from runtime.deploy_joint(
            ["/app-a.odf"])

    sim.run_until_event(sim.spawn(app()))
    assert "joint.Shared" in out["report"].reused
    assert runtime.get_offcode("joint.Shared") is out["first"]


def test_deploy_many_requires_paths():
    sim, machine, runtime = make_runtime()
    from repro.errors import DeploymentError

    def app():
        yield from runtime.deploy_joint([])

    sim.spawn(app())
    with pytest.raises(DeploymentError):
        sim.run()
