"""Tests for channels, providers and the Channel Executive."""

import pytest

from repro.errors import ChannelClosedError, ChannelError, ProviderError
from repro.core.channel import (
    Buffering,
    ChannelConfig,
    ChannelKind,
    Reliability,
    SyncMode,
)
from repro.core.executive import ChannelExecutive
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.memory import MemoryManager
from repro.core.offcode import Offcode, OffcodeState
from repro.core.providers import (
    DmaChannelProvider,
    LoopbackProvider,
    PeerDmaProvider,
)
from repro.core.proxy import Proxy
from repro.core.sites import DeviceSite, HostSite
from repro.hw import Machine
from repro.hw.bus import HOST_MEMORY
from repro.sim import Simulator

IECHO = InterfaceSpec.from_methods(
    "IEcho", (MethodSpec("Echo", params=(("x", "int"),), result="int"),))


class EchoOffcode(Offcode):
    BINDNAME = "test.Echo"
    INTERFACES = (IECHO,)

    def Echo(self, x):
        return x * 2


class World:
    """A host with NIC + GPU, an executive with all providers, no kernel."""

    def __init__(self):
        self.sim = Simulator()
        self.machine = Machine(self.sim)
        self.nic = self.machine.add_nic()
        self.gpu = self.machine.add_gpu()
        self.host_site = HostSite(self.machine)
        self.nic_site = DeviceSite(self.nic)
        self.gpu_site = DeviceSite(self.gpu)
        self.memory = MemoryManager(self.machine)
        self.executive = ChannelExecutive()
        self.executive.register_provider(LoopbackProvider(self.machine))
        self.executive.register_provider(PeerDmaProvider(self.machine))
        for device in (self.nic, self.gpu):
            self.executive.register_provider(
                DmaChannelProvider(self.machine, device, self.memory))

    def running_offcode(self, cls, site):
        offcode = cls(site)
        offcode.state = OffcodeState.RUNNING
        return offcode


@pytest.fixture()
def world():
    return World()


# -- provider selection --------------------------------------------------------------

def test_loopback_selected_for_same_site(world):
    provider = world.executive.select_provider(
        world.host_site, world.host_site, ChannelConfig())
    assert provider.name == "loopback"


def test_dma_selected_for_host_device(world):
    provider = world.executive.select_provider(
        world.host_site, world.nic_site, ChannelConfig())
    assert provider.name == "dma-nic0"


def test_peer_selected_for_device_device(world):
    provider = world.executive.select_provider(
        world.nic_site, world.gpu_site, ChannelConfig())
    assert provider.name == "peer-dma"


def test_no_provider_raises(world):
    sim2 = Simulator()
    other = HostSite(Machine(sim2))
    with pytest.raises(ProviderError):
        world.executive.select_provider(world.host_site, other,
                                        ChannelConfig())


def test_cost_metric_prefers_zero_copy(world):
    direct = ChannelConfig(buffering=Buffering.DIRECT)
    copying = ChannelConfig(buffering=Buffering.COPY)
    provider = world.executive.select_provider(
        world.host_site, world.nic_site, direct)
    cost_direct = provider.cost(world.host_site, world.nic_site, direct)
    cost_copy = provider.cost(world.host_site, world.nic_site, copying)
    assert cost_direct.score(1024) < cost_copy.score(1024)
    assert cost_direct.host_cpu_ns < cost_copy.host_cpu_ns


# -- basic channel mechanics ------------------------------------------------------------

def test_unicast_host_to_device_roundtrip(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.host_site)
    world.executive.connect_offcode(channel, offcode)
    proxy = Proxy(IECHO, channel, channel.creator_endpoint)
    result = {}

    def app():
        result["echo"] = yield from proxy.Echo(21)

    world.sim.run_until_event(world.sim.spawn(app()))
    assert result["echo"] == 42
    assert channel.messages_sent == 1
    # The request crossed to the device, the reply came back.
    assert world.machine.bus.crossings[(HOST_MEMORY, "nic0")] >= 1
    assert world.machine.bus.crossings[("nic0", HOST_MEMORY)] >= 1


def test_channel_rings_created_for_dma(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    channel = world.executive.create_channel(ChannelConfig(ring_slots=16),
                                             world.host_site)
    world.executive.connect_offcode(channel, offcode)
    assert channel.in_ring.capacity == 16
    assert channel.out_ring.capacity == 16


def test_write_before_connect_rejected(world):
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.host_site)

    def app():
        yield from channel.creator_endpoint.write("x", 10)

    world.sim.spawn(app())
    with pytest.raises(ChannelError):
        world.sim.run()


def test_write_after_close_rejected(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.host_site)
    world.executive.connect_offcode(channel, offcode)
    channel.close()

    def app():
        yield from channel.creator_endpoint.write("x", 10)

    world.sim.spawn(app())
    with pytest.raises(ChannelClosedError):
        world.sim.run()


def test_unicast_third_endpoint_rejected(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    other = world.running_offcode(EchoOffcode, world.gpu_site)
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.host_site)
    world.executive.connect_offcode(channel, offcode)
    with pytest.raises(ChannelError):
        world.executive.connect_offcode(channel, other)


def test_read_and_poll_data_messages(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.host_site)
    endpoint = world.executive.connect_offcode(channel, offcode)
    got = {}

    def device_side():
        message = yield from endpoint.read()
        got["payload"] = message.payload
        got["size"] = message.size_bytes

    def host_side():
        yield from channel.creator_endpoint.write(b"data", 1024)

    assert not endpoint.poll()
    world.sim.spawn(device_side())
    world.sim.spawn(host_side())
    world.sim.run()
    assert got == {"payload": b"data", "size": 1024}


def test_call_handler_invoked_on_delivery(world):
    """Figure 3's InstallCallHandler: push, not poll."""
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.host_site)
    endpoint = world.executive.connect_offcode(channel, offcode)
    handled = []
    endpoint.install_call_handler(lambda message: handled.append(
        message.payload))

    def host_side():
        yield from channel.creator_endpoint.write("ping", 64)

    world.sim.run_until_event(world.sim.spawn(host_side()))
    assert handled == ["ping"]
    with pytest.raises(ChannelError):
        endpoint.install_call_handler(lambda m: None)


def test_unreliable_channel_drops_when_full(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    config = ChannelConfig(reliability=Reliability.UNRELIABLE, ring_slots=2)
    channel = world.executive.create_channel(config, world.host_site)
    world.executive.connect_offcode(channel, offcode)

    def host_side():
        for i in range(6):
            yield from channel.creator_endpoint.write(i, 64)

    world.sim.run_until_event(world.sim.spawn(host_side()))
    assert channel.drops == 4
    assert channel.messages_sent == 6


def test_sequential_sync_is_fifo(world):
    offcode = world.running_offcode(EchoOffcode, world.nic_site)
    channel = world.executive.create_channel(
        ChannelConfig(sync=SyncMode.SEQUENTIAL), world.host_site)
    endpoint = world.executive.connect_offcode(channel, offcode)
    received = []
    endpoint.install_call_handler(
        lambda message: received.append(message.payload))

    def writer(i):
        yield from channel.creator_endpoint.write(i, 2048)

    for i in range(5):
        world.sim.spawn(writer(i))
    world.sim.run()
    assert received == [0, 1, 2, 3, 4]


# -- multicast ---------------------------------------------------------------------------

def test_multicast_device_to_devices_single_bus_transaction(world):
    """The TiVoPC pattern: NIC sends one packet to GPU and disk at once."""
    disk = world.machine.add_disk()
    world.executive.register_provider(
        DmaChannelProvider(world.machine, disk, world.memory))
    disk_site = DeviceSite(disk)
    gpu_oc = world.running_offcode(EchoOffcode, world.gpu_site)
    disk_oc = world.running_offcode(EchoOffcode, disk_site)

    config = ChannelConfig(kind=ChannelKind.MULTICAST)
    channel = world.executive.create_channel(config, world.nic_site)
    got = []
    for offcode in (gpu_oc, disk_oc):
        endpoint = world.executive.connect_offcode(channel, offcode)
        endpoint.install_call_handler(
            lambda message, loc=offcode.location: got.append(loc))

    def nic_side():
        yield from channel.creator_endpoint.write(b"pkt", 1024)

    world.sim.run_until_event(world.sim.spawn(nic_side()))
    assert sorted(got) == ["disk0", "gpu0"]
    # Hardware multicast: both crossings recorded, no host memory touched.
    assert world.machine.bus.crossings[("nic0", "gpu0")] == 1
    assert world.machine.bus.crossings[("nic0", "disk0")] == 1
    assert world.machine.bus.host_memory_crossings() == 0


def test_zero_copy_channel_leaves_host_cpu_alone(world):
    """Device-to-device traffic must not consume host CPU at all."""
    gpu_oc = world.running_offcode(EchoOffcode, world.gpu_site)
    channel = world.executive.create_channel(ChannelConfig(),
                                             world.nic_site)
    endpoint = world.executive.connect_offcode(channel, gpu_oc)
    endpoint.install_call_handler(lambda message: None)

    def nic_side():
        for _ in range(10):
            yield from channel.creator_endpoint.write(b"pkt", 1024)

    world.sim.run_until_event(world.sim.spawn(nic_side()))
    assert world.machine.cpu.total_busy == 0


def test_copy_channel_charges_host_cpu_more_than_direct(world):
    costs = {}
    for label, buffering in (("direct", Buffering.DIRECT),
                             ("copy", Buffering.COPY)):
        w = World()
        offcode = w.running_offcode(EchoOffcode, w.nic_site)
        channel = w.executive.create_channel(
            ChannelConfig(buffering=buffering), w.host_site)
        endpoint = w.executive.connect_offcode(channel, offcode)
        endpoint.install_call_handler(lambda message: None)

        def app(w=w, channel=channel):
            for _ in range(20):
                yield from channel.creator_endpoint.write(b"x", 4096)

        w.sim.run_until_event(w.sim.spawn(app()))
        costs[label] = w.machine.cpu.total_busy
    # Without a kernel the copy path still pays descriptor costs; with
    # pinning amortised the direct path must be cheaper.
    assert costs["direct"] <= costs["copy"]
