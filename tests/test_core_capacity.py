"""Tests for capacity-aware placement and concurrent device sharing."""

import pytest

from repro import units
from repro.errors import DeploymentError
from repro.core import HydraRuntime, InterfaceSpec, MethodSpec, Offcode
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.hw import DeviceClass, Machine
from repro.hw.nic import NicSpec
from repro.sim import Simulator
from repro.tivopc import OffloadedClient, OffloadedServer, Testbed, \
    TestbedConfig

IDUMMY = InterfaceSpec.from_methods(
    "ICap", (MethodSpec("Nop", params=(), result="int"),))


class CapOffcode(Offcode):
    BINDNAME = "cap.Widget"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 1


GUID = Guid(777)


def make_runtime(nic_memory=8 * 1024 * 1024, image=64 * 1024):
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic(NicSpec(local_memory_bytes=nic_memory))
    runtime = HydraRuntime(machine)
    odf = OdfDocument(
        bindname="cap.Widget", guid=GUID, interfaces=[IDUMMY],
        targets=[DeviceClassFilter(DeviceClass.NETWORK),
                 DeviceClassFilter(DeviceClass.HOST)],
        image_bytes=image)
    runtime.library.register("/cap.odf", odf)
    runtime.depot.register(GUID, CapOffcode)
    return sim, machine, runtime


def deploy(sim, runtime):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode("/cap.odf")

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


def test_fits_when_memory_available():
    sim, machine, runtime = make_runtime()
    result = deploy(sim, runtime)
    assert result.location == "nic0"


def test_full_device_falls_back_to_host():
    sim, machine, runtime = make_runtime()
    nic = machine.device("nic0")
    # Fill the NIC: leave less than the image size free.
    nic.memory.allocate(nic.memory.free_bytes - 16 * 1024, label="hog")
    result = deploy(sim, runtime)
    assert result.location == "host"


def test_memory_freed_by_stop_makes_device_viable_again():
    sim, machine, runtime = make_runtime(nic_memory=256 * 1024,
                                         image=128 * 1024)
    first = deploy(sim, runtime)
    assert first.location == "nic0"

    def stop():
        yield from runtime.stop_offcode("cap.Widget")

    sim.run_until_event(sim.spawn(stop()))
    second = deploy(sim, runtime)
    assert second.location == "nic0"


def test_mid_deployment_loader_failure_is_wrapped():
    """A race the capacity check cannot see (memory consumed between
    resolve and load) surfaces as DeploymentError, not a bare loader
    exception."""
    sim, machine, runtime = make_runtime()
    nic = machine.device("nic0")
    original_allocate = nic.memory.allocate

    def allocate_then_hog(size, label=""):
        # Consume almost everything the moment the loader asks.
        if label == "cap.Widget":
            raise RuntimeError("simulated race: memory vanished")
        return original_allocate(size, label)

    nic.memory.allocate = allocate_then_hog

    def app():
        yield from runtime.create_offcode("/cap.odf")

    sim.spawn(app())
    with pytest.raises(DeploymentError, match="mid-deployment"):
        sim.run()


def test_tivopc_and_scanner_share_the_smart_disk():
    """Two independent deployments on one device: the TiVoPC recording
    pipeline and a second Offcode contend for the Smart Disk's CPU, and
    both make progress."""
    testbed = Testbed(TestbedConfig(seed=13))
    testbed.start()
    client = OffloadedClient(testbed)
    client.start()
    OffloadedServer(testbed).start()

    class ScannerOffcode(Offcode):
        BINDNAME = "cap.Scanner"
        INTERFACES = (IDUMMY,)
        scanned = 0

        def Nop(self):
            return 1

        def main(self):
            while True:
                yield from self.site.device.read_block(
                    type(self).scanned % 64, 4096)
                yield from self.site.execute(200_000, context="scan")
                type(self).scanned += 1

    scanner_guid = Guid(778)
    runtime = testbed.client_runtime
    runtime.library.register("/scanner.odf", OdfDocument(
        bindname="cap.Scanner", guid=scanner_guid, interfaces=[IDUMMY],
        targets=[DeviceClassFilter(DeviceClass.STORAGE)],
        image_bytes=16 * 1024))
    runtime.depot.register(scanner_guid, ScannerOffcode)

    def second_app():
        yield testbed.sim.timeout(units.s_to_ns(1))
        yield from runtime.create_offcode("/scanner.odf")

    testbed.sim.spawn(second_app())
    testbed.run(8)

    scanner = runtime.get_offcode("cap.Scanner")
    assert scanner.location == "disk0"
    assert ScannerOffcode.scanned > 10          # scanner made progress
    assert client.chunks_received > 1000        # streaming kept up
    assert client.bytes_recorded > 1_000_000
    # The disk CPU served both tenants.
    contexts = testbed.client_disk.cpu.busy_by_context
    assert contexts.get("scan", 0) > 0
    assert contexts.get("streamer", 0) > 0
    # The host still did nothing.
    assert testbed.client.machine.cpu.utilization() < 0.04
