"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import InterruptError, ProcessError, SchedulingError
from repro.sim import Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(100)
        fired.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert fired == [100]
    assert sim.now == 100


def test_timeouts_fire_in_order():
    sim = Simulator()
    order = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(waiter(sim, 30, "c"))
    sim.spawn(waiter(sim, 10, "a"))
    sim.spawn(waiter(sim, 20, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo_by_schedule_order():
    sim = Simulator()
    order = []

    def waiter(sim, tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in "abcde":
        sim.spawn(waiter(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_zero_delay_timeout():
    sim = Simulator()
    out = []

    def proc(sim):
        yield sim.timeout(0)
        out.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert out == [0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.timeout(-1)


def test_process_return_value_via_join():
    sim = Simulator()
    result = []

    def child(sim):
        yield sim.timeout(7)
        return 42

    def parent(sim):
        value = yield sim.spawn(child(sim))
        result.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert result == [(7, 42)]


def test_join_already_finished_process():
    sim = Simulator()
    result = []

    def child(sim):
        yield sim.timeout(1)
        return "done"

    def parent(sim, proc):
        yield sim.timeout(50)
        value = yield proc
        result.append((sim.now, value))

    proc = sim.spawn(child(sim))
    sim.spawn(parent(sim, proc))
    sim.run()
    assert result == [(50, "done")]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_escapes_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.spawn(bad(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 3

    with pytest.raises(ProcessError):
        sim.spawn(not_a_generator)  # type: ignore[arg-type]


def test_yield_non_event_rejected():
    sim = Simulator()

    def bad(sim):
        yield "not an event"  # type: ignore[misc]

    sim.spawn(bad(sim))
    with pytest.raises(ProcessError):
        sim.run()


def test_yield_bare_int_sleeps():
    # A bare non-negative int is the blessed zero-allocation sleep token
    # (what clock.after(dt) returns when no fn/value is attached).
    sim = Simulator()
    out = []

    def sleeper(sim):
        yield 250
        out.append(sim.now)
        yield 0
        out.append(sim.now)

    sim.spawn(sleeper(sim))
    sim.run()
    assert out == [250, 250]


def test_manual_event_succeed():
    sim = Simulator()
    out = []
    gate = sim.event()

    def waiter(sim, gate):
        value = yield gate
        out.append((sim.now, value))

    def opener(sim, gate):
        yield sim.timeout(33)
        gate.succeed("open")

    sim.spawn(waiter(sim, gate))
    sim.spawn(opener(sim, gate))
    sim.run()
    assert out == [(33, "open")]


def test_event_triggered_twice_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(ProcessError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(ProcessError):
        _ = event.value


def test_interrupt_wakes_waiter():
    sim = Simulator()
    out = []

    def sleeper(sim):
        try:
            yield sim.timeout(1_000_000)
        except InterruptError as exc:
            out.append((sim.now, exc.cause))

    def interrupter(sim, proc):
        yield sim.timeout(10)
        proc.interrupt("wakeup")

    proc = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, proc))
    sim.run()
    assert out == [(10, "wakeup")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(ProcessError):
        proc.interrupt()


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def ticker(sim):
        while True:
            yield sim.timeout(10)

    sim.spawn(ticker(sim))
    sim.run(until=95)
    assert sim.now == 95
    sim.run(until=105)
    assert sim.now == 105


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.run(until=100)
    with pytest.raises(SchedulingError):
        sim.run(until=50)


def test_run_until_event():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(42)
        return "ok"

    proc = sim.spawn(worker(sim))
    assert sim.run_until_event(proc) == "ok"
    assert sim.now == 42


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(ProcessError, match="deadlock"):
        sim.run_until_event(event)


def test_any_of_triggers_on_first():
    sim = Simulator()
    out = []

    def proc(sim):
        t_short = sim.timeout(5, "short")
        t_long = sim.timeout(50, "long")
        result = yield sim.any_of([t_short, t_long])
        out.append((sim.now, sorted(result.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [(5, ["short"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    out = []

    def proc(sim):
        events = [sim.timeout(d, d) for d in (5, 20, 10)]
        result = yield sim.all_of(events)
        out.append((sim.now, sorted(result.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert out == [(20, [5, 10, 20])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    out = []

    def proc(sim):
        yield sim.all_of([])
        out.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert out == [0]


def test_nested_processes():
    sim = Simulator()
    trace = []

    def leaf(sim, tag):
        yield sim.timeout(3)
        trace.append(tag)
        return tag

    def mid(sim):
        a = yield sim.spawn(leaf(sim, "a"))
        b = yield sim.spawn(leaf(sim, "b"))
        return a + b

    def root(sim):
        value = yield sim.spawn(mid(sim))
        trace.append(value)

    sim.spawn(root(sim))
    sim.run()
    assert trace == ["a", "b", "ab"]
    assert sim.now == 6


def test_peek_reports_next_timestamp():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(17)
    assert sim.peek() == 17


def test_many_processes_deterministic():
    def run_once():
        sim = Simulator()
        log = []

        def worker(sim, i):
            for k in range(5):
                yield sim.timeout((i * 7 + k * 3) % 11 + 1)
                log.append((sim.now, i, k))

        for i in range(20):
            sim.spawn(worker(sim, i))
        sim.run()
        return log

    assert run_once() == run_once()
