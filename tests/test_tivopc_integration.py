"""Integration tests: the full testbed, all server and client variants.

Short runs (a few simulated seconds) with loose bounds; the benchmarks
carry the precise paper-vs-measured comparisons.
"""

import pytest

from repro.tivopc import (
    MeasurementClient,
    OffloadedClient,
    OffloadedServer,
    SendfileServer,
    SimpleServer,
    Testbed,
    TestbedConfig,
    UserSpaceClient,
)


@pytest.fixture()
def testbed():
    tb = Testbed(TestbedConfig(seed=3))
    tb.start()
    return tb


# -- testbed assembly -------------------------------------------------------------------

def test_testbed_topology(testbed):
    assert testbed.switch.stations() == ["client", "client-disk", "nas",
                                         "server"]
    assert testbed.client_disk.remote_backed
    assert "gpu0" in testbed.client.machine.devices
    assert testbed.server.machine.spec.cpu.frequency_hz == \
        pytest.approx(2.4e9)
    assert testbed.server.machine.l2.config.size_bytes == 256 * 1024


def test_testbed_start_idempotent(testbed):
    testbed.start()   # second call is a no-op
    testbed.run(0.5)
    assert testbed.server.kernel.ticks > 0
    assert testbed.client.kernel.ticks > 0


def test_idle_baseline(testbed):
    testbed.run(8)
    for host in (testbed.server, testbed.client):
        util = host.machine.cpu.utilization()
        assert 0.02 < util < 0.04
        assert host.machine.l2.stats.misses > 0


# -- server variants --------------------------------------------------------------------

def drive_server(testbed, server_cls, seconds=6):
    client = MeasurementClient(testbed)
    client.start()
    server = server_cls(testbed)
    server.start()
    testbed.run(seconds)
    return server, client


def test_simple_server_stream_reaches_client(testbed):
    server, client = drive_server(testbed, SimpleServer)
    assert server.packets_sent > 700
    # A handful may be in flight; all others arrived.
    assert client.jitter.packet_count >= server.packets_sent - 5
    stats = client.jitter.stats()
    assert 6.5 < stats.average < 7.5


def test_sendfile_server_faster_than_simple(testbed):
    server, client = drive_server(testbed, SendfileServer)
    stats = client.jitter.stats()
    assert 5.7 < stats.average < 6.4


def test_offloaded_server_deploys_and_paces_exactly(testbed):
    server, client = drive_server(testbed, OffloadedServer)
    assert server.broadcast is not None
    assert server.broadcast.location == "nic0"
    assert server.file.location == "nic0"
    stats = client.jitter.stats()
    assert stats.average == pytest.approx(5.0, abs=0.01)
    # The host CPU did not serve packets: its share ~= the idle share.
    util = testbed.server.machine.cpu.utilization()
    assert util < 0.04


def test_offloaded_server_reads_movie_from_nas(testbed):
    server, client = drive_server(testbed, OffloadedServer)
    assert server.file.bytes_read > 500 * 1024
    assert testbed.nfs_server.reads_served > 0


def test_server_stop_halts_stream(testbed):
    server, client = drive_server(testbed, SimpleServer, seconds=3)
    server.stop()
    count = client.jitter.packet_count
    testbed.run(2)
    assert client.jitter.packet_count <= count + 2


# -- client variants ----------------------------------------------------------------------

def test_user_space_client_full_pipeline(testbed):
    client = UserSpaceClient(testbed)
    client.start()
    OffloadedServer(testbed).start()
    testbed.run(8)
    assert client.chunks_received > 1000
    assert client.frames_shown > 100
    assert client.bytes_recorded > 1_000_000
    # Recording actually landed on the NAS.
    assert testbed.nfs_server.files.get("recording.mpg", 0) > 500_000
    # Host CPU paid for it.
    assert testbed.client.machine.cpu.utilization() > 0.05


def test_offloaded_client_full_pipeline(testbed):
    client = OffloadedClient(testbed)
    client.start()
    OffloadedServer(testbed).start()
    testbed.run(8)
    assert client.chunks_received > 1000
    assert client.frames_shown > 100
    assert client.bytes_recorded > 1_000_000
    assert testbed.nfs_server.files.get("recording.mpg", 0) > 500_000
    # "no components left on the host processor": idle-level CPU.
    assert testbed.client.machine.cpu.utilization() < 0.04
    # Figure-8 placements held.
    assert client.net_streamer.location == "nic0"
    assert client.disk_streamer.location == "disk0"
    assert client.decoder.location == "gpu0"
    assert client.display.location == "gpu0"
    assert client.file.location == "disk0"


def test_offloaded_client_multicast_single_transaction(testbed):
    client = OffloadedClient(testbed)
    client.start()
    OffloadedServer(testbed).start()
    testbed.run(4)
    bus = testbed.client.machine.bus
    # Each chunk crossed NIC->GPU and NIC->disk...
    assert bus.crossings[("nic0", "gpu0")] > 500
    assert bus.crossings[("nic0", "disk0")] > 500
    # ...but host memory stayed out of the data path (only the few
    # deployment-time image transfers touched it).
    assert bus.host_memory_crossings() < 30


def test_offloaded_client_playback(testbed):
    client = OffloadedClient(testbed)
    client.start()
    server = OffloadedServer(testbed)
    server.start()
    testbed.run(5)
    server.stop()
    testbed.run(0.5)
    frames_live = client.frames_shown
    client.start_playback()
    testbed.run(3)
    # Playback re-decoded stored chunks through the same GPU pipeline.
    assert client.frames_shown > frames_live
    assert client.file.bytes_read > 0


def test_both_clients_have_same_output_different_cost(testbed):
    """The framework's promise: identical application behaviour, the
    difference is *where* it runs."""
    results = {}
    for kind, cls in (("user", UserSpaceClient),
                      ("offloaded", OffloadedClient)):
        tb = Testbed(TestbedConfig(seed=9))
        tb.start()
        client = cls(tb)
        client.start()
        OffloadedServer(tb).start()
        tb.run(6)
        results[kind] = (client.frames_shown, client.bytes_recorded,
                         tb.client.machine.cpu.utilization())
    user_frames, user_bytes, user_cpu = results["user"]
    off_frames, off_bytes, off_cpu = results["offloaded"]
    assert abs(user_frames - off_frames) <= 2
    assert abs(user_bytes - off_bytes) <= 4096
    assert off_cpu < user_cpu / 2
