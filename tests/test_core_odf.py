"""Tests for ODF parsing, serialization and the ODF library."""

import pytest

from repro.errors import ODFError
from repro.core.guid import Guid, guid_from_name
from repro.core.layout.constraints import ConstraintType
from repro.core.odf import (
    DeviceClassFilter,
    OdfDocument,
    OdfImport,
    OdfLibrary,
    SoftwareRequirements,
)
from repro.hw.device import DeviceClass, DeviceSpec

# The paper's Figure 4, as well-formed XML.
FIGURE4_ODF = """
<offcode>
  <package>
    <bindname>hydra.net.utils.Socket</bindname>
    <GUID>7070714</GUID>
    <interface>
      <include>"/offcodes/socket.wsdl"</include>
    </interface>
  </package>
  <sw-env>
    <import>
      <file>"/offcodes/checksum.odf"</file>
      <bindname>hydra.net.utils.Checksum</bindname>
      <reference type="Pull" pri="0"/>
      <GUID>6060843</GUID>
    </import>
  </sw-env>
  <targets>
    <device-class id="0x0001">
      <name>Network Device</name>
      <bus>pci</bus>
      <mac>ethernet</mac>
      <vendor>3COM</vendor>
    </device-class>
  </targets>
</offcode>
"""

SOCKET_WSDL = """
<definitions name="Socket" guid="7070714">
  <portType name="ISocket">
    <operation name="Send" result="xsd:int">
      <part name="data" type="xsd:bytes"/>
    </operation>
  </portType>
</definitions>
"""


def library_with_figure4():
    library = OdfLibrary()
    library.register_wsdl("/offcodes/socket.wsdl", SOCKET_WSDL)
    library.register("/offcodes/socket.odf", FIGURE4_ODF)
    checksum = OdfDocument(
        bindname="hydra.net.utils.Checksum", guid=Guid(6060843),
        targets=[DeviceClassFilter(device_class=DeviceClass.NETWORK)])
    library.register("/offcodes/checksum.odf", checksum)
    return library


def test_parse_figure4():
    library = library_with_figure4()
    document = library.load("/offcodes/socket.odf")
    assert document.bindname == "hydra.net.utils.Socket"
    assert document.guid == Guid(7070714)
    assert len(document.interfaces) == 1
    assert document.interfaces[0].name == "ISocket"
    assert len(document.imports) == 1
    imp = document.imports[0]
    assert imp.bindname == "hydra.net.utils.Checksum"
    assert imp.reference is ConstraintType.PULL
    assert imp.guid == Guid(6060843)
    assert len(document.targets) == 1
    target = document.targets[0]
    assert target.device_class == DeviceClass.NETWORK
    assert target.bus == "pci"
    assert target.vendor == "3COM"
    assert target.class_id == 1
    assert not document.host_capable


def test_odf_roundtrip_through_xml():
    library = library_with_figure4()
    document = library.load("/offcodes/socket.odf")
    xml = document.to_xml()
    again = OdfDocument.from_xml(xml)
    assert again.bindname == document.bindname
    assert again.guid == document.guid
    assert [i.bindname for i in again.imports] == ["hydra.net.utils.Checksum"]
    assert again.imports[0].reference is ConstraintType.PULL
    assert again.targets[0].device_class == DeviceClass.NETWORK
    assert again.interfaces[0].name == "ISocket"


def test_odf_guid_defaults_from_bindname():
    document = OdfDocument.from_xml(
        "<offcode><package><bindname>a.b</bindname></package></offcode>")
    assert document.guid == guid_from_name("a.b")


def test_odf_validation_errors():
    with pytest.raises(ODFError):
        OdfDocument.from_xml("<wrong/>")
    with pytest.raises(ODFError):
        OdfDocument.from_xml("<offcode/>")          # no package
    with pytest.raises(ODFError):
        OdfDocument.from_xml("not xml <<<")
    with pytest.raises(ODFError):
        OdfDocument.from_xml(
            "<offcode><package><bindname>x</bindname></package>"
            "<targets><device-class><name>toaster</name></device-class>"
            "</targets></offcode>")


def test_odf_duplicate_imports_rejected():
    imp = OdfImport(file="/a.odf", bindname="peer", guid=Guid(1))
    with pytest.raises(ODFError):
        OdfDocument(bindname="x", guid=Guid(2), imports=[imp, imp])


def test_device_class_filter_matching():
    from repro.hw.bus import Bus
    from repro.hw.device import ProgrammableDevice
    from repro.sim import Simulator
    sim = Simulator()
    device = ProgrammableDevice(
        sim, DeviceSpec(name="n", device_class=DeviceClass.NETWORK,
                        bus_type="pci", mac_type="ethernet", vendor="3COM"),
        Bus(sim))
    assert DeviceClassFilter(DeviceClass.NETWORK).matches(device)
    assert DeviceClassFilter(DeviceClass.NETWORK, vendor="3com"
                             ).matches(device)
    assert not DeviceClassFilter(DeviceClass.STORAGE).matches(device)
    assert not DeviceClassFilter(DeviceClass.NETWORK, bus="usb"
                                 ).matches(device)
    with pytest.raises(ODFError):
        DeviceClassFilter("toaster")


def test_software_requirements():
    spec = DeviceSpec(name="n", device_class=DeviceClass.NETWORK,
                      local_memory_bytes=1 << 20, has_mmu=False,
                      has_dynamic_alloc=True,
                      features=frozenset({"scatter-gather"}))
    assert SoftwareRequirements().satisfied_by(spec)
    assert SoftwareRequirements(min_memory_bytes=1 << 19).satisfied_by(spec)
    assert not SoftwareRequirements(min_memory_bytes=1 << 21
                                    ).satisfied_by(spec)
    assert not SoftwareRequirements(needs_mmu=True).satisfied_by(spec)
    assert SoftwareRequirements(
        features=("scatter-gather",)).satisfied_by(spec)
    assert not SoftwareRequirements(features=("mpeg-assist",)
                                    ).satisfied_by(spec)


def test_requirements_roundtrip():
    document = OdfDocument(
        bindname="x", guid=Guid(5),
        requirements=SoftwareRequirements(
            min_memory_bytes=4096, needs_dynamic_alloc=True,
            features=("scatter-gather",)))
    again = OdfDocument.from_xml(document.to_xml())
    assert again.requirements == document.requirements


# -- library ------------------------------------------------------------------------

def test_library_duplicate_registration_rejected():
    library = OdfLibrary()
    library.register("/a.odf", OdfDocument(bindname="a", guid=Guid(1)))
    with pytest.raises(ODFError):
        library.register("/a.odf", OdfDocument(bindname="a", guid=Guid(1)))


def test_library_missing_path():
    library = OdfLibrary()
    with pytest.raises(ODFError):
        library.load("/missing.odf")
    with pytest.raises(ODFError):
        library.load_wsdl("/missing.wsdl")


def test_library_path_normalization():
    library = OdfLibrary()
    library.register("a.odf", OdfDocument(bindname="a", guid=Guid(1)))
    assert library.load("/a.odf").bindname == "a"
    assert library.load('"a.odf"').bindname == "a"


def test_library_closure_order_and_dedup():
    library = OdfLibrary()
    c = OdfDocument(bindname="c", guid=Guid(3))
    b = OdfDocument(bindname="b", guid=Guid(2), imports=[
        OdfImport(file="/c.odf", bindname="c", guid=Guid(3))])
    a = OdfDocument(bindname="a", guid=Guid(1), imports=[
        OdfImport(file="/b.odf", bindname="b", guid=Guid(2)),
        OdfImport(file="/c.odf", bindname="c", guid=Guid(3),
                  reference=ConstraintType.GANG),
    ])
    for path, doc in (("/a.odf", a), ("/b.odf", b), ("/c.odf", c)):
        library.register(path, doc)
    closure = library.load_closure("/a.odf")
    assert [d.bindname for d in closure] == ["a", "b", "c"]


def test_library_closure_handles_cycles():
    library = OdfLibrary()
    a = OdfDocument(bindname="a", guid=Guid(1), imports=[
        OdfImport(file="/b.odf", bindname="b", guid=Guid(2),
                  reference=ConstraintType.GANG)])
    b = OdfDocument(bindname="b", guid=Guid(2), imports=[
        OdfImport(file="/a.odf", bindname="a", guid=Guid(1),
                  reference=ConstraintType.GANG)])
    library.register("/a.odf", a)
    library.register("/b.odf", b)
    closure = library.load_closure("/a.odf")
    assert sorted(d.bindname for d in closure) == ["a", "b"]
