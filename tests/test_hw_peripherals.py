"""Tests for NIC, GPU, SmartDisk, power model and machine assembly."""

import pytest

from repro import units
from repro.errors import DeviceError, HardwareError
from repro.hw import (
    Bus,
    DeviceClass,
    Gpu,
    Machine,
    MachineSpec,
    Nic,
    PowerModel,
    SmartDisk,
)
from repro.hw.bus import HOST_MEMORY
from repro.hw.cpu import Cpu, CpuSpec
from repro.sim import Simulator


class FakePacket:
    def __init__(self, size_bytes=1024):
        self.size_bytes = size_bytes


# -- NIC -----------------------------------------------------------------------

def test_nic_host_rx_path_dma_and_interrupt():
    sim = Simulator()
    bus = Bus(sim)
    nic = Nic(sim, bus)
    interrupts = []
    nic.set_interrupt_handler(lambda vec, p: interrupts.append(vec))
    nic.receive_packet(FakePacket())
    sim.run()
    assert nic.rx_packets == 1
    assert len(nic.host_rx_ring) == 1
    assert interrupts == ["rx"]
    assert bus.crossings[("nic0", HOST_MEMORY)] == 1


def test_nic_offloaded_rx_path_no_host_crossing():
    sim = Simulator()
    bus = Bus(sim)
    nic = Nic(sim, bus)
    handled = []

    def handler(packet):
        yield from nic.run_on_device(1000, context="offcode")
        handled.append(packet)

    nic.install_rx_offload(handler)
    nic.receive_packet(FakePacket())
    sim.run()
    assert handled and nic.rx_offloaded
    assert len(nic.host_rx_ring) == 0
    assert bus.total_crossings() == 0


def test_nic_double_offload_install_rejected():
    sim = Simulator()
    nic = Nic(sim, Bus(sim))
    nic.install_rx_offload(lambda p: iter(()))
    with pytest.raises(DeviceError):
        nic.install_rx_offload(lambda p: iter(()))
    nic.remove_rx_offload()
    nic.install_rx_offload(lambda p: iter(()))  # ok after removal


def test_nic_rx_ring_drops_when_full():
    sim = Simulator()
    nic = Nic(sim, Bus(sim))
    nic.host_rx_ring.capacity = 2
    for _ in range(5):
        nic.receive_packet(FakePacket(64))
    sim.run()
    assert len(nic.host_rx_ring) == 2
    assert nic.host_rx_ring.dropped == 3


def test_nic_transmit_requires_wire():
    sim = Simulator()
    nic = Nic(sim, Bus(sim))

    def proc():
        yield from nic.transmit_from_device(FakePacket())

    sim.spawn(proc())
    with pytest.raises(DeviceError):
        sim.run()


def test_nic_transmit_paths():
    sim = Simulator()
    bus = Bus(sim)
    nic = Nic(sim, bus)
    wire = []
    nic.attach_wire(wire.append)

    def proc():
        yield from nic.transmit_from_host(FakePacket(500))
        yield from nic.transmit_from_device(FakePacket(500))

    sim.spawn(proc())
    sim.run()
    assert len(wire) == 2
    assert nic.tx_packets == 2
    # Only the host-path transmit crossed the bus.
    assert bus.crossings == {(HOST_MEMORY, "nic0"): 1}


# -- GPU -------------------------------------------------------------------------

def test_gpu_decode_and_display_stay_on_device():
    sim = Simulator()
    bus = Bus(sim)
    gpu = Gpu(sim, bus)
    out = {}

    def proc():
        out["raw"] = yield from gpu.decode_frame(1000)
        yield from gpu.display_frame(out["raw"])

    sim.spawn(proc())
    sim.run()
    assert out["raw"] == 20_000
    assert gpu.frames_displayed == 1
    assert gpu.bytes_decoded == 1000
    assert bus.total_crossings() == 0


def test_gpu_host_blit_crosses_bus():
    sim = Simulator()
    bus = Bus(sim)
    gpu = Gpu(sim, bus)

    def proc():
        yield from gpu.host_blit(20_000)

    sim.spawn(proc())
    sim.run()
    assert gpu.frames_displayed == 1
    assert bus.crossings[(HOST_MEMORY, "gpu0")] == 1


def test_gpu_framebuffer_reserved():
    sim = Simulator()
    gpu = Gpu(sim, Bus(sim), framebuffer_bytes=1024)
    assert gpu.framebuffer.size == 1024
    assert gpu.memory.used_bytes >= 1024


# -- SmartDisk --------------------------------------------------------------------

def test_disk_write_then_read_roundtrip():
    sim = Simulator()
    disk = SmartDisk(sim, Bus(sim))
    out = {}

    def proc():
        yield from disk.write_block(7, 4096)
        out["n"] = yield from disk.read_block(7)

    sim.spawn(proc())
    sim.run()
    assert out["n"] == 4096
    assert disk.has_block(7)
    assert disk.blocks_stored == 1
    assert disk.reads == 1 and disk.writes == 1


def test_disk_read_missing_block_returns_zero():
    sim = Simulator()
    disk = SmartDisk(sim, Bus(sim))
    out = {}

    def proc():
        out["n"] = yield from disk.read_block(99)

    sim.spawn(proc())
    sim.run()
    assert out["n"] == 0


def test_disk_remote_backing_is_used():
    sim = Simulator()
    disk = SmartDisk(sim, Bus(sim))
    calls = []

    class Backing:
        def read_block(self, lba, size):
            calls.append(("r", lba))
            yield sim.timeout(10)

        def write_block(self, lba, size):
            calls.append(("w", lba))
            yield sim.timeout(10)

    disk.attach_backing(Backing())
    assert disk.remote_backed

    def proc():
        yield from disk.write_block(1, 512)
        yield from disk.read_block(1, 512)

    sim.spawn(proc())
    sim.run()
    assert calls == [("w", 1), ("r", 1)]


def test_disk_rejects_bad_backing():
    sim = Simulator()
    disk = SmartDisk(sim, Bus(sim))
    with pytest.raises(DeviceError):
        disk.attach_backing(object())


def test_disk_validates_lba_and_size():
    sim = Simulator()
    disk = SmartDisk(sim, Bus(sim))

    def bad():
        yield from disk.write_block(-1, 512)

    sim.spawn(bad())
    with pytest.raises(DeviceError):
        sim.run()


# -- power ------------------------------------------------------------------------

def test_power_idle_vs_active():
    sim = Simulator()
    cpu = Cpu(sim, CpuSpec(frequency_hz=1e9, active_watts=60.0, idle_watts=10.0))
    model = PowerModel()
    model.register(cpu)

    def job():
        yield from cpu.execute(units.s_to_ns(1), context="x")
        yield sim.timeout(units.s_to_ns(1))

    sim.spawn(job())
    sim.run()
    energy = model.component_energy(cpu.name)
    assert energy.busy_seconds == pytest.approx(1.0)
    assert energy.idle_seconds == pytest.approx(1.0)
    assert energy.joules == pytest.approx(70.0)
    assert energy.average_watts == pytest.approx(35.0)


def test_power_duplicate_registration_rejected():
    sim = Simulator()
    cpu = Cpu(sim)
    model = PowerModel()
    model.register(cpu)
    with pytest.raises(ValueError):
        model.register(cpu)


def test_power_orders_of_magnitude_host_vs_xscale():
    """The paper's argument 3: P4 vs XScale is ~two orders of magnitude."""
    sim = Simulator()
    host = Machine(sim, MachineSpec(name="h"))
    nic = host.add_nic()
    ratio = host.cpu.spec.active_watts / nic.cpu.spec.active_watts
    assert ratio > 100


# -- machine ----------------------------------------------------------------------

def test_machine_assembles_testbed():
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    gpu = machine.add_gpu()
    disk = machine.add_disk()
    assert machine.device("nic0") is nic
    assert machine.devices_of_class(DeviceClass.DISPLAY) == [gpu]
    assert machine.devices_of_class(DeviceClass.STORAGE) == [disk]
    assert set(machine.bus.endpoints) >= {"nic0", "gpu0", "disk0", HOST_MEMORY}
    assert machine.l2.config.size_bytes == 256 * 1024


def test_machine_duplicate_device_rejected():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    with pytest.raises(HardwareError):
        machine.add_nic()


def test_machine_unknown_device_lookup():
    sim = Simulator()
    machine = Machine(sim)
    with pytest.raises(HardwareError):
        machine.device("nope")
