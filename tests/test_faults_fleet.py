"""FleetChaos: the deterministic host-fault schedule."""

import pytest

from repro.errors import ReproError
from repro.faults.fleet import (
    CHAOS_EXIT_CODE,
    ChaosKill,
    ChaosStall,
    FleetChaos,
)


def test_validation_rejects_negative_picks():
    with pytest.raises(ReproError):
        FleetChaos(kills=((0, -1),))
    with pytest.raises(ReproError):
        FleetChaos(stalls=((0, 0, -1.0),))
    with pytest.raises(ReproError):
        FleetChaos(slows=((0, -2, 0.1),))


def test_seeded_is_deterministic_and_distinct():
    a = FleetChaos.seeded(7, shards=8, kills=2, stalls=1, slows=1)
    b = FleetChaos.seeded(7, shards=8, kills=2, stalls=1, slows=1)
    assert a == b
    assert FleetChaos.seeded(8, shards=8, kills=2, stalls=1, slows=1) != a
    picked = ([k for k, _ in a.kills]
              + [k for k, _, _ in a.stalls]
              + [k for k, _, _ in a.slows])
    assert len(picked) == len(set(picked)) == 4
    assert all(0 <= shard < 8 for shard in picked)
    with pytest.raises(ReproError):
        FleetChaos.seeded(7, shards=2, kills=3)


def test_poison_covers_every_attempt():
    chaos = FleetChaos.poison("s", max_retries=2)
    assert chaos.kills == (("s", 0), ("s", 1), ("s", 2))


def test_in_process_apply_raises_instead_of_exiting():
    chaos = FleetChaos(kills=((3, 0),), stalls=((4, 1, 9.0),))
    with pytest.raises(ChaosKill):
        chaos.apply(3, 0, in_process=True)
    with pytest.raises(ChaosStall):
        chaos.apply(4, 1, in_process=True)
    # Unaddressed picks are untouched, in or out of process.
    chaos.apply(3, 1, in_process=True)
    chaos.apply(99, 0)


def test_slow_sleeps_for_the_pick(monkeypatch):
    naps = []
    monkeypatch.setattr("repro.faults.fleet.time.sleep", naps.append)
    chaos = FleetChaos(slows=((2, 0, 0.25),))
    chaos.apply(2, 0, in_process=True)     # slows apply in-process too
    chaos.apply(2, 1, in_process=True)
    assert naps == [0.25]


def test_describe_reads_like_a_reproduce_command():
    chaos = FleetChaos(kills=((1, 0),), stalls=((2, 0, 30.0),),
                       slows=((3, 1, 0.2),))
    text = chaos.describe()
    assert "kill 1:0" in text
    assert "stall 2:0(30s)" in text
    assert "slow 3:1(+0.2s)" in text
    assert FleetChaos().describe() == "no faults"
    assert CHAOS_EXIT_CODE == 117
