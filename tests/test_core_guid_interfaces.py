"""Tests for GUIDs, interface specs and WSDL round-tripping."""

import pytest

from repro.errors import HydraError, InterfaceError
from repro.core.guid import Guid, guid_from_name, parse_guid
from repro.core.interfaces import IOFFCODE, InterfaceSpec, MethodSpec
from repro.core.wsdl import parse_wsdl, write_wsdl


# -- guid -------------------------------------------------------------------------

def test_guid_equality_and_hash():
    assert Guid(7070714) == Guid(7070714)
    assert Guid(1) != Guid(2)
    assert len({Guid(5), Guid(5), Guid(6)}) == 2


def test_guid_immutable():
    guid = Guid(12)
    with pytest.raises(AttributeError):
        guid.value = 13


def test_guid_range_validation():
    with pytest.raises(HydraError):
        Guid(0)
    with pytest.raises(HydraError):
        Guid(-5)
    with pytest.raises(HydraError):
        Guid(1 << 64)
    with pytest.raises(HydraError):
        Guid("7")  # type: ignore[arg-type]


def test_guid_from_name_stable_and_distinct():
    assert guid_from_name("hydra.Heap") == guid_from_name("hydra.Heap")
    assert guid_from_name("hydra.Heap") != guid_from_name("hydra.Runtime")
    with pytest.raises(HydraError):
        guid_from_name("")


def test_parse_guid_formats():
    assert parse_guid("7070714") == Guid(7070714)
    assert parse_guid("0x10") == Guid(16)
    assert parse_guid(42) == Guid(42)
    assert parse_guid(Guid(9)) == Guid(9)
    with pytest.raises(HydraError):
        parse_guid("not-a-number")
    with pytest.raises(HydraError):
        parse_guid("  ")


# -- interfaces ----------------------------------------------------------------------

def test_method_spec_validation():
    with pytest.raises(InterfaceError):
        MethodSpec("not valid")
    with pytest.raises(InterfaceError):
        MethodSpec("m", params=(("x", "quaternion"),))
    with pytest.raises(InterfaceError):
        MethodSpec("m", result="quaternion")
    with pytest.raises(InterfaceError):
        MethodSpec("m", result="int", one_way=True)


def test_interface_method_lookup():
    spec = InterfaceSpec.from_methods(
        "ICache", (MethodSpec("Get", params=(("key", "string"),),
                              result="any"),))
    assert spec.method("Get").arity == 1
    assert spec.has_method("Get")
    assert not spec.has_method("Put")
    with pytest.raises(InterfaceError):
        spec.method("Put")


def test_interface_duplicate_methods_rejected():
    with pytest.raises(InterfaceError):
        InterfaceSpec.from_methods(
            "I", (MethodSpec("A"), MethodSpec("A")))


def test_ioffcode_shape():
    assert IOFFCODE.has_method("Initialize")
    assert IOFFCODE.has_method("StartOffcode")
    assert IOFFCODE.has_method("StopOffcode")
    assert IOFFCODE.method("QueryInterface").arity == 1


# -- WSDL -----------------------------------------------------------------------------

SAMPLE_WSDL = """
<definitions name="Checksum" guid="6060843">
  <portType name="IChecksum">
    <operation name="Compute" result="xsd:int">
      <part name="data" type="xsd:bytes"/>
    </operation>
    <operation name="Reset" oneWay="true"/>
  </portType>
</definitions>
"""


def test_parse_wsdl_sample():
    spec = parse_wsdl(SAMPLE_WSDL)
    assert spec.name == "IChecksum"
    assert spec.guid.value == 6060843
    compute = spec.method("Compute")
    assert compute.params == (("data", "bytes"),)
    assert compute.result == "int"
    assert spec.method("Reset").one_way


def test_wsdl_roundtrip():
    spec = parse_wsdl(SAMPLE_WSDL)
    again = parse_wsdl(write_wsdl(spec))
    assert again == spec


def test_wsdl_guid_derived_when_absent():
    spec = parse_wsdl("""<definitions><portType name="IFoo">
        <operation name="Bar"/></portType></definitions>""")
    assert spec.guid == guid_from_name("IFoo")


def test_wsdl_errors():
    with pytest.raises(InterfaceError):
        parse_wsdl("<not-definitions/>")
    with pytest.raises(InterfaceError):
        parse_wsdl("<definitions/>")
    with pytest.raises(InterfaceError):
        parse_wsdl("not xml at all <<<")
    with pytest.raises(InterfaceError):
        parse_wsdl("""<definitions><portType name="I">
            <operation name="M" result="xsd:matrix"/>
            </portType></definitions>""")
