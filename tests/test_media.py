"""Tests for the media substrate: GOP generator, stream config, decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.errors import ReproError
from repro.hostos.kernel import Kernel
from repro.hw import Machine
from repro.media import (
    DECODE_EXPANSION,
    Frame,
    FrameType,
    GopConfig,
    GopGenerator,
    SoftwareDecoder,
    StreamConfig,
    chunk_schedule,
)
from repro.sim import RandomStreams, Simulator


# -- GOP generator ------------------------------------------------------------------

def test_gop_pattern_ibbp():
    generator = GopGenerator()
    types = [generator.frame_type_at(i) for i in range(9)]
    assert types == ["I", "B", "B", "P", "B", "B", "P", "B", "B"]
    assert generator.frame_type_at(9) == FrameType.I


def test_gop_frame_sizes_ordered():
    generator = GopGenerator(GopConfig(size_cv=0.0))
    frames = generator.gop()
    i_frames = [f for f in frames if f.frame_type == FrameType.I]
    p_frames = [f for f in frames if f.frame_type == FrameType.P]
    b_frames = [f for f in frames if f.frame_type == FrameType.B]
    assert len(i_frames) == 1 and len(p_frames) == 2 and len(b_frames) == 6
    assert i_frames[0].size_bytes > p_frames[0].size_bytes \
        > b_frames[0].size_bytes


def test_gop_indices_monotonic():
    generator = GopGenerator()
    frames = generator.frames(20)
    assert [f.index for f in frames] == list(range(20))


def test_gop_deterministic_with_seed():
    import random
    a = GopGenerator(rng=random.Random(5)).frames(10)
    b = GopGenerator(rng=random.Random(5)).frames(10)
    assert [f.size_bytes for f in a] == [f.size_bytes for f in b]


def test_gop_config_validation():
    with pytest.raises(ReproError):
        GopConfig(gop_length=0)
    with pytest.raises(ReproError):
        GopConfig(size_cv=1.5)
    with pytest.raises(ReproError):
        Frame(index=0, frame_type="I", size_bytes=0)


@given(count=st.integers(min_value=1, max_value=60))
@settings(max_examples=30, deadline=None)
def test_property_gop_respects_bitrate_scale(count):
    generator = GopGenerator(GopConfig(size_cv=0.1))
    frames = generator.frames(count)
    assert all(f.size_bytes >= 64 for f in frames)
    # I-frames dominate the byte budget over whole GOPs.
    if count >= 18:
        total_i = sum(f.size_bytes for f in frames
                      if f.frame_type == FrameType.I)
        total_b = sum(f.size_bytes for f in frames
                      if f.frame_type == FrameType.B)
        assert total_i > total_b


# -- stream config ------------------------------------------------------------------------

def test_stream_config_paper_workload():
    config = StreamConfig()
    assert config.chunk_bytes == 1024
    assert config.interval_ns == 5 * units.MS
    assert config.bytes_per_second == pytest.approx(204_800)


def test_stream_config_validation():
    with pytest.raises(ReproError):
        StreamConfig(chunk_bytes=0)
    with pytest.raises(ReproError):
        StreamConfig(interval_ns=0)


def test_chunk_schedule_counts():
    config = StreamConfig()
    times = list(chunk_schedule(config, units.s_to_ns(1)))
    assert len(times) == 200
    assert times[0] == 5 * units.MS
    assert times[-1] == units.s_to_ns(1)
    with pytest.raises(ReproError):
        list(chunk_schedule(config, -1))


# -- software decoder -----------------------------------------------------------------------

def make_kernel():
    sim = Simulator()
    machine = Machine(sim)
    return sim, machine, Kernel(machine, RandomStreams(0))


def test_decoder_charges_cpu_and_cache():
    sim, machine, kernel = make_kernel()
    decoder = SoftwareDecoder(kernel)
    out = {}

    def proc():
        out["raw"] = yield from decoder.decode(8192)

    sim.run_until_event(sim.spawn(proc()))
    assert out["raw"] == 8192 * DECODE_EXPANSION
    assert decoder.frames_decoded == 1
    assert decoder.bytes_decoded == 8192
    assert machine.cpu.busy_by_context["mpeg-decode"] > 0
    assert machine.l2.stats.accesses > 0


def test_decoder_frame_overhead_only_at_boundary():
    sim, machine, kernel = make_kernel()
    decoder = SoftwareDecoder(kernel)
    costs = {}

    def proc():
        before = machine.cpu.total_busy
        yield from decoder.decode(1024, is_frame_boundary=False)
        costs["mid"] = machine.cpu.total_busy - before
        before = machine.cpu.total_busy
        yield from decoder.decode(1024, is_frame_boundary=True)
        costs["boundary"] = machine.cpu.total_busy - before

    sim.run_until_event(sim.spawn(proc()))
    assert costs["boundary"] > costs["mid"]
    assert decoder.frames_decoded == 1


def test_decoder_rejects_empty():
    sim, machine, kernel = make_kernel()
    decoder = SoftwareDecoder(kernel)
    with pytest.raises(ReproError):
        next(decoder.decode(0))
