"""Tests for the metrics registry and the legacy-counter adapters.

The registry half is pure unit testing (Prometheus semantics: monotone
counters, labelled families, cumulative histogram buckets).  The
adapter half runs the chaos soak's fast subset with telemetry attached
and asserts the channel conservation law — ``sent == delivered +
dropped`` on every noise-armed reliable channel — holds and is exported
as a first-class metric, alongside the absorbed ``marshal.stats``
counters.
"""

import pytest

from repro.errors import ReproError
from repro.faults.chaos import ChaosProfile, run_chaos_scenario
from repro.telemetry import MetricsRegistry
from repro.telemetry.adapters import check_channel_conservation

# -- counters / gauges / histograms ------------------------------------------------


def test_counter_is_monotone():
    registry = MetricsRegistry()
    calls = registry.counter("calls_total")
    calls.inc()
    calls.inc(4)
    assert calls.value == 5
    with pytest.raises(ReproError):
        calls.inc(-1)
    calls.set_total(9)                    # absorbing a larger total is fine
    assert calls.value == 9
    with pytest.raises(ReproError):
        calls.set_total(3)                # counters never regress


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("queue_depth")
    gauge.set(10)
    gauge.inc(2)
    gauge.dec(5)
    assert gauge.value == 7


def test_histogram_buckets_are_inclusive_and_cumulative():
    hist = MetricsRegistry().histogram("lat", buckets=(10, 100)).labels()
    for value in (5, 10, 11, 250):
        hist.observe(value)
    # le=10 counts the exact-boundary observation; +Inf counts all.
    assert hist.cumulative() == [(10, 2), (100, 3), (float("inf"), 4)]
    assert (hist.count, hist.sum) == (4, 276)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ReproError):
        registry.histogram("h1", buckets=(100, 10))     # unsorted
    with pytest.raises(ReproError):
        registry.histogram("h2", buckets=(10, 10))      # duplicate
    with pytest.raises(ReproError):
        registry.histogram("h3", buckets=())            # empty


# -- families and labels ------------------------------------------------------------


def test_label_validation():
    registry = MetricsRegistry()
    with pytest.raises(ReproError):
        registry.counter("bad name")
    with pytest.raises(ReproError):
        registry.counter("ok_total", labels=("bad-label",))
    with pytest.raises(ReproError):
        registry.counter("dup_total", labels=("a", "a"))
    family = registry.counter("good_total", labels=("method",))
    with pytest.raises(ReproError):
        family.labels(wrong="x")          # label set must match exactly
    with pytest.raises(ReproError):
        family.inc()                      # labelled family needs .labels()


def test_labelled_children_are_cached_and_sorted():
    family = MetricsRegistry().counter("hits_total", labels=("method",))
    family.labels(method="Pause").inc(2)
    family.labels(method="Play").inc()
    assert family.labels(method="Pause").value == 2   # same child back
    assert [values for values, _ in family.samples()] == [
        ("Pause",), ("Play",)]


def test_registry_idempotent_registration_and_conflicts():
    registry = MetricsRegistry()
    first = registry.counter("x_total", labels=("a",))
    assert registry.counter("x_total", labels=("a",)) is first
    with pytest.raises(ReproError):
        registry.gauge("x_total", labels=("a",))      # kind conflict
    with pytest.raises(ReproError):
        registry.counter("x_total", labels=("b",))    # label conflict
    with pytest.raises(ReproError):
        registry.get("never_registered")
    assert registry.get("x_total") is first


def test_collectors_run_at_snapshot_time():
    registry = MetricsRegistry()
    registry.counter("absorbed_total")
    live = {"count": 3}
    registry.register_collector(
        lambda reg: reg.get("absorbed_total").set_total(live["count"]))
    assert registry.snapshot()["absorbed_total"]["samples"][0]["value"] == 3
    live["count"] = 8                     # legacy counter stays authoritative
    assert registry.snapshot()["absorbed_total"]["samples"][0]["value"] == 8


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.gauge("depth", help="queue depth", labels=("q",)) \
        .labels(q="rx").set(4)
    registry.histogram("lat", buckets=(10,)).observe(3)
    snap = registry.snapshot()
    assert snap["depth"] == {
        "type": "gauge", "help": "queue depth",
        "samples": [{"labels": {"q": "rx"}, "value": 4}]}
    assert snap["lat"]["samples"][0] == {
        "labels": {}, "count": 1, "sum": 3, "buckets": [[10, 1]]}


# -- conservation law under chaos ----------------------------------------------------


@pytest.fixture(scope="module")
def chaos_run():
    """The soak's fast subset: one seeded scenario, telemetry attached."""
    return run_chaos_scenario(5, ChaosProfile(seconds=3.0, telemetry=True))


def test_conservation_law_holds_after_chaos(chaos_run):
    testbed = chaos_run.testbed
    assert check_channel_conservation(testbed.server_runtime.executive) == []
    assert check_channel_conservation(testbed.client_runtime.executive) == []
    # The law is also a first-class exported metric, not just a test
    # helper: the violation gauge reads zero for both runtimes.
    snap = testbed.telemetry.registry.snapshot()
    violations = snap["repro_channel_conservation_violations"]["samples"]
    assert {s["labels"]["runtime"]: s["value"] for s in violations} == {
        "server": 0, "client": 0}


def test_chaos_metrics_absorb_legacy_counters(chaos_run):
    testbed = chaos_run.testbed
    snap = testbed.telemetry.registry.snapshot()
    # marshal.stats flows through the registry (bind-time baseline).
    # Decodes stay zero here — the chaos pipeline is all one-way media
    # calls — so only assert the family is exported.
    assert snap["repro_marshal_encodes_total"]["samples"][0]["value"] > 0
    assert snap["repro_marshal_decodes_total"]["samples"][0]["value"] >= 0
    # Channel accounting: the noisy media channel moved real traffic and
    # the per-channel samples mirror the authoritative ChannelStats.
    sent = {tuple(sorted(s["labels"].items())): s["value"]
            for s in snap["repro_channel_sent_total"]["samples"]}
    assert sum(sent.values()) > 0
    stats = {str(c.stats().channel_id): c.stats()
             for c in testbed.client_runtime.executive.channels}
    for labels, value in sent.items():
        labels = dict(labels)
        if labels["runtime"] != "client":
            continue
        assert value == stats[labels["channel"]].sent
    # The fault injector's schedule progress is visible too.
    outcomes = {s["labels"]["outcome"]: s["value"]
                for s in snap["repro_faults_total"]["samples"]}
    assert outcomes["applied"] == len(testbed.fault_injector.applied)
    assert outcomes["applied"] > 0


def test_chaos_traces_cover_recovery_and_faults(chaos_run):
    telemetry = chaos_run.testbed.telemetry
    # The crash produced a recovery span with its outcome recorded ...
    recoveries = telemetry.spans_of("recovery")
    assert recoveries and all(s.attrs["recovered"] for s in recoveries)
    # ... and the injector's events appear as instants on the faults
    # track (the log bridge mirrors other category-"fault" emits onto
    # "log/fault", so filter by track).
    fault_marks = [e for e in telemetry.events if e.track == "faults"]
    assert len(fault_marks) == len(chaos_run.testbed.fault_injector.applied)
    # Retransmit branches of the span model fired under channel noise.
    assert any(s.name == "channel.exchange" for s in telemetry.spans)
