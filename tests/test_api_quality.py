"""API-quality gates: public surface is documented and exported.

(a) every public module, class, function and method reachable from the
``repro`` packages carries a docstring; (b) every name in a package's
``__all__`` actually resolves.  These keep deliverable (e) honest as
the library grows.
"""

import importlib
import inspect
import pkgutil


import repro

PACKAGES = [
    "repro", "repro.sim", "repro.hw", "repro.hostos", "repro.net",
    "repro.media", "repro.core", "repro.core.layout", "repro.faults",
    "repro.tivopc", "repro.evaluation", "repro.virt",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if info.ispkg or info.name == "__main__":
                continue   # __main__ runs the CLI on import
            yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue          # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert undocumented == []


def test_every_public_class_and_function_documented():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_public_methods_documented():
    missing = []
    for module in iter_modules():
        for class_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) \
                    else member
                if target is None or inspect.getdoc(target):
                    continue
                # Interface-method implementations mirror their
                # InterfaceSpec (documented there); skip CamelCase ones.
                if name[0].isupper():
                    continue
                missing.append(f"{module.__name__}.{class_name}.{name}")
    assert missing == []


def test_all_exports_resolve():
    for module in iter_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_version_is_exposed():
    assert repro.__version__


# -- scheduler boundary ---------------------------------------------------------------


def test_heapq_confined_to_the_engine():
    """The timer wheel in ``repro.sim.engine`` is the only module that
    may touch ``heapq`` (its overflow level is a heap); everything else
    schedules through the blessed ``sim.clock`` API.  Mirrors the ruff
    TID251 ban in pyproject.toml so the boundary holds even where ruff
    is not installed.
    """
    import pathlib
    import re

    src = pathlib.Path(repro.__file__).resolve().parent
    pattern = re.compile(r"^\s*(import heapq|from heapq import)", re.M)
    offenders = [
        str(path.relative_to(src.parent))
        for path in sorted(src.rglob("*.py"))
        if path.name != "engine.py" and pattern.search(path.read_text())
    ]
    assert offenders == [], (
        f"heapq imported outside repro.sim.engine: {offenders}")
