"""Determinism guarantees of the hot-path overhaul.

The pooled-timeout free list, lazy cancellation and the inlined run
loop are pure *mechanical* optimizations: they must never change what a
seeded run computes.  These tests pin that property by diffing whole
trace buffers and counters between a default simulator and one with
pooling disabled (``Simulator(event_pool_size=0)``), and by exercising
the lazy-cancellation path that replaced ``interrupt()``'s O(n)
callback scans.
"""

from repro.errors import InterruptError
from repro.sim import Simulator, Tracer
from repro.tivopc.client import MeasurementClient
from repro.tivopc.server import SimpleServer
from repro.tivopc.testbed import Testbed, TestbedConfig

# Short but non-trivial: a few thousand events through kernels, NICs,
# caches and the media pipeline.
_SIM_SECONDS = 0.5


def _traced_tivopc_run(pooling: bool):
    """One seeded TiVoPC run; returns (trace records, simulator)."""
    testbed = Testbed(TestbedConfig(seed=7))
    if not pooling:
        # The testbed builds its own Simulator; zeroing the pool limit
        # before any event runs is equivalent to event_pool_size=0.
        testbed.sim._pool_limit = 0
    testbed.sim.tracer = Tracer(testbed.sim, capacity=100_000)
    testbed.start()
    client = MeasurementClient(testbed)
    client.start()
    SimpleServer(testbed).start()
    testbed.run(_SIM_SECONDS)
    return list(testbed.sim.tracer.records), testbed.sim, client


def test_tivopc_run_identical_with_pooling_disabled():
    pooled_records, pooled_sim, pooled_client = _traced_tivopc_run(True)
    plain_records, plain_sim, plain_client = _traced_tivopc_run(False)

    assert pooled_sim.events_processed == plain_sim.events_processed
    assert pooled_sim.now == plain_sim.now
    assert pooled_client.jitter.arrivals_ns == plain_client.jitter.arrivals_ns
    # Bit-identical traces: every record, field for field, in order.
    assert pooled_records == plain_records


def test_deferred_pool_recycles_value_carrying_sleeps():
    """Value-carrying sleeps go through the pooled ``_Deferred``; the
    pool must engage (``pool_recycled`` grows) without changing results,
    and zeroing the pool limit must disable recycling entirely.
    """

    def workload(sim):
        out = []

        def proc():
            for i in range(50):
                out.append((yield sim.clock.after(10, value=i)))

        sim.spawn(proc())
        sim.run()
        return out

    pooled = Simulator()
    expected = workload(pooled)
    assert expected == list(range(50))
    assert pooled.pool_recycled > 0

    plain = Simulator()
    plain._pool_limit = 0
    assert workload(plain) == expected
    assert plain.pool_recycled == 0
    assert pooled.now == plain.now


def test_seeded_tivopc_runs_are_reproducible():
    first, first_sim, _ = _traced_tivopc_run(True)
    second, second_sim, _ = _traced_tivopc_run(True)
    assert first_sim.events_processed == second_sim.events_processed
    assert first == second


def test_interrupt_abandons_large_condition_lazily():
    """Regression for the O(n) interrupt scan (satellite b).

    A waiter parked on a 1000-event condition is interrupted mid-wait.
    ``interrupt()`` must not walk the condition's callback list: the
    stale registration stays behind (asserted below) and ``_resume``
    discards the eventual wakeup.  The run must still complete with the
    interrupt delivered once and the process able to wait again.
    """
    sim = Simulator()
    waiters = [sim.timeout(10_000 + i) for i in range(1_000)]
    condition = sim.all_of(waiters)
    seen = {}

    def waiter():
        try:
            yield condition
        except InterruptError as exc:
            seen["cause"] = exc.cause
            seen["interrupted_at"] = sim.now
        seen["value"] = yield sim.timeout(5, "after")

    proc = sim.spawn(waiter())

    def interrupter():
        yield sim.timeout(100)
        proc.interrupt("abandon")
        # Lazy cancellation: the abandoned condition still carries the
        # stale callback — no scan removed it.
        assert condition.callbacks

    sim.spawn(interrupter())
    sim.run()

    assert seen["cause"] == "abandon"
    assert seen["interrupted_at"] == 100
    assert seen["value"] == "after"
    # The condition fired long after the waiter left; the stale wakeup
    # was dropped without reviving the (finished) process.
    assert condition.triggered
    assert not proc.alive


def test_stale_pooled_timeout_wakeup_is_dropped():
    """A recycled fast-path timeout must not resume an old waiter.

    The waiter abandons a ``clock.after`` sleep via interrupt; when
    the original sleep fires (and its handle is recycled), the stale
    entry must be discarded by the continuation-sequence check.
    """
    sim = Simulator()
    order = []

    def sleeper():
        try:
            yield sim.clock.after(1_000)
        except InterruptError:
            order.append(("interrupted", sim.now))
        order.append(
            ("woke", (yield sim.clock.after(2_000, value="late")), sim.now))

    proc = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(10)
        proc.interrupt()

    sim.spawn(interrupter())
    sim.run()
    assert order == [("interrupted", 10), ("woke", "late", 2_010)]
