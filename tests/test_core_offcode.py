"""Tests for Offcode lifecycle, dispatch and execution sites."""

import pytest

from repro.errors import HydraError, InterfaceError, OffcodeError
from repro.core.call import make_call
from repro.core.guid import guid_from_name
from repro.core.interfaces import IOFFCODE, InterfaceSpec, MethodSpec
from repro.core import marshal
from repro.core.offcode import Offcode, OffcodeState
from repro.core.sites import DeviceSite, HostSite
from repro.hw import Bus, DeviceClass, DeviceSpec, Machine, ProgrammableDevice
from repro.sim import Simulator

ICOUNTER = InterfaceSpec.from_methods(
    "ICounter",
    (MethodSpec("Increment", params=(("by", "int"),), result="int"),
     MethodSpec("Fail", params=(), result="int"),
     MethodSpec("Notify", one_way=True)))


class CounterOffcode(Offcode):
    BINDNAME = "test.Counter"
    INTERFACES = (ICOUNTER,)

    def __init__(self, site):
        super().__init__(site)
        self.count = 0
        self.notifies = 0

    def Increment(self, by):
        # Generator form: charges its own device time.
        yield from self.site.execute(1_000, context="counter")
        self.count += by
        return self.count

    def Fail(self):
        raise ValueError("intentional")

    def Notify(self):
        self.notifies += 1


class TickerOffcode(Offcode):
    BINDNAME = "test.Ticker"
    INTERFACES = ()

    def __init__(self, site):
        super().__init__(site)
        self.ticks = 0

    def main(self):
        while True:
            yield self.site.sim.timeout(10_000)
            self.ticks += 1


def host_site():
    sim = Simulator()
    return sim, HostSite(Machine(sim))


def device_site():
    sim = Simulator()
    device = ProgrammableDevice(
        sim, DeviceSpec(name="dev", device_class=DeviceClass.NETWORK),
        Bus(sim))
    return sim, DeviceSite(device), device


def bring_up(sim, offcode):
    def proc():
        yield from offcode.initialize()
        yield from offcode.start()

    sim.run_until_event(sim.spawn(proc()))


# -- lifecycle -----------------------------------------------------------------------

def test_lifecycle_order_enforced():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    assert offcode.state == OffcodeState.CREATED

    def start_without_init():
        yield from offcode.start()

    sim.spawn(start_without_init())
    with pytest.raises(OffcodeError):
        sim.run()


def test_lifecycle_happy_path():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    bring_up(sim, offcode)
    assert offcode.state == OffcodeState.RUNNING

    def stop():
        yield from offcode.stop()

    sim.run_until_event(sim.spawn(stop()))
    assert offcode.state == OffcodeState.STOPPED


def test_double_initialize_rejected():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    bring_up(sim, offcode)

    def again():
        yield from offcode.initialize()

    sim.spawn(again())
    with pytest.raises(OffcodeError):
        sim.run()


def test_main_thread_runs_and_stops():
    sim, site = host_site()
    offcode = TickerOffcode(site)
    bring_up(sim, offcode)
    sim.run(until=sim.now + 100_000)
    assert offcode.ticks >= 5

    def stop():
        yield from offcode.stop()

    sim.run_until_event(sim.spawn(stop()))
    ticks_at_stop = offcode.ticks
    sim.run(until=sim.now + 100_000)
    assert offcode.ticks == ticks_at_stop     # main interrupted


def test_missing_bindname_rejected():
    sim, site = host_site()

    class Anonymous(Offcode):
        pass

    with pytest.raises(OffcodeError):
        Anonymous(site)


# -- interfaces ------------------------------------------------------------------------

def test_query_interface():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    assert offcode.query_interface(ICOUNTER.guid) is ICOUNTER
    assert offcode.query_interface(IOFFCODE.guid) is IOFFCODE
    assert offcode.implements(ICOUNTER.guid)
    with pytest.raises(InterfaceError):
        offcode.query_interface(guid_from_name("IUnknown"))


# -- dispatch --------------------------------------------------------------------------

def test_dispatch_two_way_returns_result():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    bring_up(sim, offcode)
    call = make_call(sim, ICOUNTER, "Increment", (5,))

    def run():
        yield from offcode.dispatch(call)

    sim.run_until_event(sim.spawn(run()))
    assert offcode.count == 5
    assert marshal.decode(call.return_descriptor.event.value) == 5


def test_dispatch_one_way():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    bring_up(sim, offcode)
    call = make_call(sim, ICOUNTER, "Notify", ())

    def run():
        yield from offcode.dispatch(call)

    sim.run_until_event(sim.spawn(run()))
    assert offcode.notifies == 1


def test_dispatch_exception_reaches_descriptor():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    bring_up(sim, offcode)
    call = make_call(sim, ICOUNTER, "Fail", ())

    def run():
        yield from offcode.dispatch(call)

    sim.run_until_event(sim.spawn(run()))
    caught = []

    def waiter():
        try:
            yield call.return_descriptor.event
        except ValueError as exc:
            caught.append(str(exc))

    # Event already processed; a fresh waiter still observes the failure.
    sim.run_until_event(sim.spawn(waiter()))
    assert caught == ["intentional"]


def test_dispatch_before_running_fails_cleanly():
    sim, site = host_site()
    offcode = CounterOffcode(site)
    call = make_call(sim, ICOUNTER, "Increment", (1,))

    def run():
        yield from offcode.dispatch(call)

    sim.run_until_event(sim.spawn(run()))
    assert call.return_descriptor.event.triggered
    assert not call.return_descriptor.event.ok


def test_dispatch_charges_site_cpu():
    sim, site, device = device_site()
    offcode = CounterOffcode(site)
    bring_up(sim, offcode)
    busy_before = device.cpu.total_busy
    call = make_call(sim, ICOUNTER, "Increment", (1,))

    def run():
        yield from offcode.dispatch(call)

    sim.run_until_event(sim.spawn(run()))
    assert device.cpu.total_busy > busy_before


# -- sites -----------------------------------------------------------------------------

def test_same_offcode_class_runs_on_host_and_device():
    """Location transparency: the class is identical, only the site
    (and therefore the charged CPU) differs."""
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    host = CounterOffcode(HostSite(machine))
    dev = CounterOffcode(DeviceSite(nic))
    bring_up(sim, host)
    bring_up(sim, dev)

    def drive():
        yield from host.dispatch(make_call(sim, ICOUNTER, "Increment", (1,)))
        yield from dev.dispatch(make_call(sim, ICOUNTER, "Increment", (2,)))

    sim.run_until_event(sim.spawn(drive()))
    assert host.count == 1 and dev.count == 2
    assert host.location == "host"
    assert dev.location == "nic0"
    assert machine.cpu.total_busy > 0
    assert nic.cpu.total_busy > 0


def test_host_site_allocation_accounting():
    sim, site = host_site()
    region = site.allocate(1000, label="buf")
    assert site.allocated_bytes == 1000
    site.free(region)
    assert site.allocated_bytes == 0
    with pytest.raises(HydraError):
        site.free(region)
    with pytest.raises(HydraError):
        site.allocate(0)


def test_device_site_allocation_is_bounded():
    sim, site, device = device_site()
    from repro.errors import DeviceMemoryError
    with pytest.raises(DeviceMemoryError):
        site.allocate(device.spec.local_memory_bytes * 2)
