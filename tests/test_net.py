"""Tests for the network substrate: packets, links, switch, device ports."""

import pytest

from repro.errors import SimulationError, SocketError
from repro.hw import Bus, DeviceClass, DeviceSpec, ProgrammableDevice
from repro.net import (
    Address,
    DeviceNetPort,
    ETH_IP_UDP_HEADER_BYTES,
    Link,
    LinkSpec,
    Packet,
    Switch,
    SwitchSpec,
)
from repro.sim import Simulator


def packet(src="a", dst="b", size=1000, sport=1, dport=2, payload=None):
    return Packet(src=Address(src, sport), dst=Address(dst, dport),
                  size_bytes=size, payload=payload)


# -- packet ---------------------------------------------------------------------

def test_address_validation():
    with pytest.raises(ValueError):
        Address("", 5)
    with pytest.raises(ValueError):
        Address("h", 0)
    with pytest.raises(ValueError):
        Address("h", 70000)


def test_packet_wire_bytes_includes_headers():
    p = packet(size=1000)
    assert p.wire_bytes == 1000 + ETH_IP_UDP_HEADER_BYTES


def test_packet_validation():
    with pytest.raises(ValueError):
        packet(size=-1)
    with pytest.raises(ValueError):
        packet(size=100_000)


def test_packet_seq_monotonic():
    a, b = packet(), packet()
    assert b.seq > a.seq


def test_packet_latency():
    p = packet()
    assert p.latency_ns() is None
    p.sent_at_ns = 100
    p.received_at_ns = 350
    assert p.latency_ns() == 250


# -- link ------------------------------------------------------------------------

def test_link_serialization_time_gigabit():
    sim = Simulator()
    link = Link(sim, lambda p: None,
                LinkSpec(bandwidth_bps=1e9, propagation_ns=0,
                         jitter_sigma_ns=0))
    p = packet(size=958)  # 1000 wire bytes
    assert link.serialization_ns(p) == 8000


def test_link_delivers_after_delay():
    sim = Simulator()
    out = []
    link = Link(sim, lambda p: out.append(sim.now),
                LinkSpec(bandwidth_bps=1e9, propagation_ns=500,
                         jitter_sigma_ns=0))
    link.send(packet(size=958))
    sim.run()
    assert out == [8500]
    assert link.packets_carried == 1


def test_link_fifo_spreads_burst():
    sim = Simulator()
    arrivals = []
    link = Link(sim, lambda p: arrivals.append(sim.now),
                LinkSpec(bandwidth_bps=1e9, propagation_ns=0,
                         jitter_sigma_ns=0))
    for _ in range(3):
        link.send(packet(size=958))
    sim.run()
    assert arrivals == [8000, 16000, 24000]


def test_link_spec_validation():
    with pytest.raises(SimulationError):
        LinkSpec(bandwidth_bps=0)
    with pytest.raises(SimulationError):
        LinkSpec(propagation_ns=-1)


# -- switch -----------------------------------------------------------------------

def make_switch(sim):
    spec = SwitchSpec(forwarding_ns=1000,
                      link=LinkSpec(bandwidth_bps=1e9, propagation_ns=0,
                                    jitter_sigma_ns=0))
    return Switch(sim, spec)


def test_switch_forwards_between_stations():
    sim = Simulator()
    switch = make_switch(sim)
    got = []
    tx_a = switch.attach("a", lambda p: got.append(("a", p.seq)))
    switch.attach("b", lambda p: got.append(("b", p.seq)))
    p = packet(src="a", dst="b")
    tx_a(p)
    sim.run()
    assert got == [("b", p.seq)]
    assert switch.forwarded == 1


def test_switch_drops_unknown_destination():
    sim = Simulator()
    switch = make_switch(sim)
    tx_a = switch.attach("a", lambda p: None)
    tx_a(packet(src="a", dst="ghost"))
    sim.run()
    assert switch.dropped_unknown == 1
    assert switch.forwarded == 0


def test_switch_duplicate_station_rejected():
    sim = Simulator()
    switch = make_switch(sim)
    switch.attach("a", lambda p: None)
    with pytest.raises(SimulationError):
        switch.attach("a", lambda p: None)


def test_switch_latency_is_two_links_plus_forwarding():
    sim = Simulator()
    switch = make_switch(sim)
    arrivals = []
    tx_a = switch.attach("a", lambda p: None)
    switch.attach("b", lambda p: arrivals.append(sim.now))
    tx_a(packet(src="a", dst="b", size=958))
    sim.run()
    # 8000 (ingress) + 1000 (forwarding) + 8000 (egress)
    assert arrivals == [17000]


def test_switch_three_stations():
    sim = Simulator()
    switch = make_switch(sim)
    got = {name: [] for name in "abc"}
    txs = {name: switch.attach(name, lambda p, n=name: got[n].append(p.seq))
           for name in "abc"}
    txs["a"](packet(src="a", dst="c"))
    txs["b"](packet(src="b", dst="a"))
    sim.run()
    assert len(got["c"]) == 1 and len(got["a"]) == 1 and got["b"] == []
    assert switch.stations() == ["a", "b", "c"]


# -- device port ---------------------------------------------------------------------

def make_device_port(sim, switch, station="dev"):
    bus = Bus(sim)
    spec = DeviceSpec(name=station, device_class=DeviceClass.NETWORK)
    device = ProgrammableDevice(sim, spec, bus)
    return DeviceNetPort(device, switch, station), device


def test_device_port_send_receive():
    sim = Simulator()
    switch = make_switch(sim)
    port_a, dev_a = make_device_port(sim, switch, "dev-a")
    port_b, dev_b = make_device_port(sim, switch, "dev-b")
    binding_b = port_b.bind(500)
    got = []

    def sender():
        yield from port_a.send(600, Address("dev-b", 500), 256, payload="hi")

    def receiver():
        pkt = yield from binding_b.recv()
        got.append((pkt.payload, sim.now))

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert got and got[0][0] == "hi"
    assert port_a.tx_packets == 1
    assert port_b.rx_packets == 1
    # Device CPUs were charged; no host CPU exists in this test at all.
    assert dev_a.cpu.total_busy > 0
    assert dev_b.cpu.total_busy > 0


def test_device_port_unclaimed_counted():
    sim = Simulator()
    switch = make_switch(sim)
    port_a, _ = make_device_port(sim, switch, "dev-a")
    port_b, _ = make_device_port(sim, switch, "dev-b")

    def sender():
        yield from port_a.send(600, Address("dev-b", 999), 256)

    sim.spawn(sender())
    sim.run()
    assert port_b.rx_unclaimed == 1


def test_device_port_duplicate_bind_rejected():
    sim = Simulator()
    switch = make_switch(sim)
    port, _ = make_device_port(sim, switch)
    port.bind(7)
    with pytest.raises(SocketError):
        port.bind(7)


def test_device_port_ephemeral_binds_unique():
    sim = Simulator()
    switch = make_switch(sim)
    port, _ = make_device_port(sim, switch)
    numbers = {port.bind().number for _ in range(5)}
    assert len(numbers) == 5
