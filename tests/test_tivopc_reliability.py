"""End-to-end reliability tests for the offloaded TiVoPC pipeline.

PR 4 acceptance scenarios:

* a reliable media stream crossing ≥5 % channel noise plus bus
  transients delivers every chunk exactly once — the ack/retransmit
  protocol earns the guarantee the channel class used to merely claim;
* checkpointed recovery resumes the Streamer from its last snapshot
  instead of cold-starting it;
* an overlapping double failure (NIC and Smart Disk dying within one
  detection window) recovers both incidents and keeps the stream
  flowing on the host.
"""

import pytest

from repro import units
from repro.core import CheckpointConfig, WatchdogConfig
from repro.faults import FaultPlan
from repro.tivopc import (
    OffloadedClient,
    OffloadedServer,
    Testbed,
    TestbedConfig,
)
from repro.tivopc.components import StreamerOffcode

NOISE_AT_NS = 150 * units.MS
WARMUP_S = 0.2
DRAIN_S = 0.3


def run_stream(seed=5, plan=None, seconds=4.0, checkpoint=None,
               host_fallback=True):
    """Client first, noise during warmup, then the server — so every
    media chunk crosses an already-noise-armed channel."""
    testbed = Testbed(TestbedConfig(
        seed=seed, fault_plan=plan, watchdog=WatchdogConfig(),
        checkpoint=checkpoint))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=host_fallback)
    client.start()
    testbed.run(WARMUP_S)
    server = OffloadedServer(testbed)
    server.start()
    testbed.run(seconds)
    server.stop()
    testbed.run(DRAIN_S)
    return testbed, client, server


def media_channels(testbed):
    """Noise-armed reliable data channels of the client runtime."""
    return [channel
            for channel in testbed.client_runtime.executive.channels
            if channel.config.label == StreamerOffcode.DATA_LABEL
            and channel._rel is not None]


# -- exactly-once under noise --------------------------------------------------------


@pytest.fixture(scope="module")
def noisy():
    plan = (FaultPlan()
            .channel_noise(NOISE_AT_NS, StreamerOffcode.DATA_LABEL,
                           loss=0.08, corrupt=0.04)
            .bus_transients(1 * units.SECOND, "client", count=5)
            .bus_transients(2 * units.SECOND, "client", count=5))
    return run_stream(plan=plan)


def test_noise_and_transients_deliver_exactly_once(noisy):
    testbed, client, server = noisy
    assert len(testbed.fault_injector.applied) == 3
    channels = media_channels(testbed)
    assert len(channels) == 1          # the Figure-8 multicast channel
    stats = channels[0].stats()
    # The wire was genuinely hostile...
    assert stats.dropped > 0
    assert stats.corrupted > 0
    assert stats.retransmits > 0
    assert stats.dup_dropped > 0       # lost acks forced duplicates
    # ...yet accounting closes exactly: every wire attempt is either a
    # unique delivery or a counted drop.
    assert stats.sent == stats.delivered + stats.dropped
    assert channels[0].unacked_messages() == []


def test_no_chunk_lost_between_streamer_and_consumers(noisy):
    testbed, client, server = noisy
    stats = media_channels(testbed)[0].stats()
    # Every chunk the network Streamer forwarded reached BOTH consumers:
    # the disk Streamer stored it and the Decoder turned the byte stream
    # into frames with zero losses.
    assert client.net_streamer.chunks_handled == stats.delivered
    assert client.disk_streamer.chunks_handled == stats.delivered
    stream = testbed.config.stream
    chunk_bytes = stream.chunk_bytes
    expected_frames = (stats.delivered * chunk_bytes
                       ) // client.decoder.frame_bytes
    assert client.decoder.frames_decoded == expected_frames
    assert client.display.frames_shown == expected_frames
    assert client.bytes_recorded == stats.delivered * chunk_bytes


def test_noise_alone_causes_no_incidents(noisy):
    testbed, client, server = noisy
    # Loss and corruption are the protocol's problem, not the
    # watchdog's: no device was ever declared dead.
    assert testbed.client_runtime.incidents == []
    assert testbed.server_runtime.incidents == []
    assert testbed.client_runtime.failed_devices == set()


# -- checkpointed recovery ------------------------------------------------------------


CRASH_AT_S = 2.0
POST_CRASH_S = 2.2


@pytest.fixture(scope="module")
def checkpointed_crash():
    """Like :func:`run_stream`, but probes the counters just before the
    crash — the store keeps checkpointing the *restored* instance, so
    only a mid-run sample can show what the restore actually carried."""
    plan = FaultPlan().crash_device(
        round(CRASH_AT_S * units.SECOND), "client.nic0")
    testbed = Testbed(TestbedConfig(
        seed=3, fault_plan=plan, watchdog=WatchdogConfig(),
        checkpoint=CheckpointConfig(period_ns=50 * units.MS)))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=True)
    client.start()
    testbed.run(WARMUP_S)
    server = OffloadedServer(testbed)
    server.start()
    testbed.run(CRASH_AT_S - WARMUP_S - 0.001)     # just before the crash
    store = testbed.client_runtime.depot.checkpoints
    probe = {
        "chunks_before": client.chunks_received,
        "checkpoint_before":
            store.latest("tivopc.NetStreamer").state["chunks_handled"],
    }
    testbed.run(POST_CRASH_S + 0.001)
    server.stop()
    testbed.run(DRAIN_S)
    return testbed, client, server, probe


def test_checkpoint_restores_streamer_progress(checkpointed_crash):
    testbed, client, server, probe = checkpointed_crash
    incident = testbed.client_runtime.incidents[0]
    assert incident.recovered
    assert "tivopc.NetStreamer" in incident.restored
    assert client.net_streamer.location == "host"
    # The restored counter carries the pre-crash history AND the stream
    # kept growing: a cold restart would show only the post-crash
    # chunks, well below this bound.
    stream = testbed.config.stream
    post_crash_chunks = round(
        POST_CRASH_S * units.SECOND) // stream.interval_ns
    assert probe["checkpoint_before"] > 300
    assert client.chunks_received >= (probe["checkpoint_before"]
                                      + 0.8 * post_crash_chunks)


def test_checkpoint_loss_window_is_bounded(checkpointed_crash):
    testbed, client, server, probe = checkpointed_crash
    # The snapshot trails the live counter by at most one checkpoint
    # period: at 200 chunks/s and a 50 ms period, no more than ~10
    # chunks of counter history can be lost to a crash.
    stream = testbed.config.stream
    period_chunks = (50 * units.MS) // stream.interval_ns
    assert (0 <= probe["chunks_before"] - probe["checkpoint_before"]
            <= period_chunks + 2)


# -- overlapping double failure -------------------------------------------------------


@pytest.fixture(scope="module")
def double_failure():
    plan = (FaultPlan()
            .crash_device(2 * units.SECOND, "client.nic0")
            .crash_device(2 * units.SECOND + units.MS, "client.disk0"))
    return run_stream(seed=9, plan=plan, seconds=5.0)


def test_double_failure_recovers_both_incidents(double_failure):
    testbed, client, server = double_failure
    runtime = testbed.client_runtime
    assert runtime.failed_devices == {"nic0", "disk0"}
    assert len(runtime.incidents) == 2
    for incident in runtime.incidents:
        assert incident.recovered, (incident.device, incident.error)
        assert not incident.failed
    # Both overlapping recoveries solved a layout excluding BOTH dead
    # devices: the network and disk Streamers (and the File) fell back
    # to the host; decode stayed on the healthy GPU.
    assert client.net_streamer.location == "host"
    assert client.disk_streamer.location == "host"
    assert client.file.location == "host"
    assert client.decoder.location == "gpu0"
    assert client.display.location == "gpu0"


def test_double_failure_stream_keeps_flowing(double_failure):
    testbed, client, server = double_failure
    incidents = testbed.client_runtime.incidents
    recovered_at = max(i.recovered_at_ns for i in incidents)
    # The stream survived the double outage: chunks handled after the
    # second recovery, frames still rendering, recording still growing.
    assert client.chunks_received > 0
    assert client.frames_shown > 100
    # The fallback File is a fresh instance (no checkpointing in this
    # scenario) so its counter covers only the post-recovery stream:
    # ~3 s at 200 kB/s.
    assert client.bytes_recorded > 400_000
    assert recovered_at < testbed.sim.now
    # Post-crash the host streamer reads a real UDP socket again.
    assert client.net_streamer.socket is not None
    assert client.net_streamer.socket.rx_packets > 0
