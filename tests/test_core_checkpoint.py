"""Checkpoint/restore tests — state survives the device it lived on.

The service periodically snapshots every opted-in Offcode, ships the
state over the OOB management channel to the host-side store in the
depot, and recovery restores the latest checkpoint into the re-deployed
replacement — so a crash costs at most one period of state, not all of
it.
"""

import pytest

from repro.errors import HydraError
from repro.core import (
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
    OffcodeState,
    WatchdogConfig,
    checkpointable,
)
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.core.guid import Guid
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

ICOUNT = InterfaceSpec.from_methods(
    "ICount", (MethodSpec("Value", params=(), result="int"),))

COUNTER_GUID = Guid(9100)


class CounterOffcode(Offcode):
    """Accumulates state worth preserving across a device death."""

    BINDNAME = "fault.Counter"
    INTERFACES = (ICOUNT,)

    def __init__(self, site):
        super().__init__(site)
        self.count = 0

    def Value(self):
        return self.count

    def main(self):
        while True:
            yield self.site.sim.timeout(1_000_000)
            self.count += 1

    def snapshot(self):
        return {"count": self.count}

    def restore(self, state):
        self.count = int(state.get("count", 0))


class PlainOffcode(Offcode):
    BINDNAME = "fault.Plain"
    INTERFACES = ()


@pytest.fixture()
def world():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    runtime.library.register("/counter.odf", OdfDocument(
        bindname="fault.Counter", guid=COUNTER_GUID, interfaces=[ICOUNT],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=8 * 1024))
    runtime.depot.register(COUNTER_GUID, CounterOffcode)
    return sim, machine, runtime


def deploy(sim, runtime, path="/counter.odf"):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode(path)

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


# -- store and contract --------------------------------------------------------------


def test_store_keeps_newest_checkpoint():
    store = CheckpointStore()
    store.save(Checkpoint("a", seq=1, taken_at_ns=10, state={"n": 1}))
    store.save(Checkpoint("a", seq=3, taken_at_ns=30, state={"n": 3}))
    store.save(Checkpoint("a", seq=2, taken_at_ns=20, state={"n": 2}))
    assert store.latest("a").state == {"n": 3}     # stale seq 2 ignored
    assert store.saved == 3
    assert len(store) == 1
    assert store.bindnames() == ["a"]
    assert store.latest("missing") is None
    store.forget("a")
    assert store.latest("a") is None


def test_checkpointable_requires_snapshot_override(world):
    sim, machine, runtime = world
    site = runtime.host_site
    assert checkpointable(CounterOffcode(site))
    assert not checkpointable(PlainOffcode(site))
    # The base contract: snapshot() opts out, restore() without an
    # override is a contract violation.
    plain = PlainOffcode(site)
    assert plain.snapshot() is None
    from repro.errors import OffcodeError
    with pytest.raises(OffcodeError):
        plain.restore({"anything": 1})


def test_config_validation():
    with pytest.raises(HydraError):
        CheckpointConfig(period_ns=0)
    with pytest.raises(HydraError):
        CheckpointConfig(snapshot_cost_ns=-1)


# -- the shipping path ----------------------------------------------------------------


def test_service_ships_snapshots_over_oob(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    service = runtime.start_checkpoints(
        CheckpointConfig(period_ns=5_000_000))
    sim.run(until=sim.now + 26_000_000)

    assert service.shipped >= 4
    assert service.failed == 0
    assert service.stray_messages == []
    checkpoint = runtime.depot.checkpoints.latest("fault.Counter")
    assert checkpoint is not None
    assert checkpoint.seq == service.shipped
    # The shipped state tracks the live counter (at most one period old).
    live = runtime.get_offcode("fault.Counter").count
    assert 0 < checkpoint.state["count"] <= live
    assert checkpoint.size_bytes > 0


def test_start_checkpoints_is_guarded(world):
    sim, machine, runtime = world
    runtime.start_checkpoints()
    with pytest.raises(HydraError):
        runtime.start_checkpoints()


# -- restore on recovery --------------------------------------------------------------


def test_recovery_restores_last_checkpoint(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.depot.register(COUNTER_GUID, CounterOffcode,
                           device_class=DeviceClass.HOST)
    runtime.start_watchdog(WatchdogConfig())
    runtime.start_checkpoints(CheckpointConfig(period_ns=5_000_000))
    sim.run(until=sim.now + 30_000_000)
    dead_instance = runtime.get_offcode("fault.Counter")
    machine.device("nic0").health.crash()
    sim.run(until=sim.now + 40_000_000)

    incident = runtime.incidents[0]
    assert incident.recovered
    assert "fault.Counter" in incident.restored
    replacement = runtime.get_offcode("fault.Counter")
    assert replacement is not dead_instance
    assert replacement.location == "host"
    assert replacement.state == OffcodeState.RUNNING
    # Cold start would begin at zero; the restored counter resumed from
    # the last shipped checkpoint and kept counting.
    checkpoint = runtime.depot.checkpoints.latest("fault.Counter")
    assert replacement.count >= checkpoint.state["count"] > 0


def test_uncheckpointed_offcode_recovers_cold(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.depot.register(COUNTER_GUID, CounterOffcode,
                           device_class=DeviceClass.HOST)
    runtime.start_watchdog(WatchdogConfig())
    # No checkpoint service: recovery still works, state starts cold.
    sim.run(until=sim.now + 30_000_000)
    machine.device("nic0").health.crash()
    crash_now = sim.now
    sim.run(until=sim.now + 40_000_000)

    incident = runtime.incidents[0]
    assert incident.recovered
    assert incident.restored == []
    replacement = runtime.get_offcode("fault.Counter")
    # The replacement counts only what it saw after the recovery.
    elapsed_ms = (sim.now - crash_now) // 1_000_000
    assert replacement.count <= elapsed_ms
