"""End-to-end tests for HydraRuntime: deployment, proxies, pseudo offcodes."""

import pytest

from repro.errors import HydraError, InfeasibleLayoutError, OffcodeError
from repro.core import (
    Buffering,
    ChannelConfig,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
    OffcodeState,
)
from repro.core.guid import Guid
from repro.core.layout.constraints import ConstraintType
from repro.core.odf import (
    DeviceClassFilter,
    OdfDocument,
    OdfImport,
)
from repro.core.pseudo import IHEAP, IRUNTIME
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

ICHECKSUM = InterfaceSpec.from_methods(
    "IChecksum",
    (MethodSpec("Compute", params=(("size", "int"),), result="int"),))

ISOCKET = InterfaceSpec.from_methods(
    "ISocket",
    (MethodSpec("Send", params=(("size", "int"),), result="int"),))


class ChecksumOffcode(Offcode):
    BINDNAME = "net.Checksum"
    INTERFACES = (ICHECKSUM,)

    def Compute(self, size):
        yield from self.site.execute(size * 2, context="checksum")
        return size & 0xFFFF


class SocketOffcode(Offcode):
    BINDNAME = "net.Socket"
    INTERFACES = (ISOCKET,)

    def __init__(self, site):
        super().__init__(site)
        self.sent = 0

    def Send(self, size):
        self.sent += size
        return size


CHECKSUM_GUID = Guid(6060843)
SOCKET_GUID = Guid(7070714)


def make_world(with_gpu=True):
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    if with_gpu:
        machine.add_gpu()
    runtime = HydraRuntime(machine)

    checksum_odf = OdfDocument(
        bindname="net.Checksum", guid=CHECKSUM_GUID,
        interfaces=[ICHECKSUM],
        targets=[DeviceClassFilter(DeviceClass.NETWORK),
                 DeviceClassFilter(DeviceClass.HOST)],
        image_bytes=16 * 1024)
    socket_odf = OdfDocument(
        bindname="net.Socket", guid=SOCKET_GUID,
        interfaces=[ISOCKET],
        imports=[OdfImport(file="/offcodes/checksum.odf",
                           bindname="net.Checksum", guid=CHECKSUM_GUID,
                           reference=ConstraintType.PULL)],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=32 * 1024)
    runtime.library.register("/offcodes/checksum.odf", checksum_odf)
    runtime.library.register("/offcodes/socket.odf", socket_odf)
    runtime.depot.register(CHECKSUM_GUID, ChecksumOffcode)
    runtime.depot.register(SOCKET_GUID, SocketOffcode)
    return sim, machine, runtime


def test_create_offcode_deploys_to_nic():
    sim, machine, runtime = make_world()
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode(
            "/offcodes/socket.odf")

    sim.run_until_event(sim.spawn(app()))
    result = out["result"]
    assert result.location == "nic0"
    assert result.offcode.state == OffcodeState.RUNNING
    # The Pull import dragged the checksum along to the same device.
    checksum = runtime.get_offcode("net.Checksum")
    assert checksum.location == "nic0"
    assert checksum.state == OffcodeState.RUNNING
    # Loading consumed device memory for both images.
    assert machine.device("nic0").memory.used_bytes >= 48 * 1024
    report = result.report
    assert {r.bindname for r in report.load_reports} == {
        "net.Socket", "net.Checksum"}
    assert report.elapsed_ns > 0


def test_proxy_invocation_end_to_end():
    sim, machine, runtime = make_world()
    out = {}

    def app():
        result = yield from runtime.create_offcode("/offcodes/socket.odf")
        out["sent"] = yield from result.proxy.Send(1024)

    sim.run_until_event(sim.spawn(app()))
    assert out["sent"] == 1024
    socket = runtime.get_offcode("net.Socket")
    assert socket.sent == 1024


def test_oob_channel_attached_to_each_offcode():
    sim, machine, runtime = make_world()

    def app():
        yield from runtime.create_offcode("/offcodes/socket.odf")

    sim.run_until_event(sim.spawn(app()))
    for bindname in ("net.Socket", "net.Checksum"):
        offcode = runtime.get_offcode(bindname)
        assert offcode.oob_channel is not None
        assert offcode.oob_channel.config.priority == 0


def test_reuse_of_deployed_offcode():
    """Deploying a second app reusing net.Checksum must not redeploy it."""
    sim, machine, runtime = make_world()
    out = {}

    def app():
        yield from runtime.create_offcode("/offcodes/checksum.odf")
        first = runtime.get_offcode("net.Checksum")
        result = yield from runtime.create_offcode("/offcodes/socket.odf")
        out["first"] = first
        out["report"] = result.report

    sim.run_until_event(sim.spawn(app()))
    assert "net.Checksum" in out["report"].reused
    assert runtime.get_offcode("net.Checksum") is out["first"]
    # Pinning: socket Pulls checksum, checksum was already on the nic
    # (best offload target), so socket lands with it.
    assert out["report"].location_of("net.Socket") == \
        out["report"].location_of("net.Checksum")


def test_host_fallback_when_no_device_matches():
    """An ODF targeting a device class the machine lacks falls back to
    the host when the depot has a host-capable build."""
    sim = Simulator()
    machine = Machine(sim)          # no devices at all
    runtime = HydraRuntime(machine)
    odf = OdfDocument(
        bindname="net.Checksum", guid=CHECKSUM_GUID,
        interfaces=[ICHECKSUM],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/c.odf", odf)
    runtime.depot.register(CHECKSUM_GUID, ChecksumOffcode)
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode("/c.odf")

    sim.run_until_event(sim.spawn(app()))
    assert out["result"].location == "host"
    assert "net.Checksum" in out["result"].report.layout.host_fallbacks


def test_deployment_fails_without_any_implementation():
    sim = Simulator()
    machine = Machine(sim)
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="x", guid=Guid(123), interfaces=[ICHECKSUM],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/x.odf", odf)

    def app():
        yield from runtime.create_offcode("/x.odf")

    sim.spawn(app())
    with pytest.raises(InfeasibleLayoutError):
        sim.run()


def test_pseudo_offcodes_available():
    sim, machine, runtime = make_world()
    heap = runtime.get_offcode("hydra.Heap")
    assert heap.state == OffcodeState.RUNNING
    assert heap.implements(IHEAP.guid)
    rt = runtime.get_offcode("hydra.Runtime")
    assert rt.implements(IRUNTIME.guid)
    assert runtime.get_offcode("hydra.ChannelExecutive") is not None
    with pytest.raises(HydraError):
        runtime.get_offcode("hydra.Nonexistent")


def test_runtime_pseudo_offcode_lists_deployments():
    sim, machine, runtime = make_world()

    def app():
        yield from runtime.create_offcode("/offcodes/socket.odf")

    sim.run_until_event(sim.spawn(app()))
    rt = runtime.get_offcode("hydra.Runtime")
    names = rt.ListOffcodes()
    assert "net.Socket" in names and "net.Checksum" in names
    assert rt.GetOffcodeLocation("net.Socket") == "nic0"


def test_device_heap_pseudo_offcode_allocates_device_memory():
    sim, machine, runtime = make_world()
    nic_runtime = runtime.device_runtime("nic0")
    heap = nic_runtime.find("hydra.Heap")
    used_before = machine.device("nic0").memory.used_bytes
    out = {}

    def proc():
        out["addr"] = yield from heap.Alloc(4096)

    sim.run_until_event(sim.spawn(proc()))
    assert machine.device("nic0").memory.used_bytes - used_before >= 4096
    assert heap.UsedBytes() >= 4096


def test_stop_offcode_releases_registration():
    sim, machine, runtime = make_world()

    def app():
        yield from runtime.create_offcode("/offcodes/socket.odf")
        yield from runtime.stop_offcode("net.Socket")

    sim.run_until_event(sim.spawn(app()))
    assert runtime.locate("net.Socket") is None
    assert runtime.device_runtime("nic0").find("net.Socket") is None
    # Checksum is untouched.
    assert runtime.locate("net.Checksum") is not None


def test_figure3_manual_channel_flow():
    """The exact Figure 3 sequence: GetOffcode the executive, configure,
    CreateChannel, InstallCallHandler, ConnectOffcode."""
    sim, machine, runtime = make_world()
    out = {"handled": []}

    def app():
        result = yield from runtime.create_offcode("/offcodes/checksum.odf")
        ocode = result.offcode
        exec_oc = runtime.get_offcode("hydra.ChannelExecutive")
        assert exec_oc.ProviderCount() >= 3
        config = ChannelConfig(buffering=Buffering.DIRECT).with_target(
            ocode.location)
        channel = runtime.create_channel(config)
        channel.creator_endpoint.install_call_handler(
            lambda message: out["handled"].append(message.payload))
        runtime.connect_offcode(channel, ocode)
        out["channel"] = channel

    sim.run_until_event(sim.spawn(app()))
    assert out["channel"].connected


def test_register_offcode_twice_rejected():
    sim, machine, runtime = make_world()

    def app():
        yield from runtime.create_offcode("/offcodes/checksum.odf")

    sim.run_until_event(sim.spawn(app()))
    offcode = runtime.get_offcode("net.Checksum")
    document = runtime.document_of("net.Checksum")
    with pytest.raises(OffcodeError):
        runtime.register_offcode(offcode, document)
