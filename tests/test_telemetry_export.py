"""Exporter round-trip tests.

Pins the four properties the artifacts promise: the Chrome trace parses
and loads (structure a viewer needs), span timestamps are monotonic and
children nest inside parents, the Prometheus exposition is well-formed,
and two runs with the same seed produce byte-identical artifact files.
"""

import json

import pytest

from repro.core import (DeploymentSpec, HydraRuntime, InterfaceSpec,
                        MethodSpec, Offcode)
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.export import (
    to_chrome_trace,
    to_json_snapshot,
    to_prometheus_text,
    validate_chrome_trace,
    validate_prometheus_text,
    write_artifacts,
)

IDUMMY = InterfaceSpec.from_methods(
    "ITel", (MethodSpec("Nop", params=(), result="int"),))


class TelOffcode(Offcode):
    BINDNAME = "tel.Demo"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 7


GUID = Guid(909)


def run_scenario():
    """One deployment plus one two-way call — the smallest run whose
    trace exercises every span category."""
    sim = Simulator()
    tel = Telemetry.attach(sim)
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="tel.Demo", guid=GUID,
                      interfaces=[IDUMMY],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/t.odf", odf)
    runtime.depot.register(GUID, TelOffcode)

    def app():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/t.odf",)))
        yield from result.proxy.Nop()

    sim.run_until_event(sim.spawn(app()))
    return tel


@pytest.fixture(scope="module")
def telemetry():
    return run_scenario()


# -- Chrome trace --------------------------------------------------------------------


def test_chrome_trace_parses_and_validates(telemetry):
    trace = to_chrome_trace(telemetry)
    # Round-trips through JSON (what a viewer actually loads).
    loaded = json.loads(json.dumps(trace, sort_keys=True))
    assert loaded["traceEvents"]
    # This scenario is a single deterministic flow, so even strict
    # interval nesting must hold.
    assert validate_chrome_trace(loaded, strict_nesting=True) == []


def test_chrome_trace_structure(telemetry):
    trace = to_chrome_trace(telemetry)
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    # Metadata names the process and one thread per track.
    assert {m["args"]["name"] for m in meta if m["name"] == "process_name"} \
        == {"repro-sim"}
    thread_names = {m["args"]["name"] for m in meta
                    if m["name"] == "thread_name"}
    assert any(name.startswith("bus:") for name in thread_names)
    assert any(name.startswith("channel:") for name in thread_names)
    assert any(name.startswith("site:") for name in thread_names)
    # Span ts are globally monotonic (the emitter sorts by start).
    timestamps = [e["ts"] for e in spans]
    assert timestamps == sorted(timestamps)
    # Children nest inside their parents.
    by_id = {e["args"]["span_id"]: e for e in spans}
    for event in spans:
        parent_id = event["args"].get("parent_id")
        if parent_id is None:
            continue
        parent = by_id[parent_id]
        assert event["ts"] >= parent["ts"]
        assert event["ts"] + event["dur"] <= parent["ts"] + parent["dur"]
        assert event["args"]["trace_id"] == parent["args"]["trace_id"]


def test_chrome_validator_catches_malformations():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad_phase = {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1}]}
    assert "unknown phase" in validate_chrome_trace(bad_phase)[0]
    orphan = {"traceEvents": [
        {"ph": "X", "name": "a", "pid": 1, "ts": 5.0, "dur": 1.0,
         "args": {"span_id": 2, "parent_id": 99}}]}
    assert any("parent 99 not in trace" in p
               for p in validate_chrome_trace(orphan))
    backwards = {"traceEvents": [
        {"ph": "X", "name": "a", "pid": 1, "ts": 5.0, "dur": 1.0,
         "args": {"span_id": 1}},
        {"ph": "X", "name": "b", "pid": 1, "ts": 2.0, "dur": 1.0,
         "args": {"span_id": 2, "parent_id": 1}}]}
    problems = validate_chrome_trace(backwards)
    assert any("not monotonic" in p for p in problems)
    assert any("starts before parent" in p for p in problems)


# -- Prometheus text ------------------------------------------------------------------


def test_prometheus_text_is_well_formed(telemetry):
    text = to_prometheus_text(telemetry.registry)
    assert validate_prometheus_text(text) == []
    assert "# TYPE repro_span_duration_ns histogram" in text
    # Histograms expose cumulative buckets ending at +Inf, plus sum/count.
    assert 'repro_span_duration_ns_bucket{category="proxy",le="+Inf"}' in text
    assert "repro_span_duration_ns_count" in text


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.gauge("g", labels=("path",)) \
        .labels(path='a\\b"c').set(1)
    text = to_prometheus_text(registry)
    assert r'g{path="a\\b\"c"} 1' in text
    assert validate_prometheus_text(text) == []


def test_prometheus_validator_catches_malformations():
    problems = validate_prometheus_text("x_total 1")
    assert "exposition must end with a newline" in problems
    assert any("has no # TYPE" in p for p in problems)
    bad = "# TYPE x_total counter\n?garbage 1\n"
    assert any("malformed sample" in p
               for p in validate_prometheus_text(bad))
    bad_comment = "# NOPE x_total counter\n"
    assert any("malformed comment" in p
               for p in validate_prometheus_text(bad_comment))


# -- snapshot and determinism -----------------------------------------------------------


def test_json_snapshot_round_trips(telemetry):
    snap = json.loads(json.dumps(to_json_snapshot(telemetry),
                                 sort_keys=True))
    assert len(snap["spans"]) == len(telemetry.spans)
    assert snap["dropped_spans"] == 0 and snap["dropped_events"] == 0
    categories = {s["category"] for s in snap["spans"]}
    assert {"proxy", "marshal", "channel", "bus", "device",
            "reply"} <= categories
    assert "repro_span_duration_ns" in snap["metrics"]


def test_same_seed_runs_are_byte_identical(tmp_path, telemetry):
    first = write_artifacts(telemetry, str(tmp_path / "a"))
    second = write_artifacts(run_scenario(), str(tmp_path / "b"))
    for kind in ("chrome", "prometheus", "snapshot"):
        with open(first[kind], "rb") as fh:
            a = fh.read()
        with open(second[kind], "rb") as fh:
            b = fh.read()
        assert a == b, f"{kind} artifact differs between same-seed runs"


def test_write_artifacts_paths(tmp_path, telemetry):
    paths = write_artifacts(telemetry, str(tmp_path), prefix="demo")
    assert sorted(paths) == ["chrome", "prometheus", "snapshot"]
    assert paths["chrome"].endswith("demo.trace.json")
    assert paths["prometheus"].endswith("demo.metrics.prom")
    assert paths["snapshot"].endswith("demo.snapshot.json")
    with open(paths["chrome"]) as fh:
        assert validate_chrome_trace(json.load(fh)) == []
    with open(paths["prometheus"]) as fh:
        assert validate_prometheus_text(fh.read()) == []


# -- the CLI ------------------------------------------------------------------------------


def test_cli_tivopc_scenario(tmp_path, capsys):
    """The CI smoke entry point: runs, validates, exits zero, and the
    trace provably contains a full proxy->...->reply tree."""
    from repro.telemetry.cli import main

    out_dir = tmp_path / "artifacts"
    assert main(["--scenario", "tivopc", "--seed", "0",
                 "--seconds", "0.8", "--out", str(out_dir)]) == 0
    captured = capsys.readouterr()
    assert "artifacts validated" in captured.out
    assert not captured.err
    trace_path = out_dir / "tivopc-seed0.trace.json"
    with open(trace_path) as fh:
        trace = json.load(fh)
    assert validate_chrome_trace(trace) == []
    # One trace id covers the whole offload path.
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_trace = {}
    for event in spans:
        by_trace.setdefault(event["args"]["trace_id"], set()).add(
            event["cat"])
    assert any({"proxy", "marshal", "channel", "bus", "device",
                "reply"} <= cats for cats in by_trace.values())
