"""Tests for the CPU model."""

import pytest

from repro.errors import HardwareError
from repro.hw.cpu import Cpu, CpuSampler, CpuSpec
from repro.sim import Simulator


def test_spec_defaults_match_testbed():
    spec = CpuSpec()
    assert spec.frequency_hz == pytest.approx(2.4e9)
    assert spec.name == "pentium4"


def test_execute_advances_time_and_accounts():
    sim = Simulator()
    cpu = Cpu(sim)

    def work(sim, cpu):
        yield from cpu.execute(1000, context="server")

    sim.spawn(work(sim, cpu))
    sim.run()
    assert sim.now == 1000
    assert cpu.total_busy == 1000
    assert cpu.busy_by_context == {"server": 1000}


def test_execute_cycles_scales_with_frequency():
    sim = Simulator()
    cpu = Cpu(sim, CpuSpec(frequency_hz=1e9))

    def work(sim, cpu):
        yield from cpu.execute_cycles(2400, context="x")

    sim.spawn(work(sim, cpu))
    sim.run()
    assert sim.now == 2400  # 2400 cycles at 1 GHz = 2400 ns


def test_contention_serializes():
    sim = Simulator()
    cpu = Cpu(sim)
    finish = []

    def job(sim, cpu, tag):
        yield from cpu.execute(100, context=tag)
        finish.append((tag, sim.now))

    sim.spawn(job(sim, cpu, "a"))
    sim.spawn(job(sim, cpu, "b"))
    sim.run()
    assert finish == [("a", 100), ("b", 200)]


def test_negative_work_rejected():
    sim = Simulator()
    cpu = Cpu(sim)

    def bad(sim, cpu):
        yield from cpu.execute(-1)

    sim.spawn(bad(sim, cpu))
    with pytest.raises(HardwareError):
        sim.run()


def test_utilization_fraction():
    sim = Simulator()
    cpu = Cpu(sim)

    def job(sim, cpu):
        yield from cpu.execute(300, context="x")
        yield sim.timeout(700)

    sim.spawn(job(sim, cpu))
    sim.run()
    assert cpu.utilization() == pytest.approx(0.3)


def test_context_share():
    sim = Simulator()
    cpu = Cpu(sim)

    def job(sim, cpu):
        yield from cpu.execute(300, context="kernel")
        yield from cpu.execute(100, context="user")

    sim.spawn(job(sim, cpu))
    sim.run()
    assert cpu.context_share("kernel") == pytest.approx(0.75)
    assert cpu.context_share("user") == pytest.approx(0.25)
    assert cpu.context_share("absent") == 0.0


def test_sampler_windows():
    sim = Simulator()
    cpu = Cpu(sim)
    sampler = CpuSampler(cpu)

    def phase(sim, cpu):
        yield from cpu.execute(500, context="x")   # busy 0..500
        yield sim.timeout(500)                     # idle 500..1000

    proc = sim.spawn(phase(sim, cpu))
    sim.run(until=500)
    u1 = sampler.sample()
    sim.run(until=1000)
    u2 = sampler.sample()
    assert u1 == pytest.approx(1.0)
    assert u2 == pytest.approx(0.0)
    assert proc.processed


def test_sampler_mid_busy_interval():
    sim = Simulator()
    cpu = Cpu(sim)
    sampler = CpuSampler(cpu)

    def job(sim, cpu):
        yield from cpu.execute(1000, context="x")

    sim.spawn(job(sim, cpu))
    sim.run(until=250)
    assert sampler.sample() == pytest.approx(1.0)
    sim.run(until=2000)
    # remaining busy 250..1000 in window 250..2000 => 750/1750
    assert sampler.sample() == pytest.approx(750 / 1750)


def test_queue_depth():
    sim = Simulator()
    cpu = Cpu(sim)

    def job(sim, cpu):
        yield from cpu.execute(100)

    for _ in range(3):
        sim.spawn(job(sim, cpu))
    sim.run(until=50)
    assert cpu.busy
    assert cpu.queue_depth == 2
