"""Mergeable metric snapshots: order-insensitive, exact, type-correct."""

import json

import pytest

from repro.errors import ReproError
from repro.telemetry.merge import merge_snapshots
from repro.telemetry.metrics import MetricsRegistry


def _shard_snapshot(shard, sent, lost):
    registry = MetricsRegistry()
    chunks = registry.counter("chunks_total", "chunks", labels=("state",))
    chunks.labels(state="sent").inc(sent)
    chunks.labels(state="lost").inc(lost)
    registry.counter("shard_chunks_total", "per shard",
                     labels=("shard", "state")
                     ).labels(shard=str(shard), state="sent").inc(sent)
    registry.gauge("clients", "population").set(4)
    hist = registry.histogram("lat", "latency", buckets=(10, 100))
    for value in (5, 50, 500):
        hist.observe(value)
    return registry.snapshot()


def test_counters_sum_exactly():
    merged = merge_snapshots([_shard_snapshot(0, 100, 3),
                              _shard_snapshot(1, 200, 7)])
    by_state = {s["labels"]["state"]: s["value"]
                for s in merged["chunks_total"]["samples"]}
    assert by_state == {"sent": 300, "lost": 10}


def test_gauges_sum_as_extensive_quantities():
    merged = merge_snapshots([_shard_snapshot(0, 1, 0),
                              _shard_snapshot(1, 1, 0)])
    assert merged["clients"]["samples"][0]["value"] == 8


def test_histograms_merge_elementwise():
    merged = merge_snapshots([_shard_snapshot(0, 1, 0),
                              _shard_snapshot(1, 1, 0)])
    sample = merged["lat"]["samples"][0]
    assert sample["count"] == 6
    assert sample["sum"] == 2 * (5 + 50 + 500)
    assert sample["buckets"] == [[10, 2], [100, 4]]


def test_disjoint_label_sets_union():
    merged = merge_snapshots([_shard_snapshot(0, 10, 0),
                              _shard_snapshot(1, 20, 0)])
    samples = merged["shard_chunks_total"]["samples"]
    assert [(s["labels"]["shard"], s["value"]) for s in samples] == \
        [("0", 10), ("1", 20)]


def test_merge_is_order_insensitive_byte_identical():
    shards = [_shard_snapshot(i, 10 * (i + 1), i) for i in range(4)]
    forward = merge_snapshots(shards)
    backward = merge_snapshots(list(reversed(shards)))
    assert json.dumps(forward, sort_keys=True) == \
        json.dumps(backward, sort_keys=True)


def test_merge_rejects_type_mismatch():
    a = {"m": {"type": "counter", "help": "", "samples": []}}
    b = {"m": {"type": "gauge", "help": "", "samples": []}}
    with pytest.raises(ReproError):
        merge_snapshots([a, b])


def test_merge_rejects_bucket_mismatch():
    def snap(buckets):
        registry = MetricsRegistry()
        registry.histogram("h", "", buckets=buckets).observe(1)
        return registry.snapshot()
    with pytest.raises(ReproError):
        merge_snapshots([snap((10, 100)), snap((10, 200))])


def test_merge_tolerates_missing_families():
    registry = MetricsRegistry()
    registry.counter("only_here", "").inc(5)
    merged = merge_snapshots([registry.snapshot(),
                              _shard_snapshot(0, 1, 0)])
    assert merged["only_here"]["samples"][0]["value"] == 5
    assert "chunks_total" in merged


def test_merge_tolerates_empty_and_absent_snapshots():
    # A degraded fleet run merges only the shards that completed; the
    # missing shard contributes either nothing at all (absent from the
    # list) or an empty {} snapshot — both must be no-ops, and merging
    # nothing must yield an empty result rather than raising.
    full = _shard_snapshot(0, 10, 1)
    with_empty = merge_snapshots([full, {}])
    assert json.dumps(with_empty, sort_keys=True) == \
        json.dumps(merge_snapshots([full]), sort_keys=True)
    assert merge_snapshots([]) == {}
    assert merge_snapshots([{}, {}]) == {}


def _supervision_snapshot(retries, resumed):
    registry = MetricsRegistry()
    registry.counter("repro_fleet_shard_retries_total", "").inc(retries)
    registry.counter("repro_fleet_shard_resumed_total", "").inc(resumed)
    return registry.snapshot()


def test_supervision_counters_fold_across_runs():
    # Two partial runs' supervision snapshots (e.g. a crashed run plus
    # its resume) fold into fleet-wide totals like any other counter.
    merged = merge_snapshots([_supervision_snapshot(2, 0),
                              _supervision_snapshot(1, 3)])
    by_name = {name: fam["samples"][0]["value"]
               for name, fam in merged.items()}
    assert by_name == {"repro_fleet_shard_retries_total": 3,
                       "repro_fleet_shard_resumed_total": 3}


def test_snapshot_serializes_labels_sorted():
    """Satellite fix: label order in the snapshot must come from sorted
    label names, never family declaration order."""
    registry = MetricsRegistry()
    family = registry.counter("m", "", labels=("zeta", "alpha"))
    family.labels(zeta="1", alpha="2").inc()
    sample = registry.snapshot()["m"]["samples"][0]
    assert list(sample["labels"]) == ["alpha", "zeta"]


def test_snapshot_identical_across_declaration_order():
    def build(label_order, touch_order):
        registry = MetricsRegistry()
        family = registry.counter("m", "labelled", labels=label_order)
        for combo in touch_order:
            family.labels(**combo).inc()
        return registry.snapshot()
    combos = [{"a": "x", "b": "1"}, {"a": "y", "b": "0"}]
    one = build(("a", "b"), combos)
    two = build(("b", "a"), list(reversed(combos)))
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
