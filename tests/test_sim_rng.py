"""Tests for deterministic RNG streams."""

from repro.sim import RandomStreams


def test_same_name_same_sequence():
    a = RandomStreams(7).stream("noise")
    b = RandomStreams(7).stream("noise")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    streams = RandomStreams(7)
    a = streams.stream("noise")
    b = streams.stream("jitter")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_adding_stream_does_not_perturb_existing():
    streams1 = RandomStreams(3)
    s1 = streams1.stream("a")
    first = [s1.random() for _ in range(5)]

    streams2 = RandomStreams(3)
    streams2.stream("b")          # new consumer created first
    s2 = streams2.stream("a")
    second = [s2.random() for _ in range(5)]
    assert first == second


def test_fork_independent():
    root = RandomStreams(9)
    child = root.fork("client")
    a = root.stream("x")
    b = child.stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_deterministic():
    a = RandomStreams(9).fork("client").stream("x")
    b = RandomStreams(9).fork("client").stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
