"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hw.cache import Cache, CacheConfig, SampledCacheMonitor


def small_cache():
    # 4 sets x 2 ways x 64B lines = 512 B
    return Cache(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))


def test_config_defaults_match_paper_testbed():
    cfg = CacheConfig()
    assert cfg.size_bytes == 256 * 1024
    assert cfg.line_bytes == 64
    assert cfg.associativity == 8
    assert cfg.num_sets == 512


def test_config_validation():
    with pytest.raises(HardwareError):
        CacheConfig(line_bytes=48)          # not a power of two
    with pytest.raises(HardwareError):
        CacheConfig(size_bytes=0)
    with pytest.raises(HardwareError):
        CacheConfig(size_bytes=1000, line_bytes=64, associativity=2)


def test_cold_miss_then_hit():
    cache = small_cache()
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_same_line_different_offsets_hit():
    cache = small_cache()
    cache.access(0x100)
    assert cache.access(0x13F) is True   # same 64B line
    assert cache.access(0x140) is False  # next line


def test_lru_eviction_within_set():
    cache = small_cache()  # 2-way; set stride = 4 sets * 64 = 256B
    a, b, c = 0x000, 0x100, 0x200  # all map to set 0
    cache.access(a)
    cache.access(b)
    cache.access(a)          # a is now MRU
    cache.access(c)          # evicts b (LRU)
    assert cache.contains(a)
    assert not cache.contains(b)
    assert cache.contains(c)
    assert cache.stats.evictions == 1


def test_write_marks_dirty_and_writeback_on_eviction():
    cache = small_cache()
    cache.access(0x000, write=True)
    cache.access(0x100)
    cache.access(0x200)  # evicts dirty 0x000
    assert cache.stats.writebacks == 1


def test_access_range_counts_lines():
    cache = small_cache()
    hits, misses = cache.access_range(0, 256)
    assert (hits, misses) == (0, 4)
    hits, misses = cache.access_range(0, 256)
    assert (hits, misses) == (4, 0)


def test_access_range_partial_lines():
    cache = small_cache()
    # 10 bytes straddling a line boundary touches 2 lines.
    hits, misses = cache.access_range(60, 10)
    assert misses == 2


def test_access_range_empty():
    cache = small_cache()
    assert cache.access_range(0, 0) == (0, 0)


def test_streaming_evicts_resident_working_set():
    """The mechanism behind Figure 10: streaming data evicts hot lines."""
    cache = Cache(CacheConfig(size_bytes=4096, line_bytes=64, associativity=4))
    # Install a working set filling the whole cache.
    cache.access_range(0, 4096)
    assert cache.resident_lines == 64
    # Stream 64 kB through: working set is gone afterwards.
    cache.access_range(0x100000, 65536)
    resident = sum(1 for addr in range(0, 4096, 64) if cache.contains(addr))
    assert resident == 0


def test_flush_returns_dirty_count():
    cache = small_cache()
    cache.access(0x000, write=True)
    cache.access(0x040, write=True)
    cache.access(0x080)
    assert cache.flush() == 2
    assert cache.resident_lines == 0


def test_negative_address_rejected():
    cache = small_cache()
    with pytest.raises(HardwareError):
        cache.access(-1)
    with pytest.raises(HardwareError):
        cache.access_range(0, -5)


def test_stats_delta_and_snapshot():
    cache = small_cache()
    cache.access_range(0, 512)
    snap = cache.stats.snapshot()
    cache.access_range(0, 512)  # all hits
    delta = cache.stats.delta(snap)
    assert delta.misses == 0
    assert delta.hits == 8
    assert delta.miss_rate == 0.0


def test_sampled_monitor_windows():
    cache = small_cache()
    monitor = SampledCacheMonitor(cache)
    cache.access_range(0, 256)           # 4 misses
    w1 = monitor.sample(now_ns=5)
    cache.access_range(0, 256)           # 4 hits
    w2 = monitor.sample(now_ns=10)
    assert w1.misses == 4 and w1.hits == 0
    assert w2.misses == 0 and w2.hits == 4
    assert monitor.miss_rates() == [1.0, 0.0]


# -- property-based -----------------------------------------------------------

@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 20),
                      min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_resident_bounded_by_capacity(addrs):
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
    for addr in addrs:
        cache.access(addr)
    assert cache.resident_lines <= cache.config.num_lines
    assert cache.stats.accesses == len(addrs)


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 16),
                      min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_property_second_pass_over_small_set_hits(addrs):
    """Re-accessing an address immediately after access always hits."""
    cache = Cache(CacheConfig(size_bytes=2048, line_bytes=64, associativity=4))
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr) is True


@given(addrs=st.lists(st.integers(min_value=0, max_value=1 << 24),
                      min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_property_counters_consistent(addrs):
    cache = Cache(CacheConfig(size_bytes=512, line_bytes=64, associativity=2))
    for addr in addrs:
        cache.access(addr, write=(addr % 3 == 0))
    stats = cache.stats
    assert stats.hits + stats.misses == len(addrs)
    assert stats.evictions == stats.misses - cache.resident_lines
    assert 0 <= stats.writebacks <= stats.evictions
