"""The supervised dispatcher: retry, quarantine, timeout, hedging.

These tests drive :class:`SupervisedPool` directly with a trivial task
body so every supervision mechanism is pinned in isolation — the fleet
tests then pin the composition.  The tentpole contract here: a dead or
wedged worker costs a retry, never the run; ``workers=1`` never touches
multiprocessing at all.
"""

import multiprocessing
import threading

import pytest

from repro.errors import ReproError
from repro.evaluation.supervised import (
    SupervisedPool,
    SupervisionPolicy,
    TaskFailure,
)
from repro.faults.fleet import FleetChaos

# Short waits everywhere: these tests exercise control flow, not clocks.
_FAST = SupervisionPolicy(backoff_base_s=0.0, backoff_cap_s=0.0,
                          hedge_after_s=0.05, poll_s=0.01)


def _double(x):
    return x * 2


# -- policy validation --------------------------------------------------------


def test_policy_rejects_bad_shapes():
    for bad in (dict(max_retries=-1),
                dict(backoff_base_s=-0.1),
                dict(backoff_base_s=0.5, backoff_cap_s=0.1),
                dict(shard_timeout_s=0.0),
                dict(hedge_after_s=-1.0),
                dict(poll_s=0.0)):
        with pytest.raises(ReproError):
            SupervisionPolicy(**bad)


def test_backoff_is_capped_exponential():
    policy = SupervisionPolicy(backoff_base_s=0.05, backoff_cap_s=0.3)
    assert policy.backoff_s(0) == 0.0
    assert policy.backoff_s(1) == 0.05
    assert policy.backoff_s(2) == 0.10
    assert policy.backoff_s(3) == 0.20
    assert policy.backoff_s(4) == 0.30       # capped
    assert policy.backoff_s(10) == 0.30


def test_pool_rejects_zero_workers_and_mismatched_keys():
    with pytest.raises(ValueError):
        SupervisedPool(_double, workers=0)
    pool = SupervisedPool(_double, workers=1, task_keys=["a", "b"])
    with pytest.raises(ReproError, match="task_keys"):
        pool.run([1, 2, 3])


# -- the happy paths ----------------------------------------------------------


def test_parallel_dispatch_returns_every_result():
    pool = SupervisedPool(_double, workers=2, policy=_FAST)
    results = pool.run(list(range(6)))
    assert results == {i: i * 2 for i in range(6)}
    assert sorted(pool.completion_order) == list(range(6))
    assert not pool.failures
    assert pool.stats.retries == 0


def test_empty_items_is_a_noop():
    pool = SupervisedPool(_double, workers=2, policy=_FAST)
    assert pool.run([]) == {}


# -- workers=1 never touches multiprocessing ----------------------------------


def test_sequential_path_never_imports_a_process(monkeypatch):
    def explode(*args, **kwargs):
        raise AssertionError("workers=1 must stay in-process")
    monkeypatch.setattr(multiprocessing, "get_context", explode)
    import repro.evaluation.parallel as parallel
    monkeypatch.setattr(parallel, "fork_context", explode)
    pool = SupervisedPool(_double, workers=1, policy=_FAST)
    assert pool.run([1, 2, 3]) == {0: 2, 1: 4, 2: 6}


def test_sequential_retry_and_quarantine(monkeypatch):
    calls = []

    def flaky(x):
        calls.append(x)
        if len(calls) < 3:
            raise RuntimeError(f"boom {len(calls)}")
        return x

    policy = SupervisionPolicy(max_retries=2, backoff_base_s=0.01,
                               backoff_cap_s=0.05)
    slept = []
    pool = SupervisedPool(flaky, workers=1, policy=policy)
    pool._sleep = slept.append
    assert pool.run([7]) == {0: 7}
    assert pool.stats.retries == 2
    # Backoff before attempt 1 then attempt 2: base, 2*base.
    assert slept == [0.01, 0.02]

    def always(x):
        raise RuntimeError("always")

    pool = SupervisedPool(always, workers=1, policy=policy)
    pool._sleep = lambda s: None
    assert pool.run([7]) == {}
    assert pool.stats.quarantined == 1
    failure = pool.failures[0]
    assert isinstance(failure, TaskFailure)
    assert failure.attempts == 3
    assert len(failure.errors) == 3
    assert "RuntimeError: always" in failure.summary()


# -- crash-safety across forked workers ---------------------------------------


def test_worker_kill_is_retried():
    chaos = FleetChaos(kills=(("t1", 0),))
    pool = SupervisedPool(_double, workers=2, policy=_FAST, chaos=chaos,
                          task_keys=["t0", "t1", "t2"])
    assert pool.run([0, 1, 2]) == {0: 0, 1: 2, 2: 4}
    assert pool.stats.worker_deaths == 1
    assert pool.stats.workers_replaced == 1
    assert pool.stats.retries == 1
    assert not pool.failures


def test_idle_worker_death_recovery_keeps_slot_state():
    # Regression: dispatch()'s broken-pipe recovery (a worker that died
    # *idle*, e.g. OOM between dispatches) replaces the worker and
    # re-sends — and must restore the slot's in-flight state.  When the
    # slot is left looking idle, the supervisor assigns it a second
    # task, the re-sent dispatch is never polled, and the run hangs.
    pool = SupervisedPool(_double, workers=2, policy=_FAST)
    real_spawn = pool._spawn
    first = []

    def spawn_dead_first(ctx):
        slot = real_spawn(ctx)
        if not first:
            first.append(True)
            slot.conn.send(None)      # orderly exit: the worker dies idle
            slot.process.join(timeout=5.0)
        return slot

    pool._spawn = spawn_dead_first
    results = {}
    runner = threading.Thread(
        target=lambda: results.update(pool.run([0, 1, 2, 3])),
        daemon=True)
    runner.start()
    runner.join(timeout=30.0)
    assert not runner.is_alive(), "supervisor hung after idle worker death"
    assert results == {0: 0, 1: 2, 2: 4, 3: 6}
    assert pool.stats.worker_deaths == 1
    assert pool.stats.workers_replaced == 1
    # The re-send is the same attempt, not a retry.
    assert pool.stats.retries == 0
    assert not pool.failures


def test_poison_task_quarantines_without_sinking_the_rest():
    policy = SupervisionPolicy(max_retries=1, backoff_base_s=0.0,
                               backoff_cap_s=0.0, poll_s=0.01)
    pool = SupervisedPool(_double, workers=2, policy=policy,
                          chaos=FleetChaos.poison(1, max_retries=1))
    results = pool.run([0, 1, 2])
    assert results == {0: 0, 2: 4}
    assert pool.stats.quarantined == 1
    assert pool.failures[1].key == 1
    assert pool.failures[1].attempts == 2
    assert "worker died" in pool.failures[1].summary()


def test_exception_in_worker_is_an_ordinary_failure():
    def picky(x):
        if x == 1:
            raise ValueError("no ones")
        return x

    policy = SupervisionPolicy(max_retries=0, backoff_base_s=0.0,
                               backoff_cap_s=0.0, poll_s=0.01)
    pool = SupervisedPool(picky, workers=2, policy=policy)
    assert pool.run([0, 1, 2]) == {0: 0, 2: 2}
    assert "ValueError: no ones" in pool.failures[1].summary()
    # An in-band exception is not a worker death; nobody was replaced.
    assert pool.stats.worker_deaths == 0
    assert pool.stats.workers_replaced == 0


def test_stalled_worker_is_reaped_by_the_timeout():
    policy = SupervisionPolicy(max_retries=1, backoff_base_s=0.0,
                               backoff_cap_s=0.0, shard_timeout_s=0.3,
                               hedge=False, poll_s=0.02)
    chaos = FleetChaos(stalls=((0, 0, 30.0),))
    pool = SupervisedPool(_double, workers=2, policy=policy, chaos=chaos)
    assert pool.run([5, 6]) == {0: 10, 1: 12}
    assert pool.stats.timeouts == 1
    assert pool.stats.workers_replaced == 1
    assert pool.stats.retries == 1


def test_straggler_is_hedged_and_first_result_wins():
    policy = SupervisionPolicy(backoff_base_s=0.0, backoff_cap_s=0.0,
                               hedge_after_s=0.05, poll_s=0.01)
    chaos = FleetChaos(slows=((1, 0, 2.0),))
    pool = SupervisedPool(_double, workers=2, policy=policy, chaos=chaos)
    assert pool.run([0, 1]) == {0: 0, 1: 2}
    assert pool.stats.hedges == 1
    assert pool.stats.hedge_wins == 1
    assert not pool.failures


def test_hedging_respects_the_attempt_budget():
    # max_retries=0 means one dispatch total per task: never hedge.
    policy = SupervisionPolicy(max_retries=0, backoff_base_s=0.0,
                               backoff_cap_s=0.0, hedge_after_s=0.0,
                               poll_s=0.01)
    chaos = FleetChaos(slows=((1, 0, 0.3),))
    pool = SupervisedPool(_double, workers=2, policy=policy, chaos=chaos)
    assert pool.run([0, 1]) == {0: 0, 1: 2}
    assert pool.stats.hedges == 0
