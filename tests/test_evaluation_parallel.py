"""The parallel sweep runner must be bit-identical to the sequential one.

Each sweep point builds its own seeded Testbed, so results depend only on
the task tuple; ``Pool.map`` preserves order.  These tests pin that
contract: a multi-worker run and a sequential run of the same sweep must
agree field for field, not just approximately.
"""

import pytest

from repro import units
from repro.evaluation.parallel import default_workers, run_tasks
from repro.evaluation.sweeps import run_chunk_size_sweep, run_rate_sweep
from repro.media.mpeg import StreamConfig

# Short runs keep the suite quick while still exercising the full
# testbed (kernels, NIC rings, measurement client) per point.
_SECONDS = 2.0


def _points_equal(a, b):
    return (a.scenario == b.scenario
            and a.interval_ms == b.interval_ms
            and a.chunk_bytes == b.chunk_bytes
            and a.jitter == b.jitter
            and a.cpu_utilization == b.cpu_utilization
            and a.packets == b.packets)


def test_rate_sweep_parallel_matches_sequential():
    kwargs = dict(intervals_ms=(10.0, 5.0), scenarios=("simple", "offloaded"),
                  seconds=_SECONDS, seed=3)
    sequential = run_rate_sweep(workers=1, **kwargs)
    parallel = run_rate_sweep(workers=2, **kwargs)
    assert set(sequential) == set(parallel)
    for scenario in sequential:
        assert len(sequential[scenario]) == len(parallel[scenario])
        for seq_point, par_point in zip(sequential[scenario],
                                        parallel[scenario]):
            assert _points_equal(seq_point, par_point)


def test_chunk_sweep_parallel_matches_sequential():
    kwargs = dict(chunk_sizes=(512, 4096), scenarios=("offloaded",),
                  seconds=_SECONDS, seed=1)
    sequential = run_chunk_size_sweep(workers=1, **kwargs)
    parallel = run_chunk_size_sweep(workers=3, **kwargs)
    for seq_point, par_point in zip(sequential["offloaded"],
                                    parallel["offloaded"]):
        assert _points_equal(seq_point, par_point)


def test_run_tasks_preserves_order_across_workers():
    stream_a = StreamConfig(interval_ns=units.ms_to_ns(10.0))
    stream_b = StreamConfig(interval_ns=units.ms_to_ns(5.0))
    tasks = [("offloaded", stream_a, _SECONDS, 0),
             ("simple", stream_a, _SECONDS, 0),
             ("offloaded", stream_b, _SECONDS, 0)]
    points = run_tasks(tasks, workers=2)
    assert [p.scenario for p in points] == ["offloaded", "simple",
                                            "offloaded"]
    assert [p.interval_ms for p in points] == [10.0, 10.0, 5.0]


def test_run_tasks_rejects_zero_workers():
    with pytest.raises(ValueError):
        run_tasks([], workers=0)


def test_default_workers_positive():
    assert default_workers() >= 1
