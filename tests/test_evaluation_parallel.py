"""The parallel sweep runner must be bit-identical to the sequential one.

Each sweep point builds its own seeded Testbed, so results depend only on
the task tuple; ``Pool.map`` preserves order.  These tests pin that
contract: a multi-worker run and a sequential run of the same sweep must
agree field for field, not just approximately.
"""

import os
from unittest import mock

import pytest

from repro import units
from repro.errors import ReproError
from repro.evaluation.parallel import (default_workers, fork_context,
                                       map_unordered, run_tasks)
from repro.evaluation.sweeps import run_chunk_size_sweep, run_rate_sweep
from repro.media.mpeg import StreamConfig

# Short runs keep the suite quick while still exercising the full
# testbed (kernels, NIC rings, measurement client) per point.
_SECONDS = 2.0


def _points_equal(a, b):
    return (a.scenario == b.scenario
            and a.interval_ms == b.interval_ms
            and a.chunk_bytes == b.chunk_bytes
            and a.jitter == b.jitter
            and a.cpu_utilization == b.cpu_utilization
            and a.packets == b.packets)


def test_rate_sweep_parallel_matches_sequential():
    kwargs = dict(intervals_ms=(10.0, 5.0), scenarios=("simple", "offloaded"),
                  seconds=_SECONDS, seed=3)
    sequential = run_rate_sweep(workers=1, **kwargs)
    parallel = run_rate_sweep(workers=2, **kwargs)
    assert set(sequential) == set(parallel)
    for scenario in sequential:
        assert len(sequential[scenario]) == len(parallel[scenario])
        for seq_point, par_point in zip(sequential[scenario],
                                        parallel[scenario]):
            assert _points_equal(seq_point, par_point)


def test_chunk_sweep_parallel_matches_sequential():
    kwargs = dict(chunk_sizes=(512, 4096), scenarios=("offloaded",),
                  seconds=_SECONDS, seed=1)
    sequential = run_chunk_size_sweep(workers=1, **kwargs)
    parallel = run_chunk_size_sweep(workers=3, **kwargs)
    for seq_point, par_point in zip(sequential["offloaded"],
                                    parallel["offloaded"]):
        assert _points_equal(seq_point, par_point)


def test_run_tasks_preserves_order_across_workers():
    stream_a = StreamConfig(interval_ns=units.ms_to_ns(10.0))
    stream_b = StreamConfig(interval_ns=units.ms_to_ns(5.0))
    tasks = [("offloaded", stream_a, _SECONDS, 0),
             ("simple", stream_a, _SECONDS, 0),
             ("offloaded", stream_b, _SECONDS, 0)]
    points = run_tasks(tasks, workers=2)
    assert [p.scenario for p in points] == ["offloaded", "simple",
                                            "offloaded"]
    assert [p.interval_ms for p in points] == [10.0, 10.0, 5.0]


def test_run_tasks_rejects_zero_workers():
    with pytest.raises(ValueError):
        run_tasks([], workers=0)


def test_default_workers_positive():
    assert default_workers() >= 1


def test_default_workers_respects_affinity():
    # A cgroup-pinned container may expose many CPUs but grant few: the
    # default must follow the affinity mask, not os.cpu_count().
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no sched_getaffinity")
    assert default_workers() == len(os.sched_getaffinity(0))
    with mock.patch("os.sched_getaffinity", return_value={0, 2, 5}):
        assert default_workers() == 3


def test_default_workers_falls_back_without_affinity():
    with mock.patch("repro.evaluation.parallel.os") as fake_os:
        del fake_os.sched_getaffinity      # platform without the call
        fake_os.cpu_count.return_value = 6
        assert default_workers() == 6
        fake_os.cpu_count.return_value = None
        assert default_workers() == 1


def test_fork_context_error_is_clear_without_fork():
    with mock.patch("multiprocessing.get_context",
                    side_effect=ValueError("cannot find context")):
        with pytest.raises(ReproError, match="fork"):
            fork_context()


def test_map_unordered_single_worker_is_in_process():
    assert sorted(map_unordered(abs, [-3, 1, -2], workers=1)) == [1, 2, 3]


def test_map_unordered_multi_worker_same_results():
    sequential = sorted(map_unordered(_square, range(8), workers=1))
    parallel = sorted(map_unordered(_square, range(8), workers=2,
                                    chunksize=2))
    assert sequential == parallel == [i * i for i in range(8)]


def test_map_unordered_rejects_zero_workers():
    with pytest.raises(ValueError):
        list(map_unordered(abs, [1], workers=0))


def test_single_worker_paths_never_touch_multiprocessing():
    # workers=1 must not even request a start method — the in-process
    # path has to work on spawn-only platforms and under test harnesses
    # that forbid forking.
    with mock.patch("multiprocessing.get_context",
                    side_effect=AssertionError("in-process path forked")):
        assert sorted(map_unordered(abs, [-3, 1, -2], workers=1)) == [1, 2, 3]
        stream = StreamConfig(interval_ns=units.ms_to_ns(10.0))
        points = run_tasks([("offloaded", stream, _SECONDS, 0)], workers=1)
        assert [p.scenario for p in points] == ["offloaded"]


def test_map_unordered_surfaces_fork_error_as_repro_error():
    with mock.patch("multiprocessing.get_context",
                    side_effect=ValueError("cannot find context")):
        with pytest.raises(ReproError, match="workers=1 instead"):
            list(map_unordered(_square, range(4), workers=2,
                               supervised=False))


def test_map_unordered_unsupervised_matches_supervised():
    supervised = sorted(map_unordered(_square, range(8), workers=2))
    bare = sorted(map_unordered(_square, range(8), workers=2,
                                supervised=False))
    assert supervised == bare == [i * i for i in range(8)]


def test_map_unordered_raises_on_quarantined_chunk():
    from repro.evaluation.supervised import SupervisionPolicy
    policy = SupervisionPolicy(max_retries=0, backoff_base_s=0.0,
                               backoff_cap_s=0.0, poll_s=0.01)
    with pytest.raises(ReproError, match="quarantined"):
        list(map_unordered(_reject_two, range(4), workers=2,
                           policy=policy))


def _reject_two(x):
    if x == 2:
        raise RuntimeError("two is right out")
    return x


def _square(x):
    return x * x
