"""Smoke tests: every example script must run to completion.

The examples double as end-to-end acceptance tests of the public API;
they are executed in-process (their ``main()``s) to keep this fast.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "quickstart OK" in out
    assert "-> nic0" in out


def test_layout_optimizer_runs(capsys):
    load_example("layout_optimizer").main()
    out = capsys.readouterr().out
    assert "layout optimizer demo OK" in out
    assert "decoder        -> gpu" in out


def test_checksum_offload_runs(capsys):
    load_example("checksum_offload").main()
    out = capsys.readouterr().out
    assert "checksum offload demo OK" in out
    assert "Pull dragged Checksum to nic0" in out


def test_kv_cache_runs(capsys):
    load_example("kv_cache").main()
    out = capsys.readouterr().out
    assert "kv cache demo OK" in out
    assert "cache deployed -> disk0" in out
    assert "speedup" in out


def test_packet_telemetry_runs(capsys):
    load_example("packet_telemetry").main()
    out = capsys.readouterr().out
    assert "packet telemetry demo OK" in out
    assert "telemetry deployed -> nic0" in out


@pytest.mark.slow
def test_tivopc_demo_runs(capsys):
    load_example("tivopc_demo").main()
    out = capsys.readouterr().out
    assert "tivopc demo OK" in out
    assert "playback decoded" in out


@pytest.mark.slow
def test_smart_storage_runs(capsys):
    load_example("smart_storage").main()
    out = capsys.readouterr().out
    assert "smart storage demo OK" in out


def test_vm_demux_runs(capsys):
    load_example("vm_demux").main()
    out = capsys.readouterr().out
    assert "vm demux demo OK" in out
