"""The repro.api facade and backward compatibility of deprecated APIs."""

import ast
import pathlib
import warnings

import pytest

import repro
import repro.api as api
from repro.core.channel import (
    Buffering,
    ChannelConfig,
    ChannelKind,
    Reliability,
)
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.core.offcode import Offcode
from repro.core.runtime import DeploymentSpec, HydraRuntime
from repro.errors import DeploymentError
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


# -- the facade ---------------------------------------------------------------------

def test_every_facade_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_facade_all_is_duplicate_free():
    assert len(api.__all__) == len(set(api.__all__))


def test_package_root_reexports_the_facade_lazily():
    assert repro.HydraRuntime is api.HydraRuntime
    assert repro.ChannelConfig is api.ChannelConfig
    assert repro.api is api


def test_package_root_still_exposes_subpackages():
    assert repro.units.SECOND == 1_000_000_000
    assert repro.core.Channel is api.Channel


def test_package_root_rejects_unknown_names():
    with pytest.raises(AttributeError):
        repro.DefinitelyNotAThing


def test_examples_import_only_from_the_facade():
    """examples/ are user-facing: they must stay on the blessed surface."""
    for path in sorted(EXAMPLES.glob("*.py")):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[0] == "repro":
                    assert node.module == "repro.api", (
                        f"{path.name} imports from {node.module}")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    assert not alias.name.startswith("repro"), (
                        f"{path.name} imports {alias.name}")


# -- DeploymentSpec ------------------------------------------------------------------

def test_deployment_spec_coerces_a_lone_path():
    spec = DeploymentSpec(odf_paths="/offcodes/a.odf")
    assert spec.odf_paths == ("/offcodes/a.odf",)


def test_deployment_spec_requires_a_path():
    with pytest.raises(DeploymentError):
        DeploymentSpec(odf_paths=())


# -- deprecated entry points ---------------------------------------------------------

ICHECK = InterfaceSpec.from_methods(
    "ICheck", (MethodSpec("Compute", params=(("size", "int"),),
                          result="int"),))


class CheckOffcode(Offcode):
    BINDNAME = "compat.Check"
    INTERFACES = (ICHECK,)

    def Compute(self, size):
        yield from self.site.execute(size, context="check")
        return size & 0xFFFF


def _runtime_with_odf():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="compat.Check",
                      guid=CheckOffcode(runtime.host_site).guid,
                      interfaces=[ICHECK],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/offcodes/check.odf", odf)
    runtime.depot.register(odf.guid, CheckOffcode)
    return sim, runtime


def test_create_offcode_still_works_but_warns():
    sim, runtime = _runtime_with_odf()
    results = {}

    def app():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = yield from runtime.create_offcode(
                "/offcodes/check.odf")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "create_offcode" in str(deprecations[0].message)
        results["location"] = result.location
        results["value"] = yield from result.proxy.Compute(4096)

    sim.run_until_event(sim.spawn(app()))
    assert results["location"] == "nic0"
    assert results["value"] == 4096


def test_deploy_joint_still_works_but_warns():
    sim, runtime = _runtime_with_odf()

    def app():
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            yield from runtime.deploy_joint(["/offcodes/check.odf"])
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "deploy_joint" in str(deprecations[0].message)

    sim.run_until_event(sim.spawn(app()))
    assert runtime.get_offcode("compat.Check").location == "nic0"


def test_runtime_deploy_does_not_warn():
    sim, runtime = _runtime_with_odf()

    def app():
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            yield from runtime.deploy(
                DeploymentSpec(odf_paths=("/offcodes/check.odf",)))

    sim.run_until_event(sim.spawn(app()))


# -- the ChannelConfig deprecation shim ----------------------------------------------

def test_raw_enum_kwargs_warn_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        config = ChannelConfig(kind=ChannelKind.MULTICAST)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "kind" in str(deprecations[0].message)
    assert config.kind is ChannelKind.MULTICAST


def test_raw_defaults_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        config = ChannelConfig()
    assert config.kind is ChannelKind.UNICAST


def test_builder_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        config = (ChannelConfig.multicast().reliable().sequential()
                  .zero_copy().batched(max_calls=8).labeled("t"))
    assert config.kind is ChannelKind.MULTICAST
    assert config.reliability is Reliability.RELIABLE
    assert config.buffering is Buffering.DIRECT
    assert config.batch is not None and config.batch.max_calls == 8


def test_unbatched_clears_the_watermarks():
    config = ChannelConfig.unicast().batched().unbatched()
    assert config.batch is None


def test_batched_refines_existing_watermarks():
    config = (ChannelConfig.unicast().batched(max_calls=8)
              .batched(deadline_ns=1_000))
    assert config.batch.max_calls == 8
    assert config.batch.deadline_ns == 1_000
