"""Tests for the GUI component: pause / play / rewind controls."""

import pytest

from repro.errors import HydraError
from repro.tivopc import OffloadedClient, OffloadedServer, Testbed, \
    TestbedConfig
from repro.tivopc.gui import GuiController


@pytest.fixture()
def world():
    testbed = Testbed(TestbedConfig(seed=6))
    testbed.start()
    client = OffloadedClient(testbed)
    client.start()
    server = OffloadedServer(testbed)
    server.start()
    gui = GuiController(client)
    testbed.run(2)     # deploy + stream a little
    return testbed, client, server, gui


def control(testbed, generator):
    return testbed.sim.run_until_event(testbed.sim.spawn(generator))


def test_pause_freezes_viewing_but_keeps_recording(world):
    testbed, client, server, gui = world
    assert control(testbed, gui.pause()) is True
    frames_at_pause = client.frames_shown
    recorded_at_pause = client.bytes_recorded
    chunks_at_pause = client.chunks_received
    testbed.run(3)
    # Picture frozen...
    assert client.frames_shown <= frames_at_pause + 1
    # ...but the stream kept flowing and the recording kept growing.
    assert client.chunks_received > chunks_at_pause + 400
    assert client.bytes_recorded > recorded_at_pause + 400_000
    assert control(testbed, gui.is_paused()) is True


def test_play_resumes_decoding(world):
    testbed, client, server, gui = world
    control(testbed, gui.pause())
    testbed.run(2)
    frozen = client.frames_shown
    assert control(testbed, gui.play()) is True
    testbed.run(3)
    assert client.frames_shown > frozen + 50
    assert control(testbed, gui.is_paused()) is False


def test_rewind_replays_from_disk(world):
    testbed, client, server, gui = world
    testbed.run(3)
    server.stop()
    testbed.run(0.3)
    frames_live = client.frames_shown
    gui.rewind()
    testbed.run(3)
    assert client.frames_shown > frames_live
    assert gui.control_calls == 1


def test_control_traffic_is_tiny(world):
    """"Only control information passes between them": the GUI's calls
    are a few dozen bytes, dwarfed by the data plane."""
    testbed, client, server, gui = world
    control(testbed, gui.pause())
    control(testbed, gui.play())
    channel = gui._proxy.channel
    assert channel.messages_sent == 2
    assert channel.bytes_sent < 200
    assert client.data_channel.bytes_sent > 100_000


def test_gui_before_deployment_rejected():
    testbed = Testbed(TestbedConfig(seed=6))
    testbed.start()
    client = OffloadedClient(testbed)   # not started
    gui = GuiController(client)
    with pytest.raises(HydraError):
        gui._streamer_proxy()
