"""Ack/retransmit protocol tests — exactly-once is earned, not assumed.

PR 4's tentpole: a RELIABLE channel under fault injection arms a
sliding-window protocol (sequence numbers, cumulative acks, timeout
retransmission, duplicate suppression) instead of rejecting the fault
filter.  These tests drive the protocol corner by corner: loss,
corruption, ack loss (the natural source of duplicates), give-up after
``max_attempts``, mid-flight capture of the unacked buffer, and the
vectored-batch variant.
"""

import random

import pytest

from repro.errors import ChannelError
from repro.core import (
    ChannelConfig,
    HydraRuntime,
    RetransmitConfig,
)
from repro.core.call import CallBatch
from repro.hw import Machine
from repro.sim import Simulator


@pytest.fixture()
def world():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    return sim, machine, runtime


def make_channel(runtime, label="rel"):
    config = (ChannelConfig.unicast().reliable().sequential().copied()
              .labeled(label))
    channel = runtime.executive.create_channel(config, runtime.host_site)
    device_ep = runtime.executive.connect_site(
        channel, runtime.device_runtime("nic0").site)
    return channel, device_ep


def drain(endpoint, into):
    def reader():
        while True:
            message = yield from endpoint.read()
            into.append(message.payload)
    return reader


def test_exactly_once_in_order_under_heavy_noise(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    rng = random.Random(42)

    def noise(message):
        draw = rng.random()
        if draw < 0.20:
            return "drop"
        if draw < 0.30:
            return "corrupt"
        return None

    channel.set_fault_filter(noise)
    got = []
    sim.spawn(drain(device_ep, got)())

    def writer():
        for i in range(50):
            yield from channel.creator_endpoint.write(("chunk", i), 128)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    # Exactly once, in order, despite 30% wire faults.
    assert got == [("chunk", i) for i in range(50)]
    assert stats.delivered == 50
    assert stats.retransmits > 0
    assert stats.sent == stats.delivered + stats.dropped
    assert stats.corrupted + stats.dup_dropped <= stats.dropped
    assert channel.unacked_messages() == []


def test_ack_loss_produces_suppressed_duplicate(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    dropped_acks = []

    def lose_first_ack(message):
        payload = message.payload
        if (isinstance(payload, tuple) and payload
                and payload[0] == "ack" and not dropped_acks):
            dropped_acks.append(payload)
            return "drop"
        return None

    channel.set_fault_filter(lose_first_ack)
    got = []
    sim.spawn(drain(device_ep, got)())

    def writer():
        yield from channel.creator_endpoint.write("frame", 64)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    # The frame arrived, its ack was lost, the retransmit was recognized
    # as a duplicate and suppressed — the receiver saw exactly one copy.
    assert got == ["frame"]
    assert dropped_acks == [("ack", 1)]
    assert stats.delivered == 1
    assert stats.retransmits == 1
    assert stats.dup_dropped == 1
    assert stats.sent == 2
    assert stats.sent == stats.delivered + stats.dropped
    assert channel.unacked_messages() == []


def test_corrupt_frame_fails_checksum_and_retransmits(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    verdicts = iter(["corrupt", None, None])    # frame mangled, retry, ack
    channel.set_fault_filter(lambda message: next(verdicts, None))
    got = []
    sim.spawn(drain(device_ep, got)())

    def writer():
        yield from channel.creator_endpoint.write("frame", 64)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    # Unlike an UNRELIABLE channel (CorruptedPayload surfaces to the
    # receiver), the reliable receiver's checksum rejects the frame and
    # the sender retransmits: the application never sees the mangling.
    assert got == ["frame"]
    assert stats.corrupted == 1
    assert stats.dropped == 1
    assert stats.retransmits == 1
    assert stats.delivered == 1
    assert stats.sent == stats.delivered + stats.dropped


def test_gives_up_after_max_attempts(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    channel.retransmit_config = RetransmitConfig(timeout_ns=10_000,
                                                 max_attempts=3)
    channel.set_fault_filter(lambda message: "drop")
    out = {}

    def writer():
        try:
            yield from channel.creator_endpoint.write("doomed", 64)
        except ChannelError as exc:
            out["exc"] = exc

    sim.run_until_event(sim.spawn(writer()))
    assert "gave up on seq 1" in str(out["exc"])
    stats = channel.stats()
    assert stats.sent == 3
    assert stats.dropped == 3
    assert stats.delivered == 0


def test_unacked_buffer_captured_mid_flight_then_drains(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    channel.retransmit_config = RetransmitConfig(timeout_ns=50_000,
                                                 max_attempts=1000)
    channel.set_fault_filter(lambda message: "drop")
    got = []
    sim.spawn(drain(device_ep, got)())
    writer = sim.spawn(channel.creator_endpoint.write("frame", 64))

    # While the medium eats every attempt the frame sits in the
    # retransmit buffer — this is what recovery replays after a crash.
    sim.run(until=sim.now + 2_000_000)
    assert channel.unacked_messages() == [("frame", 64)]
    assert got == []

    # The noise clears; the pending retransmit finally lands and the
    # buffer retires the sequence number.
    channel.set_fault_filter(None)
    sim.run_until_event(writer)
    assert got == ["frame"]
    assert channel.unacked_messages() == []
    stats = channel.stats()
    assert stats.sent == stats.delivered + stats.dropped


def test_backoff_grows_exponentially_and_caps(world):
    sim, machine, runtime = world
    channel, _ = make_channel(runtime)
    channel.retransmit_config = RetransmitConfig(
        timeout_ns=100, backoff_factor=2.0, max_timeout_ns=500)
    channel.set_fault_filter(lambda message: None)
    assert channel._reliable_backoff_ns(1) == 100
    assert channel._reliable_backoff_ns(2) == 200
    assert channel._reliable_backoff_ns(3) == 400
    assert channel._reliable_backoff_ns(4) == 500    # capped
    assert channel._reliable_backoff_ns(10) == 500


def test_retransmit_config_validation():
    with pytest.raises(ChannelError):
        RetransmitConfig(timeout_ns=0)
    with pytest.raises(ChannelError):
        RetransmitConfig(max_attempts=0)
    with pytest.raises(ChannelError):
        RetransmitConfig(window=0)


def test_window_backpressure_bounds_unacked(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    channel.retransmit_config = RetransmitConfig(timeout_ns=50_000,
                                                 max_attempts=1000,
                                                 window=1)
    channel.set_fault_filter(lambda message: "drop")
    got = []
    sim.spawn(drain(device_ep, got)())
    first = sim.spawn(channel.creator_endpoint.write("one", 64))
    second = sim.spawn(channel.creator_endpoint.write("two", 64))
    sim.run(until=sim.now + 2_000_000)
    # The second writer is backpressured outside the window: only one
    # message may occupy the bounded retransmit buffer at a time.
    assert channel.unacked_messages() == [("one", 64)]
    channel.set_fault_filter(None)
    sim.run_until_event(first)
    sim.run_until_event(second)
    assert got == ["one", "two"]
    assert channel.unacked_messages() == []


def test_vectored_batch_rides_the_protocol(world):
    sim, machine, runtime = world
    channel, device_ep = make_channel(runtime)
    rng = random.Random(7)
    channel.set_fault_filter(
        lambda message: "drop" if rng.random() < 0.3 else None)
    got = []
    sim.spawn(drain(device_ep, got)())

    batch = CallBatch()
    for i in range(8):
        batch.add(("entry", i), 256, now_ns=sim.now)

    def writer():
        yield from channel.send_vectored(channel.creator_endpoint, batch)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    # One scatter-gather transfer served as every entry's first attempt;
    # lost entries were recovered as per-entry singles.
    assert got == [("entry", i) for i in range(8)]
    assert stats.batches == 1
    assert stats.delivered == 8
    assert stats.sent == stats.delivered + stats.dropped
    assert channel.unacked_messages() == []


def test_multicast_reliable_delivers_to_every_endpoint():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    machine.add_gpu()
    machine.add_disk()
    runtime = HydraRuntime(machine)
    # Rooted at the NIC, like the Figure-8 data plane: peer-DMA multicast
    # fans out from a device, not from the host.
    config = (ChannelConfig.multicast().reliable().sequential().copied()
              .labeled("fanout"))
    channel = runtime.executive.create_channel(
        config, runtime.device_runtime("nic0").site)
    gpu_ep = runtime.executive.connect_site(
        channel, runtime.device_runtime("gpu0").site)
    disk_ep = runtime.executive.connect_site(
        channel, runtime.device_runtime("disk0").site)
    verdicts = iter(["drop", None, None])
    channel.set_fault_filter(lambda message: next(verdicts, None))
    disk_got, gpu_got = [], []
    sim.spawn(drain(disk_ep, disk_got)())
    sim.spawn(drain(gpu_ep, gpu_got)())

    def writer():
        yield from channel.creator_endpoint.write("frame", 64)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    # Both consumers got the frame; the protocol counts the message once.
    assert disk_got == ["frame"]
    assert gpu_got == ["frame"]
    assert stats.delivered == 1
    assert stats.retransmits == 1
    assert stats.sent == stats.delivered + stats.dropped
