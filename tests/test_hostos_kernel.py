"""Tests for the kernel model: ticks, daemons, sleep, copies, scheduler."""

import statistics

import pytest

from repro import units
from repro.errors import OSError_
from repro.hostos.kernel import Kernel
from repro.hostos.scheduler import SchedulerSpec, WakeupModel
from repro.hw import CpuSampler, Machine
from repro.sim import RandomStreams, Simulator


def make_kernel(config=None, seed=1):
    sim = Simulator()
    machine = Machine(sim)
    kernel = Kernel(machine, RandomStreams(seed), config)
    return sim, machine, kernel


# -- scheduler / wakeup model ------------------------------------------------------

def test_scheduler_spec_tick():
    assert SchedulerSpec(hz=1000).tick_ns == units.MS
    assert SchedulerSpec(hz=250).tick_ns == 4 * units.MS
    with pytest.raises(OSError_):
        SchedulerSpec(hz=0)


def test_quantization_delay():
    model = WakeupModel(SchedulerSpec(hz=1000),
                        RandomStreams(0).stream("x"))
    assert model.quantization_ns(units.MS) == 0          # on a tick edge
    assert model.quantization_ns(units.MS + 1) == units.MS - 1
    assert model.quantization_ns(units.MS // 2) == units.MS // 2


def test_dispatch_latency_nonnegative_and_varies():
    model = WakeupModel(SchedulerSpec(), RandomStreams(0).stream("x"))
    draws = [model.dispatch_ns() for _ in range(100)]
    assert all(d >= 0 for d in draws)
    assert len(set(draws)) > 10


def test_runqueue_penalty_scales_with_depth():
    sim = Simulator()
    machine = Machine(sim)
    model = WakeupModel(SchedulerSpec(runqueue_penalty_ns=1000),
                        RandomStreams(0).stream("x"), cpu=machine.cpu)
    assert model.runqueue_ns() == 0

    def hog():
        yield from machine.cpu.execute(1000)

    for _ in range(3):
        sim.spawn(hog())
    sim.run(until=500)
    assert machine.cpu.queue_depth == 2
    assert model.runqueue_ns() == 2000


# -- kernel ticks and background ----------------------------------------------------

def test_tick_loop_charges_cpu():
    sim, machine, kernel = make_kernel()
    kernel.start(with_background=False)
    sim.run(until=units.s_to_ns(0.1))
    assert kernel.ticks == pytest.approx(100, abs=2)
    assert machine.cpu.busy_by_context.get("kernel-tick", 0) > 0


def test_idle_utilization_near_paper_value():
    """The idle system should sit near the paper's 2.86 % CPU."""
    sim, machine, kernel = make_kernel()
    kernel.start()
    sim.run(until=units.s_to_ns(20))
    util = machine.cpu.utilization()
    assert 0.02 < util < 0.04


def test_idle_utilization_window_stability():
    sim, machine, kernel = make_kernel()
    kernel.start()
    sampler = CpuSampler(machine.cpu)
    for window in range(1, 9):
        sim.run(until=units.s_to_ns(5 * window))
        sampler.sample()
    utils = sampler.utilizations()
    assert statistics.pstdev(utils) < 0.005
    assert 0.02 < statistics.mean(utils) < 0.04


def test_background_touches_cache():
    sim, machine, kernel = make_kernel()
    kernel.start()
    sim.run(until=units.s_to_ns(1))
    assert machine.l2.stats.accesses > 0


def test_double_start_rejected():
    sim, machine, kernel = make_kernel()
    kernel.start()
    with pytest.raises(OSError_):
        kernel.start()


# -- sleep ---------------------------------------------------------------------------

def test_sleep_never_early_and_adds_latency():
    sim, machine, kernel = make_kernel()
    wakes = []

    def sleeper():
        for _ in range(20):
            before = sim.now
            yield from kernel.sleep(5 * units.MS)
            wakes.append(sim.now - before)

    sim.spawn(sleeper())
    sim.run()
    assert all(w >= 5 * units.MS for w in wakes)
    assert statistics.mean(wakes) > 5 * units.MS


def test_sleep_negative_rejected():
    sim, machine, kernel = make_kernel()

    def bad():
        yield from kernel.sleep(-5)

    sim.spawn(bad())
    with pytest.raises(OSError_):
        sim.run()


def test_sleep_jitter_has_tick_scale():
    """Wakeup error should be on the order of the tick + dispatch noise."""
    sim, machine, kernel = make_kernel()
    errors = []

    def sleeper():
        for _ in range(200):
            before = sim.now
            yield from kernel.sleep(5 * units.MS)
            errors.append(sim.now - before - 5 * units.MS)

    sim.spawn(sleeper())
    sim.run()
    mean_err = statistics.mean(errors)
    tick = kernel.config.scheduler.tick_ns
    assert 0 < mean_err < 3 * tick


# -- syscall and copies -----------------------------------------------------------------

def test_syscall_counted_and_charged():
    sim, machine, kernel = make_kernel()

    def proc():
        yield from kernel.syscall("read")
        yield from kernel.syscall("read")
        yield from kernel.syscall("sendto")

    sim.spawn(proc())
    sim.run()
    assert kernel.syscalls == {"read": 2, "sendto": 1}
    assert machine.cpu.busy_by_context["kernel-syscall"] >= 3 * 900


def test_copy_charges_cpu_and_cache():
    sim, machine, kernel = make_kernel()
    before = machine.l2.stats.accesses

    def proc():
        yield from kernel.copy_to_user(1024)

    sim.spawn(proc())
    sim.run()
    # 1024 B read + 1024 B written = 32 lines.
    assert machine.l2.stats.accesses - before == 32
    assert machine.cpu.total_busy == round(1024 * kernel.config.copy_ns_per_byte)


def test_copy_zero_is_free():
    sim, machine, kernel = make_kernel()

    def proc():
        yield from kernel.copy_from_user(0)

    sim.spawn(proc())
    sim.run()
    assert machine.cpu.total_busy == 0


def test_copy_buffers_rotate():
    """Successive copies must not reuse one hot buffer (they stream)."""
    sim, machine, kernel = make_kernel()

    def proc():
        for _ in range(4):
            yield from kernel.copy_to_user(1024)

    sim.spawn(proc())
    sim.run()
    stats = machine.l2.stats
    # All accesses are cold misses because addresses keep advancing.
    assert stats.misses == stats.accesses


def test_isr_charges_interrupt_cost():
    sim, machine, kernel = make_kernel()

    def proc():
        yield from kernel.isr(extra_ns=1000)

    sim.spawn(proc())
    sim.run()
    assert machine.cpu.busy_by_context["kernel-isr"] == (
        kernel.config.interrupt_ns + 1000)
