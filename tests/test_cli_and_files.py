"""Tests for the evaluation CLI and filesystem ODF libraries."""

import pytest

from repro.errors import ODFError
from repro.core.odf import OdfLibrary
from repro.evaluation.cli import ARTIFACTS, main

ODF_TEXT = """
<offcode>
  <package>
    <bindname>disk.Widget</bindname>
    <GUID>555</GUID>
    <interface><include>"/offcodes/widget.wsdl"</include></interface>
  </package>
  <targets>
    <device-class><name>network</name></device-class>
  </targets>
</offcode>
"""

WSDL_TEXT = """
<definitions name="Widget" guid="555">
  <portType name="IWidget">
    <operation name="Frob" result="xsd:int"/>
  </portType>
</definitions>
"""


# -- OdfLibrary.load_directory -------------------------------------------------------

def test_load_directory(tmp_path):
    (tmp_path / "widget.odf").write_text(ODF_TEXT)
    (tmp_path / "widget.wsdl").write_text(WSDL_TEXT)
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "other.wsdl").write_text(
        WSDL_TEXT.replace("Widget", "Other").replace("555", "556"))
    (tmp_path / "ignored.txt").write_text("not a manifest")

    library = OdfLibrary()
    count = library.load_directory(tmp_path)
    assert count == 3
    document = library.load("/offcodes/widget.odf")
    assert document.bindname == "disk.Widget"
    assert document.interfaces[0].name == "IWidget"
    assert library.load_wsdl("/offcodes/sub/other.wsdl").name == "IOther"


def test_load_directory_custom_prefix(tmp_path):
    (tmp_path / "w.wsdl").write_text(WSDL_TEXT)
    library = OdfLibrary()
    library.load_directory(tmp_path, prefix="/vendor")
    assert library.load_wsdl("/vendor/w.wsdl").name == "IWidget"


def test_load_directory_rejects_missing(tmp_path):
    library = OdfLibrary()
    with pytest.raises(ODFError):
        library.load_directory(tmp_path / "nope")


def test_shipped_offcode_library_loads():
    """The repository's examples/offcodes directory is a valid library
    (the paper's Figure-4 manifests as real files)."""
    import pathlib
    directory = (pathlib.Path(__file__).parent.parent
                 / "examples" / "offcodes")
    library = OdfLibrary()
    assert library.load_directory(directory) == 4
    closure = library.load_closure("/offcodes/socket.odf")
    assert [d.bindname for d in closure] == [
        "hydra.net.utils.Socket", "hydra.net.utils.Checksum"]
    socket = closure[0]
    assert socket.guid.value == 7070714
    assert socket.interfaces[0].name == "ISocket"
    assert socket.imports[0].reference.value == "Pull"


# -- CLI --------------------------------------------------------------------------------

def test_cli_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "GHz/Gbps" in out
    assert "65536" in out


def test_cli_ilp(capsys):
    assert main(["ilp", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "greedy suboptimal" in out


def test_cli_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["figure-nope"])


def test_cli_artifact_registry_complete():
    assert set(ARTIFACTS) == {"fig1", "fig9", "fig10", "table2",
                              "table3", "table4", "fleet", "ilp",
                              "power", "profile", "sweeps"}


def test_cli_fleet(capsys):
    assert main(["fleet", "--seconds", "1", "--clients", "16",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fleet: 16 clients" in out
    assert "conservation: OK" in out


@pytest.mark.slow
def test_cli_table2_short_run(capsys):
    assert main(["table2", "--seconds", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "offloaded" in out
