"""Tests for the evaluation CLI and filesystem ODF libraries."""

import pytest

from repro.errors import ODFError, ReproError
from repro.core.odf import OdfLibrary
from repro.evaluation.cli import ARTIFACTS, main

ODF_TEXT = """
<offcode>
  <package>
    <bindname>disk.Widget</bindname>
    <GUID>555</GUID>
    <interface><include>"/offcodes/widget.wsdl"</include></interface>
  </package>
  <targets>
    <device-class><name>network</name></device-class>
  </targets>
</offcode>
"""

WSDL_TEXT = """
<definitions name="Widget" guid="555">
  <portType name="IWidget">
    <operation name="Frob" result="xsd:int"/>
  </portType>
</definitions>
"""


# -- OdfLibrary.load_directory -------------------------------------------------------

def test_load_directory(tmp_path):
    (tmp_path / "widget.odf").write_text(ODF_TEXT)
    (tmp_path / "widget.wsdl").write_text(WSDL_TEXT)
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "other.wsdl").write_text(
        WSDL_TEXT.replace("Widget", "Other").replace("555", "556"))
    (tmp_path / "ignored.txt").write_text("not a manifest")

    library = OdfLibrary()
    count = library.load_directory(tmp_path)
    assert count == 3
    document = library.load("/offcodes/widget.odf")
    assert document.bindname == "disk.Widget"
    assert document.interfaces[0].name == "IWidget"
    assert library.load_wsdl("/offcodes/sub/other.wsdl").name == "IOther"


def test_load_directory_custom_prefix(tmp_path):
    (tmp_path / "w.wsdl").write_text(WSDL_TEXT)
    library = OdfLibrary()
    library.load_directory(tmp_path, prefix="/vendor")
    assert library.load_wsdl("/vendor/w.wsdl").name == "IWidget"


def test_load_directory_rejects_missing(tmp_path):
    library = OdfLibrary()
    with pytest.raises(ODFError):
        library.load_directory(tmp_path / "nope")


def test_shipped_offcode_library_loads():
    """The repository's examples/offcodes directory is a valid library
    (the paper's Figure-4 manifests as real files)."""
    import pathlib
    directory = (pathlib.Path(__file__).parent.parent
                 / "examples" / "offcodes")
    library = OdfLibrary()
    assert library.load_directory(directory) == 4
    closure = library.load_closure("/offcodes/socket.odf")
    assert [d.bindname for d in closure] == [
        "hydra.net.utils.Socket", "hydra.net.utils.Checksum"]
    socket = closure[0]
    assert socket.guid.value == 7070714
    assert socket.interfaces[0].name == "ISocket"
    assert socket.imports[0].reference.value == "Pull"


# -- CLI --------------------------------------------------------------------------------

def test_cli_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "GHz/Gbps" in out
    assert "65536" in out


def test_cli_ilp(capsys):
    assert main(["ilp", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "greedy suboptimal" in out


def test_cli_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["figure-nope"])


def test_cli_artifact_registry_complete():
    assert set(ARTIFACTS) == {"fig1", "fig9", "fig10", "table2",
                              "table3", "table4", "fleet", "ilp",
                              "power", "profile", "sweeps"}


def test_cli_fleet(capsys):
    assert main(["fleet", "--seconds", "1", "--clients", "16",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fleet: 16 clients" in out
    assert "conservation: OK" in out
    assert "supervision: retries=0" in out


_DEGRADED_ARGS = ["fleet", "--seconds", "1", "--clients", "16",
                  "--shards", "2", "--max-retries", "1",
                  "--chaos-kill", "1:0", "--chaos-kill", "1:1"]


def test_cli_fleet_degraded_exits_nonzero(capsys):
    # Poison shard 1 (kills cover every attempt): the run must degrade
    # and the CLI must fail loudly — a cron job piping this into a
    # dashboard should not mistake a partial report for a full one.
    assert main(_DEGRADED_ARGS) == 3
    captured = capsys.readouterr()
    assert "DEGRADED: shards [1] missing" in captured.out
    assert "FLEET FAILURE" in captured.err
    assert "--allow-degraded" in captured.err


def test_cli_fleet_allow_degraded_is_the_escape_hatch(capsys):
    assert main(_DEGRADED_ARGS + ["--allow-degraded"]) == 0
    out = capsys.readouterr().out
    assert "DEGRADED: shards [1] missing" in out
    assert "quarantined=1" in out


def test_cli_fleet_survives_a_chaos_kill(capsys):
    # "--chaos-kill 0" (attempt defaults to 0) kills the first pick of
    # shard 0; the retry completes it, so the run still passes.  The
    # byte-level chaos-invisibility of the canonical report is pinned in
    # tests/test_evaluation_fleet.py.
    base = ["fleet", "--seconds", "1", "--clients", "16", "--shards", "2"]
    assert main(base + ["--chaos-kill", "0"]) == 0
    out = capsys.readouterr().out
    assert "conservation: OK" in out
    assert "retries=1" in out


def test_cli_fleet_stall_drill_requires_timeout_with_workers(capsys):
    # A multiprocess stall pick without a watchdog just sleeps and then
    # succeeds — nothing exercised, a broken watchdog looks green.  The
    # CLI rejects the no-op drill up front (argparse error, exit 2).
    base = ["fleet", "--seconds", "1", "--clients", "16", "--shards", "2"]
    with pytest.raises(SystemExit) as exc:
        main(base + ["--workers", "2", "--chaos-stall", "0:0:1"])
    assert exc.value.code == 2
    assert "--shard-timeout" in capsys.readouterr().err


def test_cli_fleet_stall_drill_in_process_needs_no_timeout(capsys):
    # At workers=1 a stall surfaces as an immediate in-process failure,
    # so the retry path is exercised without a wall-clock watchdog and
    # the guard must not fire.
    base = ["fleet", "--seconds", "1", "--clients", "16", "--shards", "2"]
    assert main(base + ["--chaos-stall", "0:0:1"]) == 0
    assert "retries=1" in capsys.readouterr().out


def test_cli_fleet_rejects_bad_chaos_spec(capsys):
    from repro.evaluation.cli import _parse_chaos_picks
    with pytest.raises(ReproError, match="bad chaos pick"):
        _parse_chaos_picks(["nope"], [], [], stall_s=30.0)
    with pytest.raises(ReproError, match="bad chaos pick"):
        _parse_chaos_picks([], ["0:0:fast"], [], stall_s=30.0)
    assert _parse_chaos_picks([], [], [], stall_s=30.0) is None


def test_cli_fleet_resume_roundtrip(tmp_path, capsys):
    out_dir = str(tmp_path / "fleet")
    base = ["fleet", "--seconds", "1", "--clients", "16", "--shards", "2"]
    assert main(base + ["--artifacts", out_dir]) == 0
    capsys.readouterr()
    assert main(base + ["--resume", out_dir]) == 0
    assert "resumed=2" in capsys.readouterr().out


@pytest.mark.slow
def test_cli_table2_short_run(capsys):
    assert main(["table2", "--seconds", "8", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "offloaded" in out
