"""Failure-injection tests: crashing Offcodes, hierarchical teardown.

The paper's Resource Management unit exists for exactly this: "robust
clean-up of child resources in the case of a failing parent object"
(Section 4).  These tests deploy Offcodes, crash them, and verify the
device memory, channels and registrations all come back.
"""

import pytest

from repro.errors import ChannelClosedError, ChannelError, HydraError
from repro.core import (
    Buffering,
    CallPolicy,
    ChannelConfig,
    ChannelKind,
    CorruptedPayload,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
    Reliability,
    RetryBudgetExceededError,
    SyncMode,
    WatchdogConfig,
)
from repro.core.odf import DeviceClassFilter, OdfDocument, OdfImport
from repro.core.guid import Guid
from repro.core.layout.constraints import ConstraintType
from repro.core.offcode import OffcodeState
from repro.faults import FaultInjector, FaultPlan
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator, Tracer

IWORK = InterfaceSpec.from_methods(
    "IWork", (MethodSpec("Poke", params=(), result="int"),))


class WorkerOffcode(Offcode):
    BINDNAME = "fault.Worker"
    INTERFACES = (IWORK,)

    def __init__(self, site):
        super().__init__(site)
        self.loop_iterations = 0

    def Poke(self):
        return 1

    def main(self):
        while True:
            yield self.site.sim.timeout(1_000_000)
            self.loop_iterations += 1


class HelperOffcode(Offcode):
    BINDNAME = "fault.Helper"
    INTERFACES = ()


WORKER_GUID = Guid(9001)
HELPER_GUID = Guid(9002)


@pytest.fixture()
def world():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    helper = OdfDocument(
        bindname="fault.Helper", guid=HELPER_GUID,
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=8 * 1024)
    worker = OdfDocument(
        bindname="fault.Worker", guid=WORKER_GUID, interfaces=[IWORK],
        imports=[OdfImport(file="/helper.odf", bindname="fault.Helper",
                           guid=HELPER_GUID,
                           reference=ConstraintType.GANG)],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=16 * 1024)
    runtime.library.register("/helper.odf", helper)
    runtime.library.register("/worker.odf", worker)
    runtime.depot.register(WORKER_GUID, WorkerOffcode)
    runtime.depot.register(HELPER_GUID, HelperOffcode)
    return sim, machine, runtime


def deploy(sim, runtime, path="/worker.odf"):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode(path)

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


def test_fail_offcode_releases_device_memory(world):
    sim, machine, runtime = world
    nic = machine.device("nic0")
    before = nic.memory.used_bytes
    deploy(sim, runtime)
    during = nic.memory.used_bytes
    assert during > before

    report = runtime.fail_offcode("fault.Worker")
    assert report.ok
    assert report.failures == []
    # The worker's image is gone; the helper's remains resident.
    helper_image = runtime.resources.lookup("fault.Helper/image")
    assert helper_image.payload is None or not helper_image.freed
    assert before < nic.memory.used_bytes < during


def test_fail_offcode_closes_channels(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    oob = result.offcode.oob_channel
    proxy_channel = result.channel
    runtime.fail_offcode("fault.Worker")
    assert oob.closed
    assert proxy_channel.closed

    def late_call():
        yield from proxy_channel.creator_endpoint.write("x", 10)

    sim.spawn(late_call())
    with pytest.raises(ChannelClosedError):
        sim.run()


def test_fail_offcode_stops_thread_of_control(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    worker = result.offcode
    sim.run(until=sim.now + 10_000_000)
    iterations = worker.loop_iterations
    assert iterations > 5
    runtime.fail_offcode("fault.Worker")
    assert worker.state == OffcodeState.FAILED
    sim.run(until=sim.now + 10_000_000)
    assert worker.loop_iterations == iterations


def test_fail_offcode_deregisters(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.fail_offcode("fault.Worker")
    assert runtime.locate("fault.Worker") is None
    assert runtime.device_runtime("nic0").find("fault.Worker") is None
    with pytest.raises(HydraError):
        runtime.get_offcode("fault.Worker")
    # A sibling from the same deployment is untouched.
    assert runtime.locate("fault.Helper") is not None


def test_redeploy_after_failure(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.fail_offcode("fault.Worker")
    result = deploy(sim, runtime)
    assert result.offcode.state == OffcodeState.RUNNING
    assert "fault.Helper" in result.report.reused
    out = {}

    def poke():
        out["v"] = yield from result.proxy.Poke()

    sim.run_until_event(sim.spawn(poke()))
    assert out["v"] == 1


def test_stop_offcode_frees_device_memory(world):
    sim, machine, runtime = world
    nic = machine.device("nic0")
    before = nic.memory.used_bytes
    deploy(sim, runtime)

    def stop():
        yield from runtime.stop_offcode("fault.Worker")
        yield from runtime.stop_offcode("fault.Helper")

    sim.run_until_event(sim.spawn(stop()))
    assert nic.memory.used_bytes == before


def test_finalizer_errors_are_collected_not_raised(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    node = runtime.resources.lookup("fault.Worker")

    def bad_finalizer():
        raise RuntimeError("teardown bug")

    runtime.resources.track("fault.Worker/bad", parent=node,
                            finalizer=bad_finalizer)
    report = runtime.fail_offcode("fault.Worker")
    assert len(report) == 1
    assert not report.ok
    assert isinstance(report.errors[0], RuntimeError)
    assert report.failures[0].key == "fault.Worker/bad"
    # Cleanup still completed.
    assert runtime.locate("fault.Worker") is None
    assert result.offcode.oob_channel.closed


# -- watchdog, retry and recovery ---------------------------------------------------


def add_host_builds(runtime):
    """Host-fallback builds for the recovery tests (Section 3.4)."""
    runtime.depot.register(WORKER_GUID, WorkerOffcode,
                           device_class=DeviceClass.HOST)
    runtime.depot.register(HELPER_GUID, HelperOffcode,
                           device_class=DeviceClass.HOST)


def test_watchdog_beats_while_healthy(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    watchdog = runtime.start_watchdog(WatchdogConfig())
    sim.run(until=sim.now + 20_000_000)
    assert watchdog.status_of("nic0") == "alive"
    assert watchdog.beats_of("nic0") >= 5
    assert watchdog.declared_dead_at("nic0") is None
    assert runtime.incidents == []


def test_watchdog_tolerates_short_stall(world):
    # False-positive guard: a stall shorter than the miss threshold
    # must never be declared a death.
    sim, machine, runtime = world
    deploy(sim, runtime)
    watchdog = runtime.start_watchdog(WatchdogConfig())
    sim.run(until=sim.now + 6_500_000)
    nic = machine.device("nic0")
    nic.health.stall()
    sim.run(until=sim.now + 3_000_000)      # at most 2 of 3 allowed misses
    nic.health.resume()
    sim.run(until=sim.now + 20_000_000)
    assert watchdog.status_of("nic0") == "alive"
    assert watchdog.declared_dead_at("nic0") is None
    assert runtime.incidents == []
    assert nic.health.ok


def test_watchdog_detects_crash_and_redeploys_on_host(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    add_host_builds(runtime)
    watchdog = runtime.start_watchdog(WatchdogConfig())
    sim.run(until=sim.now + 10_000_000)
    machine.device("nic0").health.crash()
    sim.run(until=sim.now + 40_000_000)

    assert watchdog.status_of("nic0") == "dead"
    assert "nic0" in runtime.failed_devices
    incident = runtime.incidents[0]
    assert incident.device == "nic0"
    assert sorted(incident.victims) == ["fault.Helper", "fault.Worker"]
    assert incident.recovered
    assert incident.latency_ns > 0
    # The victims live again, on the host processor.
    assert runtime.get_offcode("fault.Worker").location == "host"
    assert runtime.get_offcode("fault.Helper").location == "host"
    assert runtime.get_offcode("fault.Worker").state == OffcodeState.RUNNING


def test_proxy_retry_budget_exhausted_on_stalled_device(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    proxy = result.proxy
    proxy.set_policy(CallPolicy(deadline_ns=100_000, max_attempts=2,
                                backoff_base_ns=10_000))
    machine.device("nic0").health.stall()
    out = {}

    def call():
        try:
            yield from proxy.Poke()
        except RetryBudgetExceededError as exc:
            out["exc"] = exc

    sim.run_until_event(sim.spawn(call()))
    assert out["exc"].attempts == 2
    assert proxy.timeouts == 2


def test_proxy_retry_succeeds_within_budget(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    proxy = result.proxy
    proxy.set_policy(CallPolicy(deadline_ns=5_000_000, max_attempts=3))
    out = {}

    def call():
        out["v"] = yield from proxy.Poke()

    sim.run_until_event(sim.spawn(call()))
    assert out["v"] == 1
    assert proxy.timeouts == 0


def test_channel_noise_filter_and_stats(world):
    sim, machine, runtime = world
    config = ChannelConfig(kind=ChannelKind.UNICAST,
                           reliability=Reliability.UNRELIABLE,
                           sync=SyncMode.NONE,
                           buffering=Buffering.COPY,
                           label="noisy")
    channel = runtime.executive.create_channel(config, runtime.host_site)
    device_ep = runtime.executive.connect_site(
        channel, runtime.device_runtime("nic0").site)
    verdicts = iter(["drop", "corrupt", None])
    channel.set_fault_filter(lambda message: next(verdicts))

    def writer():
        for _ in range(3):
            yield from channel.creator_endpoint.write("payload", 64)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    assert stats.sent == 3
    assert stats.dropped == 1
    assert stats.corrupted == 1
    assert stats.delivered == 2
    assert any(s.label == "noisy" for s in runtime.channel_stats())

    out = {}

    def reader():
        message = yield from device_ep.read()
        out["payload"] = message.payload

    sim.run_until_event(sim.spawn(reader()))
    assert isinstance(out["payload"], CorruptedPayload)
    assert out["payload"].original == "payload"


def test_fault_filter_on_reliable_channel_arms_retransmit(world):
    # PR 4 lifted the old rejection: noise on a RELIABLE channel arms
    # the ack/retransmit protocol instead of raising.
    sim, machine, runtime = world
    config = (ChannelConfig.unicast().reliable().copied()
              .labeled("earned"))
    channel = runtime.executive.create_channel(config, runtime.host_site)
    device_ep = runtime.executive.connect_site(
        channel, runtime.device_runtime("nic0").site)
    verdicts = iter(["drop", None, None])   # data lost, retry ok, ack ok
    channel.set_fault_filter(lambda message: next(verdicts, None))
    assert channel._rel is not None

    got = []

    def reader():
        message = yield from device_ep.read()
        got.append(message.payload)

    def writer():
        yield from channel.creator_endpoint.write("frame", 64)

    sim.spawn(reader())
    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    assert got == ["frame"]
    assert stats.sent == 2                  # original + one retransmit
    assert stats.retransmits == 1
    assert stats.dropped == 1
    assert stats.delivered == 1
    assert stats.sent == stats.delivered + stats.dropped
    assert channel.unacked_messages() == []


def test_bus_transient_replays_transfer(world):
    sim, machine, runtime = world
    nic = machine.device("nic0")
    bus = machine.bus
    out = {}

    def xfer(key):
        start = sim.now
        yield from nic.dma_to_host(4096)
        out[key] = sim.now - start

    sim.run_until_event(sim.spawn(xfer("clean")))
    bus.inject_transients(1)
    sim.run_until_event(sim.spawn(xfer("faulty")))
    assert bus.transient_faults == 1
    assert out["faulty"] > out["clean"]


def _chaos_run(seed):
    """One seeded crash-and-recover run; returns its observable history."""
    sim = Simulator()
    sim.tracer = Tracer(sim, categories={"fault"})
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    helper = OdfDocument(
        bindname="fault.Helper", guid=HELPER_GUID,
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=8 * 1024)
    worker = OdfDocument(
        bindname="fault.Worker", guid=WORKER_GUID, interfaces=[IWORK],
        imports=[OdfImport(file="/helper.odf", bindname="fault.Helper",
                           guid=HELPER_GUID,
                           reference=ConstraintType.GANG)],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=16 * 1024)
    runtime.library.register("/helper.odf", helper)
    runtime.library.register("/worker.odf", worker)
    runtime.depot.register(WORKER_GUID, WorkerOffcode)
    runtime.depot.register(HELPER_GUID, HelperOffcode)
    add_host_builds(runtime)
    deploy(sim, runtime)
    runtime.start_watchdog(WatchdogConfig())

    import random
    plan = FaultPlan().crash_device(15_000_000, "nic0")
    injector = FaultInjector(sim, plan,
                             devices={"nic0": machine.device("nic0")},
                             rng=random.Random(seed))
    injector.start()
    sim.run(until=60_000_000)
    incident = runtime.incidents[0]
    assert incident.recovered
    return sim.tracer.render(), incident.latency_ns


def test_fault_history_is_deterministic():
    # Same seed, same plan: byte-identical fault traces and identical
    # recovery latency.  Guards against wall-clock seeding sneaking in.
    first_trace, first_latency = _chaos_run(7)
    second_trace, second_latency = _chaos_run(7)
    assert first_trace == second_trace
    assert first_latency == second_latency
    assert first_latency > 0
    assert "declaring nic0 dead" in first_trace
