"""Failure-injection tests: crashing Offcodes, hierarchical teardown.

The paper's Resource Management unit exists for exactly this: "robust
clean-up of child resources in the case of a failing parent object"
(Section 4).  These tests deploy Offcodes, crash them, and verify the
device memory, channels and registrations all come back.
"""

import pytest

from repro.errors import ChannelClosedError, HydraError
from repro.core import HydraRuntime, InterfaceSpec, MethodSpec, Offcode
from repro.core.odf import DeviceClassFilter, OdfDocument, OdfImport
from repro.core.guid import Guid
from repro.core.layout.constraints import ConstraintType
from repro.core.offcode import OffcodeState
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

IWORK = InterfaceSpec.from_methods(
    "IWork", (MethodSpec("Poke", params=(), result="int"),))


class WorkerOffcode(Offcode):
    BINDNAME = "fault.Worker"
    INTERFACES = (IWORK,)

    def __init__(self, site):
        super().__init__(site)
        self.loop_iterations = 0

    def Poke(self):
        return 1

    def main(self):
        while True:
            yield self.site.sim.timeout(1_000_000)
            self.loop_iterations += 1


class HelperOffcode(Offcode):
    BINDNAME = "fault.Helper"
    INTERFACES = ()


WORKER_GUID = Guid(9001)
HELPER_GUID = Guid(9002)


@pytest.fixture()
def world():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    helper = OdfDocument(
        bindname="fault.Helper", guid=HELPER_GUID,
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=8 * 1024)
    worker = OdfDocument(
        bindname="fault.Worker", guid=WORKER_GUID, interfaces=[IWORK],
        imports=[OdfImport(file="/helper.odf", bindname="fault.Helper",
                           guid=HELPER_GUID,
                           reference=ConstraintType.GANG)],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=16 * 1024)
    runtime.library.register("/helper.odf", helper)
    runtime.library.register("/worker.odf", worker)
    runtime.depot.register(WORKER_GUID, WorkerOffcode)
    runtime.depot.register(HELPER_GUID, HelperOffcode)
    return sim, machine, runtime


def deploy(sim, runtime, path="/worker.odf"):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode(path)

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


def test_fail_offcode_releases_device_memory(world):
    sim, machine, runtime = world
    nic = machine.device("nic0")
    before = nic.memory.used_bytes
    deploy(sim, runtime)
    during = nic.memory.used_bytes
    assert during > before

    errors = runtime.fail_offcode("fault.Worker")
    assert errors == []
    # The worker's image is gone; the helper's remains resident.
    helper_image = runtime.resources.lookup("fault.Helper/image")
    assert helper_image.payload is None or not helper_image.freed
    assert before < nic.memory.used_bytes < during


def test_fail_offcode_closes_channels(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    oob = result.offcode.oob_channel
    proxy_channel = result.channel
    runtime.fail_offcode("fault.Worker")
    assert oob.closed
    assert proxy_channel.closed

    def late_call():
        yield from proxy_channel.creator_endpoint.write("x", 10)

    sim.spawn(late_call())
    with pytest.raises(ChannelClosedError):
        sim.run()


def test_fail_offcode_stops_thread_of_control(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    worker = result.offcode
    sim.run(until=sim.now + 10_000_000)
    iterations = worker.loop_iterations
    assert iterations > 5
    runtime.fail_offcode("fault.Worker")
    assert worker.state == OffcodeState.FAILED
    sim.run(until=sim.now + 10_000_000)
    assert worker.loop_iterations == iterations


def test_fail_offcode_deregisters(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.fail_offcode("fault.Worker")
    assert runtime.locate("fault.Worker") is None
    assert runtime.device_runtime("nic0").find("fault.Worker") is None
    with pytest.raises(HydraError):
        runtime.get_offcode("fault.Worker")
    # A sibling from the same deployment is untouched.
    assert runtime.locate("fault.Helper") is not None


def test_redeploy_after_failure(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.fail_offcode("fault.Worker")
    result = deploy(sim, runtime)
    assert result.offcode.state == OffcodeState.RUNNING
    assert "fault.Helper" in result.report.reused
    out = {}

    def poke():
        out["v"] = yield from result.proxy.Poke()

    sim.run_until_event(sim.spawn(poke()))
    assert out["v"] == 1


def test_stop_offcode_frees_device_memory(world):
    sim, machine, runtime = world
    nic = machine.device("nic0")
    before = nic.memory.used_bytes
    deploy(sim, runtime)

    def stop():
        yield from runtime.stop_offcode("fault.Worker")
        yield from runtime.stop_offcode("fault.Helper")

    sim.run_until_event(sim.spawn(stop()))
    assert nic.memory.used_bytes == before


def test_finalizer_errors_are_collected_not_raised(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    node = runtime.resources.lookup("fault.Worker")

    def bad_finalizer():
        raise RuntimeError("teardown bug")

    runtime.resources.track("fault.Worker/bad", parent=node,
                            finalizer=bad_finalizer)
    errors = runtime.fail_offcode("fault.Worker")
    assert len(errors) == 1
    assert isinstance(errors[0], RuntimeError)
    # Cleanup still completed.
    assert runtime.locate("fault.Worker") is None
    assert result.offcode.oob_channel.closed
