"""Tests for the traffic-aware crossing minimizer (Section 6.3 automated).

The headline test: given only *traffic volumes* (compressed stream in,
20x-expanded raw frames out), the minimizer derives the paper's Figure-8
placement — including "the Decoder goes to the GPU" — without any Pull
constraint saying so.
"""

import pytest

from repro.errors import InfeasibleLayoutError, LayoutError
from repro.core.layout import (
    ConstraintType,
    HOST_INDEX,
    LayoutGraph,
    MinimizeBusCrossings,
    TrafficMatrix,
    crossing_cost,
)

DEVICES = ("host", "nic", "gpu", "disk")


def client_graph(decoder_everywhere=True):
    graph = LayoutGraph(DEVICES)
    graph.add_node("net-streamer", [False, True, False, False])
    graph.add_node("disk-streamer", [True, False, False, True])
    decoder_compat = [True, True, True, False] if decoder_everywhere \
        else [True, False, True, False]
    graph.add_node("decoder", decoder_compat)
    graph.add_node("display", [False, False, True, False])
    graph.add_node("file", [True, False, False, True])
    return graph


def tivopc_traffic():
    traffic = TrafficMatrix()
    traffic.set_flow("net-streamer", "decoder", 1.0)       # stream copy
    traffic.set_flow("net-streamer", "disk-streamer", 1.0)  # record copy
    traffic.set_flow("decoder", "display", 20.0)            # raw frames!
    traffic.set_flow("disk-streamer", "file", 1.0)          # store
    return traffic


# -- crossing cost primitive -----------------------------------------------------------

def test_crossing_cost_cases():
    assert crossing_cost(1, 1) == 0
    assert crossing_cost(HOST_INDEX, 2) == 1
    assert crossing_cost(1, 2, peer_to_peer=True) == 1
    assert crossing_cost(1, 2, peer_to_peer=False) == 2
    assert crossing_cost(HOST_INDEX, HOST_INDEX) == 0


def test_traffic_matrix_validation():
    traffic = TrafficMatrix()
    with pytest.raises(LayoutError):
        traffic.set_flow("a", "a", 1.0)
    with pytest.raises(LayoutError):
        traffic.set_flow("a", "b", -1.0)
    traffic.set_flow("a", "b", 0.0)
    assert traffic.edges() == []       # zero flows are dropped


# -- the Figure-8 derivation -------------------------------------------------------------

def test_traffic_alone_derives_figure8_placement():
    """No Pull(decoder, display) needed: the 20x raw-frame traffic pins
    the decoder to the GPU, exactly the paper's reasoning."""
    graph = client_graph()
    solver = MinimizeBusCrossings(tivopc_traffic())
    result = solver.solve(graph)
    assert result.placement["decoder"] == DEVICES.index("gpu")
    assert result.placement["display"] == DEVICES.index("gpu")
    assert result.placement["net-streamer"] == DEVICES.index("nic")
    assert result.placement["disk-streamer"] == DEVICES.index("disk")
    assert result.placement["file"] == DEVICES.index("disk")
    # Total: stream crosses NIC->GPU once and NIC->disk once.
    assert -result.objective == pytest.approx(2.0)


def test_decoder_at_nic_would_cost_more():
    graph = client_graph()
    solver = MinimizeBusCrossings(tivopc_traffic())
    figure8 = solver.solve(graph).placement
    at_nic = dict(figure8, decoder=DEVICES.index("nic"))
    assert solver.cost_of(graph, at_nic) > solver.cost_of(graph, figure8)
    # Specifically: 20 units of raw frames now cross NIC -> GPU.
    assert solver.cost_of(graph, at_nic) == pytest.approx(21.0)


def test_legacy_pci_pulls_the_pipeline_back_toward_the_host():
    """On a non-peer-to-peer bus, device-to-device hops cost double —
    and the optimizer responds by moving the recording path back to the
    host (nic->host costs 1, nic->disk costs 2).  Legacy buses erode
    the offload win; exactly the paper's PCIe footnote, inverted."""
    graph = client_graph()
    pcie = MinimizeBusCrossings(tivopc_traffic(), peer_to_peer=True)
    pci = MinimizeBusCrossings(tivopc_traffic(), peer_to_peer=False)
    result_pcie = pcie.solve(graph)
    result_pci = pci.solve(graph)
    assert -result_pcie.objective == pytest.approx(2.0)
    assert -result_pci.objective == pytest.approx(3.0)
    # The decoder still must sit with the display (raw frames dominate)...
    assert result_pci.placement["decoder"] == DEVICES.index("gpu")
    # ...but the disk-side components retreated to the host.
    assert result_pci.placement["disk-streamer"] == HOST_INDEX
    assert result_pci.placement["file"] == HOST_INDEX
    # The Figure-8 placement evaluated under PCI costs 4 (2 staged hops).
    assert pci.cost_of(graph, result_pcie.placement) == pytest.approx(4.0)


def test_constraints_still_respected():
    graph = client_graph()
    graph.constrain("decoder", "display", ConstraintType.PULL)
    graph.constrain("net-streamer", "disk-streamer", ConstraintType.GANG)
    result = MinimizeBusCrossings(tivopc_traffic()).solve(graph)
    assert graph.check_placement(result.placement) == []
    assert result.placement["decoder"] == DEVICES.index("gpu")


def test_tie_broken_toward_offloading():
    """With zero traffic everywhere, the minimizer still prefers the
    most-offloaded placement (the paper's secondary goal)."""
    graph = LayoutGraph(("host", "nic"))
    graph.add_node("a", [True, True])
    graph.add_node("b", [True, True])
    result = MinimizeBusCrossings(TrafficMatrix()).solve(graph)
    assert result.placement == {"a": 1, "b": 1}


def test_heavy_mutual_traffic_colocates_despite_offload_preference():
    """Two chatty Offcodes co-locate even when splitting would offload
    both — crossings dominate."""
    graph = LayoutGraph(("host", "nic", "gpu"))
    graph.add_node("producer", [True, True, False])
    graph.add_node("consumer", [True, False, True])
    traffic = TrafficMatrix()
    traffic.set_flow("producer", "consumer", 100.0)
    result = MinimizeBusCrossings(traffic).solve(graph)
    # Only co-location option is the host.
    assert result.placement == {"producer": HOST_INDEX,
                                "consumer": HOST_INDEX}


def test_infeasible_constraints_raise():
    graph = LayoutGraph(("host", "nic", "gpu"))
    graph.add_node("a", [False, True, False])
    graph.add_node("b", [False, False, True])
    graph.constrain("a", "b", ConstraintType.PULL)
    with pytest.raises(InfeasibleLayoutError):
        MinimizeBusCrossings(TrafficMatrix()).solve(graph)


def test_unknown_traffic_node_rejected():
    graph = client_graph()
    traffic = TrafficMatrix()
    traffic.set_flow("ghost", "decoder", 1.0)
    with pytest.raises(LayoutError):
        MinimizeBusCrossings(traffic).solve(graph)


def test_predicted_crossings_match_simulated_tivopc():
    """The model's per-packet crossing count (2: NIC->GPU + NIC->disk)
    matches what the simulated offloaded client actually does on its
    bus (one multicast transaction recorded as two logical crossings)."""
    from repro.tivopc import OffloadedClient, OffloadedServer, Testbed, \
        TestbedConfig
    testbed = Testbed(TestbedConfig(seed=2))
    testbed.start()
    client = OffloadedClient(testbed)
    client.start()
    OffloadedServer(testbed).start()
    testbed.run(4)
    bus = testbed.client.machine.bus
    chunks = client.chunks_received
    data_crossings = (bus.crossings.get(("nic0", "gpu0"), 0)
                      + bus.crossings.get(("nic0", "disk0"), 0))
    assert chunks > 500
    assert data_crossings == pytest.approx(2 * chunks, abs=4)
