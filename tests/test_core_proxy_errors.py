"""Tests for error propagation and edge cases through proxies/channels."""

import pytest

from repro.errors import InterfaceError
from repro.core import (
    ChannelConfig,
    ChannelExecutive,
    DmaChannelProvider,
    InterfaceSpec,
    LoopbackProvider,
    MemoryManager,
    MethodSpec,
    Offcode,
    OffcodeState,
    Proxy,
)
from repro.core.sites import DeviceSite, HostSite
from repro.hw import Machine
from repro.sim import Simulator

IFALLIBLE = InterfaceSpec.from_methods(
    "IFallible",
    (MethodSpec("Divide", params=(("a", "int"), ("b", "int")),
                result="int"),
     MethodSpec("Notify", one_way=True),
     MethodSpec("Slow", params=(), result="int")))


class FallibleOffcode(Offcode):
    BINDNAME = "test.Fallible"
    INTERFACES = (IFALLIBLE,)

    def __init__(self, site):
        super().__init__(site)
        self.notified = 0

    def Divide(self, a, b):
        return a // b            # ZeroDivisionError on b == 0

    def Notify(self):
        self.notified += 1

    def Slow(self):
        yield self.site.sim.timeout(50_000)
        return 99


@pytest.fixture()
def wired():
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    executive = ChannelExecutive()
    executive.register_provider(LoopbackProvider(machine))
    executive.register_provider(
        DmaChannelProvider(machine, nic, MemoryManager(machine)))
    offcode = FallibleOffcode(DeviceSite(nic))
    offcode.state = OffcodeState.RUNNING
    channel = executive.create_channel(ChannelConfig(),
                                       HostSite(machine))
    executive.connect_offcode(channel, offcode)
    proxy = Proxy(IFALLIBLE, channel, channel.creator_endpoint)
    return sim, proxy, offcode


def test_remote_exception_propagates_to_caller(wired):
    sim, proxy, offcode = wired
    caught = []

    def app():
        try:
            yield from proxy.Divide(1, 0)
        except ZeroDivisionError as exc:
            caught.append(exc)

    sim.run_until_event(sim.spawn(app()))
    assert len(caught) == 1
    # The offcode survives the failed call.
    assert offcode.state == OffcodeState.RUNNING


def test_call_after_error_still_works(wired):
    sim, proxy, offcode = wired
    out = {}

    def app():
        try:
            yield from proxy.Divide(1, 0)
        except ZeroDivisionError:
            pass
        out["ok"] = yield from proxy.Divide(10, 2)

    sim.run_until_event(sim.spawn(app()))
    assert out["ok"] == 5


def test_one_way_method_returns_immediately(wired):
    sim, proxy, offcode = wired
    out = {}

    def app():
        out["value"] = yield from proxy.Notify()

    sim.run_until_event(sim.spawn(app()))
    assert out["value"] is None
    assert offcode.notified == 1


def test_generator_method_result_transfers_back(wired):
    sim, proxy, offcode = wired
    out = {}

    def app():
        out["value"] = yield from proxy.Slow()

    sim.run_until_event(sim.spawn(app()))
    assert out["value"] == 99
    # The slow method's own delay is part of the caller-visible latency.
    assert sim.now >= 50_000


def test_unknown_proxy_method_rejected(wired):
    sim, proxy, offcode = wired
    with pytest.raises(InterfaceError):
        proxy.NoSuchMethod
    with pytest.raises(AttributeError):
        proxy._private


def test_concurrent_calls_are_matched(wired):
    """Two in-flight calls on the same channel resolve independently."""
    sim, proxy, offcode = wired
    results = []

    def caller(a, b):
        value = yield from proxy.Divide(a, b)
        results.append(value)

    sim.spawn(caller(100, 10))
    sim.spawn(caller(9, 3))
    sim.run()
    assert sorted(results) == [3, 10]
    assert proxy.invocations == 2
