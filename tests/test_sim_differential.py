"""Heap-vs-wheel differential tests: the scheduler swap is invisible.

The timer-wheel queue replaced the binary heap as a pure *mechanical*
change: both implementations must pop in the identical ``(time,
priority, seq)`` order, so every seeded run computes byte-identical
results whichever queue is underneath.  These tests pin that property
three ways:

* the TiVoPC pipeline, diffing whole :class:`Tracer` buffers record for
  record;
* the chaos harness across seeds 0..9 (fault injection, watchdogs,
  recovery — the densest timer workload in the repo), diffing
  order-sensitive run fingerprints;
* the ack/retransmit protocol at ``jitter=0``, whose deterministic
  backoff schedule is the paper-facing behaviour most sensitive to
  timer reordering.
"""

import random
from dataclasses import replace

from repro.core import ChannelConfig, HydraRuntime
from repro.faults.chaos import ChaosProfile, run_chaos_scenario
from repro.hw import Machine
from repro.sim import Simulator, Tracer
from repro.tivopc.client import MeasurementClient
from repro.tivopc.server import SimpleServer
from repro.tivopc.testbed import Testbed, TestbedConfig

_SIM_SECONDS = 0.3


def _traced_tivopc_run(scheduler: str, seed: int):
    testbed = Testbed(TestbedConfig(seed=seed, scheduler=scheduler))
    testbed.sim.tracer = Tracer(testbed.sim, capacity=200_000)
    testbed.start()
    client = MeasurementClient(testbed)
    client.start()
    SimpleServer(testbed).start()
    testbed.run(_SIM_SECONDS)
    return list(testbed.sim.tracer.records), testbed.sim, client


def test_tivopc_traces_identical_on_heap_and_wheel():
    for seed in (0, 7):
        wheel_records, wheel_sim, wheel_client = _traced_tivopc_run(
            "wheel", seed)
        heap_records, heap_sim, heap_client = _traced_tivopc_run(
            "heap", seed)
        assert wheel_sim.events_processed == heap_sim.events_processed
        assert wheel_sim.now == heap_sim.now
        assert (wheel_client.jitter.arrivals_ns
                == heap_client.jitter.arrivals_ns)
        # Bit-identical traces: every record, field for field, in order.
        assert wheel_records == heap_records


def _chaos_fingerprint(seed: int, scheduler: str):
    """An order-sensitive digest of one chaos run.

    The chaos harness interleaves RNG draws with event dispatch, so any
    divergence in pop order immediately perturbs every field below
    (fault timing, retransmit counts, arrival times, final clock).
    """
    # 3.0 s is the shortest horizon the plan generator's crash/stall
    # windows admit; it still packs noise, transients, a stall and a
    # crash-recovery cycle into every seed.
    profile = replace(ChaosProfile(), seconds=3.0, scheduler=scheduler)
    run = run_chaos_scenario(seed, profile)
    channels = sorted(
        ((s.channel_id, s.label, s.sent, s.delivered, s.dropped,
          s.corrupted, s.retransmits, s.dup_dropped)
         for s in (c.stats()
                   for c in run.testbed.client_runtime.executive.channels)),
    )
    return {
        "events": run.testbed.sim.events_processed,
        "now": run.testbed.sim.now,
        "chunks": run.client.chunks_received,
        "frames": run.client.frames_shown,
        "packets": run.server.packets_sent,
        "plan": tuple(
            (event.at_ns, event.kind, event.target)
            for event in run.plan.events),
        "channels": channels,
        "incidents": len(run.testbed.client_runtime.incidents),
    }


def test_chaos_seeds_identical_on_heap_and_wheel():
    for seed in range(10):
        wheel = _chaos_fingerprint(seed, "wheel")
        heap = _chaos_fingerprint(seed, "heap")
        assert wheel == heap, f"seed {seed} diverged: {wheel} != {heap}"


def _retransmit_run(scheduler: str):
    """The noisy reliable channel with the deterministic (jitter=0)
    backoff; returns the full trace plus protocol outcomes.
    """
    sim = Simulator(scheduler=scheduler)
    sim.tracer = Tracer(sim, capacity=200_000)
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    config = (ChannelConfig.unicast().reliable().sequential().copied()
              .labeled("rel"))
    channel = runtime.executive.create_channel(config, runtime.host_site)
    device_ep = runtime.executive.connect_site(
        channel, runtime.device_runtime("nic0").site)
    rng = random.Random(42)

    def noise(message):
        draw = rng.random()
        if draw < 0.20:
            return "drop"
        if draw < 0.30:
            return "corrupt"
        return None

    channel.set_fault_filter(noise)
    got = []

    def reader():
        while True:
            message = yield from device_ep.read()
            got.append(message.payload)

    sim.spawn(reader())

    def writer():
        for i in range(50):
            yield from channel.creator_endpoint.write(("chunk", i), 128)

    sim.run_until_event(sim.spawn(writer()))
    stats = channel.stats()
    return (list(sim.tracer.records), got, sim.now,
            (stats.sent, stats.delivered, stats.dropped,
             stats.retransmits, stats.dup_dropped))


def test_retransmit_backoff_byte_identical_at_zero_jitter():
    wheel_records, wheel_got, wheel_now, wheel_stats = _retransmit_run(
        "wheel")
    heap_records, heap_got, heap_now, heap_stats = _retransmit_run("heap")
    assert wheel_got == heap_got == [("chunk", i) for i in range(50)]
    assert wheel_now == heap_now
    assert wheel_stats == heap_stats
    assert wheel_stats[3] > 0           # the retransmit path actually fired
    assert wheel_records == heap_records
