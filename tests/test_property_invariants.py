"""Cross-cutting property-based invariant tests.

Hypothesis drives random operation sequences against the primitives the
whole system leans on: stores conserve items, resources conserve slots,
channels conserve messages, link delivery preserves FIFO order, and the
layout relaxation lattice is monotone.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.channel import (
    ChannelConfig,
    Reliability,
)
from repro.core.executive import ChannelExecutive
from repro.core.offcode import Offcode, OffcodeState
from repro.core.providers import DmaChannelProvider, LoopbackProvider
from repro.core.memory import MemoryManager
from repro.core.layout import (
    BranchAndBoundSolver,
    ConstraintType,
    LayoutGraph,
    MaximizeOffloading,
)
from repro.core.sites import DeviceSite, HostSite
from repro.errors import InfeasibleLayoutError
from repro.hw import Machine
from repro.net import Link, LinkSpec
from repro.net.packet import Address, Packet
from repro.sim import Resource, Simulator, Store


# -- store conservation --------------------------------------------------------------

@given(ops=st.lists(
    st.one_of(st.tuples(st.just("put"), st.integers(0, 99)),
              st.tuples(st.just("get"), st.just(0))),
    min_size=1, max_size=120))
@settings(max_examples=60, deadline=None)
def test_property_store_conserves_items(ops):
    sim = Simulator()
    store = Store(sim, capacity=8, drop_when_full=True)
    produced, consumed = [], []

    def driver():
        for op, value in ops:
            if op == "put":
                accepted = yield store.put(value)
                if accepted:
                    produced.append(value)
            elif len(store) > 0:
                consumed.append((yield store.get()))

    sim.run_until_event(sim.spawn(driver()))
    # Everything consumed was produced, in FIFO order.
    assert consumed == produced[:len(consumed)]
    assert list(store.items) == produced[len(consumed):]
    assert store.total_put == len(produced)


# -- resource conservation ------------------------------------------------------------

@given(holds=st.lists(st.integers(min_value=1, max_value=50),
                      min_size=1, max_size=30),
       capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_property_resource_never_oversubscribed(holds, capacity):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    max_seen = [0]

    def job(duration):
        yield resource.request()
        max_seen[0] = max(max_seen[0], resource.in_use)
        yield sim.timeout(duration)
        resource.release()

    for duration in holds:
        sim.spawn(job(duration))
    sim.run()
    assert max_seen[0] <= capacity
    assert resource.in_use == 0
    # Busy time never exceeds wall time.
    assert resource.busy_time <= sim.now


# -- channel conservation ---------------------------------------------------------------

class SinkOffcode(Offcode):
    BINDNAME = "prop.Sink"


@given(sizes=st.lists(st.integers(min_value=1, max_value=8192),
                      min_size=1, max_size=40),
       reliable=st.booleans())
@settings(max_examples=25, deadline=None)
def test_property_channel_conserves_messages(sizes, reliable):
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    executive = ChannelExecutive()
    executive.register_provider(LoopbackProvider(machine))
    executive.register_provider(
        DmaChannelProvider(machine, nic, MemoryManager(machine)))
    sink = SinkOffcode(DeviceSite(nic))
    sink.state = OffcodeState.RUNNING
    config = ChannelConfig(
        reliability=(Reliability.RELIABLE if reliable
                     else Reliability.UNRELIABLE),
        ring_slots=8)
    channel = executive.create_channel(config, HostSite(machine))
    endpoint = executive.connect_offcode(channel, sink)
    received = []
    endpoint.install_call_handler(
        lambda message: received.append(message.size_bytes))

    def writer():
        for size in sizes:
            yield from channel.creator_endpoint.write(b"", size)

    sim.run_until_event(sim.spawn(writer()))
    # With a handler installed nothing queues, so nothing can drop:
    # every write is delivered exactly once, in order.
    assert received == sizes
    assert channel.messages_sent == len(sizes)
    assert channel.bytes_sent == sum(sizes)
    assert channel.drops == 0


# -- link ordering -------------------------------------------------------------------------

@given(sizes=st.lists(st.integers(min_value=0, max_value=1400),
                      min_size=2, max_size=30),
       jitter=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=40, deadline=None)
def test_property_link_is_fifo_even_with_jitter(sizes, jitter):
    sim = Simulator()
    arrived = []
    link = Link(sim, lambda p: arrived.append(p.seq),
                LinkSpec(bandwidth_bps=1e9, propagation_ns=1_000,
                         jitter_sigma_ns=jitter))
    packets = [Packet(src=Address("a", 1), dst=Address("b", 2),
                      size_bytes=s) for s in sizes]
    for packet in packets:
        link.send(packet)
    sim.run()
    assert len(arrived) == len(sizes)
    # Serialization is FIFO; only post-wire jitter varies, and it is
    # per-packet — order of *transmission completion* is preserved.
    sent_order = [p.seq for p in packets]
    assert sorted(arrived) == sorted(sent_order)


# -- layout relaxation monotonicity -----------------------------------------------------------

@st.composite
def prioritised_graph(draw):
    devices = ("host", "d0", "d1")
    graph = LayoutGraph(devices)
    n = draw(st.integers(min_value=2, max_value=5))
    for i in range(n):
        compat = [True] + [draw(st.booleans()) for _ in range(2)]
        graph.add_node(f"n{i}", compat)
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        a, b = draw(st.tuples(st.integers(0, n - 1),
                              st.integers(0, n - 1)))
        if a == b:
            continue
        graph.constrain(
            f"n{a}", f"n{b}",
            draw(st.sampled_from([ConstraintType.PULL,
                                  ConstraintType.GANG])),
            priority=draw(st.integers(0, 2)))
    return graph


@given(graph=prioritised_graph())
@settings(max_examples=40, deadline=None)
def test_property_relaxation_never_decreases_objective(graph):
    """Dropping constraints can only improve (or keep) the optimum."""
    solver = BranchAndBoundSolver()
    objective = MaximizeOffloading()

    def solve(g):
        try:
            return solver.solve(objective.build(g)).objective
        except InfeasibleLayoutError:
            return None

    full = solve(graph)
    relaxed = solve(graph.without_constraints_below(1))
    if full is not None:
        assert relaxed is not None
        assert relaxed >= full - 1e-9
