"""Tests for the Section 5 layout machinery: graph, ILP, solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleLayoutError, LayoutError
from repro.core.layout import (
    BranchAndBoundSolver,
    BusCapabilityMatrix,
    Constraint,
    ConstraintType,
    GreedySolver,
    HOST_INDEX,
    LayoutGraph,
    MaximizeBusUsage,
    MaximizeOffloading,
    MinimizeHostCpu,
    ScipyMilpSolver,
    build_ilp,
    parse_constraint_type,
)

DEVICES = ("host", "nic", "gpu", "disk")


def graph_with(nodes, constraints=(), devices=DEVICES):
    graph = LayoutGraph(devices)
    for name, compat, *rest in nodes:
        price = rest[0] if rest else 0.0
        graph.add_node(name, compat, price=price)
    for source, target, kind in constraints:
        graph.constrain(source, target, kind)
    return graph


# -- constraints --------------------------------------------------------------------

def test_parse_constraint_types():
    assert parse_constraint_type("Pull") is ConstraintType.PULL
    assert parse_constraint_type("gang") is ConstraintType.GANG
    assert parse_constraint_type("Asymmetric-Gang") is ConstraintType.GANG_ASYM
    assert parse_constraint_type("link") is ConstraintType.LINK
    with pytest.raises(LayoutError):
        parse_constraint_type("strange")


def test_constraint_validation():
    with pytest.raises(LayoutError):
        Constraint("a", "a", ConstraintType.PULL)
    with pytest.raises(LayoutError):
        Constraint("a", "b", ConstraintType.PULL, priority=-1)


# -- graph -------------------------------------------------------------------------------

def test_graph_construction_and_validation():
    graph = graph_with([("a", [True, True, False, False])])
    assert graph.num_devices == 4
    assert graph.node("a").host_capable
    with pytest.raises(LayoutError):
        graph.add_node("a", [True, True, True, True])    # duplicate
    with pytest.raises(LayoutError):
        graph.add_node("b", [True, True])                # wrong arity
    with pytest.raises(LayoutError):
        graph.add_node("c", [False, False, False, False])  # nowhere to go
    with pytest.raises(LayoutError):
        graph.constrain("a", "ghost", ConstraintType.PULL)


def test_check_placement_detects_violations():
    graph = graph_with(
        [("a", [True, True, False, False]),
         ("b", [True, True, True, False])],
        [("a", "b", ConstraintType.PULL)])
    assert graph.check_placement({"a": 1, "b": 1}) == []
    assert graph.check_placement({"a": 1, "b": 2}) != []   # pull broken
    assert graph.check_placement({"a": 2, "b": 1}) != []   # incompatible
    assert graph.check_placement({"a": 1}) != []           # missing


def test_check_placement_gang_semantics():
    graph = graph_with(
        [("a", [True, True, False, False]),
         ("b", [True, False, True, False])],
        [("a", "b", ConstraintType.GANG)])
    assert graph.check_placement({"a": 1, "b": 2}) == []   # both offloaded
    assert graph.check_placement({"a": 0, "b": 0}) == []   # both on host
    assert graph.check_placement({"a": 1, "b": 0}) != []


def test_check_placement_asym_gang_semantics():
    graph = graph_with(
        [("a", [True, True, False, False]),
         ("b", [True, False, True, False])],
        [("a", "b", ConstraintType.GANG_ASYM)])
    # source offloaded requires target offloaded...
    assert graph.check_placement({"a": 1, "b": 2}) == []
    assert graph.check_placement({"a": 1, "b": 0}) != []
    # ...but target alone is fine.
    assert graph.check_placement({"a": 0, "b": 2}) == []


# -- ILP construction ----------------------------------------------------------------------

def test_build_ilp_variables_respect_compat():
    graph = graph_with([("a", [True, True, False, False])])
    problem = build_ilp(graph)
    assert problem.var_names == ["a@host", "a@nic"]
    assert problem.groups == [[0, 1]]


def test_build_ilp_pull_without_shared_device_infeasible():
    graph = graph_with(
        [("a", [False, True, False, False]),
         ("b", [False, False, True, False])],
        [("a", "b", ConstraintType.PULL)])
    with pytest.raises(InfeasibleLayoutError):
        build_ilp(graph)


def test_link_adds_no_equations():
    graph = graph_with(
        [("a", [True, True, False, False]),
         ("b", [True, True, False, False])],
        [("a", "b", ConstraintType.LINK)])
    assert build_ilp(graph).constraints == []


# -- solvers -------------------------------------------------------------------------------

SOLVERS = [BranchAndBoundSolver(), GreedySolver()]
if ScipyMilpSolver.available():
    SOLVERS.append(ScipyMilpSolver())


@pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.name)
def test_simple_graph_fully_offloaded(solver):
    graph = graph_with(
        [("a", [True, True, False, False]),
         ("b", [True, False, True, False])])
    result = solver.solve(MaximizeOffloading().build(graph))
    assert result.placement == {"a": 1, "b": 2}
    assert result.objective == 2.0
    assert graph.check_placement(result.placement) == []


@pytest.mark.parametrize("solver", [BranchAndBoundSolver()]
                         + ([ScipyMilpSolver()]
                            if ScipyMilpSolver.available() else []),
                         ids=lambda s: s.name)
def test_pull_forces_colocation(solver):
    graph = graph_with(
        [("a", [True, True, True, False]),
         ("b", [True, False, True, True])],
        [("a", "b", ConstraintType.PULL)])
    result = solver.solve(MaximizeOffloading().build(graph))
    assert result.placement["a"] == result.placement["b"] == 2   # gpu
    assert graph.check_placement(result.placement) == []


def test_gang_ties_offload_decisions():
    graph = graph_with(
        [("a", [True, True, False, False]),
         ("b", [True, False, False, False])],   # b can only run on host
        [("a", "b", ConstraintType.GANG)])
    result = BranchAndBoundSolver().solve(MaximizeOffloading().build(graph))
    # b cannot offload, so the Gang forces a onto the host too.
    assert result.placement == {"a": HOST_INDEX, "b": HOST_INDEX}


def test_asym_gang_allows_target_only():
    graph = graph_with(
        [("a", [True, False, False, False]),
         ("b", [True, True, False, False])],
        [("a", "b", ConstraintType.GANG_ASYM)])
    result = BranchAndBoundSolver().solve(MaximizeOffloading().build(graph))
    # a stays on host; b still offloads (asymmetry).
    assert result.placement == {"a": 0, "b": 1}


def test_infeasible_raises():
    graph = graph_with(
        [("a", [False, True, False, False]),     # must offload to nic
         ("b", [True, False, False, False])],    # must stay on host
        [("a", "b", ConstraintType.GANG)])
    with pytest.raises(InfeasibleLayoutError):
        BranchAndBoundSolver().solve(MaximizeOffloading().build(graph))


def test_bus_usage_objective_respects_capacity():
    graph = graph_with(
        [("big", [True, True, False, False], 10.0),
         ("small1", [True, True, False, False], 4.0),
         ("small2", [True, True, False, False], 4.0)])
    capability = BusCapabilityMatrix.uniform(DEVICES, 4.0)
    # nic budget = 4+4+4 (pairs with gpu, disk, and host excluded) -> the
    # uniform matrix gives nic pairs (nic,gpu) and (nic,disk): budget 8.
    result = BranchAndBoundSolver().solve(
        MaximizeBusUsage(capability).build(graph))
    offloaded_price = sum(
        graph.node(name).price for name, k in result.placement.items()
        if k != HOST_INDEX)
    assert offloaded_price <= 8.0
    # Optimal under the budget: the two smalls (8.0) beat the big (10>8).
    assert result.placement["big"] == HOST_INDEX
    assert result.placement["small1"] != HOST_INDEX
    assert result.placement["small2"] != HOST_INDEX


def test_minimize_host_cpu_objective():
    graph = graph_with(
        [("hot", [True, True, False, False]),
         ("cold", [True, False, True, False])])
    # Only one can offload: gang them against a host-only third party?
    # Simpler: both can offload; weights must order the objective.
    result = BranchAndBoundSolver().solve(
        MinimizeHostCpu({"hot": 0.5, "cold": 0.01}).build(graph))
    assert result.objective == pytest.approx(0.51)


def test_greedy_is_suboptimal_on_contended_graph():
    """Section 5: "for complex scenarios a greedy solution is not always
    optimal."  Greedy grabs the bus budget for the first (big) Offcode
    and strands the two smalls; the ILP leaves the big one home."""
    graph = graph_with(
        [("big", [True, True, False, False], 6.0),
         ("small1", [True, True, False, False], 4.0),
         ("small2", [True, True, False, False], 4.0)])
    capability = BusCapabilityMatrix.uniform(DEVICES, 4.0)   # nic budget 8
    problem = MaximizeBusUsage(capability).build(graph)
    greedy = GreedySolver().solve(problem)
    exact = BranchAndBoundSolver().solve(problem)
    assert greedy.objective == pytest.approx(6.0)    # big only
    assert exact.objective == pytest.approx(8.0)     # both smalls
    assert exact.objective > greedy.objective


@pytest.mark.skipif(not ScipyMilpSolver.available(),
                    reason="scipy not installed")
def test_scipy_matches_branch_and_bound_on_tivopc_like_graph():
    graph = graph_with(
        [("streamer", [True, True, False, True]),
         ("decoder", [True, True, True, False]),
         ("display", [False, False, True, False]),
         ("file", [True, False, False, True]),
         ("broadcast", [True, True, False, False])],
        [("streamer", "decoder", ConstraintType.GANG),
         ("decoder", "display", ConstraintType.PULL),
         ("file", "streamer", ConstraintType.PULL)])
    problem = MaximizeOffloading().build(graph)
    a = BranchAndBoundSolver().solve(problem)
    b = ScipyMilpSolver().solve(problem)
    assert a.objective == pytest.approx(b.objective)
    assert graph.check_placement(a.placement) == []
    assert graph.check_placement(b.placement) == []


# -- property: exact solvers agree on random instances ---------------------------------------

@st.composite
def random_layout(draw):
    num_devices = draw(st.integers(min_value=2, max_value=4))
    devices = tuple(["host"] + [f"d{i}" for i in range(num_devices - 1)])
    num_nodes = draw(st.integers(min_value=1, max_value=5))
    graph = LayoutGraph(devices)
    for i in range(num_nodes):
        compat = [draw(st.booleans()) for _ in devices]
        compat[0] = True        # host always possible: feasibility anchor
        graph.add_node(f"n{i}", compat,
                       price=draw(st.integers(min_value=0, max_value=5)))
    num_edges = draw(st.integers(min_value=0, max_value=4))
    for _ in range(num_edges):
        a = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=num_nodes - 1))
        if a == b:
            continue
        kind = draw(st.sampled_from([ConstraintType.PULL,
                                     ConstraintType.GANG,
                                     ConstraintType.GANG_ASYM,
                                     ConstraintType.LINK]))
        graph.constrain(f"n{a}", f"n{b}", kind)
    return graph


@given(graph=random_layout())
@settings(max_examples=60, deadline=None)
def test_property_bnb_solution_valid_and_optimal_vs_scipy(graph):
    try:
        problem = MaximizeOffloading().build(graph)
    except InfeasibleLayoutError:
        return
    try:
        bnb = BranchAndBoundSolver().solve(problem)
    except InfeasibleLayoutError:
        if ScipyMilpSolver.available():
            with pytest.raises(InfeasibleLayoutError):
                ScipyMilpSolver().solve(problem)
        return
    assert graph.check_placement(bnb.placement) == []
    if ScipyMilpSolver.available():
        scipy_result = ScipyMilpSolver().solve(problem)
        assert scipy_result.objective == pytest.approx(bnb.objective)


@given(graph=random_layout())
@settings(max_examples=60, deadline=None)
def test_property_greedy_never_beats_exact_and_is_valid(graph):
    try:
        problem = MaximizeOffloading().build(graph)
        exact = BranchAndBoundSolver().solve(problem)
    except InfeasibleLayoutError:
        return
    try:
        greedy = GreedySolver().solve(problem)
    except InfeasibleLayoutError:
        return   # greedy may paint itself into a corner; that's its flaw
    assert graph.check_placement(greedy.placement) == []
    assert greedy.objective <= exact.objective + 1e-9
