"""Encode-once guarantees for Call objects.

Marshaling is charged per byte on the caller's CPU, so the argument
bytes must be produced exactly once per logical invocation: a Call
caches its encoded arguments and serialized size at construction,
``reissue()`` reuses them for retries, and the proxy retry loop never
re-marshals.  ``marshal.stats.encodes`` counts real serializations and
pins each path.
"""

import pytest

from repro.core import (
    CallPolicy,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
    RetryBudgetExceededError,
)
from repro.core import marshal
from repro.core.call import make_call
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

IECHO = InterfaceSpec.from_methods(
    "IEcho", (MethodSpec("Echo", params=(("payload", "string"),),
                         result="string"),))


class EchoOffcode(Offcode):
    BINDNAME = "cache.Echo"
    INTERFACES = (IECHO,)

    def Echo(self, payload):
        return payload


ECHO_GUID = Guid(4242)


@pytest.fixture()
def world():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    runtime.library.register("/echo.odf", OdfDocument(
        bindname="cache.Echo", guid=ECHO_GUID, interfaces=[IECHO],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=8 * 1024))
    runtime.depot.register(ECHO_GUID, EchoOffcode)
    return sim, machine, runtime


def deploy(sim, runtime):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode("/echo.odf")

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


def test_make_call_encodes_once_and_caches_size():
    sim = Simulator()
    before = marshal.stats.encodes
    call = make_call(sim, IECHO, "Echo", ("hello world",))
    assert marshal.stats.encodes == before + 1
    # size_bytes is a cached attribute: reading it repeatedly (channels,
    # batchers and providers all do) never touches the encoder again.
    sizes = {call.size_bytes for _ in range(10)}
    assert sizes == {24 + len("Echo") + len(call.encoded_args)}
    assert marshal.stats.encodes == before + 1


def test_reissue_reuses_encoded_bytes():
    sim = Simulator()
    call = make_call(sim, IECHO, "Echo", ("payload",))
    before = marshal.stats.encodes
    retry = call.reissue(sim)
    assert marshal.stats.encodes == before          # no re-encode
    assert retry.encoded_args is call.encoded_args  # same bytes object
    assert retry.size_bytes == call.size_bytes
    assert retry.call_id != call.call_id
    # Two-way calls get a fresh, unused descriptor.
    assert retry.return_descriptor is not None
    assert retry.return_descriptor is not call.return_descriptor
    assert not retry.return_descriptor.delivered


def test_retry_proxy_marshals_arguments_once(world):
    sim, machine, runtime = world
    proxy = deploy(sim, runtime).proxy
    proxy.set_policy(CallPolicy(deadline_ns=100_000, max_attempts=3,
                                backoff_base_ns=10_000))
    machine.device("nic0").health.stall()
    out = {}

    def call():
        try:
            yield from proxy.Echo("a" * 256)
        except RetryBudgetExceededError as exc:
            out["exc"] = exc

    before = marshal.stats.encodes
    sim.run_until_event(sim.spawn(call()))
    assert out["exc"].attempts == 3
    assert proxy.timeouts == 3
    # Three attempts, one serialization: retries reissue the cached
    # bytes instead of re-marshaling the 256-byte argument.
    assert marshal.stats.encodes == before + 1
