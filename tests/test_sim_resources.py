"""Unit tests for Store / Resource / Container primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Resource, Simulator, Store


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.spawn(producer(sim, store))
    sim.spawn(consumer(sim, store))
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(40)
        yield store.put("x")

    sim.spawn(consumer(sim, store))
    sim.spawn(producer(sim, store))
    sim.run()
    assert got == [(40, "x")]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer(sim, store):
        yield store.put("a")
        timeline.append(("put-a", sim.now))
        yield store.put("b")
        timeline.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(25)
        item = yield store.get()
        timeline.append(("got-" + item, sim.now))

    sim.spawn(producer(sim, store))
    sim.spawn(consumer(sim, store))
    sim.run()
    assert ("put-a", 0) in timeline
    assert ("put-b", 25) in timeline  # unblocked by the get at t=25


def test_store_drop_mode_counts_drops():
    sim = Simulator()
    store = Store(sim, capacity=2, drop_when_full=True)
    results = []

    def producer(sim, store):
        for i in range(5):
            ok = yield store.put(i)
            results.append(ok)

    sim.spawn(producer(sim, store))
    sim.run()
    assert results == [True, True, False, False, False]
    assert store.dropped == 3
    assert store.total_put == 2
    assert list(store.items) == [0, 1]


def test_store_handoff_to_waiting_getter_bypasses_capacity():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append(item)

    def producer(sim, store):
        yield sim.timeout(1)
        yield store.put("direct")

    sim.spawn(consumer(sim, store))
    sim.spawn(producer(sim, store))
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(sim, store):
        yield sim.timeout(5)
        yield store.put(1)
        yield store.put(2)

    sim.spawn(consumer(sim, store, "first"))
    sim.spawn(consumer(sim, store, "second"))
    sim.spawn(producer(sim, store))
    sim.run()
    assert got == [("first", 1), ("second", 2)]


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serializes_holders():
    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    spans = []

    def job(sim, cpu, tag, work):
        yield cpu.request()
        start = sim.now
        yield sim.timeout(work)
        cpu.release()
        spans.append((tag, start, sim.now))

    sim.spawn(job(sim, cpu, "a", 10))
    sim.spawn(job(sim, cpu, "b", 10))
    sim.run()
    assert spans == [("a", 0, 10), ("b", 10, 20)]


def test_resource_capacity_two_runs_in_parallel():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    spans = []

    def job(sim, res, tag):
        yield res.request()
        yield sim.timeout(10)
        res.release()
        spans.append((tag, sim.now))

    for tag in "abc":
        sim.spawn(job(sim, res, tag))
    sim.run()
    assert spans == [("a", 10), ("b", 10), ("c", 20)]


def test_resource_release_without_request_rejected():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_utilization_tracking():
    sim = Simulator()
    res = Resource(sim)

    def job(sim, res):
        yield res.request()
        yield sim.timeout(30)
        res.release()
        yield sim.timeout(70)

    sim.spawn(job(sim, res))
    sim.run()
    assert sim.now == 100
    assert res.utilization() == pytest.approx(0.3)


def test_resource_utilization_counts_open_interval():
    sim = Simulator()
    res = Resource(sim)

    def holder(sim, res):
        yield res.request()
        yield sim.timeout(1_000_000)

    sim.spawn(holder(sim, res))
    sim.run(until=100)
    assert res.utilization() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)
    out = []

    def consumer(sim, tank):
        yield tank.get(30)
        out.append(sim.now)

    def producer(sim, tank):
        yield sim.timeout(10)
        yield tank.put(20)
        yield sim.timeout(10)
        yield tank.put(20)

    sim.spawn(consumer(sim, tank))
    sim.spawn(producer(sim, tank))
    sim.run()
    assert out == [20]
    assert tank.level == pytest.approx(10)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=50, init=40)
    out = []

    def producer(sim, tank):
        yield tank.put(20)
        out.append(sim.now)

    def consumer(sim, tank):
        yield sim.timeout(15)
        yield tank.get(25)

    sim.spawn(producer(sim, tank))
    sim.spawn(consumer(sim, tank))
    sim.run()
    assert out == [15]


def test_container_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=0)
    with pytest.raises(SimulationError):
        Container(sim, capacity=10, init=20)
    tank = Container(sim, capacity=10)
    with pytest.raises(SimulationError):
        tank.put(0)
    with pytest.raises(SimulationError):
        tank.get(-1)
