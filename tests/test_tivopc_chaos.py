"""Chaos end-to-end test: NIC death mid-stream, host-fallback recovery.

The scenario the fault subsystem exists for: the fully offloaded
Figure-8 client is streaming when the client NIC's embedded processor
crashes.  The watchdog notices the silence, the runtime tears down the
victim Offcode, fences the NIC back into fixed-function mode, re-runs
the layout excluding the dead device, and the Streamer finishes the
stream on the host processor — the paper's host-based configuration as
a degraded mode, entered automatically.
"""

import pytest

from repro import units
from repro.core import WatchdogConfig
from repro.faults import FaultPlan
from repro.tivopc import (
    OffloadedClient,
    OffloadedServer,
    Testbed,
    TestbedConfig,
)

CRASH_AT_NS = 2 * units.SECOND


def run_chaos(seed=3, seconds=8):
    plan = FaultPlan().crash_device(CRASH_AT_NS, "client.nic0")
    testbed = Testbed(TestbedConfig(seed=seed, fault_plan=plan,
                                    watchdog=WatchdogConfig()))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=True)
    client.start()
    server = OffloadedServer(testbed)
    server.start()
    testbed.run(seconds)
    return testbed, client, server


@pytest.fixture(scope="module")
def chaos():
    return run_chaos()


def test_streamer_falls_back_to_host(chaos):
    testbed, client, server = chaos
    assert testbed.fault_injector.applied
    assert "nic0" in testbed.client_runtime.failed_devices
    # The network Streamer was re-deployed on the host processor; the
    # survivors kept their Figure-8 seats.
    assert client.net_streamer.location == "host"
    assert client.disk_streamer.location == "disk0"
    assert client.decoder.location == "gpu0"
    assert client.display.location == "gpu0"


def test_stream_finishes_after_recovery(chaos):
    testbed, client, server = chaos
    incident = testbed.client_runtime.incidents[0]
    assert incident.device == "nic0"
    assert incident.recovered
    # The stream kept flowing host-side: the fallback Streamer handled
    # chunks, frames kept rendering and the recording kept growing.
    assert client.chunks_received > 1000
    assert client.frames_shown > 100
    assert client.bytes_recorded > 1_000_000
    # The fenced NIC black-holed frames only while actually crashed.
    nic = testbed.client.nic
    assert nic.health.state == nic.health.FENCED
    assert nic.rx_dropped_dead > 0


def test_recovery_latency_is_positive_and_bounded(chaos):
    testbed, client, server = chaos
    incident = testbed.client_runtime.incidents[0]
    assert incident.latency_ns > 0
    # Death is declared within period * threshold (+ one deadline), and
    # redeploy+rewire is far faster than a beat — well under 100 ms.
    assert incident.died_at_ns - CRASH_AT_NS < 10 * units.MS
    assert incident.latency_ns < 100 * units.MS


def test_host_receive_path_is_active_after_fallback(chaos):
    testbed, client, server = chaos
    # The fallback Streamer reads a real UDP socket: packets now cross
    # the fenced NIC's dumb DMA path and the kernel stack.  (Only the
    # Streamer moved to the host — decode stayed on the GPU — so CPU
    # utilization stays near idle; the socket counters are the proof.)
    assert client.net_streamer.socket is not None
    assert client.net_streamer.socket.rx_packets > 500
    assert testbed.client.nic.interrupts_raised > 500


def test_chaos_run_is_deterministic():
    first = run_chaos(seed=11, seconds=6)
    second = run_chaos(seed=11, seconds=6)
    first_incident = first[0].client_runtime.incidents[0]
    second_incident = second[0].client_runtime.incidents[0]
    assert first_incident.latency_ns == second_incident.latency_ns
    assert first_incident.died_at_ns == second_incident.died_at_ns
    assert first[1].frames_shown == second[1].frames_shown
    assert first[1].bytes_recorded == second[1].bytes_recorded
