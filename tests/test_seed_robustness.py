"""Seed-robustness: the paper's qualitative results hold across seeds.

Calibration was done at seed 0; these tests re-run the headline
comparisons at other seeds and assert the *shape* (orderings and
magnitudes), guarding against a reproduction that only works at the
seed it was tuned on.  Marked slow: each seed is a full scenario set.
"""

import pytest

from repro.evaluation import run_server_scenario
from repro.tivopc import (
    MeasurementClient,
    OffloadedServer,
    SendfileServer,
    SimpleServer,
    Testbed,
    TestbedConfig,
)

SEEDS = (1, 2025)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_jitter_ordering_holds_across_seeds(seed):
    stats = {}
    for cls in (SimpleServer, SendfileServer, OffloadedServer):
        testbed = Testbed(TestbedConfig(seed=seed))
        testbed.start()
        client = MeasurementClient(testbed)
        client.start()
        cls(testbed).start()
        testbed.run(12)
        stats[cls.name] = client.jitter.stats()
    assert 6.7 < stats["simple"].average < 7.4
    assert 5.8 < stats["sendfile"].average < 6.4
    assert abs(stats["offloaded"].average - 5.0) < 0.02
    assert (stats["offloaded"].stdev
            < stats["sendfile"].stdev
            < stats["simple"].stdev)
    assert stats["offloaded"].stdev < 0.08


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
def test_cpu_and_l2_shape_holds_across_seeds(seed):
    idle = run_server_scenario("idle", seconds=12, seed=seed)
    simple = run_server_scenario("simple", seconds=12, seed=seed)
    offloaded = run_server_scenario("offloaded", seconds=12, seed=seed)
    # CPU: simple well above idle; offloaded == idle.
    assert simple.cpu.average > idle.cpu.average + 0.03
    assert abs(offloaded.cpu.average - idle.cpu.average) < 0.004
    # L2: simple clearly above idle; offloaded == idle.
    assert simple.l2_miss_rate > idle.l2_miss_rate * 1.03
    assert abs(offloaded.l2_miss_rate / idle.l2_miss_rate - 1.0) < 0.02
