"""Tests for the wire marshaler and Call objects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterfaceError, MarshalError
from repro.core import marshal
from repro.core.call import ReturnDescriptor, make_call
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.sim import Simulator


# -- marshal basics ---------------------------------------------------------------

@pytest.mark.parametrize("value", [
    None, True, False, 0, 1, -1, 2**200, -(2**200),
    0.0, 3.14159, -1e300, "", "hello", "ünïcödé ☃",
    b"", b"\x00\xff" * 10,
    [], [1, "two", None], [[1, 2], [3, [4]]],
    {}, {"a": 1, "b": [True, None]}, {"nested": {"x": b"bytes"}},
])
def test_roundtrip_values(value):
    assert marshal.decode(marshal.encode(value)) == value


def test_tuple_decodes_as_list():
    assert marshal.decode(marshal.encode((1, 2))) == [1, 2]


def test_unsupported_type_rejected():
    with pytest.raises(MarshalError):
        marshal.encode(object())
    with pytest.raises(MarshalError):
        marshal.encode({1: "non-string key"})


def test_excessive_nesting_rejected():
    value = []
    for _ in range(50):
        value = [value]
    with pytest.raises(MarshalError):
        marshal.encode(value)


def test_truncated_message_rejected():
    data = marshal.encode("hello world")
    with pytest.raises(MarshalError):
        marshal.decode(data[:-3])


def test_trailing_garbage_rejected():
    data = marshal.encode(5)
    with pytest.raises(MarshalError):
        marshal.decode(data + b"x")


def test_unknown_tag_rejected():
    with pytest.raises(MarshalError):
        marshal.decode(b"Z")


def test_encoded_size_matches():
    for value in (None, 42, "abc", [1, 2, 3]):
        assert marshal.encoded_size(value) == len(marshal.encode(value))


json_like = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-(2**63), max_value=2**63),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=40), st.binary(max_size=40)),
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6)),
    max_leaves=25)


@given(value=json_like)
@settings(max_examples=150, deadline=None)
def test_property_roundtrip(value):
    assert marshal.decode(marshal.encode(value)) == value


# -- call objects -----------------------------------------------------------------------

ICALC = InterfaceSpec.from_methods(
    "ICalc",
    (MethodSpec("Add", params=(("a", "int"), ("b", "int")), result="int"),
     MethodSpec("Ping", one_way=True)))


def test_make_call_two_way():
    sim = Simulator()
    call = make_call(sim, ICALC, "Add", (2, 3))
    assert call.interface_guid == ICALC.guid
    assert call.method == "Add"
    assert call.args() == (2, 3)
    assert not call.one_way
    assert call.size_bytes > 24


def test_make_call_one_way_has_no_descriptor():
    sim = Simulator()
    call = make_call(sim, ICALC, "Ping", ())
    assert call.one_way
    assert call.return_descriptor is None


def test_make_call_arity_checked():
    sim = Simulator()
    with pytest.raises(InterfaceError):
        make_call(sim, ICALC, "Add", (1,))
    with pytest.raises(InterfaceError):
        make_call(sim, ICALC, "Missing", ())


def test_return_descriptor_delivery():
    sim = Simulator()
    descriptor = ReturnDescriptor(sim)
    descriptor.deliver(marshal.encode(5))
    sim.run()
    assert marshal.decode(descriptor.event.value) == 5
    with pytest.raises(MarshalError):
        descriptor.deliver(b"")


def test_return_descriptor_error_delivery():
    sim = Simulator()
    descriptor = ReturnDescriptor(sim)
    caught = []

    def waiter():
        try:
            yield descriptor.event
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    descriptor.deliver_error(ValueError("remote failure"))
    sim.run()
    assert caught == ["remote failure"]


def test_call_ids_unique():
    sim = Simulator()
    a = make_call(sim, ICALC, "Ping", ())
    b = make_call(sim, ICALC, "Ping", ())
    assert a.call_id != b.call_id
