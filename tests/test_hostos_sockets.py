"""Tests for the UDP stack and the NFS substrate."""

import pytest

from repro import units
from repro.errors import SocketError
from repro.hostos import (
    DeviceNfsClient,
    HostNfsClient,
    Kernel,
    NFS_PORT,
    NfsServer,
    RemoteFile,
    UdpStack,
)
from repro.hw import Machine, MachineSpec
from repro.net import Address, DeviceNetPort, Switch
from repro.sim import RandomStreams, Simulator


def make_host(sim, switch, name, rng, background=False):
    """A machine with kernel + NIC + UDP stack attached to the switch."""
    machine = Machine(sim, MachineSpec(name=name))
    kernel = Kernel(machine, rng)
    nic = machine.add_nic()
    stack = UdpStack(kernel, name)
    stack.attach_nic(nic, switch)
    kernel.start(with_background=background)
    return machine, kernel, stack


@pytest.fixture()
def two_hosts():
    sim = Simulator()
    rng = RandomStreams(11)
    switch = Switch(sim, rng=rng.stream("switch"))
    a = make_host(sim, switch, "alpha", rng)
    b = make_host(sim, switch, "beta", rng)
    return sim, switch, a, b


# -- UDP ----------------------------------------------------------------------------

def test_udp_end_to_end(two_hosts):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = two_hosts
    server_sock = sb.socket(5000)
    client_sock = sa.socket()
    got = {}

    def server():
        pkt = yield from server_sock.recvfrom()
        got["payload"] = pkt.payload
        got["src"] = pkt.src

    def client():
        yield from client_sock.sendto(Address("beta", 5000), 1024,
                                      payload="movie-chunk")

    sim.spawn(server())
    sim.spawn(client())
    sim.run(until=units.s_to_ns(0.05))
    assert got["payload"] == "movie-chunk"
    assert got["src"].host == "alpha"
    assert server_sock.rx_packets == 1
    assert client_sock.tx_packets == 1


def test_udp_receive_charges_receiver_cpu(two_hosts):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = two_hosts
    server_sock = sb.socket(5000)
    client_sock = sa.socket()

    def server():
        yield from server_sock.recvfrom()

    def client():
        yield from client_sock.sendto(Address("beta", 5000), 1024)

    sim.spawn(server())
    sim.spawn(client())
    sim.run(until=units.s_to_ns(0.05))
    assert mb.cpu.busy_by_context.get("kernel-isr", 0) > 0
    assert mb.cpu.busy_by_context.get("kernel-net", 0) > 0


def test_udp_gather_send_cheaper_than_copying(two_hosts):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = two_hosts
    sock = sa.socket()
    sb.socket(5000)  # bound so frames are delivered
    cost = {}

    def run(kind):
        before = ma.cpu.total_busy
        if kind == "copy":
            yield from sock.sendto(Address("beta", 5000), 4096)
        else:
            yield from sock.sendto_gather(Address("beta", 5000), 4096)
        cost[kind] = ma.cpu.total_busy - before

    def driver():
        yield from run("copy")
        yield from run("gather")

    sim.spawn(driver())
    sim.run(until=units.s_to_ns(0.05))
    assert cost["gather"] < cost["copy"]


def test_udp_port_collision_rejected(two_hosts):
    sim, switch, (ma, ka, sa), _ = two_hosts
    sa.socket(7000)
    with pytest.raises(SocketError):
        sa.socket(7000)


def test_udp_closed_socket_rejected(two_hosts):
    sim, switch, (ma, ka, sa), _ = two_hosts
    sock = sa.socket(7000)
    sock.close()
    with pytest.raises(SocketError):
        next(sock.sendto(Address("beta", 1), 10))
    # Port is free again after close.
    sa.socket(7000)


def test_udp_unbound_port_counted(two_hosts):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = two_hosts
    sock = sa.socket()

    def client():
        yield from sock.sendto(Address("beta", 9999), 100)

    sim.spawn(client())
    sim.run(until=units.s_to_ns(0.05))
    assert sb.rx_no_listener == 1


def test_attach_two_nics_rejected(two_hosts):
    sim, switch, (ma, ka, sa), _ = two_hosts
    # A second attach on the same stack must fail.
    with pytest.raises(SocketError):
        sa.attach_nic(ma.device("nic0"), switch)


# -- NFS -------------------------------------------------------------------------------

@pytest.fixture()
def nfs_world():
    sim = Simulator()
    rng = RandomStreams(23)
    switch = Switch(sim, rng=rng.stream("switch"))
    nas_m, nas_k, nas_s = make_host(sim, switch, "nas", rng)
    cli_m, cli_k, cli_s = make_host(sim, switch, "client", rng)
    server = NfsServer(nas_k, rng)
    server.start()
    client = HostNfsClient(cli_k, Address("nas", NFS_PORT))
    return sim, server, client, cli_m


def test_nfs_read_returns_requested_size(nfs_world):
    sim, server, client, _ = nfs_world
    out = {}

    def proc():
        out["n"] = yield from client.read("movie.mpg", 0, 1024)

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(0.2))
    assert out["n"] == 1024
    assert server.reads_served == 1


def test_nfs_write_then_bounded_read(nfs_world):
    sim, server, client, _ = nfs_world
    out = {}

    def proc():
        yield from client.write("rec.mpg", 0, 2048)
        out["full"] = yield from client.read("rec.mpg", 0, 4096)
        out["tail"] = yield from client.read("rec.mpg", 1024, 4096)

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(0.2))
    assert server.files["rec.mpg"] == 2048
    assert out["full"] == 2048
    assert out["tail"] == 1024


def test_nfs_read_takes_at_least_service_time(nfs_world):
    sim, server, client, _ = nfs_world
    done = {}

    def proc():
        start = sim.now
        yield from client.read("movie.mpg", 0, 1024)
        done["elapsed"] = sim.now - start

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(0.2))
    assert done["elapsed"] >= server.config.service_min_ns


def test_nfs_concurrent_requests_matched_correctly(nfs_world):
    sim, server, client, _ = nfs_world
    results = {}

    def reader(tag, size):
        results[tag] = yield from client.read(f"f-{tag}", 0, size)

    for i, size in enumerate([512, 1024, 2048, 4096]):
        sim.spawn(reader(i, size))
    sim.run(until=units.s_to_ns(0.5))
    assert results == {0: 512, 1: 1024, 2: 2048, 3: 4096}


def test_device_nfs_client_bypasses_host_cpu():
    sim = Simulator()
    rng = RandomStreams(31)
    switch = Switch(sim, rng=rng.stream("switch"))
    nas_m, nas_k, nas_s = make_host(sim, switch, "nas", rng)
    server = NfsServer(nas_k, rng)
    server.start()
    # A client machine whose kernel is never started: any host CPU use
    # would be visible as busy time.
    client_m = Machine(sim, MachineSpec(name="client"))
    disk = client_m.add_disk()
    port = DeviceNetPort(disk, switch, "client-disk")
    dev_client = DeviceNfsClient(port, Address("nas", NFS_PORT))
    out = {}

    def proc():
        yield from dev_client.write("stream", 0, 4096)
        out["n"] = yield from dev_client.read("stream", 0, 4096)

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(0.2))
    assert out["n"] == 4096
    assert client_m.cpu.total_busy == 0       # host untouched
    assert disk.cpu.total_busy > 0            # firmware did the work


def test_device_nfs_backs_smart_disk():
    sim = Simulator()
    rng = RandomStreams(37)
    switch = Switch(sim, rng=rng.stream("switch"))
    nas_m, nas_k, nas_s = make_host(sim, switch, "nas", rng)
    NfsServer(nas_k, rng).start()
    client_m = Machine(sim, MachineSpec(name="client"))
    disk = client_m.add_disk()
    port = DeviceNetPort(disk, switch, "client-disk")
    disk.attach_backing(DeviceNfsClient(port, Address("nas", NFS_PORT)))
    out = {}

    def proc():
        yield from disk.write_block(3, 4096)
        out["n"] = yield from disk.read_block(3, 4096)

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(0.2))
    assert out["n"] == 4096


# -- RemoteFile -----------------------------------------------------------------------

def test_remote_file_readahead_hides_rtt(nfs_world):
    sim, server, client, cli_m = nfs_world
    f = RemoteFile(client, "movie.mpg", window_bytes=64 * 1024,
                   chunk_bytes=8 * 1024)
    stall_free_reads = {}

    def proc():
        # First read warms the window (may stall)...
        yield from f.read(1024)
        yield sim.timeout(units.ms_to_ns(20))
        # ...after which sequential reads are served from the buffer.
        start_stalls = f.readahead_stalls
        for _ in range(16):
            yield from f.read(1024)
        stall_free_reads["stalls"] = f.readahead_stalls - start_stalls

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(1))
    assert stall_free_reads["stalls"] == 0


def test_remote_file_read_validation(nfs_world):
    sim, server, client, _ = nfs_world
    f = RemoteFile(client, "movie.mpg")
    from repro.errors import FileSystemError
    with pytest.raises(FileSystemError):
        next(f.read(0))
    with pytest.raises(FileSystemError):
        RemoteFile(client, "x", window_bytes=10, chunk_bytes=100)


def test_remote_file_append_is_write_behind(nfs_world):
    sim, server, client, _ = nfs_world
    f = RemoteFile(client, "rec.mpg")
    elapsed = {}

    def proc():
        start = sim.now
        for _ in range(5):
            yield from f.append(1024)
        elapsed["issue"] = sim.now - start

    sim.spawn(proc())
    sim.run(until=units.s_to_ns(0.5))
    # Appends return immediately (no NFS round trip on the caller's path)...
    assert elapsed["issue"] < units.ms_to_ns(1)
    # ...and the data eventually lands on the NAS.
    assert server.files.get("rec.mpg") == 5 * 1024
