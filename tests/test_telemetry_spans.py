"""Tests for the causal-span layer of repro.telemetry.

Covers the Span/SpanContext API (ids, parenting, sim-time stamps), the
per-process dynamic context used to parent bus spans under channel
spans, the trace.emit bridge, and — end to end — that one two-way proxy
call on a live runtime yields a single trace whose span tree covers
proxy -> marshal -> channel -> bus -> device -> reply.
"""

import pytest

from repro.core import (DeploymentSpec, HydraRuntime, InterfaceSpec,
                        MethodSpec, Offcode)
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator, Tracer
from repro.sim.trace import emit
from repro.telemetry import SpanContext, Telemetry

IDUMMY = InterfaceSpec.from_methods(
    "ITel", (MethodSpec("Nop", params=(), result="int"),))


class TelOffcode(Offcode):
    BINDNAME = "tel.Demo"
    INTERFACES = (IDUMMY,)

    def Nop(self):
        return 7


GUID = Guid(909)


# -- span primitives ------------------------------------------------------------


def test_begin_end_stamp_sim_time():
    sim = Simulator()
    tel = Telemetry.attach(sim)
    sim.run(until=1_000)
    span = tel.begin("op", "test", "track:a", detail=1)
    assert span.end_ns is None and span.duration_ns == 0
    assert span not in tel.spans          # open spans are not recorded
    sim.run(until=3_500)
    tel.end(span, ok=True)
    assert (span.start_ns, span.end_ns) == (1_000, 3_500)
    assert span.duration_ns == 2_500
    assert span.attrs == {"detail": 1, "ok": True}
    assert tel.spans == [span]
    hist = tel.registry.get("repro_span_duration_ns").labels(category="test")
    assert hist.count == 1 and hist.sum == 2_500


def test_parenting_and_trace_allocation():
    sim = Simulator()
    tel = Telemetry.attach(sim)
    root_a = tel.end(tel.begin("a", "t", "x"))
    root_b = tel.end(tel.begin("b", "t", "x"))
    # Each parentless begin roots a fresh trace.
    assert root_a.trace_id != root_b.trace_id
    assert root_a.parent_id is None
    # Parent accepts a Span or a bare SpanContext (a Call's trace_ctx).
    child = tel.end(tel.begin("c", "t", "x", parent=root_a))
    grand = tel.end(tel.begin("d", "t", "x", parent=child.context))
    assert child.trace_id == grand.trace_id == root_a.trace_id
    assert child.parent_id == root_a.span_id
    assert grand.parent_id == child.span_id
    assert tel.trace(root_a.trace_id) == [root_a, child, grand]
    assert tel.trace_categories()[root_b.trace_id] == {"t"}


def test_instants_and_caps():
    sim = Simulator()
    tel = Telemetry.attach(sim, max_spans=2, max_events=1)
    mark = tel.instant("boom", "fault", "faults", kind="crash")
    assert mark in tel.events and mark.time_ns == 0
    assert tel.instant("again", "fault", "faults") is None
    assert tel.dropped_events == 1
    for _ in range(3):
        tel.end(tel.begin("s", "t", "x"))
    assert len(tel.spans) == 2 and tel.dropped_spans == 1


def test_attach_detach_roundtrip():
    sim = Simulator()
    assert sim.telemetry is None          # disabled is the default
    tel = Telemetry.attach(sim)
    assert sim.telemetry is tel
    tel.detach()
    assert sim.telemetry is None
    tel.detach()                          # idempotent


# -- per-process dynamic context ---------------------------------------------------


def test_ctx_push_pop_nests():
    sim = Simulator()
    tel = Telemetry.attach(sim)
    outer, inner = SpanContext(1, 10), SpanContext(1, 11)
    assert tel.current_ctx() is None
    token_a = tel.push_ctx(outer)
    token_b = tel.push_ctx(inner)
    assert tel.current_ctx() is inner
    tel.pop_ctx(token_b)
    assert tel.current_ctx() is outer
    tel.pop_ctx(token_a)
    assert tel.current_ctx() is None


def test_ctx_is_keyed_per_process():
    """One process's pushed context must be invisible to another."""
    sim = Simulator()
    tel = Telemetry.attach(sim)
    seen = {}

    def pusher():
        token = tel.push_ctx(SpanContext(1, 10))
        yield sim.timeout(100)            # let the peer run in between
        seen["pusher_mid"] = tel.current_ctx()
        tel.pop_ctx(token)

    def peer():
        yield sim.timeout(50)             # runs while pusher's ctx is live
        seen["peer"] = tel.current_ctx()

    sim.spawn(pusher())
    done = sim.spawn(peer())
    sim.run_until_event(done)
    sim.run(until=200)
    assert seen["peer"] is None
    assert seen["pusher_mid"].span_id == 10


# -- the trace.emit bridge -----------------------------------------------------------


def test_emit_routes_through_telemetry_to_tracer():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer
    tel = Telemetry.attach(sim)
    emit(sim, "channel", "frame dropped", seq=4)
    # The legacy consumer still sees the record ...
    assert tracer.emitted == 1
    assert tracer.records[0].category == "channel"
    # ... and telemetry keeps it as an instant on a log track.
    assert len(tel.events) == 1
    event = tel.events[0]
    assert (event.name, event.track) == ("frame dropped", "log/channel")
    assert event.attrs == {"seq": 4}


def test_emit_with_telemetry_but_no_tracer():
    sim = Simulator()
    tel = Telemetry.attach(sim)
    emit(sim, "watchdog", "beat missed")   # must not raise
    assert tel.events[0].category == "watchdog"


# -- end to end: one call, one tree ---------------------------------------------------


@pytest.fixture()
def traced_call():
    sim = Simulator()
    tel = Telemetry.attach(sim)
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="tel.Demo", guid=GUID,
                      interfaces=[IDUMMY],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/t.odf", odf)
    runtime.depot.register(GUID, TelOffcode)
    out = {}

    def app():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/t.odf",)))
        out["v"] = yield from result.proxy.Nop()

    sim.run_until_event(sim.spawn(app()))
    assert out["v"] == 7
    return tel


def test_proxy_call_produces_full_offload_tree(traced_call):
    tel = traced_call
    full = [tid for tid, cats in tel.trace_categories().items()
            if {"proxy", "marshal", "channel", "bus", "device",
                "reply"} <= cats]
    assert len(full) == 1, "exactly one trace covers the whole path"
    spans = tel.trace(full[0])
    by_cat = {s.category: s for s in spans}
    root = by_cat["proxy"]
    assert root.parent_id is None
    assert root.name == "ITel.Nop"
    # Marshal, channel write, device execution and the reply all hang
    # off the invocation root (the Call carries its context).
    for cat in ("marshal", "channel", "device", "reply"):
        assert by_cat[cat].parent_id == root.span_id
    # Bus transfers parent under whichever segment pushed its context:
    # the request crossing under the channel write, the reply crossing
    # under the reply span.
    buses = [s for s in spans if s.category == "bus"]
    assert {s.parent_id for s in buses} == {by_cat["channel"].span_id,
                                            by_cat["reply"].span_id}
    # Causal timing: children start within their parent's window.
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        if span.parent_id is not None:
            assert span.start_ns >= by_id[span.parent_id].start_ns
            assert span.end_ns <= by_id[span.parent_id].end_ns


def test_tracing_adds_no_sim_events(traced_call):
    """Telemetry must observe the run, not perturb it: the same scenario
    with telemetry disabled processes the identical event count."""
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="tel.Demo", guid=GUID,
                      interfaces=[IDUMMY],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/t.odf", odf)
    runtime.depot.register(GUID, TelOffcode)

    def app():
        result = yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/t.odf",)))
        yield from result.proxy.Nop()

    sim.run_until_event(sim.spawn(app()))
    assert sim.events_processed == traced_call.sim.events_processed
    assert sim.now == traced_call.sim.now
