"""Tests for OOB management-event delivery (Section 3.2)."""

import pytest

from repro.core import (
    ChannelConfig,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
)
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator

IECHO = InterfaceSpec.from_methods(
    "IEcho", (MethodSpec("Echo", params=(("x", "int"),), result="int"),))


class EchoOffcode(Offcode):
    BINDNAME = "oob.Echo"
    INTERFACES = (IECHO,)

    def Echo(self, x):
        return x


GUID = Guid(4242)


@pytest.fixture()
def world():
    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="oob.Echo", guid=GUID, interfaces=[IECHO],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/echo.odf", odf)
    runtime.depot.register(GUID, EchoOffcode)
    return sim, machine, runtime


def deploy(sim, runtime):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode("/echo.odf")

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


def test_proxy_channel_announced_over_oob(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    sim.run(until=sim.now + 5_000_000)   # let the OOB notice arrive
    offcode = result.offcode
    kinds = [event[0] for event in offcode.management_events]
    assert "channel-attached" in kinds
    # The notice names the proxy channel.
    ids = [event[1] for event in offcode.management_events]
    assert result.channel.channel_id in ids


def test_extra_channel_also_announced(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    offcode = result.offcode
    channel = runtime.create_channel(
        ChannelConfig(label="extra-data"))
    runtime.connect_offcode(channel, offcode)
    sim.run(until=sim.now + 5_000_000)
    labels = [event[2] for event in offcode.management_events]
    assert "extra-data" in labels


def test_oob_notice_costs_show_up_on_the_bus(world):
    """The notice is real traffic: it crosses to the device over the
    OOB channel's DMA provider."""
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    oob = result.offcode.oob_channel
    sim.run(until=sim.now + 5_000_000)   # drain the deployment's notice
    before = oob.messages_sent
    channel = runtime.create_channel(ChannelConfig(label="x"))
    runtime.connect_offcode(channel, result.offcode)
    sim.run(until=sim.now + 5_000_000)
    assert oob.messages_sent == before + 1
    assert oob.bytes_sent >= 48


def test_oob_channel_itself_not_announced(world):
    """No chicken-and-egg: connecting the OOB channel produces no
    notice over itself."""
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    sim.run(until=sim.now + 5_000_000)
    announced = [event[1] for event in result.offcode.management_events]
    assert result.offcode.oob_channel.channel_id not in announced
