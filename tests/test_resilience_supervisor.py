"""Resilience tests: live migration, supervisor policy, jittered backoff.

The robustness PR's tentpole is ``HydraRuntime.migrate`` — a planned,
lossless cutover — plus the self-healing supervisor that uses it.
These tests drive each piece in the small world fixture (one machine,
two NICs, ``nic1`` standby): the migration verb itself (state carried,
proxies rebound, downtime measured), the watchdog's deduplicated
status-transition log, exactly-one-quarantine-per-flap-episode, the
holding gate's bounded queue, priority shedding, and the decorrelated
retransmit jitter's spread + determinism.
"""

import random

import pytest

from repro.errors import AdmissionShedError, MigrationError
from repro.core import (
    ChannelConfig,
    HydraRuntime,
    InterfaceSpec,
    MethodSpec,
    Offcode,
    RetransmitConfig,
    WatchdogConfig,
)
from repro.core.guid import Guid
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.core.offcode import OffcodeState
from repro.hw import DeviceClass, Machine
from repro.hw.nic import NicSpec
from repro.resilience import (
    AdmissionController,
    HoldingGate,
    SupervisorConfig,
)
from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry.adapters import check_channel_conservation

IWORK = InterfaceSpec.from_methods(
    "IWork", (MethodSpec("Poke", params=(), result="int"),))

WORKER_GUID = Guid(9101)


class WorkerOffcode(Offcode):
    BINDNAME = "res.Worker"
    INTERFACES = (IWORK,)

    def __init__(self, site):
        super().__init__(site)
        self.pokes = 0
        self.restored_state = None

    def Poke(self):
        self.pokes += 1
        return self.pokes

    def snapshot(self):
        return {"pokes": self.pokes}

    def restore(self, state):
        self.pokes = state["pokes"]
        self.restored_state = dict(state)


@pytest.fixture()
def world():
    sim = Simulator()
    sim.rng_streams = RandomStreams(7)
    machine = Machine(sim)
    machine.add_nic()
    machine.add_nic(NicSpec(name="nic1"))
    runtime = HydraRuntime(machine)
    runtime.standby_devices.add("nic1")
    doc = OdfDocument(
        bindname="res.Worker", guid=WORKER_GUID, interfaces=[IWORK],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        image_bytes=16 * 1024)
    runtime.library.register("/worker.odf", doc)
    runtime.depot.register(WORKER_GUID, WorkerOffcode)
    return sim, machine, runtime


def deploy(sim, runtime, path="/worker.odf"):
    out = {}

    def app():
        out["result"] = yield from runtime.create_offcode(path)

    sim.run_until_event(sim.spawn(app()))
    return out["result"]


def run_proc(sim, generator):
    out = {}

    def wrapper():
        out["value"] = yield from generator

    sim.run_until_event(sim.spawn(wrapper()))
    return out["value"]


# -- live migration -----------------------------------------------------------------


def test_standby_device_excluded_from_baseline_placement(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    assert result.offcode.location == "nic0"


def test_migrate_moves_state_and_rebinds_proxy(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    assert run_proc(sim, result.proxy.Poke()) == 1

    record = run_proc(sim, runtime.migrate("res.Worker", target="nic1"))
    assert record.completed and not record.failed
    assert record.destination == "nic1"
    assert record.source == "nic0"
    assert record.drained
    assert record.downtime_ns is not None and record.downtime_ns > 0
    assert runtime.migrations == [record]

    replacement = runtime.get_offcode("res.Worker")
    assert replacement is not result.offcode
    assert replacement.location == "nic1"
    assert replacement.state == OffcodeState.RUNNING
    # The checkpoint carried the call count across the cutover.
    assert record.restored
    assert replacement.pokes == 1

    # The original proxy was rebound to a fresh channel and the gate
    # cleared; calls flow again and land on the replacement.
    assert result.proxy.gate is None
    assert run_proc(sim, result.proxy.Poke()) == 2
    assert replacement.pokes == 2


def test_migrate_rejects_bad_targets(world):
    sim, machine, runtime = world
    deploy(sim, runtime)

    def attempt(target):
        def proc():
            yield from runtime.migrate("res.Worker", target=target)
        sim.spawn(proc())
        sim.run()

    with pytest.raises(MigrationError):
        attempt("nic0")          # already there
    with pytest.raises(MigrationError):
        attempt("bogus9")        # no such device
    # Failed validation never killed the offcode.
    assert runtime.get_offcode("res.Worker").state == OffcodeState.RUNNING


def test_migrate_requires_running_offcode(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.get_offcode("res.Worker").state = OffcodeState.STOPPED

    def proc():
        yield from runtime.migrate("res.Worker", target="nic1")

    sim.spawn(proc())
    with pytest.raises(MigrationError):
        sim.run()


def test_channel_conservation_holds_across_migration(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    channel = result.channel
    channel.retransmit_config = RetransmitConfig(timeout_ns=20_000,
                                                 jitter=0.5)
    rng = random.Random(5)
    channel.set_fault_filter(
        lambda message: "drop" if rng.random() < 0.2 else None)

    def pokes(proxy, count):
        for _ in range(count):
            yield from proxy.Poke()

    run_proc(sim, pokes(result.proxy, 10))
    record = run_proc(sim, runtime.migrate("res.Worker", target="nic1"))
    assert record.completed
    run_proc(sim, pokes(result.proxy, 10))
    # Migration moves accounting between channels, it never leaks it:
    # the noise-armed channel it closed still balances, and so does
    # every channel the rewire created.
    assert check_channel_conservation(runtime.executive) == []
    assert runtime.get_offcode("res.Worker").pokes == 20


# -- watchdog flap transitions -------------------------------------------------------


def _flap(sim, nic, cycles, stall_ns=3_500_000, gap_ns=8_000_000):
    """Stall/resume bursts shorter than the watchdog death threshold."""
    for _ in range(cycles):
        sim.run(until=sim.now + gap_ns)
        nic.health.stall()
        sim.run(until=sim.now + stall_ns)
        nic.health.resume()
    sim.run(until=sim.now + 15_000_000)


def test_watchdog_flap_transitions_monotone_and_deduplicated(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.start_watchdog(WatchdogConfig())
    _flap(sim, machine.device("nic0"), cycles=3)

    transitions = runtime.watchdog.transitions_of("nic0")
    assert transitions, "flapping produced no status transitions"
    times = [at for at, _ in transitions]
    assert times == sorted(times)
    statuses = [status for _, status in transitions]
    # Only changes are recorded: never two equal entries in a row, and
    # the steady initial "alive" is not logged — so every "alive" here
    # is a genuine recovery, one per stall.
    assert all(a != b for a, b in zip(statuses, statuses[1:]))
    assert statuses.count("alive") == 3
    assert "dead" not in statuses
    assert runtime.watchdog.status_of("nic0") == "alive"
    # Sub-threshold stalls are latency, not incidents.
    assert runtime.incidents == []
    # The untouched standby NIC never changed status.
    assert runtime.watchdog.transitions_of("nic1") == []


def test_supervisor_quarantines_exactly_once_per_episode(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.start_watchdog(WatchdogConfig())
    supervisor = runtime.start_supervisor(SupervisorConfig(
        drain=False, probation_ns=40_000_000))
    nic = machine.device("nic0")

    # Burst 1: three recoveries inside the flap window -> exactly one
    # quarantine decision, however many transitions the burst produced.
    _flap(sim, nic, cycles=3)
    assert supervisor.quarantines == 1
    assert "nic0" in runtime.quarantined_devices

    # Quiet probation (plus one relapse-extension, since the burst's
    # tail lands after the quarantine) returns the device to service.
    sim.run(until=sim.now + 150_000_000)
    assert supervisor.unquarantines == 1
    assert "nic0" not in runtime.quarantined_devices
    assert supervisor.quarantines == 1      # probation consumed the burst

    # A fresh burst is a fresh episode: one more decision, no more.
    _flap(sim, nic, cycles=3)
    assert supervisor.quarantines == 2
    actions = [d.action for d in supervisor.decisions]
    assert actions.count("quarantine") == 2
    assert actions.count("unquarantine") >= 1


def test_supervisor_drains_quarantined_device(world):
    sim, machine, runtime = world
    deploy(sim, runtime)
    runtime.start_watchdog(WatchdogConfig())
    supervisor = runtime.start_supervisor(SupervisorConfig(drain=True))
    _flap(sim, machine.device("nic0"), cycles=3)

    assert supervisor.quarantines == 1
    assert supervisor.drains_started == 1
    assert supervisor.drains_completed == 1
    assert supervisor.drains_failed == 0
    moved = runtime.get_offcode("res.Worker")
    assert moved.location != "nic0"
    assert moved.state == OffcodeState.RUNNING
    assert len(runtime.migrations) == 1
    assert runtime.migrations[0].completed


# -- holding gate and admission control ----------------------------------------------


def test_holding_gate_parks_sheds_and_releases():
    sim = Simulator()
    gate = HoldingGate(sim, capacity=4)
    gate.close()
    passed = []
    errors = []

    def waiter(i):
        try:
            yield from gate.wait()
        except AdmissionShedError as exc:
            errors.append((i, exc))
        else:
            passed.append(i)

    for i in range(6):
        sim.spawn(waiter(i))
    sim.run()
    assert passed == []
    assert [i for i, _ in errors] == [4, 5]   # overflow shed immediately
    assert gate.shed == 2 and gate.held_peak == 4

    gate.open()
    sim.run()
    assert sorted(passed) == [0, 1, 2, 3]
    assert gate.released == 4
    # Open gate: callers pass straight through.
    sim.spawn(waiter(99))
    sim.run()
    assert 99 in passed


def test_admission_controller_sheds_below_protected_priority():
    controller = AdmissionController(protect_priority=2)
    assert controller.admit(0) and controller.admit(1)
    controller.engage(now_ns=1_000)
    assert controller.engagements == 1
    assert controller.admit(2)               # protected class passes
    assert not controller.admit(1)
    assert not controller.admit(0)
    controller.engage(now_ns=2_000)          # idempotent
    assert controller.engagements == 1
    controller.disengage()
    assert controller.admit(1)
    assert controller.shed_by_priority == {0: 1, 1: 1}
    assert controller.shed_total == 2


def test_executive_sheds_calls_while_engaged(world):
    sim, machine, runtime = world
    result = deploy(sim, runtime)
    controller = AdmissionController(protect_priority=2)
    # set_admission stamps existing channels too, not just new ones.
    runtime.executive.set_admission(controller)
    controller.engage(now_ns=sim.now)

    def poke():
        yield from result.proxy.Poke()

    sim.spawn(poke())
    with pytest.raises(AdmissionShedError):
        sim.run()
    assert controller.shed_total == 1

    controller.disengage()
    assert run_proc(sim, result.proxy.Poke()) >= 1


# -- decorrelated retransmit jitter --------------------------------------------------


def _backoff_schedule(seed, jitter, attempts=8):
    sim = Simulator()
    sim.rng_streams = RandomStreams(seed)
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    config = (ChannelConfig.unicast().reliable().sequential().copied()
              .labeled("jitter"))
    channel = runtime.executive.create_channel(config, runtime.host_site)
    channel.retransmit_config = RetransmitConfig(timeout_ns=100_000,
                                                 jitter=jitter)
    channel.set_fault_filter(lambda message: None)   # arm the protocol
    return [channel._reliable_backoff_ns(attempt)
            for attempt in range(1, attempts + 1)]


def test_zero_jitter_keeps_legacy_schedule_byte_identical():
    legacy = [100_000, 200_000, 400_000, 800_000,
              1_600_000, 3_200_000, 5_000_000, 5_000_000]
    assert _backoff_schedule(seed=1, jitter=0.0) == legacy
    assert _backoff_schedule(seed=99, jitter=0.0) == legacy


def test_decorrelated_jitter_spreads_and_stays_deterministic():
    legacy = _backoff_schedule(seed=1, jitter=0.0)
    jittered = _backoff_schedule(seed=1, jitter=0.8)
    assert jittered != legacy
    # Genuine spread, not a constant offset — and always in bounds.
    assert len(set(jittered)) >= 5
    assert all(1 <= delay <= 5_000_000 for delay in jittered)
    # Deterministic: same seed reproduces the schedule exactly;
    # a different seed draws a different one.
    assert _backoff_schedule(seed=1, jitter=0.8) == jittered
    assert _backoff_schedule(seed=2, jitter=0.8) != jittered
