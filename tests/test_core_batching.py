"""Vectored call batching: watermarks, adaptive bypass, batch retry,
and the executive's provider-cost cache."""

import pytest

from repro.errors import (
    ChannelError,
    DeviceFailedError,
    RetryBudgetExceededError,
)
from repro.core import marshal
from repro.core.call import Call, CallBatch, CallPolicy
from repro.core.channel import BatchConfig, ChannelConfig
from repro.core.executive import ChannelBatcher, ChannelExecutive
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.memory import MemoryManager
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.core.offcode import Offcode
from repro.core.providers import (
    DmaChannelProvider,
    LoopbackProvider,
    PeerDmaProvider,
)
from repro.core.runtime import DeploymentSpec, HydraRuntime
from repro.core.sites import DeviceSite, HostSite
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator


class World:
    """Host + NIC + GPU with an executive carrying every provider."""

    def __init__(self):
        self.sim = Simulator()
        self.machine = Machine(self.sim)
        self.nic = self.machine.add_nic()
        self.gpu = self.machine.add_gpu()
        self.host_site = HostSite(self.machine)
        self.nic_site = DeviceSite(self.nic)
        self.gpu_site = DeviceSite(self.gpu)
        self.memory = MemoryManager(self.machine)
        self.executive = ChannelExecutive()
        self.executive.register_provider(LoopbackProvider(self.machine))
        self.executive.register_provider(PeerDmaProvider(self.machine))
        for device in (self.nic, self.gpu):
            self.executive.register_provider(
                DmaChannelProvider(self.machine, device, self.memory))

    def batched_channel(self, batch, policy=None):
        config = (ChannelConfig.unicast().reliable().sequential()
                  .zero_copy().batched(max_bytes=batch.max_bytes,
                                       max_calls=batch.max_calls,
                                       deadline_ns=batch.deadline_ns,
                                       adaptive=batch.adaptive))
        channel = self.executive.create_channel(config, self.nic_site)
        self.executive.connect_site(channel, self.gpu_site)
        if policy is not None:
            channel.batcher = ChannelBatcher(channel, self.sim,
                                             config.batch, policy=policy)
        return channel

    def drive(self, generator):
        event = self.sim.spawn(generator)
        self.sim.run()
        return event


@pytest.fixture()
def world():
    return World()


class FlakyProvider:
    """Delegates to a real provider after ``failures`` injected faults."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures
        self.vectored_attempts = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def transfer_vectored(self, channel, source, destinations, batch):
        self.vectored_attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise DeviceFailedError("injected vectored fault")
            yield  # unreachable: marks this function as a generator
        yield from self.inner.transfer_vectored(
            channel, source, destinations, batch)


# -- CallBatch basics ---------------------------------------------------------------

def test_call_batch_accounts_sizes_and_entries():
    batch = CallBatch()
    batch.add("a", 100, now_ns=0)
    batch.add("b", 50, now_ns=5)
    assert batch.count == 2
    assert batch.payload_bytes == 150
    assert batch.size_bytes == (CallBatch.HEADER_BYTES + 150
                                + 2 * CallBatch.PER_ENTRY_BYTES)
    assert batch.oldest_enqueued_at_ns == 0
    assert batch.entry_sizes() == [100, 50]


def test_call_batch_rejects_two_way_calls():
    from repro.core.call import ReturnDescriptor
    from repro.core.guid import guid_from_name
    descriptor = ReturnDescriptor(Simulator())
    call = Call(guid_from_name("IThing"), "Get", b"[]",
                return_descriptor=descriptor)
    assert not call.one_way
    with pytest.raises(ChannelError):
        CallBatch().add(call, call.size_bytes, now_ns=0)


def test_call_batch_drop_expired_keeps_fresh_entries():
    batch = CallBatch()
    batch.add("stale", 10, now_ns=0, deadline_at_ns=100)
    batch.add("fresh", 10, now_ns=0, deadline_at_ns=10_000)
    dropped = batch.drop_expired(now_ns=500)
    assert [e.payload for e in dropped] == ["stale"]
    assert [e.payload for e in batch] == ["fresh"]


def test_drop_expired_delivers_deadline_error_to_waiter():
    from repro.core.call import BatchEntry, ReturnDescriptor
    from repro.core.guid import guid_from_name
    from repro.errors import OffloadTimeoutError

    sim = Simulator()
    descriptor = ReturnDescriptor(sim)
    call = Call(guid_from_name("IThing"), "Get", b"[]",
                return_descriptor=descriptor)
    # add() rejects two-way calls, but drop_expired defends against a
    # descriptor-bearing payload anyway — its waiter must get a deadline
    # exception, never a silent hang.
    batch = CallBatch()
    batch.entries.append(BatchEntry(payload=call, size_bytes=call.size_bytes,
                                    enqueued_at_ns=0, deadline_at_ns=100))
    out = {}

    def waiter():
        try:
            yield descriptor.event
        except OffloadTimeoutError as exc:
            out["exc"] = exc

    process = sim.spawn(waiter())
    sim.run(until=10)
    dropped = batch.drop_expired(now_ns=500)
    sim.run_until_event(process)
    assert [e.payload for e in dropped] == [call]
    assert batch.count == 0
    assert descriptor.delivered
    assert "deadline passed before flush" in str(out["exc"])
    # A second expiry sweep must not re-fire the one-shot descriptor.
    assert batch.drop_expired(now_ns=1000) == []


# -- flush watermarks ---------------------------------------------------------------

def test_count_watermark_flushes_inline(world):
    channel = world.batched_channel(
        BatchConfig(max_calls=4, adaptive=False))
    source = channel.creator_endpoint

    def writer():
        for seq in range(4):
            yield from source.write(("m", seq), 64)

    world.drive(writer())
    stats = channel.batcher.stats()
    assert stats.flushed_on_count == 1
    assert stats.coalesced == 4
    assert channel.batches_sent == 1
    assert channel.messages_sent == 4
    sink = next(e for e in channel.endpoints if e is not source)
    assert sink.messages_in == 4


def test_bytes_watermark_flushes_inline(world):
    channel = world.batched_channel(
        BatchConfig(max_bytes=256, max_calls=1000, adaptive=False))
    source = channel.creator_endpoint

    def writer():
        for seq in range(3):
            yield from source.write(("m", seq), 128)

    world.drive(writer())
    stats = channel.batcher.stats()
    assert stats.flushed_on_bytes == 1
    # The third write opened a fresh batch that never reached a
    # watermark; drive() runs the queue dry, so its deadline flushed it
    # as a second (single-entry) batch.
    assert stats.flushed_on_deadline == 1
    assert channel.batches_sent == 2
    assert channel.messages_sent == 3


def test_deadline_watermark_flushes_stragglers(world):
    channel = world.batched_channel(
        BatchConfig(max_calls=100, deadline_ns=50_000, adaptive=False))
    source = channel.creator_endpoint

    def writer():
        yield from source.write("only", 64)

    world.drive(writer())
    stats = channel.batcher.stats()
    assert stats.flushed_on_deadline == 1
    assert stats.flushed_on_count == stats.flushed_on_bytes == 0
    assert channel.messages_sent == 1
    # The flush happened at (not before) the deadline.
    assert world.sim.now >= 50_000


def test_flush_all_quiesces_pending_batches(world):
    channel = world.batched_channel(
        BatchConfig(max_calls=100, deadline_ns=10**9, adaptive=False))
    source = channel.creator_endpoint

    def writer():
        yield from source.write("a", 64)
        yield from source.write("b", 64)
        assert channel.batcher.pending_entries == 2
        yield from channel.batcher.flush_all()
        assert channel.batcher.pending_entries == 0

    world.drive(writer())
    assert channel.messages_sent == 2


# -- adaptive bypass ----------------------------------------------------------------

def test_adaptive_bypass_for_paced_traffic(world):
    channel = world.batched_channel(BatchConfig())   # adaptive by default
    source = channel.creator_endpoint

    def writer():
        for seq in range(10):
            yield from source.write(("m", seq), 188)
            yield world.sim.timeout(100_000)  # far too slow to fill a batch

    world.drive(writer())
    stats = channel.batcher.stats()
    assert stats.bypassed == 10
    assert stats.coalesced == 0
    assert channel.batches_sent == 0
    assert channel.messages_sent == 10        # classic per-message path


def test_adaptive_batcher_engages_for_bursts(world):
    channel = world.batched_channel(BatchConfig(max_calls=8))
    source = channel.creator_endpoint

    def writer():
        for seq in range(33):                 # back-to-back burst
            yield from source.write(("m", seq), 188)
        yield from channel.batcher.flush_all()

    world.drive(writer())
    stats = channel.batcher.stats()
    assert stats.bypassed == 1                # only the history-less first
    assert stats.coalesced == 32
    assert channel.batches_sent >= 4
    assert channel.messages_sent == 33


# -- batch retry as a unit -----------------------------------------------------------

def _policy(**overrides):
    defaults = dict(deadline_ns=10**9, max_attempts=3,
                    backoff_base_ns=10_000, jitter_frac=0.0)
    defaults.update(overrides)
    return CallPolicy(**defaults)


def test_failed_batch_retries_as_a_unit(world):
    channel = world.batched_channel(
        BatchConfig(max_calls=4, adaptive=False), policy=_policy())
    flaky = FlakyProvider(channel.provider, failures=1)
    channel.provider = flaky
    source = channel.creator_endpoint

    def writer():
        for seq in range(4):
            yield from source.write(("m", seq), 64)

    before = marshal.stats.encodes
    world.drive(writer())
    assert flaky.vectored_attempts == 2       # one failure + one success
    assert channel.batches_sent == 1          # the batch moved whole
    assert channel.messages_sent == 4
    assert channel.drops == 0
    # The replayed batch re-sends the entries' cached bytes; nothing is
    # re-marshalled on the retry path.
    assert marshal.stats.encodes == before


def test_batch_retry_budget_exhaustion_charges_drops(world):
    channel = world.batched_channel(
        BatchConfig(max_calls=2, adaptive=False),
        policy=_policy(max_attempts=2))
    flaky = FlakyProvider(channel.provider, failures=99)
    channel.provider = flaky
    source = channel.creator_endpoint
    failures = []

    def writer():
        try:
            yield from source.write("a", 64)
            yield from source.write("b", 64)   # trips the count watermark
        except RetryBudgetExceededError as exc:
            failures.append(exc)

    world.drive(writer())
    assert len(failures) == 1
    assert flaky.vectored_attempts == 2
    assert channel.drops == 2
    assert channel.messages_sent == 0


def test_expired_entries_are_dropped_before_retry(world):
    # Deadline shorter than the backoff: the retry finds every entry
    # stale and delivers nothing, without burning more attempts.
    channel = world.batched_channel(
        BatchConfig(max_calls=2, adaptive=False),
        policy=_policy(deadline_ns=1_000, backoff_base_ns=50_000))
    flaky = FlakyProvider(channel.provider, failures=1)
    channel.provider = flaky
    source = channel.creator_endpoint

    def writer():
        yield from source.write("a", 64)
        yield from source.write("b", 64)

    world.drive(writer())
    assert flaky.vectored_attempts == 1       # retry had nothing to send
    assert channel.batcher.stats().expired == 2
    assert channel.messages_sent == 0


# -- vectored transfer accounting ----------------------------------------------------

def test_vectored_flush_is_one_scatter_gather_transaction(world):
    world.machine.bus.record_log = True
    channel = world.batched_channel(
        BatchConfig(max_calls=16, adaptive=False))
    source = channel.creator_endpoint

    def writer():
        for seq in range(16):
            yield from source.write(("m", seq), 188)

    world.drive(writer())
    assert channel.batches_sent == 1
    assert len(world.machine.bus.transfers) == 1
    assert world.machine.bus.sg_transfers == 1
    assert world.machine.bus.sg_entries == 16


# -- the provider-cost cache ---------------------------------------------------------

def test_cost_cache_hits_on_repeat_selection(world):
    config = ChannelConfig.unicast()
    first = world.executive.select_provider(world.nic_site,
                                            world.gpu_site, config)
    again = world.executive.select_provider(world.nic_site,
                                            world.gpu_site, config)
    assert first is again
    assert world.executive.cost_cache_hits == 1
    assert world.executive.cost_cache_misses == 1


def test_registering_a_provider_invalidates_the_cache(world):
    config = ChannelConfig.unicast()
    world.executive.select_provider(world.nic_site, world.gpu_site, config)
    epoch = world.executive.layout_epoch
    world.executive.register_provider(LoopbackProvider(Machine(world.sim)))
    assert world.executive.layout_epoch == epoch + 1
    world.executive.select_provider(world.nic_site, world.gpu_site, config)
    assert world.executive.cost_cache_misses == 2
    assert world.executive.cost_cache_hits == 0


def test_layout_resolve_invalidates_the_cost_cache():
    """A deployment re-solves the layout; cached rankings must retire."""
    interface = InterfaceSpec.from_methods(
        "INull", (MethodSpec("Ping", result="int"),))

    class NullOffcode(Offcode):
        BINDNAME = "test.Null"
        INTERFACES = (interface,)

        def Ping(self):
            return 1

    sim = Simulator()
    machine = Machine(sim)
    machine.add_nic()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(bindname="test.Null",
                      guid=NullOffcode(runtime.host_site).guid,
                      interfaces=[interface],
                      targets=[DeviceClassFilter(DeviceClass.NETWORK)])
    runtime.library.register("/offcodes/null.odf", odf)
    runtime.depot.register(odf.guid, NullOffcode)

    # Prime the memo, then deploy: the re-solve bumps the epoch.
    runtime.executive.select_provider(
        runtime.host_site, runtime.device_runtime("nic0").site,
        ChannelConfig.unicast())
    epoch = runtime.executive.layout_epoch
    assert len(runtime.executive._cost_cache) == 1

    def app():
        yield from runtime.deploy(
            DeploymentSpec(odf_paths=("/offcodes/null.odf",)))

    sim.run_until_event(sim.spawn(app()))
    assert runtime.executive.layout_epoch > epoch
