"""The sharded fleet runner: determinism, conservation, merged artifacts.

The satellite contract this file pins: ``shards=4, workers=4`` is
point-identical to ``shards=4, workers=1`` (byte-identical canonical
reports), and re-partitioning the same population into different shard
counts preserves the aggregate conservation totals exactly.
"""

import json
import os

import pytest

from repro.errors import ReproError
from repro.evaluation.fleet import (
    FleetConfig,
    lpt_makespan,
    partition,
    run_fleet,
    shard_seed,
)
from repro.sim.rng import RandomStreams
from repro.tivopc.population import PopulationConfig

# Small populations keep each test under a second; the chunk tier makes
# even 64 subscribers cheap.
_POP = PopulationConfig(clients=64, seconds=1.0, loss_rate=0.02,
                        fleet_seed=5)


# -- partitioning and seeds ---------------------------------------------------


def test_partition_covers_every_client_once():
    slices = partition(10, 3)
    assert [list(r) for r in slices] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
    assert sum(len(r) for r in partition(64, 7)) == 64


def test_partition_rejects_bad_shapes():
    with pytest.raises(ReproError):
        partition(4, 5)
    with pytest.raises(ReproError):
        partition(4, 0)


def test_shard_seed_is_the_blessed_derivation():
    assert shard_seed(5, 2) == RandomStreams(5).derive("shard:2")
    assert shard_seed(5, 2) != shard_seed(5, 3)
    assert shard_seed(5, 2) != shard_seed(6, 2)


def test_fleet_config_validation():
    with pytest.raises(ReproError):
        FleetConfig(population=PopulationConfig(clients=2), shards=3)
    with pytest.raises(ReproError):
        FleetConfig(shards=0)


def test_lpt_makespan():
    assert lpt_makespan([4.0, 3.0, 2.0, 1.0], 2) == 5.0
    assert lpt_makespan([1.0] * 8, 4) == 2.0
    assert lpt_makespan([], 3) == 0.0
    with pytest.raises(ReproError):
        lpt_makespan([1.0], 0)


# -- determinism --------------------------------------------------------------


def test_fleet_multi_worker_point_identical_to_sequential():
    sequential = run_fleet(FleetConfig(population=_POP, shards=4,
                                       workers=1))
    parallel = run_fleet(FleetConfig(population=_POP, shards=4,
                                     workers=4))
    assert sequential.ok and parallel.ok
    assert sequential.canonical_json() == parallel.canonical_json()


def test_repartition_preserves_aggregate_totals():
    totals = [run_fleet(FleetConfig(population=_POP, shards=shards,
                                    workers=2)).totals
              for shards in (1, 4, 7)]
    assert totals[0] == totals[1] == totals[2]


def test_canonical_report_excludes_wall_clock():
    report = run_fleet(FleetConfig(population=_POP, shards=2, workers=1))
    dump = report.canonical_json()
    assert "wall_s" not in dump
    artifact = report.artifact()
    assert artifact["timing"]["wall_s"] > 0
    assert len(artifact["timing"]["shard_walls_s"]) == 2


# -- conservation and the merged snapshot -------------------------------------


def test_fleet_conservation_and_exact_sums():
    report = run_fleet(FleetConfig(population=_POP, shards=4, workers=1))
    assert report.ok, report.violations
    assert report.totals["chunks_lost"] > 0        # loss exercised
    assert report.totals["chunks_sent"] == (
        report.totals["chunks_delivered"] + report.totals["chunks_lost"])
    # Merged snapshot agrees with the report exactly.
    by_state = {s["labels"]["state"]: s["value"]
                for s in report.snapshot["fleet_chunks_total"]["samples"]}
    assert by_state["sent"] == report.totals["chunks_sent"]
    # Per-shard samples survive the merge verbatim.
    shard_samples = report.snapshot["fleet_shard_chunks_total"]["samples"]
    assert len(shard_samples) == 4 * 3             # 4 shards x 3 states
    assert report.snapshot["fleet_subscribers_total"]["samples"][0][
        "value"] == 64


def test_fleet_qoe_percentiles_are_ordered():
    report = run_fleet(FleetConfig(population=_POP, shards=2, workers=1))
    for summary in report.qoe.values():
        assert summary["p50"] <= summary["p90"] <= summary["p99"] \
            <= summary["max"]
    # ~5 ms pacing: the mean inter-arrival gap must sit right on it.
    assert report.qoe["mean_gap_ms"]["p50"] == pytest.approx(5.0, rel=0.1)


def test_fleet_detailed_fidelity_small_population():
    """The detailed tier rides the same fleet plumbing, conservation
    checks included (channel accounting comes from the runtimes)."""
    population = PopulationConfig(clients=2, seconds=1.0,
                                  fidelity="detailed", fleet_seed=0)
    report = run_fleet(FleetConfig(population=population, shards=2,
                                   workers=1))
    assert report.ok, report.violations
    assert report.totals["chunks_delivered"] > 0


# -- artifacts ----------------------------------------------------------------


def test_fleet_writes_per_shard_and_merged_artifacts(tmp_path):
    out = str(tmp_path / "fleet")
    report = run_fleet(FleetConfig(population=_POP, shards=3, workers=1),
                       artifacts_dir=out)
    names = sorted(os.listdir(out))
    assert names == ["fleet.json", "shard-0.json", "shard-1.json",
                     "shard-2.json"]
    fleet = json.loads((tmp_path / "fleet" / "fleet.json").read_text())
    assert fleet["totals"] == report.totals
    shard0 = json.loads((tmp_path / "fleet" / "shard-0.json").read_text())
    assert shard0["seed"] == shard_seed(_POP.fleet_seed, 0)
    assert shard0["totals"] == report.shards[0].totals
    assert "snapshot" in shard0
