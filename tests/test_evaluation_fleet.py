"""The sharded fleet runner: determinism, conservation, merged artifacts.

The satellite contract this file pins: ``shards=4, workers=4`` is
point-identical to ``shards=4, workers=1`` (byte-identical canonical
reports), and re-partitioning the same population into different shard
counts preserves the aggregate conservation totals exactly.
"""

import json
import os

import pytest

from repro.errors import ReproError
from repro.evaluation.fleet import (
    FleetConfig,
    config_fingerprint,
    lpt_makespan,
    partition,
    run_fleet,
    shard_seed,
)
from repro.evaluation.supervised import SupervisionPolicy
from repro.faults.fleet import FleetChaos
from repro.sim.rng import RandomStreams
from repro.tivopc.population import PopulationConfig

# Small populations keep each test under a second; the chunk tier makes
# even 64 subscribers cheap.
_POP = PopulationConfig(clients=64, seconds=1.0, loss_rate=0.02,
                        fleet_seed=5)


# -- partitioning and seeds ---------------------------------------------------


def test_partition_covers_every_client_once():
    slices = partition(10, 3)
    assert [list(r) for r in slices] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
    assert sum(len(r) for r in partition(64, 7)) == 64


def test_partition_rejects_bad_shapes():
    with pytest.raises(ReproError):
        partition(4, 5)
    with pytest.raises(ReproError):
        partition(4, 0)


def test_shard_seed_is_the_blessed_derivation():
    assert shard_seed(5, 2) == RandomStreams(5).derive("shard:2")
    assert shard_seed(5, 2) != shard_seed(5, 3)
    assert shard_seed(5, 2) != shard_seed(6, 2)


def test_fleet_config_validation():
    with pytest.raises(ReproError):
        FleetConfig(population=PopulationConfig(clients=2), shards=3)
    with pytest.raises(ReproError):
        FleetConfig(shards=0)


def test_lpt_makespan():
    assert lpt_makespan([4.0, 3.0, 2.0, 1.0], 2) == 5.0
    assert lpt_makespan([1.0] * 8, 4) == 2.0
    assert lpt_makespan([], 3) == 0.0
    with pytest.raises(ReproError):
        lpt_makespan([1.0], 0)


# -- determinism --------------------------------------------------------------


def test_fleet_multi_worker_point_identical_to_sequential():
    sequential = run_fleet(FleetConfig(population=_POP, shards=4,
                                       workers=1))
    parallel = run_fleet(FleetConfig(population=_POP, shards=4,
                                     workers=4))
    assert sequential.ok and parallel.ok
    assert sequential.canonical_json() == parallel.canonical_json()


def test_repartition_preserves_aggregate_totals():
    totals = [run_fleet(FleetConfig(population=_POP, shards=shards,
                                    workers=2)).totals
              for shards in (1, 4, 7)]
    assert totals[0] == totals[1] == totals[2]


def test_canonical_report_excludes_wall_clock():
    report = run_fleet(FleetConfig(population=_POP, shards=2, workers=1))
    dump = report.canonical_json()
    assert "wall_s" not in dump
    artifact = report.artifact()
    assert artifact["timing"]["wall_s"] > 0
    assert len(artifact["timing"]["shard_walls_s"]) == 2


# -- conservation and the merged snapshot -------------------------------------


def test_fleet_conservation_and_exact_sums():
    report = run_fleet(FleetConfig(population=_POP, shards=4, workers=1))
    assert report.ok, report.violations
    assert report.totals["chunks_lost"] > 0        # loss exercised
    assert report.totals["chunks_sent"] == (
        report.totals["chunks_delivered"] + report.totals["chunks_lost"])
    # Merged snapshot agrees with the report exactly.
    by_state = {s["labels"]["state"]: s["value"]
                for s in report.snapshot["fleet_chunks_total"]["samples"]}
    assert by_state["sent"] == report.totals["chunks_sent"]
    # Per-shard samples survive the merge verbatim.
    shard_samples = report.snapshot["fleet_shard_chunks_total"]["samples"]
    assert len(shard_samples) == 4 * 3             # 4 shards x 3 states
    assert report.snapshot["fleet_subscribers_total"]["samples"][0][
        "value"] == 64


def test_fleet_qoe_percentiles_are_ordered():
    report = run_fleet(FleetConfig(population=_POP, shards=2, workers=1))
    for summary in report.qoe.values():
        assert summary["p50"] <= summary["p90"] <= summary["p99"] \
            <= summary["max"]
    # ~5 ms pacing: the mean inter-arrival gap must sit right on it.
    assert report.qoe["mean_gap_ms"]["p50"] == pytest.approx(5.0, rel=0.1)


def test_fleet_detailed_fidelity_small_population():
    """The detailed tier rides the same fleet plumbing, conservation
    checks included (channel accounting comes from the runtimes)."""
    population = PopulationConfig(clients=2, seconds=1.0,
                                  fidelity="detailed", fleet_seed=0)
    report = run_fleet(FleetConfig(population=population, shards=2,
                                   workers=1))
    assert report.ok, report.violations
    assert report.totals["chunks_delivered"] > 0


# -- artifacts ----------------------------------------------------------------


def test_fleet_writes_per_shard_and_merged_artifacts(tmp_path):
    out = str(tmp_path / "fleet")
    config = FleetConfig(population=_POP, shards=3, workers=1)
    report = run_fleet(config, artifacts_dir=out)
    names = sorted(os.listdir(out))
    assert names == ["fleet.canonical.json", "fleet.json", "shard-0.json",
                     "shard-1.json", "shard-2.json"]
    fleet = json.loads((tmp_path / "fleet" / "fleet.json").read_text())
    assert fleet["totals"] == report.totals
    assert fleet["supervision"]["retries"] == 0
    shard0 = json.loads((tmp_path / "fleet" / "shard-0.json").read_text())
    assert shard0["seed"] == shard_seed(_POP.fleet_seed, 0)
    assert shard0["totals"] == report.shards[0].totals
    assert "snapshot" in shard0
    assert shard0["fingerprint"] == config_fingerprint(config)
    canonical = (tmp_path / "fleet" / "fleet.canonical.json").read_text()
    assert canonical == report.canonical_json() + "\n"
    assert "wall_s" not in canonical


# -- supervised dispatch: chaos, resume, degradation --------------------------

_FAST = SupervisionPolicy(backoff_base_s=0.01, backoff_cap_s=0.05,
                          hedge_after_s=0.05, poll_s=0.01)


def _fleet(shards=4, workers=1, policy=_FAST, **kwargs):
    return run_fleet(FleetConfig(population=_POP, shards=shards,
                                 workers=workers, supervision=policy),
                     **kwargs)


def test_chaos_worker_kill_is_invisible_in_the_canonical_report():
    baseline = _fleet(workers=1)
    killed = _fleet(workers=2, chaos=FleetChaos(kills=((1, 0),)))
    assert killed.canonical_json() == baseline.canonical_json()
    assert killed.supervision["worker_deaths"] == 1
    assert killed.supervision["retries"] == 1
    assert not killed.degraded


def test_chaos_stall_is_reaped_by_timeout_and_retried():
    baseline = _fleet(workers=1)
    policy = SupervisionPolicy(backoff_base_s=0.01, backoff_cap_s=0.05,
                               shard_timeout_s=1.0, hedge=False,
                               poll_s=0.01)
    stalled = _fleet(workers=2, policy=policy,
                     chaos=FleetChaos(stalls=((0, 0, 30.0),)))
    assert stalled.canonical_json() == baseline.canonical_json()
    assert stalled.supervision["timeouts"] == 1
    assert stalled.supervision["retries"] == 1
    assert stalled.supervision["workers_replaced"] == 1


def test_chaos_slow_straggler_is_hedged_first_result_wins():
    baseline = _fleet(workers=1)
    hedged = _fleet(workers=3, chaos=FleetChaos(slows=((3, 0, 1.5),)))
    assert hedged.canonical_json() == baseline.canonical_json()
    assert hedged.supervision["hedges"] >= 1


def test_in_process_chaos_kill_retries_without_multiprocessing():
    baseline = _fleet(workers=1)
    killed = _fleet(workers=1, chaos=FleetChaos(kills=((2, 0),)))
    assert killed.canonical_json() == baseline.canonical_json()
    assert killed.supervision["retries"] == 1


def test_retry_exhaustion_degrades_with_exact_accounting():
    policy = SupervisionPolicy(max_retries=1, backoff_base_s=0.0,
                               backoff_cap_s=0.0, poll_s=0.01)
    report = _fleet(workers=2, policy=policy,
                    chaos=FleetChaos.poison(2, max_retries=1))
    assert report.degraded and not report.complete
    assert report.missing_shards == [2]
    assert report.supervision["quarantined"] == 1
    assert len(report.supervision["quarantine_reasons"]) == 1
    # Conservation still holds over the shards that completed.
    assert report.ok, report.violations
    assert report.totals["chunks_sent"] == (
        report.totals["chunks_delivered"] + report.totals["chunks_lost"])
    # The missing shard contributes nothing, so totals differ from a
    # full run by exactly that shard's chunks and clients.
    full = _fleet(workers=1)
    missing_shard = [s for s in full.shards if s.shard_id == 2][0]
    assert sum(s.clients for s in report.shards) == (
        _POP.clients - missing_shard.clients)
    assert report.totals["chunks_sent"] == (
        full.totals["chunks_sent"] - missing_shard.totals["chunks_sent"])


def test_degraded_canonical_round_trips():
    policy = SupervisionPolicy(max_retries=0, backoff_base_s=0.0,
                               backoff_cap_s=0.0)
    report = _fleet(workers=1, policy=policy,
                    chaos=FleetChaos.poison(1, max_retries=0))
    revived = json.loads(report.canonical_json())
    assert revived["degraded"] is True
    assert revived["missing_shards"] == [1]
    assert "supervision" not in revived       # artifact-only block
    artifact = report.artifact()
    assert artifact["supervision"]["quarantined"] == 1
    snapshot = artifact["supervision"]["snapshot"]
    assert snapshot["repro_fleet_shard_quarantined_total"]["samples"][0][
        "value"] == 1


def test_resume_skips_completed_shards_and_matches_baseline(tmp_path):
    out = str(tmp_path / "fleet")
    baseline = _fleet(workers=1, artifacts_dir=out)
    os.remove(os.path.join(out, "shard-2.json"))
    resumed = _fleet(workers=1, resume_dir=out)
    assert resumed.canonical_json() == baseline.canonical_json()
    assert resumed.supervision["resumed"] == 3
    assert resumed.supervision["resumed_shards"] == [0, 1, 3]
    counters = resumed.supervision["snapshot"]
    assert counters["repro_fleet_shard_resumed_total"]["samples"][0][
        "value"] == 3


def test_resume_rejects_foreign_fingerprint(tmp_path):
    out = str(tmp_path / "fleet")
    _fleet(workers=1, artifacts_dir=out)
    other = PopulationConfig(clients=64, seconds=1.0, loss_rate=0.02,
                             fleet_seed=6)       # different fleet seed
    with pytest.raises(ReproError, match="fingerprint"):
        run_fleet(FleetConfig(population=other, shards=4, workers=1,
                              supervision=_FAST), resume_dir=out)


def test_resume_rejects_truncated_artifact(tmp_path):
    out = tmp_path / "fleet"
    config = FleetConfig(population=_POP, shards=2, workers=1,
                         supervision=_FAST)
    run_fleet(config, artifacts_dir=str(out))
    data = json.loads((out / "shard-0.json").read_text())
    del data["gids"]                             # pre-resume-era artifact
    (out / "shard-0.json").write_text(json.dumps(data))
    with pytest.raises(ReproError, match="missing"):
        run_fleet(config, resume_dir=str(out))


def test_shard_seed_collision_guard(monkeypatch):
    from repro.evaluation import fleet as fleet_mod
    monkeypatch.setattr(fleet_mod, "shard_seed",
                        lambda fleet_seed, shard_id: 42)
    with pytest.raises(ReproError, match=r"shards \[0, 1, 2, 3\] all "
                                         r"derive seed 42"):
        _fleet(workers=1)


def test_config_fingerprint_covers_the_inputs_that_matter():
    base = FleetConfig(population=_POP, shards=4)
    same = FleetConfig(population=_POP, shards=4, workers=2,
                       supervision=SupervisionPolicy(max_retries=5))
    # Workers and supervision shape the *run*, not the numbers.
    assert config_fingerprint(base) == config_fingerprint(same)
    for other in (
            FleetConfig(population=_POP, shards=5),
            FleetConfig(population=PopulationConfig(
                clients=64, seconds=1.0, loss_rate=0.02, fleet_seed=6),
                shards=4),
            FleetConfig(population=PopulationConfig(
                clients=64, seconds=1.0, loss_rate=0.03, fleet_seed=5),
                shards=4)):
        assert config_fingerprint(base) != config_fingerprint(other)
