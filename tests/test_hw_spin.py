"""Tests for the sPIN NIC device model: handler chains and budgets."""

import pytest

from repro.errors import DeviceError
from repro.hw import Machine, NicSpec
from repro.hw.spin import (
    DEFAULT_BUDGET_NS,
    DROP,
    SPIN_FEATURE,
    TO_HOST,
    SpinHandlers,
    SpinNic,
    SpinNicSpec,
)
from repro.net.packet import Address, Packet
from repro.sim import Simulator


class World:
    def __init__(self):
        self.sim = Simulator()
        self.machine = Machine(self.sim)
        self.nic = self.machine.add_spin_nic()
        self.calls = []

    def handlers(self, header=None, payload=None, completion=None,
                 **costs):
        """Handlers that record their invocations in ``self.calls``."""

        def make(name, verdict_fn):
            def handler(packet):
                self.calls.append(name)
                return verdict_fn(packet) if verdict_fn else None
            return handler

        return SpinHandlers(
            header=make("header", header),
            payload=make("payload", payload),
            completion=make("completion", completion),
            **costs)

    def deliver(self, size_bytes=1024, port=9000):
        packet = Packet(src=Address("gen", 5000),
                        dst=Address("appliance", port),
                        size_bytes=size_bytes, sent_at_ns=self.sim.now)
        self.nic.receive_packet(packet)
        self.sim.run()
        return packet


@pytest.fixture()
def world():
    return World()


def test_spin_spec_advertises_feature():
    assert SpinNicSpec().has_feature(SPIN_FEATURE)
    sim = Simulator()
    machine = Machine(sim)
    with pytest.raises(DeviceError):
        SpinNic(sim, machine.bus, NicSpec())     # no spin feature


def test_budget_must_be_positive(world):
    with pytest.raises(DeviceError):
        world.nic.install_handlers(world.handlers(), budget_ns=0)


def test_consumed_packet_never_reaches_host(world):
    world.nic.install_handlers(world.handlers())
    world.deliver()
    assert world.calls == ["header", "payload", "completion"]
    assert world.nic.spin_consumed == 1
    assert world.nic.host_rx_ring.total_put == 0     # host slept through it


def test_drop_verdict_short_circuits_payload(world):
    world.nic.install_handlers(
        world.handlers(header=lambda p: DROP))
    world.deliver()
    # Header dropped it before the payload walk; completion still runs.
    assert world.calls == ["header", "completion"]
    assert world.nic.spin_dropped == 1
    assert world.nic.host_rx_ring.total_put == 0


def test_to_host_verdict_escalates(world):
    world.nic.install_handlers(
        world.handlers(header=lambda p: TO_HOST))
    world.deliver()
    assert world.nic.spin_to_host == 1
    assert world.nic.host_rx_ring.total_put == 1     # DMA + interrupt path


def test_budget_overrun_punts_without_running_handlers(world):
    world.nic.install_handlers(world.handlers())
    # 48 kB at 0.25 ns/byte = 12 µs of payload walk: over the budget.
    world.deliver(size_bytes=48_000)
    assert world.nic.budget_overruns == 1
    assert world.nic.spin_handled == 0
    assert world.calls == []                  # admission check, not rollback
    assert world.nic.host_rx_ring.total_put == 1


def test_projected_cost_scales_with_size(world):
    handlers = world.handlers()
    assert handlers.projected_ns(1024) == 200 + 256 + 150
    assert handlers.projected_ns(48_000) > DEFAULT_BUDGET_NS
    # Absent handlers cost nothing.
    assert SpinHandlers(header=lambda p: None).projected_ns(48_000) == 200


def test_handler_time_accounted(world):
    world.nic.install_handlers(world.handlers())
    world.deliver(size_bytes=1024)
    assert world.nic.handler_ns_total == 200 + 256 + 150


def test_fence_clears_handlers(world):
    world.nic.install_handlers(world.handlers())
    assert world.nic.handlers_installed
    world.nic.health.crash()
    world.nic.fence()                 # recovery path: crash, then fence
    assert not world.nic.handlers_installed
    world.deliver()
    # Post-recovery the NIC is dumb: pure host path, no handler calls.
    assert world.calls == []
    assert world.nic.host_rx_ring.total_put == 1


def test_remove_handlers_restores_host_path(world):
    world.nic.install_handlers(world.handlers())
    world.nic.remove_handlers()
    world.deliver()
    assert world.calls == []
    assert world.nic.host_rx_ring.total_put == 1


def test_counters_partition_received_packets(world):
    verdicts = iter([None, DROP, TO_HOST, None])
    world.nic.install_handlers(
        world.handlers(header=lambda p: next(verdicts)))
    for _ in range(4):
        world.deliver()
    world.deliver(size_bytes=48_000)          # the overrun
    nic = world.nic
    assert nic.spin_handled == 4
    assert (nic.spin_consumed, nic.spin_dropped, nic.spin_to_host) == (2, 1, 1)
    assert nic.budget_overruns == 1
    assert nic.spin_handled + nic.budget_overruns == nic.rx_packets
