"""Tests for the one-sided RDMA substrate: regions, verbs, provider."""

import pytest

from repro.errors import DeviceFailedError, HydraError, ProviderError, RdmaError
from repro.core.channel import Buffering, ChannelConfig
from repro.core.executive import ChannelExecutive
from repro.core.memory import MemoryManager
from repro.core.providers import DmaChannelProvider, LoopbackProvider
from repro.core.runtime import HydraRuntime
from repro.core.sites import DeviceSite, HostSite
from repro.hw import Machine, NicSpec
from repro.rdma.mr import RdmaRegion
from repro.rdma.provider import RDMA_FEATURE, RdmaProvider
from repro.rdma.verbs import CAS_WIRE_BYTES, CompletionQueue
from repro.sim import Simulator


class World:
    """A host + RDMA-capable NIC + smart disk, provider pre-built."""

    def __init__(self):
        self.sim = Simulator()
        self.machine = Machine(self.sim)
        self.nic = self.machine.add_nic(
            NicSpec(extra_features=(RDMA_FEATURE,)))
        self.disk = self.machine.add_disk()
        self.host_site = HostSite(self.machine)
        self.nic_site = DeviceSite(self.nic)
        self.memory = MemoryManager(self.machine)
        self.provider = RdmaProvider(self.machine, self.nic, self.memory)

    def run(self, gen):
        """Drive a generator to completion, return its value."""
        out = {}

        def app():
            out["value"] = yield from gen

        self.sim.run_until_event(self.sim.spawn(app()))
        return out["value"]


@pytest.fixture()
def world():
    return World()


# -- memory regions ----------------------------------------------------------------

def test_provider_requires_rdma_feature(world):
    plain = world.machine.add_gpu()
    with pytest.raises(RdmaError):
        RdmaProvider(world.machine, plain, world.memory)


def test_register_mr_host_and_device(world):
    host_mr = world.run(world.provider.register_mr("host", 4096))
    disk_mr = world.run(
        world.provider.register_mr(world.disk.name, 8192, label="table"))
    assert host_mr.owner == "host" and host_mr.size == 4096
    assert disk_mr.owner == world.disk.name and disk_mr.size == 8192
    assert host_mr.rkey != disk_mr.rkey
    assert world.provider.regions == [host_mr, disk_mr]


def test_register_mr_unknown_owner_rejected(world):
    with pytest.raises(RdmaError):
        world.run(world.provider.register_mr("ghost", 4096))


def test_deregister_revokes_rkey(world):
    region = world.run(world.provider.register_mr("host", 4096))
    world.provider.deregister_mr(region)
    assert region.revoked
    with pytest.raises(RdmaError):
        region.check(0, 8)
    with pytest.raises(RdmaError):
        world.provider.deregister_mr(region)


def test_region_bounds_checked_at_post(world):
    region = world.run(world.provider.register_mr("host", 256))
    qp = world.provider.create_qp(world.host_site)
    with pytest.raises(RdmaError):
        qp.post_read(region, 192, 128)          # runs off the end
    with pytest.raises(RdmaError):
        qp.post_read(region, -8, 8)
    assert qp.pending == 0


# -- verbs -------------------------------------------------------------------------

def test_write_then_read_roundtrip(world):
    region = world.run(world.provider.register_mr(world.disk.name, 1024))
    qp = world.provider.create_qp(world.host_site)
    qp.post_write(region, 64, ("key", "value"), 64)
    completions = world.run(qp.ring_doorbell())
    assert [c.ok for c in completions] == [True]
    qp.post_read(region, 64, 64)
    completions = world.run(qp.ring_doorbell())
    assert completions[0].ok
    assert completions[0].value == ("key", "value")
    stats = world.provider.stats
    assert stats.reads == 1 and stats.writes == 1
    assert stats.imbalance == 0


def test_compare_and_swap_semantics(world):
    region = world.run(world.provider.register_mr("host", 64))
    qp = world.provider.create_qp(world.host_site)
    # Fresh word is 0: a CAS expecting 0 succeeds, one expecting 7 fails.
    qp.post_compare_and_swap(region, 0, expected=0, desired=42)
    qp.post_compare_and_swap(region, 0, expected=7, desired=99)
    first, second = world.run(qp.ring_doorbell())
    assert first.ok and first.value == 0
    assert second.ok and second.value == 42     # returns the old word
    assert region.load_word(0) == 42            # failed CAS left it alone
    assert world.provider.stats.cas == 2


def test_doorbell_batches_all_pending_wrs(world):
    region = world.run(world.provider.register_mr(world.disk.name, 4096))
    qp = world.provider.create_qp(world.host_site)
    for i in range(8):
        qp.post_read(region, i * 64, 64)
    assert qp.pending == 8
    completions = world.run(qp.ring_doorbell())
    assert len(completions) == 8
    assert qp.pending == 0
    assert world.provider.stats.doorbells == 1


def test_doorbell_batching_amortizes_time(world):
    """8 WRs behind one doorbell beat 8 doorbells of 1 WR each."""
    region = world.run(world.provider.register_mr(world.disk.name, 4096))

    def timed(batched):
        qp = world.provider.create_qp(world.host_site)
        started = world.sim.now

        def app():
            if batched:
                for i in range(8):
                    qp.post_read(region, i * 64, 64)
                yield from qp.ring_doorbell()
            else:
                for i in range(8):
                    qp.post_read(region, i * 64, 64)
                    yield from qp.ring_doorbell()

        world.sim.run_until_event(world.sim.spawn(app()))
        return world.sim.now - started

    assert timed(batched=True) < timed(batched=False)


def test_cq_polled_vs_interrupt(world):
    region = world.run(world.provider.register_mr(world.disk.name, 1024))
    polled = world.provider.create_cq(world.host_site, mode="polled")
    irq = world.provider.create_cq(world.host_site, mode="interrupt")
    for cq in (polled, irq):
        qp = world.provider.create_qp(world.host_site, cq=cq)
        for i in range(4):
            qp.post_read(region, i * 64, 64)
        world.run(qp.ring_doorbell())
    # Interrupt mode coalesces: one ISR per doorbell, never per WR.
    assert irq.interrupts == 1
    assert polled.interrupts == 0
    assert len(polled.poll()) == 4
    with pytest.raises(RdmaError):
        CompletionQueue(world.host_site, mode="edge-triggered")


def test_verbs_fail_as_completions_after_crash(world):
    """Conservation survives a dead engine: errors, not lost WRs."""
    region = world.run(world.provider.register_mr(world.disk.name, 1024))
    qp = world.provider.create_qp(world.host_site)
    for i in range(4):
        qp.post_read(region, i * 64, 64)
    world.nic.health.crash()
    completions = world.run(qp.ring_doorbell())
    assert len(completions) == 4
    assert all(c.status == "error" for c in completions)
    stats = world.provider.stats
    assert stats.failed == 4
    assert stats.imbalance == 0


def test_dead_region_owner_fails_without_wire_traffic(world):
    region = world.run(world.provider.register_mr(world.disk.name, 1024))
    qp = world.provider.create_qp(world.host_site)
    world.disk.health.crash()
    qp.post_read(region, 0, 64)
    (completion,) = world.run(qp.ring_doorbell())
    assert not completion.ok
    assert world.disk.name in completion.error
    assert world.provider.stats.imbalance == 0


# -- provider selection and cost --------------------------------------------------------

def test_rdma_cost_beats_descriptor_ring(world):
    dma = DmaChannelProvider(world.machine, world.nic, world.memory)
    config = ChannelConfig(buffering=Buffering.DIRECT)
    rdma_cost = world.provider.cost(world.host_site, world.nic_site, config)
    dma_cost = dma.cost(world.host_site, world.nic_site, config)
    assert rdma_cost.score(1024) < dma_cost.score(1024)
    assert rdma_cost.host_cpu_ns < dma_cost.host_cpu_ns


def test_executive_selects_rdma_over_dma(world):
    executive = ChannelExecutive()
    executive.register_provider(LoopbackProvider(world.machine))
    executive.register_provider(
        DmaChannelProvider(world.machine, world.nic, world.memory))
    executive.register_provider(world.provider)
    chosen = executive.select_provider(world.host_site, world.nic_site,
                                       ChannelConfig())
    assert chosen.name == "rdma-nic0"


def test_via_pins_provider_selection(world):
    executive = ChannelExecutive()
    executive.register_provider(
        DmaChannelProvider(world.machine, world.nic, world.memory))
    executive.register_provider(world.provider)
    pinned = executive.select_provider(
        world.host_site, world.nic_site, ChannelConfig().via("dma-nic0"))
    assert pinned.name == "dma-nic0"
    with pytest.raises(ProviderError):
        executive.select_provider(world.host_site, world.nic_site,
                                  ChannelConfig().via("rdma-gpu0"))


def test_can_serve_is_host_to_this_engine_only(world):
    gpu = world.machine.add_gpu()
    gpu_site = DeviceSite(gpu)
    config = ChannelConfig()
    assert world.provider.can_serve(world.host_site, world.nic_site, config)
    assert world.provider.can_serve(world.nic_site, world.host_site, config)
    assert not world.provider.can_serve(world.host_site, gpu_site, config)
    assert not world.provider.can_serve(world.nic_site, gpu_site, config)


# -- runtime wiring ----------------------------------------------------------------------

def test_runtime_registers_rdma_provider_per_featured_device():
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic(NicSpec(extra_features=(RDMA_FEATURE,)))
    machine.add_gpu()
    runtime = HydraRuntime(machine)
    provider = runtime.rdma_provider(nic.name)
    assert provider.name == f"rdma-{nic.name}"
    with pytest.raises(HydraError):
        runtime.rdma_provider("gpu0")      # no rdma feature, no provider
