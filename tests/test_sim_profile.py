"""Unit tests for the simulator hot-loop profiler."""

import json

from repro.sim import SimProfiler, Simulator, profiled
from repro.sim.profile import CategoryStats


def _workload(sim, n=50):
    """Spawn a small fleet of tickers plus one named singleton."""

    def ticker(period):
        for _ in range(n):
            yield sim.clock.after(period)

    for i in range(4):
        sim.spawn(ticker(1_000 + i), name=f"ticker-{i}")
    sim.spawn(ticker(5_000), name="singleton")


def test_profiled_attributes_every_event():
    sim = Simulator()
    _workload(sim)
    with profiled(sim) as profiler:
        sim.run()
    # Every loop iteration was observed and charged somewhere.
    assert profiler.total.events == sim.events_processed
    assert profiler.total.events == sum(
        s.events for s in profiler.categories.values())
    assert profiler.total.sim_ns == sim.now
    assert profiler.total.wall_s > 0
    assert profiler.wall_elapsed_s >= profiler.total.wall_s
    # The loop reverted to the bare dispatch on exit.
    assert sim._profiler is None


def test_instance_suffixes_collapse_into_one_category():
    sim = Simulator()
    _workload(sim)
    with profiled(sim) as profiler:
        sim.run()
    # ticker-0..ticker-3 aggregate as "ticker-N"; the singleton stays.
    assert "ticker-N" in profiler.categories
    assert "singleton" in profiler.categories
    assert not any(label.startswith("ticker-0")
                   for label in profiler.categories)
    tickers = profiler.categories["ticker-N"]
    assert tickers.events > profiler.categories["singleton"].events


def test_hotspots_sorted_and_limited():
    sim = Simulator()
    _workload(sim)
    with profiled(sim) as profiler:
        sim.run()
    ranked = profiler.hotspots()
    walls = [stats.wall_s for _, stats in ranked]
    assert walls == sorted(walls, reverse=True)
    assert len(profiler.hotspots(limit=1)) == 1


def test_as_dict_is_json_serializable():
    sim = Simulator()
    _workload(sim, n=5)
    with profiled(sim) as profiler:
        sim.run()
    report = json.loads(json.dumps(profiler.as_dict()))
    assert report["total"]["events"] == sim.events_processed
    assert set(report["categories"]) == set(profiler.categories)
    for stats in report["categories"].values():
        assert set(stats) == {"events", "wall_s", "sim_ns"}


def test_render_mentions_totals_and_categories():
    sim = Simulator()
    _workload(sim, n=5)
    with profiled(sim) as profiler:
        sim.run()
    text = profiler.render()
    assert "simulator profile" in text
    assert "ticker-N" in text
    assert str(profiler.total.events) in text


def test_profiling_does_not_change_the_run():
    def run(with_profiler):
        sim = Simulator()
        _workload(sim)
        if with_profiler:
            with profiled(sim):
                sim.run()
        else:
            sim.run()
        return sim.events_processed, sim.now, sim.pool_recycled

    assert run(True) == run(False)


def test_manual_attach_detach_windows_accumulate():
    sim = Simulator()
    _workload(sim, n=10)
    profiler = SimProfiler(sim)
    sim.attach_profiler(profiler)
    profiler.mark_attached()
    sim.run(until=20_000)
    profiler.mark_detached()
    sim.detach_profiler()
    first_window = profiler.wall_elapsed_s
    assert first_window > 0

    # Re-attach: the second window adds to the first and events observed
    # while detached are not charged.
    sim.attach_profiler(profiler)
    profiler.mark_attached()
    sim.run()
    profiler.mark_detached()
    sim.detach_profiler()
    assert profiler.wall_elapsed_s > first_window
    assert profiler.total.events == sim.events_processed


def test_category_stats_start_zeroed():
    stats = CategoryStats()
    assert stats.as_dict() == {"events": 0, "wall_s": 0.0, "sim_ns": 0}
