"""One scenario, four substrates: every provider behaves identically.

The contract the Channel Executive sells is that a channel's *provider*
is an implementation detail: Loopback, the DMA descriptor ring, peer
DMA and the one-sided RDMA engine must all deliver the same calls with
the same results, exactly once, with conservation intact — only the
price differs.  This file runs the same Echo workload over all four and
asserts behavioral identity, then checks the layout solver places over
an RDMA-priced edge like any other.
"""

import pytest

from repro.core.channel import ChannelConfig
from repro.core.executive import ChannelExecutive
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.layout import GreedySolver, LayoutGraph, MinimizeHostCpu
from repro.core.memory import MemoryManager
from repro.core.offcode import Offcode, OffcodeState
from repro.core.providers import (
    DmaChannelProvider,
    LoopbackProvider,
    PeerDmaProvider,
)
from repro.core.proxy import Proxy
from repro.core.sites import DeviceSite, HostSite
from repro.hw import Machine, NicSpec
from repro.rdma.provider import RDMA_FEATURE, RdmaProvider
from repro.sim import Simulator

IECHO = InterfaceSpec.from_methods(
    "IEcho", (MethodSpec("Echo", params=(("x", "int"),), result="int"),))

CALLS = 12


class EchoOffcode(Offcode):
    BINDNAME = "test.Echo"
    INTERFACES = (IECHO,)

    def Echo(self, x):
        return x * 2


class World:
    """Host + RDMA-capable NIC + GPU, every provider registered."""

    def __init__(self):
        self.sim = Simulator()
        self.machine = Machine(self.sim)
        self.nic = self.machine.add_nic(
            NicSpec(extra_features=(RDMA_FEATURE,)))
        self.gpu = self.machine.add_gpu()
        self.sites = {
            "host": HostSite(self.machine),
            "nic": DeviceSite(self.nic),
            "gpu": DeviceSite(self.gpu),
        }
        self.memory = MemoryManager(self.machine)
        self.executive = ChannelExecutive()
        self.executive.register_provider(LoopbackProvider(self.machine))
        self.executive.register_provider(PeerDmaProvider(self.machine))
        for device in (self.nic, self.gpu):
            self.executive.register_provider(
                DmaChannelProvider(self.machine, device, self.memory))
        self.rdma = RdmaProvider(self.machine, self.nic, self.memory)
        self.executive.register_provider(self.rdma)


@pytest.fixture()
def world():
    return World()


# One row per substrate: (expected provider, src site, dst site, pin).
# Over the RDMA-capable NIC the one-sided provider wins the cost race,
# so exercising the descriptor ring there needs an explicit `.via()`.
SUBSTRATES = [
    ("loopback", "host", "host", None),
    ("rdma-nic0", "host", "nic", None),
    ("dma-nic0", "host", "nic", "dma-nic0"),
    ("dma-gpu0", "host", "gpu", None),
    ("peer-dma", "nic", "gpu", None),
]


def run_echo_scenario(world, src, dst, pin):
    """The one workload: CALLS proxied Echo round trips over a channel."""
    offcode = EchoOffcode(world.sites[dst])
    offcode.state = OffcodeState.RUNNING
    config = ChannelConfig().via(pin) if pin else ChannelConfig()
    channel = world.executive.create_channel(config, world.sites[src])
    world.executive.connect_offcode(channel, offcode)
    proxy = Proxy(IECHO, channel, channel.creator_endpoint)
    results = []

    def app():
        for i in range(CALLS):
            results.append((yield from proxy.Echo(i)))

    world.sim.run_until_event(world.sim.spawn(app()))
    return channel, results


@pytest.mark.parametrize("expected,src,dst,pin", SUBSTRATES,
                         ids=[row[0] for row in SUBSTRATES])
def test_same_behavior_on_every_substrate(world, expected, src, dst, pin):
    channel, results = run_echo_scenario(world, src, dst, pin)
    # The right substrate was selected...
    assert channel.provider.name == expected
    # ...the results are identical regardless of substrate...
    assert results == [2 * i for i in range(CALLS)]
    # ...each call was sent and delivered exactly once...
    stats = channel.stats()
    assert stats.sent == CALLS
    assert stats.delivered == CALLS
    assert stats.dropped == 0
    # ...and conservation holds on the channel.
    assert stats.sent == stats.delivered + stats.dropped


def test_rdma_substrate_balances_one_sided_accounting(world):
    """The RDMA rows additionally satisfy the one-sided law."""
    run_echo_scenario(world, "host", "nic", None)
    stats = world.rdma.stats
    # Requests and replies both rode the one-sided substrate.
    assert stats.posted == 2 * CALLS
    assert stats.imbalance == 0
    assert stats.doorbells == stats.posted   # unbatched: 1 WR per bell


def test_substrates_agree_on_ranking_not_results(world):
    """Same answers, different prices: RDMA is the cheapest NIC path."""
    rdma_channel, _ = run_echo_scenario(world, "host", "nic", None)
    elapsed_rdma = world.sim.now
    world2 = World()
    dma_channel, _ = run_echo_scenario(world2, "host", "nic", "dma-nic0")
    assert rdma_channel.provider.name == "rdma-nic0"
    assert dma_channel.provider.name == "dma-nic0"
    assert elapsed_rdma < world2.sim.now


def test_layout_solver_places_over_rdma_cost(world):
    """The ILP machinery prices an RDMA edge like any other provider's.

    Node prices come straight from each provider's CostMetric through
    the same ``cost()`` interface the executive ranks with, so a
    placement computed over an RDMA-capable NIC is valid unchanged.
    """
    config = ChannelConfig()
    host, nic = world.sites["host"], world.sites["nic"]
    relief = world.rdma.cost(host, nic, config).host_cpu_ns
    graph = LayoutGraph(("host", "nic0"))
    graph.add_node("filter", [True, True], price=1.0)
    graph.add_node("app", [True, False], price=1.0)
    result = GreedySolver().solve(
        MinimizeHostCpu({"filter": relief, "app": 0.0}).build(graph))
    assert graph.check_placement(result.placement) == []
    assert result.placement["filter"] == 1     # offloaded onto the NIC
    assert result.placement["app"] == 0
