"""Tests for kernel-internal socket paths and solver stress behaviour."""

import pytest

from repro.errors import SolverError
from repro.core.layout import (
    BranchAndBoundSolver,
    ConstraintType,
    LayoutGraph,
    MaximizeOffloading,
)
from repro.hostos import Kernel, UdpStack
from repro.hw import Machine, MachineSpec
from repro.net import Address, Switch
from repro.sim import RandomStreams, Simulator


@pytest.fixture()
def hosts():
    sim = Simulator()
    rng = RandomStreams(17)
    switch = Switch(sim, rng=rng.stream("switch"))

    def host(name):
        machine = Machine(sim, MachineSpec(name=name))
        kernel = Kernel(machine, rng)
        machine.add_nic()
        stack = UdpStack(kernel, name)
        stack.attach_nic(machine.device("nic0"), switch)
        return machine, stack

    return sim, host("a"), host("b")


def test_kernel_send_cheaper_than_user_send(hosts):
    sim, (ma, sa), (mb, sb) = hosts
    sb.socket(5000)
    sock = sa.socket()
    costs = {}

    def run():
        before = ma.cpu.total_busy
        yield from sock.sendto(Address("b", 5000), 4096)
        costs["user"] = ma.cpu.total_busy - before
        before = ma.cpu.total_busy
        yield from sock.sendto_kernel(Address("b", 5000), 4096)
        costs["kernel"] = ma.cpu.total_busy - before

    sim.run_until_event(sim.spawn(run()))
    # The kernel path skips the syscall and the user copy.
    assert costs["kernel"] < costs["user"] / 2


def test_kernel_recv_skips_copy_to_user(hosts):
    sim, (ma, sa), (mb, sb) = hosts
    server = sb.socket(5000)
    sock = sa.socket()
    costs = {}

    def receiver(kind):
        if kind == "user":
            yield from server.recvfrom()
        else:
            yield from server.recvfrom_kernel()

    def run():
        busy0 = mb.cpu.total_busy
        proc = sim.spawn(receiver("user"))
        yield from sock.sendto(Address("b", 5000), 8192)
        yield proc
        costs["user"] = mb.cpu.total_busy - busy0
        busy1 = mb.cpu.total_busy
        proc = sim.spawn(receiver("kernel"))
        yield from sock.sendto(Address("b", 5000), 8192)
        yield proc
        costs["kernel"] = mb.cpu.total_busy - busy1

    sim.run_until_event(sim.spawn(run()))
    assert costs["kernel"] < costs["user"]


def test_kernel_recv_cache_footprint_smaller(hosts):
    sim, (ma, sa), (mb, sb) = hosts
    server = sb.socket(5000)
    sock = sa.socket()
    accesses = {}

    def run():
        a0 = mb.l2.stats.accesses
        proc = sim.spawn(server.recvfrom())
        yield from sock.sendto(Address("b", 5000), 8192)
        yield proc
        accesses["user"] = mb.l2.stats.accesses - a0
        a1 = mb.l2.stats.accesses
        proc = sim.spawn(server.recvfrom_kernel())
        yield from sock.sendto(Address("b", 5000), 8192)
        yield proc
        accesses["kernel"] = mb.l2.stats.accesses - a1

    sim.run_until_event(sim.spawn(run()))
    # recvfrom streams the 8 kB payload through the cache twice;
    # the kernel-internal path leaves it where the DMA put it.
    assert accesses["kernel"] < accesses["user"] / 3


# -- solver stress -------------------------------------------------------------------

def big_graph(nodes=14, devices=5):
    names = tuple(["host"] + [f"d{i}" for i in range(devices)])
    graph = LayoutGraph(names)
    for i in range(nodes):
        compat = [True] + [(i + j) % 3 != 0 for j in range(devices)]
        graph.add_node(f"n{i}", compat)
    for i in range(0, nodes - 1, 2):
        graph.constrain(f"n{i}", f"n{i + 1}",
                        ConstraintType.PULL if i % 4 == 0
                        else ConstraintType.GANG)
    return graph


def test_branch_and_bound_scales_to_moderate_graphs():
    graph = big_graph()
    problem = MaximizeOffloading().build(graph)
    result = BranchAndBoundSolver().solve(problem)
    assert graph.check_placement(result.placement) == []
    # Pruning keeps the explored count far below the raw search space.
    assert result.nodes_explored < 60_000


def test_branch_and_bound_node_budget_enforced():
    graph = big_graph(nodes=16, devices=5)
    problem = MaximizeOffloading().build(graph)
    with pytest.raises(SolverError):
        BranchAndBoundSolver(max_nodes=10).solve(problem)
