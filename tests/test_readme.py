"""Docs-honesty gate: the README's code examples must actually run."""

import pathlib
import re

README = (pathlib.Path(__file__).parent.parent / "README.md").read_text()


def python_blocks():
    return re.findall(r"```python\n(.*?)```", README, re.DOTALL)


def test_readme_has_a_quickstart_block():
    blocks = python_blocks()
    assert len(blocks) >= 1
    assert "runtime.deploy" in blocks[0]
    assert "DeploymentSpec" in blocks[0]


def test_readme_quickstart_uses_only_the_api_facade():
    """The blessed surface is repro.api; the quickstart must not reach
    into the deeper packages."""
    import re as _re
    imports = _re.findall(r"^(?:from|import)\s+(\S+)", python_blocks()[0],
                          _re.MULTILINE)
    assert imports, "quickstart has no imports?"
    assert all(mod == "repro.api" for mod in imports), imports


def test_readme_quickstart_executes(capsys):
    namespace = {}
    exec(python_blocks()[0], namespace)      # noqa: S102 - docs gate
    out = capsys.readouterr().out
    assert "placed on nic0" in out
    assert "4096" not in out or True          # checksum printed below
    # The checksum of 4096 is 4096 & 0xFFFF = 4096.
    assert "4096" in out


def test_readme_mentions_all_examples():
    import os
    examples = {p for p in os.listdir(
        pathlib.Path(__file__).parent.parent / "examples")
        if p.endswith(".py")}
    for example in examples:
        assert example in README, f"README does not mention {example}"


def test_readme_install_instructions_present():
    assert "pip install -e ." in README
    assert "pytest benchmarks/ --benchmark-only" in README
