"""Tests for NicPortMux — firmware ports sharing a host-attached NIC."""

import pytest

from repro.errors import SocketError
from repro.hostos import Kernel, UdpStack
from repro.hw import Machine, MachineSpec
from repro.net import Address, Switch
from repro.net.devport import NicPortMux
from repro.sim import RandomStreams, Simulator


@pytest.fixture()
def world():
    sim = Simulator()
    rng = RandomStreams(5)
    switch = Switch(sim, rng=rng.stream("switch"))

    def host(name):
        machine = Machine(sim, MachineSpec(name=name))
        kernel = Kernel(machine, rng)
        machine.add_nic()
        stack = UdpStack(kernel, name)
        stack.attach_nic(machine.device("nic0"), switch)
        return machine, kernel, stack

    a = host("alpha")
    b = host("beta")
    return sim, switch, a, b


def run_for(sim, ms=50):
    sim.run(until=sim.now + ms * 1_000_000)


def test_mux_claims_bound_port_without_host(world):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = world
    mux = NicPortMux(ma.device("nic0"), "alpha")
    binding = mux.bind(7000)
    got = []

    def firmware():
        packet = yield from binding.recv()
        got.append(packet.payload)

    def sender():
        sock = sb.socket()
        yield from sock.sendto(Address("alpha", 7000), 512, payload="fw")

    sim.spawn(firmware())
    sim.spawn(sender())
    run_for(sim)
    assert got == ["fw"]
    assert mux.rx_packets == 1
    # The host stack never saw it: no interrupt-driven delivery.
    assert sa.rx_delivered == 0
    assert ma.cpu.busy_by_context.get("kernel-isr", 0) == 0


def test_mux_declines_unbound_port_to_host(world):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = world
    NicPortMux(ma.device("nic0"), "alpha")
    host_sock = sa.socket(8000)
    got = []

    def host_receiver():
        packet = yield from host_sock.recvfrom()
        got.append(packet.payload)

    def sender():
        sock = sb.socket()
        yield from sock.sendto(Address("alpha", 8000), 512, payload="host")

    sim.spawn(host_receiver())
    sim.spawn(sender())
    run_for(sim)
    assert got == ["host"]
    # The host path did its usual work.
    assert ma.cpu.busy_by_context.get("kernel-isr", 0) > 0


def test_mux_send_bypasses_host_cpu(world):
    sim, switch, (ma, ka, sa), (mb, kb, sb) = world
    mux = NicPortMux(ma.device("nic0"), "alpha")
    peer_sock = sb.socket(9100)
    got = []

    def receiver():
        packet = yield from peer_sock.recvfrom()
        got.append((packet.src.host, packet.src.port, packet.payload))

    def firmware_sender():
        yield from mux.send(6000, Address("beta", 9100), 1024,
                            payload="from-device")

    sim.spawn(receiver())
    sim.spawn(firmware_sender())
    run_for(sim)
    assert got == [("alpha", 6000, "from-device")]
    assert mux.tx_packets == 1
    # Sender host CPU untouched; the receiving host paid normally.
    assert ma.cpu.total_busy == 0
    assert mb.cpu.total_busy > 0
    # No bus crossing on the sender (payload lived in device memory).
    assert ma.bus.total_crossings() == 0


def test_mux_duplicate_bind_rejected(world):
    sim, switch, (ma, ka, sa), _ = world
    mux = NicPortMux(ma.device("nic0"), "alpha")
    mux.bind(7000)
    with pytest.raises(SocketError):
        mux.bind(7000)
    ephemerals = {mux.bind().number for _ in range(4)}
    assert len(ephemerals) == 4


def test_mux_and_host_coexist(world):
    """Firmware and host traffic interleave on one NIC (the offloaded
    server's arrangement: NFS to the device, everything else up)."""
    sim, switch, (ma, ka, sa), (mb, kb, sb) = world
    mux = NicPortMux(ma.device("nic0"), "alpha")
    fw_binding = mux.bind(7000)
    host_sock = sa.socket(8000)
    fw_got, host_got = [], []

    def firmware():
        while True:
            packet = yield from fw_binding.recv()
            fw_got.append(packet.seq)

    def host_receiver():
        while True:
            packet = yield from host_sock.recvfrom()
            host_got.append(packet.seq)

    def sender():
        sock = sb.socket()
        for i in range(6):
            port = 7000 if i % 2 == 0 else 8000
            yield from sock.sendto(Address("alpha", port), 256)

    sim.spawn(firmware())
    sim.spawn(host_receiver())
    sim.spawn(sender())
    run_for(sim)
    assert len(fw_got) == 3
    assert len(host_got) == 3
