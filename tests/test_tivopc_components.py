"""Unit tests for TiVoPC components and metrics."""

import pytest

from repro import units
from repro.errors import OffcodeError
from repro.core.channel import ChannelConfig
from repro.core.executive import ChannelExecutive
from repro.core.offcode import OffcodeState
from repro.core.providers import LoopbackProvider, PeerDmaProvider
from repro.core.sites import DeviceSite
from repro.hw import Machine
from repro.net import Address, Switch
from repro.net.devport import DeviceNetPort
from repro.sim import RandomStreams, Simulator
from repro.tivopc.components import (
    BroadcastOffcode,
    DecoderOffcode,
    DisplayOffcode,
    FileOffcode,
    StreamerOffcode,
)
from repro.tivopc.metrics import (
    JitterCollector,
    SummaryStats,
    cdf_points,
    histogram,
)


# -- metrics --------------------------------------------------------------------------

def test_summary_stats_basic():
    stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
    assert stats.median == 2.5
    assert stats.average == 2.5
    assert stats.count == 4
    assert stats.stdev == pytest.approx(1.118, abs=1e-3)


def test_summary_stats_empty_and_single():
    assert SummaryStats.of([]).count == 0
    single = SummaryStats.of([5.0])
    assert single.median == 5.0 and single.stdev == 0.0


def test_jitter_collector_intervals():
    collector = JitterCollector()
    for t in range(0, 50_000_001, 5_000_000):   # every 5 ms
        collector.record(t)
    intervals = collector.intervals_ms(discard_first=0)
    assert intervals == [5.0] * 10
    assert collector.stats(discard_first=2).average == 5.0


def test_jitter_collector_discards_warmup():
    collector = JitterCollector()
    times = [0, 20_000_000] + [20_000_000 + 5_000_000 * i
                               for i in range(1, 12)]
    for t in times:
        collector.record(t)
    stats = collector.stats(discard_first=5)
    assert stats.average == pytest.approx(5.0)


def test_histogram_bins():
    bins = histogram([1.0, 1.2, 2.5, 2.6, 2.7], bin_width=1.0)
    assert bins[0] == (1.0, 2)
    assert bins[1] == (2.0, 3)
    with pytest.raises(ValueError):
        histogram([1.0], bin_width=0)
    assert histogram([], 1.0) == []


def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, pytest.approx(1 / 3)),
                      (2.0, pytest.approx(2 / 3)),
                      (3.0, pytest.approx(1.0))]


# -- component harness ------------------------------------------------------------------


class GpuWorld:
    """A machine with NIC/GPU/disk, an executive, and helper wiring."""

    def __init__(self):
        self.sim = Simulator()
        self.machine = Machine(self.sim)
        self.nic = self.machine.add_nic()
        self.gpu = self.machine.add_gpu()
        self.disk = self.machine.add_disk()
        self.executive = ChannelExecutive()
        self.executive.register_provider(LoopbackProvider(self.machine))
        self.executive.register_provider(PeerDmaProvider(self.machine))

    def running(self, offcode):
        offcode.state = OffcodeState.RUNNING
        return offcode


def test_decoder_accumulates_frames_on_gpu():
    world = GpuWorld()
    gpu_site = DeviceSite(world.gpu)
    decoder = world.running(DecoderOffcode(gpu_site, frame_bytes=4096))
    display = world.running(DisplayOffcode(gpu_site))
    decoder.attach_display(display)

    channel = world.executive.create_channel_for_offcode(
        ChannelConfig(label=StreamerOffcode.DATA_LABEL),
        world.running(StreamerOffcode(DeviceSite(world.nic),
                                      port_mux=object())))
    world.executive.connect_offcode(channel, decoder)

    def feed():
        endpoint = channel.creator_endpoint
        for _ in range(9):
            yield from endpoint.write(b"chunk", 1024)

    world.sim.run_until_event(world.sim.spawn(feed()))
    # 9 kB at 4 kB frames -> 2 frames decoded and shown.
    assert decoder.frames_decoded == 2
    assert display.frames_shown == 2
    assert world.gpu.frames_displayed == 2
    assert world.gpu.bytes_decoded == 8192


def test_decoder_pull_violation_rejected():
    world = GpuWorld()
    decoder = DecoderOffcode(DeviceSite(world.gpu))
    display = DisplayOffcode(DeviceSite(world.nic))
    with pytest.raises(OffcodeError):
        decoder.attach_display(display)


def test_display_falls_back_to_generic_site_cost():
    world = GpuWorld()
    display = world.running(DisplayOffcode(DeviceSite(world.nic)))

    def show():
        yield from display.show_frame(1000)

    world.sim.run_until_event(world.sim.spawn(show()))
    assert display.frames_shown == 1
    assert world.nic.cpu.total_busy > 0


def test_streamer_disk_role_appends_to_file():
    world = GpuWorld()
    disk_site = DeviceSite(world.disk)
    streamer = world.running(StreamerOffcode(disk_site))

    class FakeNfs:
        def __init__(self):
            self.written = 0
            self.sim = world.sim

        def read(self, handle, offset, size):
            yield world.sim.timeout(10)
            return size

        def write(self, handle, offset, size):
            self.written += size
            yield world.sim.timeout(10)
            return size

    nfs = FakeNfs()
    file_offcode = world.running(FileOffcode(disk_site, nfs))
    streamer.attach_file(file_offcode)

    channel = world.executive.create_channel_for_offcode(
        ChannelConfig(label=StreamerOffcode.DATA_LABEL),
        world.running(StreamerOffcode(DeviceSite(world.nic),
                                      port_mux=object())))
    world.executive.connect_offcode(channel, streamer)

    def feed():
        for _ in range(4):
            yield from channel.creator_endpoint.write(b"c", 1024)

    world.sim.run_until_event(world.sim.spawn(feed()))
    world.sim.run()
    assert streamer.chunks_handled == 4
    assert file_offcode.bytes_written == 4096
    assert nfs.written == 4096


def test_streamer_pull_violation_rejected():
    world = GpuWorld()
    streamer = StreamerOffcode(DeviceSite(world.disk))

    class FakeNfs:
        sim = world.sim

        def read(self, handle, offset, size):
            yield world.sim.timeout(1)
            return size

        def write(self, handle, offset, size):
            yield world.sim.timeout(1)
            return size

    file_elsewhere = FileOffcode(DeviceSite(world.gpu), FakeNfs())
    with pytest.raises(OffcodeError):
        streamer.attach_file(file_elsewhere)


def test_streamer_ignores_unlabelled_channels():
    world = GpuWorld()
    streamer = world.running(
        StreamerOffcode(DeviceSite(world.nic), port_mux=object()))
    plain = world.executive.create_channel(ChannelConfig(),
                                           DeviceSite(world.gpu))
    streamer.on_channel_attached(plain)
    assert streamer.data_channel is None
    labelled = world.executive.create_channel(
        ChannelConfig(label=StreamerOffcode.DATA_LABEL),
        DeviceSite(world.nic))
    streamer.on_channel_attached(labelled)
    assert streamer.data_channel is labelled


def test_broadcast_precise_pacing_without_rng():
    world = GpuWorld()
    switch = Switch(world.sim, rng=RandomStreams(0).stream("sw"))
    port = DeviceNetPort(world.nic, switch, "sender")
    switch.attach("receiver", lambda p: None)
    broadcast = BroadcastOffcode(
        DeviceSite(world.nic), port, Address("receiver", 9000), rng=None)
    broadcast.state = OffcodeState.INITIALIZED

    def bring_up():
        yield from broadcast.on_start()
        broadcast.state = OffcodeState.RUNNING

    world.sim.run_until_event(world.sim.spawn(bring_up()))
    world.sim.spawn(broadcast.main())
    world.sim.run(until=world.sim.now + units.s_to_ns(1))
    # Exactly one packet per 5 ms, no drift.
    assert broadcast.packets_sent in (199, 200)


def test_broadcast_waits_for_required_file():
    world = GpuWorld()
    switch = Switch(world.sim, rng=RandomStreams(0).stream("sw"))
    port = DeviceNetPort(world.nic, switch, "sender")
    switch.attach("receiver", lambda p: None)
    site = DeviceSite(world.nic)
    broadcast = BroadcastOffcode(site, port, Address("receiver", 9000),
                                 require_file=True)
    broadcast.state = OffcodeState.RUNNING
    world.sim.spawn(broadcast.main())
    world.sim.run(until=units.s_to_ns(0.1))
    assert broadcast.packets_sent == 0     # blocked on the File mate

    class FakeNfs:
        sim = world.sim

        def read(self, handle, offset, size):
            yield world.sim.timeout(1)
            return size

        def write(self, handle, offset, size):
            yield world.sim.timeout(1)
            return size

    file_offcode = FileOffcode(site, FakeNfs())
    file_offcode.state = OffcodeState.RUNNING
    broadcast.attach_file(file_offcode)
    world.sim.run(until=units.s_to_ns(0.3))
    assert broadcast.packets_sent > 10
    assert file_offcode.bytes_read > 0
