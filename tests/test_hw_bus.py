"""Tests for the bus / DMA model."""

import pytest

from repro.errors import BusError
from repro.hw.bus import HOST_MEMORY, Bus, BusSpec
from repro.sim import Simulator


def make_bus(sim, spec=None):
    bus = Bus(sim, spec)
    bus.attach("nic")
    bus.attach("gpu")
    return bus


def run_transfer(sim, bus, src, dst, size):
    result = {}

    def proc(sim, bus):
        result["txns"] = yield from bus.transfer(src, dst, size)

    sim.spawn(proc(sim, bus))
    sim.run()
    return result["txns"]


def test_transfer_takes_arbitration_plus_serialization():
    sim = Simulator()
    spec = BusSpec(bandwidth_bps=8e9, arbitration_ns=200)
    bus = make_bus(sim, spec)
    run_transfer(sim, bus, "nic", HOST_MEMORY, 8000)
    # 8000 B = 64000 bits at 8 Gbps = 8000 ns + 200 arbitration
    assert sim.now == 8200


def test_peer_to_peer_single_transaction():
    sim = Simulator()
    bus = make_bus(sim, BusSpec(peer_to_peer=True))
    assert run_transfer(sim, bus, "nic", "gpu", 1024) == 1
    assert bus.crossings == {("nic", "gpu"): 1}
    assert bus.host_memory_crossings() == 0


def test_legacy_pci_stages_through_host_memory():
    sim = Simulator()
    bus = make_bus(sim, BusSpec.pci_legacy())
    assert run_transfer(sim, bus, "nic", "gpu", 1024) == 2
    assert bus.crossings == {
        ("nic", HOST_MEMORY): 1,
        (HOST_MEMORY, "gpu"): 1,
    }
    assert bus.host_memory_crossings() == 2


def test_multicast_on_pcie_is_one_transaction():
    sim = Simulator()
    bus = make_bus(sim, BusSpec(peer_to_peer=True))
    bus.attach("disk")
    result = {}

    def proc(sim, bus):
        result["txns"] = yield from bus.multicast_transfer(
            "nic", ["gpu", "disk"], 1024)

    sim.spawn(proc(sim, bus))
    sim.run()
    assert result["txns"] == 1
    # Both logical crossings are counted even though one transaction ran.
    assert bus.crossings[("nic", "gpu")] == 1
    assert bus.crossings[("nic", "disk")] == 1


def test_multicast_on_pci_is_per_destination():
    sim = Simulator()
    bus = make_bus(sim, BusSpec.pci_legacy())
    bus.attach("disk")
    result = {}

    def proc(sim, bus):
        result["txns"] = yield from bus.multicast_transfer(
            "nic", ["gpu", "disk"], 1024)

    sim.spawn(proc(sim, bus))
    sim.run()
    assert result["txns"] == 4  # two staged transfers of two txns each


def test_contention_serializes_transfers():
    sim = Simulator()
    spec = BusSpec(bandwidth_bps=8e9, arbitration_ns=0)
    bus = make_bus(sim, spec)
    done = []

    def proc(sim, bus, tag):
        yield from bus.transfer("nic", HOST_MEMORY, 1000)
        done.append((tag, sim.now))

    sim.spawn(proc(sim, bus, "a"))
    sim.spawn(proc(sim, bus, "b"))
    sim.run()
    assert done == [("a", 1000), ("b", 2000)]


def test_unknown_endpoint_rejected():
    sim = Simulator()
    bus = make_bus(sim)

    def proc(sim, bus):
        yield from bus.transfer("nic", "nonexistent", 10)

    sim.spawn(proc(sim, bus))
    with pytest.raises(BusError):
        sim.run()


def test_self_transfer_rejected():
    sim = Simulator()
    bus = make_bus(sim)

    def proc(sim, bus):
        yield from bus.transfer("nic", "nic", 10)

    sim.spawn(proc(sim, bus))
    with pytest.raises(BusError):
        sim.run()


def test_zero_size_rejected():
    sim = Simulator()
    bus = make_bus(sim)

    def proc(sim, bus):
        yield from bus.transfer("nic", HOST_MEMORY, 0)

    sim.spawn(proc(sim, bus))
    with pytest.raises(BusError):
        sim.run()


def test_duplicate_attach_rejected():
    sim = Simulator()
    bus = make_bus(sim)
    with pytest.raises(BusError):
        bus.attach("nic")


def test_bytes_moved_accumulates():
    sim = Simulator()
    bus = make_bus(sim)
    run_transfer(sim, bus, "nic", HOST_MEMORY, 500)
    assert bus.bytes_moved == 500


def test_record_log_captures_transfers():
    sim = Simulator()
    bus = make_bus(sim)
    bus.record_log = True
    run_transfer(sim, bus, "nic", HOST_MEMORY, 100)
    assert len(bus.transfers) == 1
    record = bus.transfers[0]
    assert record.src == "nic"
    assert record.dst == HOST_MEMORY
    assert record.size_bytes == 100
