"""Tests for resource tree, memory manager, rings, depot and loaders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ChannelError,
    DepotError,
    LoaderError,
    ResourceError,
)
from repro.core.depot import OffcodeDepot
from repro.core.guid import Guid
from repro.core.loader import (
    DeviceLinkedLoader,
    HostLinkedLoader,
    LoaderRegistry,
    OffcodeImage,
    compile_for_target,
)
from repro.core.memory import MemoryManager, PAGE_BYTES
from repro.core.odf import OdfDocument
from repro.core.offcode import Offcode
from repro.core.resources import ResourceNode, ResourceTree
from repro.core.rings import Descriptor, DescriptorRing
from repro.core.sites import HostSite
from repro.hw import DeviceClass, Machine
from repro.sim import Simulator


# -- resource tree -----------------------------------------------------------------

def test_resource_tree_cascade_free():
    tree = ResourceTree()
    freed = []
    app = tree.track("app", finalizer=lambda: freed.append("app"))
    tree.track("offcode", parent=app,
               finalizer=lambda: freed.append("offcode"))
    tree.track("channel", parent=app,
               finalizer=lambda: freed.append("channel"))
    assert tree.live_count == 3
    errors = tree.release("app")
    assert errors == []
    # Children freed before the parent, newest first.
    assert freed == ["channel", "offcode", "app"]
    assert tree.live_count == 0


def test_resource_tree_failing_finalizer_does_not_leak_siblings():
    tree = ResourceTree()
    freed = []
    app = tree.track("app")

    def boom():
        raise RuntimeError("bad destructor")

    tree.track("bad", parent=app, finalizer=boom)
    tree.track("good", parent=app, finalizer=lambda: freed.append("good"))
    errors = tree.release("app")
    assert len(errors) == 1
    assert freed == ["good"]


def test_resource_tree_double_free_rejected():
    tree = ResourceTree()
    tree.track("x")
    tree.release("x")
    with pytest.raises(ResourceError):
        tree.release("x")


def test_resource_tree_duplicate_name_rejected():
    tree = ResourceTree()
    tree.track("x")
    with pytest.raises(ResourceError):
        tree.track("x")
    tree.release("x")
    tree.track("x")  # reusable after free


def test_resource_node_reparent_rejected():
    a = ResourceNode("a")
    b = ResourceNode("b")
    child = ResourceNode("c")
    a.add_child(child)
    with pytest.raises(ResourceError):
        b.add_child(child)


# -- memory manager ---------------------------------------------------------------------

def test_pin_charges_per_page_and_counts():
    sim = Simulator()
    machine = Machine(sim)
    memory = MemoryManager(machine)
    out = {}

    def proc():
        out["region"] = yield from memory.pin(0, 3 * PAGE_BYTES)

    sim.run_until_event(sim.spawn(proc()))
    assert out["region"].pages == 3
    assert memory.pinned_bytes == 3 * PAGE_BYTES
    assert machine.cpu.total_busy == 3 * 600


def test_repin_is_refcounted_and_free():
    sim = Simulator()
    machine = Machine(sim)
    memory = MemoryManager(machine)
    regions = []

    def proc():
        regions.append((yield from memory.pin(0, PAGE_BYTES)))
        regions.append((yield from memory.pin(0, PAGE_BYTES)))

    sim.run_until_event(sim.spawn(proc()))
    assert regions[0] is regions[1]
    assert regions[0].refcount == 2
    assert memory.pin_operations == 1
    memory.unpin(regions[0])
    assert memory.pinned_bytes == PAGE_BYTES
    memory.unpin(regions[0])
    assert memory.pinned_bytes == 0
    with pytest.raises(ResourceError):
        memory.unpin(regions[0])


def test_pin_straddling_page_boundary():
    sim = Simulator()
    memory = MemoryManager(Machine(sim))
    out = {}

    def proc():
        out["r"] = yield from memory.pin(PAGE_BYTES - 10, 20)

    sim.run_until_event(sim.spawn(proc()))
    assert out["r"].pages == 2


# -- descriptor rings ----------------------------------------------------------------------

def test_ring_fifo_order():
    ring = DescriptorRing(4)
    for i in range(3):
        assert ring.post(Descriptor(address=i, length=10))
    assert ring.consume().address == 0
    assert ring.consume().address == 1
    assert ring.occupancy == 1


def test_ring_full_rejects_and_counts():
    ring = DescriptorRing(2)
    assert ring.post(Descriptor(0, 1))
    assert ring.post(Descriptor(1, 1))
    assert not ring.post(Descriptor(2, 1))
    assert ring.rejected == 1
    assert ring.full


def test_ring_empty_consume_rejected():
    ring = DescriptorRing(2)
    with pytest.raises(ChannelError):
        ring.consume()
    assert ring.peek() is None


def test_ring_wraps_around():
    ring = DescriptorRing(2)
    for i in range(10):
        assert ring.post(Descriptor(i, 1))
        assert ring.consume().address == i
    assert ring.posted == 10 and ring.consumed == 10


@given(ops=st.lists(st.sampled_from(["post", "consume"]),
                    min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_property_ring_occupancy_invariant(ops):
    ring = DescriptorRing(8)
    model = []
    for i, op in enumerate(ops):
        if op == "post":
            accepted = ring.post(Descriptor(i, 1))
            if len(model) < 8:
                assert accepted
                model.append(i)
            else:
                assert not accepted
        elif model:
            assert ring.consume().address == model.pop(0)
        assert ring.occupancy == len(model)
        assert 0 <= ring.occupancy <= ring.capacity


# -- depot --------------------------------------------------------------------------------

class PortableOffcode(Offcode):
    BINDNAME = "test.Portable"


class NicOffcode(Offcode):
    BINDNAME = "test.Portable"


def test_depot_specificity():
    depot = OffcodeDepot()
    guid = Guid(77)
    depot.register(guid, PortableOffcode)
    depot.register(guid, NicOffcode, device_class=DeviceClass.NETWORK)
    assert depot.lookup(guid, DeviceClass.NETWORK).implementation \
        is NicOffcode
    assert depot.lookup(guid, DeviceClass.HOST).implementation \
        is PortableOffcode
    assert depot.has(guid, DeviceClass.STORAGE)   # portable covers it


def test_depot_missing_lookup():
    depot = OffcodeDepot()
    with pytest.raises(DepotError):
        depot.lookup(Guid(1), DeviceClass.HOST)
    assert not depot.has(Guid(1), DeviceClass.HOST)


def test_depot_duplicate_rejected():
    depot = OffcodeDepot()
    depot.register(Guid(1), PortableOffcode)
    with pytest.raises(DepotError):
        depot.register(Guid(1), NicOffcode)


def test_depot_rejects_non_offcode_class():
    depot = OffcodeDepot()
    with pytest.raises(DepotError):
        depot.register(Guid(1), dict)
    with pytest.raises(DepotError):
        depot.register(Guid(2), "not callable")


def test_depot_accepts_factory():
    depot = OffcodeDepot()
    depot.register(Guid(1), lambda site: PortableOffcode(site))
    entry = depot.lookup(Guid(1), DeviceClass.HOST)
    assert callable(entry.implementation)


# -- loaders -------------------------------------------------------------------------------

def loader_world():
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic()
    return sim, machine, nic, HostSite(machine)


def test_image_from_odf_pseudo_offcodes_shrink_symbols():
    odf = OdfDocument(bindname="x", guid=Guid(1), image_bytes=32 * 1024)
    with_pseudo = OffcodeImage.from_odf(odf, uses_pseudo_offcodes=True)
    without = OffcodeImage.from_odf(odf, uses_pseudo_offcodes=False)
    assert with_pseudo.undefined_symbols < without.undefined_symbols


def test_host_linked_load_places_image():
    sim, machine, nic, host = loader_world()
    image = OffcodeImage(bindname="x", size_bytes=64 * 1024,
                         undefined_symbols=10)
    out = {}

    def proc():
        out["report"] = yield from HostLinkedLoader().load(image, nic, host)

    sim.run_until_event(sim.spawn(proc()))
    report = out["report"]
    assert report.strategy == "host-linked"
    assert report.region.size >= 64 * 1024
    assert nic.memory.used_bytes >= 64 * 1024
    assert report.host_cpu_ns > 0
    assert report.elapsed_ns > 0


def test_device_linked_costs_device_more():
    results = {}
    for loader in (HostLinkedLoader(), DeviceLinkedLoader()):
        sim, machine, nic, host = loader_world()
        image = OffcodeImage(bindname="x", size_bytes=64 * 1024,
                             undefined_symbols=30)
        out = {}

        def proc(loader=loader, nic=nic, host=host):
            out["report"] = yield from loader.load(image, nic, host)

        sim.run_until_event(sim.spawn(proc()))
        results[loader.strategy] = out["report"]
    host_linked = results["host-linked"]
    device_linked = results["device-linked"]
    assert device_linked.device_cpu_ns > host_linked.device_cpu_ns
    assert device_linked.transferred_bytes > host_linked.transferred_bytes
    assert host_linked.host_cpu_ns > device_linked.host_cpu_ns


def test_load_fails_when_device_memory_exhausted():
    sim, machine, nic, host = loader_world()
    image = OffcodeImage(bindname="x",
                         size_bytes=nic.spec.local_memory_bytes * 2,
                         undefined_symbols=1)

    def proc():
        yield from HostLinkedLoader().load(image, nic, host)

    sim.spawn(proc())
    with pytest.raises(LoaderError):
        sim.run()


def test_compile_only_for_source_form():
    sim, machine, nic, host = loader_world()
    source = OdfDocument(bindname="s", guid=Guid(1), form="source",
                         image_bytes=8 * 1024)
    binary = OdfDocument(bindname="b", guid=Guid(2), form="object",
                         image_bytes=8 * 1024)
    out = {}

    def proc():
        busy0 = machine.cpu.total_busy
        out["img_src"] = yield from compile_for_target(source, host)
        out["compile_cost"] = machine.cpu.total_busy - busy0
        busy1 = machine.cpu.total_busy
        out["img_bin"] = yield from compile_for_target(binary, host)
        out["nocompile_cost"] = machine.cpu.total_busy - busy1

    sim.run_until_event(sim.spawn(proc()))
    assert out["img_src"].compiled
    assert not out["img_bin"].compiled
    assert out["compile_cost"] > 0
    assert out["nocompile_cost"] == 0


def test_loader_registry_per_device_override():
    registry = LoaderRegistry()
    assert registry.loader_for("nic0").strategy == "host-linked"
    registry.register("nic0", DeviceLinkedLoader())
    assert registry.loader_for("nic0").strategy == "device-linked"
    assert registry.loader_for("gpu0").strategy == "host-linked"
