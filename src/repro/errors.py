"""Exception hierarchy for the HYDRA reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch framework failures without masking programming errors.
The sub-hierarchy mirrors the major subsystems: the simulation engine, the
hardware models, the host-OS models, and the HYDRA core runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event engine errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a finished simulator."""


class ProcessError(SimulationError):
    """A simulated process failed or was used incorrectly."""


class InterruptError(ProcessError):
    """A process was interrupted while waiting.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.engine.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# ---------------------------------------------------------------------------
# Hardware models
# ---------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for hardware-model errors."""


class BusError(HardwareError):
    """Invalid bus transaction (unknown endpoint, zero-length DMA, ...)."""


class DeviceError(HardwareError):
    """A programmable device rejected an operation."""


class DeviceMemoryError(DeviceError):
    """Device-local memory exhausted or an invalid region was referenced."""


class DeviceFailedError(DeviceError):
    """An operation reached a device that has crashed.

    Raised by the firmware-execution and DMA verbs of a
    :class:`~repro.hw.device.ProgrammableDevice` whose health state is
    ``CRASHED``: the embedded CPU no longer runs, so any work charged to
    it (or any descriptor it would have to process) fails immediately
    rather than hanging the simulation.
    """


# ---------------------------------------------------------------------------
# Host OS models
# ---------------------------------------------------------------------------

class OSError_(ReproError):
    """Base class for simulated-OS errors (named to avoid shadowing builtins)."""


class SyscallError(OSError_):
    """A simulated system call failed."""


class SocketError(OSError_):
    """Invalid socket usage in the simulated network stack."""


class FileSystemError(OSError_):
    """Simulated file-system / NFS failure."""


# ---------------------------------------------------------------------------
# HYDRA core
# ---------------------------------------------------------------------------

class HydraError(ReproError):
    """Base class for HYDRA runtime errors."""


class ODFError(HydraError):
    """An Offcode Description File is malformed or inconsistent."""


class OffcodeError(HydraError):
    """Offcode lifecycle violation (bad state transition, missing interface)."""


class InterfaceError(HydraError):
    """Unknown interface GUID or method, or a signature mismatch."""


class MarshalError(HydraError):
    """A value could not be serialized into / deserialized from a Call."""


class ChannelError(HydraError):
    """Channel misuse: wrong state, endpoint mismatch, buffer exhaustion."""


class ChannelClosedError(ChannelError):
    """Operation attempted on a closed channel."""


class ProviderError(HydraError):
    """No channel provider can satisfy a requested channel configuration."""


class RdmaError(HydraError):
    """One-sided verb misuse: bad rkey, out-of-bounds access, revoked
    memory region, or a queue pair driven against a dead RDMA engine."""


class AdmissionShedError(ChannelError):
    """A call was shed by admission control during overload or a drain.

    Raised at the submission edge (proxy holding queue overflow, or the
    Channel Executive's brownout policy refusing a low-priority call) so
    callers observe back-pressure as a typed error instead of unbounded
    queueing.  ``priority`` carries the channel priority that lost the
    admission decision.
    """

    def __init__(self, message: str, priority: int = 0) -> None:
        super().__init__(message)
        self.priority = priority


class MigrationError(HydraError):
    """A live offcode migration could not complete.

    The partially-performed cutover is recorded on the runtime's
    ``migrations`` list (``failed_at_ns``/``error``) for post-mortem;
    holding gates are always released before this propagates, so callers
    never deadlock on a failed migration.
    """


class DepotError(HydraError):
    """Offcode Depot lookup failed (no instance for GUID/device class)."""


class LoaderError(HydraError):
    """Dynamic Offcode loading failed (no loader, allocation failure...)."""


class DeploymentError(HydraError):
    """The deployment pipeline could not place or start the Offcodes."""


class LayoutError(HydraError):
    """Offloading layout graph construction or validation failed."""


class InfeasibleLayoutError(LayoutError):
    """No placement satisfies the constraint set (Eq. 1 cannot hold)."""


class SolverError(LayoutError):
    """The ILP solver failed to produce a solution."""


class ResourceError(HydraError):
    """Hierarchical resource-management failure (double free, bad parent)."""


class OffloadTimeoutError(HydraError):
    """An offloaded invocation missed its per-call deadline.

    The containment half of the fault model: a proxy configured with a
    :class:`~repro.core.call.CallPolicy` bounds every attempt with a
    deadline, so a call into a stalled device surfaces as this typed
    error instead of blocking its caller forever.
    """


class RetryBudgetExceededError(OffloadTimeoutError):
    """Every retry of a deadline-bounded invocation timed out.

    Subclasses :class:`OffloadTimeoutError` so callers that only care
    about "the call did not complete in time" need a single except
    clause; the ``attempts`` attribute carries how many were made.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts
