"""The blessed public surface of the reproduction, in one import.

Everything an application, example, or notebook needs lives here::

    from repro.api import (Simulator, Machine, HydraRuntime,
                           DeploymentSpec, ChannelConfig, CallPolicy)

The deeper packages (:mod:`repro.core`, :mod:`repro.hw`, ...) remain
importable for framework development, but this module is the stable
contract: names re-exported here follow deprecation policy (a
:class:`DeprecationWarning` for at least one release before removal),
names elsewhere may move without notice.

The surface groups by concern:

* **Simulation** — :class:`Simulator`, :class:`RandomStreams`, the
  waitable primitives, and the blessed scheduling surface
  ``sim.clock`` (:class:`Clock`: ``after``/``at``/``every``/
  ``timeout``/``fence``, returning cancellable :class:`Timer`
  handles).  ``Simulator.delay``/``Simulator.schedule`` remain as
  :class:`DeprecationWarning` shims.
* **Hardware** — :class:`Machine` and the programmable-device zoo.
* **Host OS / network** — the simulated kernel, UDP stack and switch.
* **Programming model** — :class:`HydraRuntime`,
  :class:`DeploymentSpec`, Offcodes, interfaces, ODF manifests,
  proxies and :class:`CallPolicy`.
* **Channels & batching** — the fluent :class:`ChannelConfig` builder,
  :class:`BatchConfig` watermarks, :class:`CallBatch` and the
  executive-side :class:`ChannelBatcher`.
* **Layout optimization** — the Section-5 solvers and objectives.
* **Fault injection & recovery** — :class:`FaultPlan`,
  :class:`FaultInjector`, the device watchdog, periodic checkpointing
  (:class:`CheckpointConfig`) and the seeded chaos soak
  (:func:`run_chaos_scenario`, :func:`soak`, the named ``PROFILES``).
* **Resilience** — live offcode migration
  (:meth:`HydraRuntime.migrate`, :class:`MigrationRecord`) and the
  self-healing supervisor (:class:`SupervisorConfig`,
  :class:`AdmissionController`).
* **Telemetry** — the :class:`Telemetry` hub (causal spans +
  :class:`MetricsRegistry`); exporters live in
  :mod:`repro.telemetry.export`.
* **TiVoPC case study** — testbed, servers, clients and metrics.
"""

from __future__ import annotations

# -- simulation -------------------------------------------------------------------
from repro import units
from repro.sim import (
    AllOf,
    AnyOf,
    Clock,
    Event,
    Process,
    RandomStreams,
    Resource,
    Simulator,
    Store,
    Timeout,
    Timer,
)

# -- hardware ---------------------------------------------------------------------
from repro.hw import (
    Bus,
    BusSpec,
    DeviceClass,
    DeviceSpec,
    Gpu,
    GpuSpec,
    HOST_MEMORY,
    Machine,
    MachineSpec,
    Nic,
    NicSpec,
    ProgrammableDevice,
    SmartDisk,
)
from repro.hw.spin import (
    DROP,
    SPIN_FEATURE,
    TO_HOST,
    SpinHandlers,
    SpinNic,
    SpinNicSpec,
)

# -- host OS and network -----------------------------------------------------------
from repro.hostos import Kernel, KernelConfig, NfsServer, UdpStack
from repro.net import Address, Link, Packet, Switch

# -- programming model --------------------------------------------------------------
from repro.core import (
    Call,
    CallPolicy,
    CreateOffcodeResult,
    InterfaceSpec,
    MethodSpec,
    Offcode,
    OffcodeDepot,
    OffcodeState,
    Proxy,
    guid_from_name,
    make_call,
    parse_wsdl,
)
from repro.core.odf import (
    DeviceClassFilter,
    OdfDocument,
    OdfImport,
    OdfLibrary,
    SoftwareRequirements,
)
from repro.core.runtime import (
    CleanupReport,
    DeploymentResult,
    DeploymentSpec,
    HydraRuntime,
    RecoveryIncident,
)
from repro.core.sites import DeviceSite, ExecutionSite, HostSite

# -- channels and vectored batching ---------------------------------------------------
from repro.core.call import BatchEntry, CallBatch
from repro.core.channel import (
    BatchConfig,
    Buffering,
    Channel,
    ChannelConfig,
    ChannelKind,
    ChannelStats,
    Endpoint,
    Message,
    Reliability,
    RetransmitConfig,
    SyncMode,
)
from repro.core.executive import (
    BatcherStats,
    ChannelBatcher,
    ChannelExecutive,
)
from repro.core.providers import CostMetric

# -- one-sided RDMA substrate ---------------------------------------------------------
from repro.rdma import (
    RDMA_FEATURE,
    Completion,
    CompletionQueue,
    QueuePair,
    RdmaProvider,
    RdmaRegion,
    RdmaStats,
    WorkRequest,
)

# -- layout optimization (Section 5) --------------------------------------------------
from repro.core.layout import (
    BranchAndBoundSolver,
    BusCapabilityMatrix,
    ConstraintType,
    GreedySolver,
    LayoutGraph,
    MaximizeBusUsage,
    MaximizeOffloading,
    MinimizeBusCrossings,
    MinimizeHostCpu,
    Objective,
    ScipyMilpSolver,
    TrafficMatrix,
)

# -- fault injection and recovery ------------------------------------------------------
from repro.core.checkpoint import (
    CheckpointConfig,
    CheckpointService,
    CheckpointStore,
)
from repro.core.watchdog import DeviceWatchdog, WatchdogConfig
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.faults.chaos import (
    PROFILES,
    ChaosProfile,
    ChaosReport,
    run_chaos_scenario,
    soak,
)

# -- resilience: live migration and self-healing -----------------------------------------
from repro.resilience import (
    AdmissionController,
    HoldingGate,
    MigrationRecord,
    Supervisor,
    SupervisorConfig,
)

# -- telemetry ---------------------------------------------------------------------------
from repro.telemetry import (
    MetricsRegistry,
    Span,
    SpanContext,
    Telemetry,
    merge_snapshots,
)

# -- virtualization --------------------------------------------------------------------
from repro.virt import OffloadedVmm, SoftwareVmm

# -- the TiVoPC case study --------------------------------------------------------------
from repro.tivopc import (
    GuiController,
    JitterCollector,
    MeasurementClient,
    OffloadedClient,
    OffloadedServer,
    PopulationConfig,
    SummaryStats,
    Testbed,
    TestbedConfig,
    UserSpaceClient,
    run_population,
    validate_fidelity,
)

# -- fleet-scale sharded runs ------------------------------------------------------------
from repro.evaluation.fleet import (
    FleetConfig,
    FleetReport,
    config_fingerprint,
    run_fleet,
    shard_seed,
)
from repro.evaluation.supervised import (
    SupervisedPool,
    SupervisionPolicy,
)
from repro.faults.fleet import FleetChaos

# -- errors ------------------------------------------------------------------------------
from repro.errors import (
    AdmissionShedError,
    ChannelError,
    DeploymentError,
    DeviceFailedError,
    HydraError,
    MigrationError,
    OffloadTimeoutError,
    ProviderError,
    RdmaError,
    RetryBudgetExceededError,
)

__all__ = [
    # simulation
    "AllOf",
    "AnyOf",
    "Clock",
    "Event",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
    "Timer",
    "units",
    # hardware
    "Bus",
    "BusSpec",
    "DeviceClass",
    "DeviceSpec",
    "Gpu",
    "GpuSpec",
    "HOST_MEMORY",
    "Machine",
    "MachineSpec",
    "Nic",
    "NicSpec",
    "ProgrammableDevice",
    "SmartDisk",
    # host OS and network
    "Address",
    "Kernel",
    "KernelConfig",
    "Link",
    "NfsServer",
    "Packet",
    "Switch",
    "UdpStack",
    # programming model
    "Call",
    "CallPolicy",
    "CleanupReport",
    "CreateOffcodeResult",
    "DeploymentResult",
    "DeploymentSpec",
    "DeviceClassFilter",
    "DeviceSite",
    "ExecutionSite",
    "HostSite",
    "HydraRuntime",
    "InterfaceSpec",
    "MethodSpec",
    "OdfDocument",
    "OdfImport",
    "OdfLibrary",
    "Offcode",
    "OffcodeDepot",
    "OffcodeState",
    "Proxy",
    "RecoveryIncident",
    "SoftwareRequirements",
    "guid_from_name",
    "make_call",
    "parse_wsdl",
    # channels and batching
    "BatchConfig",
    "BatchEntry",
    "BatcherStats",
    "Buffering",
    "CallBatch",
    "Channel",
    "ChannelBatcher",
    "ChannelConfig",
    "ChannelExecutive",
    "ChannelKind",
    "ChannelStats",
    "CostMetric",
    "Endpoint",
    "Message",
    "Reliability",
    "RetransmitConfig",
    "SyncMode",
    # layout optimization
    "BranchAndBoundSolver",
    "BusCapabilityMatrix",
    "ConstraintType",
    "GreedySolver",
    "LayoutGraph",
    "MaximizeBusUsage",
    "MaximizeOffloading",
    "MinimizeBusCrossings",
    "MinimizeHostCpu",
    "Objective",
    "ScipyMilpSolver",
    "TrafficMatrix",
    # fault injection and recovery
    "ChaosProfile",
    "ChaosReport",
    "CheckpointConfig",
    "CheckpointService",
    "CheckpointStore",
    "DeviceWatchdog",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "PROFILES",
    "WatchdogConfig",
    "run_chaos_scenario",
    "soak",
    # resilience: live migration and self-healing
    "AdmissionController",
    "HoldingGate",
    "MigrationRecord",
    "Supervisor",
    "SupervisorConfig",
    # telemetry
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Telemetry",
    "merge_snapshots",
    # virtualization
    "OffloadedVmm",
    "SoftwareVmm",
    # TiVoPC
    "GuiController",
    "JitterCollector",
    "MeasurementClient",
    "OffloadedClient",
    "OffloadedServer",
    "PopulationConfig",
    "SummaryStats",
    "Testbed",
    "TestbedConfig",
    "UserSpaceClient",
    "run_population",
    "validate_fidelity",
    # fleet-scale sharded runs
    "FleetChaos",
    "FleetConfig",
    "FleetReport",
    "SupervisedPool",
    "SupervisionPolicy",
    "config_fingerprint",
    "run_fleet",
    "shard_seed",
    # errors
    "AdmissionShedError",
    "ChannelError",
    "DeploymentError",
    "DeviceFailedError",
    "HydraError",
    "MigrationError",
    "OffloadTimeoutError",
    "ProviderError",
    "RdmaError",
    "RetryBudgetExceededError",
    # one-sided RDMA substrate
    "Completion",
    "CompletionQueue",
    "QueuePair",
    "RDMA_FEATURE",
    "RdmaProvider",
    "RdmaRegion",
    "RdmaStats",
    "WorkRequest",
    # sPIN NIC handlers
    "DROP",
    "SPIN_FEATURE",
    "SpinHandlers",
    "SpinNic",
    "SpinNicSpec",
    "TO_HOST",
]
