"""The fault injector — applies a :class:`FaultPlan` to a live simulation.

One injector drives one simulator.  It is handed explicit registries of
the things it may break (devices by name, buses by name, channel
executives to search for labelled channels) so a plan can never reach
outside the experiment that owns it.  The injector itself is a single
simulation process that sleeps until each event's timestamp and applies
it synchronously; a mis-targeted event (unknown device, no matching
channel) is traced and skipped rather than crashing the run — chaos
experiments should degrade, not abort.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, List, Optional

from repro.errors import ReproError
from repro.core.channel import Channel, Message
from repro.core.executive import ChannelExecutive
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.hw.bus import Bus
from repro.hw.device import ProgrammableDevice
from repro.sim.engine import Event, Simulator
from repro.sim.trace import emit as trace_emit

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes a :class:`FaultPlan` against registered targets."""

    def __init__(self, sim: Simulator, plan: FaultPlan,
                 devices: Optional[Dict[str, ProgrammableDevice]] = None,
                 buses: Optional[Dict[str, Bus]] = None,
                 executives: Optional[List[ChannelExecutive]] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.sim = sim
        self.plan = plan
        self.devices = dict(devices or {})
        self.buses = dict(buses or {})
        self.executives = list(executives or [])
        # Deterministic noise source; callers pass a named stream from
        # repro.sim.rng.RandomStreams.  A fixed-seed fallback keeps even
        # lazy callers reproducible — never wall-clock.
        self.rng = rng or random.Random(0)
        self.applied: List[FaultEvent] = []
        self.skipped: List[FaultEvent] = []
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Spawn the injector process (idempotence guarded)."""
        if self._process is not None:
            raise ReproError("fault injector already started")
        self._process = self.sim.spawn(self._drive(), name="fault-injector")
        return self._process

    def _drive(self) -> Generator[Event, None, None]:
        for event in self.plan.sorted_events():
            if event.at_ns > self.sim.now:
                yield self.sim.timeout(event.at_ns - self.sim.now)
            try:
                self._apply(event)
                self.applied.append(event)
                tel = self.sim.telemetry
                if tel is not None:
                    tel.instant(f"fault.{event.kind.value}", "fault",
                                "faults", kind=event.kind.value,
                                target=event.target)
            except Exception as exc:
                self.skipped.append(event)
                trace_emit(self.sim, "fault",
                           f"injector could not apply {event.kind.value} "
                           f"on {event.target!r}: {exc!r}",
                           kind=event.kind.value, target=event.target)

    # -- application -------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        if event.kind is FaultKind.DEVICE_CRASH:
            self._device(event.target).health.crash()
        elif event.kind is FaultKind.DEVICE_STALL:
            self._device(event.target).health.stall()
        elif event.kind is FaultKind.DEVICE_RESUME:
            self._device(event.target).health.resume()
        elif event.kind is FaultKind.BUS_TRANSIENT:
            self._bus(event.target).inject_transients(int(event.arg or 1))
        elif event.kind is FaultKind.CHANNEL_NOISE:
            loss, corrupt = event.arg
            channels = self._channels_labelled(event.target)
            if not channels:
                raise ReproError(
                    f"no open channel labelled {event.target!r}")
            for channel in channels:
                channel.set_fault_filter(self._noise_filter(loss, corrupt))
            trace_emit(self.sim, "fault",
                       f"noise armed on {len(channels)} channel(s) "
                       f"labelled {event.target!r}",
                       label=event.target, loss=loss, corrupt=corrupt)
        else:  # pragma: no cover - enum is closed
            raise ReproError(f"unknown fault kind {event.kind!r}")

    def _device(self, name: str) -> ProgrammableDevice:
        try:
            return self.devices[name]
        except KeyError:
            raise ReproError(
                f"injector has no device registered as {name!r}") from None

    def _bus(self, name: str) -> Bus:
        try:
            return self.buses[name]
        except KeyError:
            raise ReproError(
                f"injector has no bus registered as {name!r}") from None

    def _channels_labelled(self, label: str) -> List[Channel]:
        # Reliability is no longer a shield: noise on a RELIABLE channel
        # arms its ack/retransmit protocol (exactly-once is earned, not
        # assumed), while UNRELIABLE channels surface the faults raw.
        return [channel
                for executive in self.executives
                for channel in executive.channels
                if channel.config.label == label and not channel.closed]

    def _noise_filter(self, loss: float, corrupt: float
                      ) -> Callable[[Message], Optional[str]]:
        rng = self.rng

        def noise(message: Message) -> Optional[str]:
            draw = rng.random()
            if draw < loss:
                return "drop"
            if draw < loss + corrupt:
                return "corrupt"
            return None

        return noise
