"""Deterministic host-level fault injection for the fleet dispatcher.

:mod:`repro.faults` injects faults *inside* the simulation (device
crashes, bus transients, channel noise).  :class:`FleetChaos` injects
them one level up, into the **host processes** that run fleet shards:
a worker pick — the moment a worker pulls ``(shard, attempt)`` off the
queue — can be killed (``os._exit``, exactly what an OOM kill looks
like to the parent), stalled (a sleep longer than the shard timeout,
i.e. a wedged process) or slowed (a straggler, which is what hedging
exists for).

Faults are addressed by ``(task key, attempt)`` — for the fleet the
key is the shard id — so the schedule is a pure function of the chaos
spec: no wall clock, no global RNG.  A kill at ``(shard 3, attempt 0)``
fires once; the retry runs attempt 1, which the spec doesn't name, and
completes — which is why a chaos run's canonical fleet report is
byte-identical to an undisturbed run (shard results depend only on
``(fleet_seed, shard_id)``).

``seeded()`` derives the picks from a seed through the blessed
:class:`~repro.sim.rng.RandomStreams` hash, for soak-style sweeps where
enumerating picks by hand would bias the test toward the cases the
author thought of.

In-process mode (``workers=1``): a kill cannot ``os._exit`` without
taking the caller down, so ``apply(..., in_process=True)`` raises
:class:`ChaosKill` / :class:`ChaosStall` instead — the supervisor's
retry path sees the same failure either way.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.errors import ReproError
from repro.sim.rng import RandomStreams

__all__ = ["ChaosKill", "ChaosStall", "FleetChaos", "CHAOS_EXIT_CODE"]

# Distinctive worker exit status for chaos kills, so a supervisor log
# line can tell an injected death from a genuine crash.
CHAOS_EXIT_CODE = 117


class ChaosKill(ReproError):
    """In-process stand-in for a chaos worker kill."""


class ChaosStall(ReproError):
    """In-process stand-in for a chaos worker stall (a wedged worker
    cannot be reaped by a wall-clock watchdog without a real process, so
    the sequential path surfaces the stall as an immediate failure)."""


@dataclass(frozen=True)
class FleetChaos:
    """A deterministic schedule of host faults, keyed by worker pick.

    ``kills`` is a tuple of ``(key, attempt)`` picks; ``stalls`` and
    ``slows`` are tuples of ``(key, attempt, seconds)``.  ``seconds``
    for a stall should exceed the supervisor's ``shard_timeout_s`` (the
    stall models a wedge, the watchdog does the reaping); for a slow it
    is the extra latency that turns the pick into a straggler.
    """

    kills: Tuple[Tuple[Hashable, int], ...] = ()
    stalls: Tuple[Tuple[Hashable, int, float], ...] = ()
    slows: Tuple[Tuple[Hashable, int, float], ...] = ()

    def __post_init__(self) -> None:
        for key, attempt in self.kills:
            if attempt < 0:
                raise ReproError(f"kill attempt must be >= 0: "
                                 f"({key}, {attempt})")
        for name, picks in (("stall", self.stalls), ("slow", self.slows)):
            for key, attempt, seconds in picks:
                if attempt < 0 or seconds < 0:
                    raise ReproError(
                        f"{name} pick out of range: "
                        f"({key}, {attempt}, {seconds})")

    @classmethod
    def seeded(cls, seed: int, shards: int, kills: int = 1,
               stalls: int = 0, slows: int = 0, stall_s: float = 30.0,
               slow_s: float = 0.2) -> "FleetChaos":
        """Derive ``kills + stalls + slows`` distinct shard picks from
        ``seed`` via the blessed stream derivation (attempt 0 each — the
        first pick of a shard is the one a real host fault would hit)."""
        total = kills + stalls + slows
        if total > shards:
            raise ReproError(
                f"cannot pick {total} distinct shards out of {shards}")
        rng = random.Random(RandomStreams(seed).derive("fleet-chaos"))
        picks = rng.sample(range(shards), total)
        return cls(
            kills=tuple((shard, 0) for shard in picks[:kills]),
            stalls=tuple((shard, 0, stall_s)
                         for shard in picks[kills:kills + stalls]),
            slows=tuple((shard, 0, slow_s)
                        for shard in picks[kills + stalls:]))

    @classmethod
    def poison(cls, key: Hashable, max_retries: int) -> "FleetChaos":
        """Kill every attempt of one task: the retry-exhaustion case."""
        return cls(kills=tuple((key, attempt)
                               for attempt in range(max_retries + 1)))

    # -- application ----------------------------------------------------------

    def apply(self, key: Hashable, attempt: int,
              in_process: bool = False) -> None:
        """Fire whatever this schedule holds for ``(key, attempt)``.

        Called by the worker body right after the pick (fork workers)
        or by the sequential dispatcher (``in_process=True``).
        """
        pick = (key, attempt)
        if pick in self.kills:
            if in_process:
                raise ChaosKill(
                    f"chaos kill: task {key} attempt {attempt}")
            os._exit(CHAOS_EXIT_CODE)
        for stall_key, stall_attempt, seconds in self.stalls:
            if (stall_key, stall_attempt) == pick:
                if in_process:
                    raise ChaosStall(
                        f"chaos stall: task {key} attempt {attempt}")
                time.sleep(seconds)
        for slow_key, slow_attempt, seconds in self.slows:
            if (slow_key, slow_attempt) == pick:
                time.sleep(seconds)

    def describe(self) -> str:
        """One-line schedule summary for logs and reproduce commands."""
        parts = []
        if self.kills:
            parts.append("kill " + ",".join(
                f"{k}:{a}" for k, a in self.kills))
        if self.stalls:
            parts.append("stall " + ",".join(
                f"{k}:{a}({s:g}s)" for k, a, s in self.stalls))
        if self.slows:
            parts.append("slow " + ",".join(
                f"{k}:{a}(+{s:g}s)" for k, a, s in self.slows))
        return "; ".join(parts) if parts else "no faults"
