"""Deterministic fault injection for the HYDRA simulation.

The subsystem splits cleanly in two:

* :mod:`repro.faults.plan` — a :class:`FaultPlan`: a declarative,
  sim-clock-scheduled list of :class:`FaultEvent` records (device crash,
  stall/resume, bus transients, channel loss/corruption).  Plans are
  plain data; building one has no side effects.
* :mod:`repro.faults.injector` — a :class:`FaultInjector`: a simulation
  process that walks a plan in time order and applies each event through
  the hooks the hardware and channel layers expose
  (:meth:`~repro.hw.device.DeviceHealth.crash`,
  :meth:`~repro.hw.bus.Bus.inject_transients`,
  :meth:`~repro.core.channel.Channel.set_fault_filter`).
* :mod:`repro.faults.chaos` — the seeded soak harness: a seed
  deterministically expands into a randomized plan, the offloaded
  TiVoPC pipeline runs under it, and :func:`~repro.faults.chaos.\
check_invariants` decides pass/fail (``python -m repro.faults.chaos``).
* :mod:`repro.faults.fleet` — :class:`FleetChaos`: host-level fault
  injection (worker kill/stall/slow by ``(shard, attempt)`` pick) for
  the supervised fleet dispatcher.

All randomness (loss/corruption coin flips) comes from a named
:class:`repro.sim.rng.RandomStreams` stream — never wall clock — so the
same seed and plan replay the same failure history, byte for byte.
"""

from repro.faults.fleet import ChaosKill, ChaosStall, FleetChaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["ChaosKill", "ChaosProfile", "ChaosReport", "ChaosRun",
           "ChaosStall", "FaultEvent", "FaultInjector", "FaultKind",
           "FaultPlan", "FleetChaos", "check_invariants", "generate_plan",
           "run_chaos_scenario", "soak"]

# The chaos harness pulls in the whole TiVoPC testbed; importing it
# lazily keeps `import repro.faults` light and lets `python -m
# repro.faults.chaos` run without a double-import warning.
_CHAOS_EXPORTS = ("ChaosProfile", "ChaosReport", "ChaosRun",
                  "check_invariants", "generate_plan",
                  "run_chaos_scenario", "soak")


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos
        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
