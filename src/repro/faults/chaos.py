"""Seeded chaos soak — randomized fault schedules with invariants.

The fault plan and injector make single scripted failures replayable;
this module turns them into a *soak*: a seed deterministically generates
a randomized :class:`~repro.faults.plan.FaultPlan` (channel noise, bus
transients, firmware stalls, a device crash), runs the full offloaded
TiVoPC pipeline under it, and checks a fixed set of invariants — every
incident recovered, crashed devices fenced, exactly-once accounting on
every noise-armed reliable channel, the media pipeline still running
and making progress.  A failing seed is its own reproduction recipe::

    PYTHONPATH=src python -m repro.faults.chaos --seeds 17:18

Everything derives from ``random.Random(seed)`` streams — never wall
clock — so the same seed replays the same failure history byte for
byte (see ``test_chaos_plan_is_deterministic``).
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.core.checkpoint import CheckpointConfig
from repro.core.offcode import OffcodeState
from repro.core.watchdog import WatchdogConfig
from repro.faults.plan import FaultPlan
from repro.resilience import SupervisorConfig
from repro.tivopc.client import OffloadedClient
from repro.tivopc.components import StreamerOffcode
from repro.tivopc.server import OffloadedServer
from repro.tivopc.testbed import Testbed, TestbedConfig

__all__ = ["ChaosProfile", "ChaosRun", "ChaosReport", "PROFILES",
           "generate_plan", "run_chaos_scenario", "check_invariants",
           "soak", "main"]

# Mixed into the seed so the plan stream never collides with the
# testbed's own RandomStreams substreams for the same seed.
_PLAN_SALT = 0x5EEDFA17

# The Figure-8 client components every healthy run must keep deployed.
_CLIENT_BINDNAMES = ("tivopc.NetStreamer", "tivopc.DiskStreamer",
                     "tivopc.Decoder", "tivopc.Display", "tivopc.File")


@dataclass(frozen=True)
class ChaosProfile:
    """Bounds of the randomized fault schedule.

    Defaults are tuned so every draw stays *recoverable*: crashes hit
    only devices the client depot carries fallback builds for, and
    stalls stay shorter than the watchdog's death threshold (a wedged
    firmware that resumes in time is latency, not an incident).
    """

    name: str = "default"
    seconds: float = 6.0                # streaming horizon after warmup
    warmup_seconds: float = 0.2         # client bring-up before the server
    drain_seconds: float = 0.3          # settle time after server stop
    noise_at_s: float = 0.15            # must precede the first chunk
    loss_range: Tuple[float, float] = (0.05, 0.15)
    corrupt_range: Tuple[float, float] = (0.0, 0.05)
    crash_targets: Tuple[str, ...] = ("client.nic0",)
    crash_probability: float = 1.0
    stall_targets: Tuple[str, ...] = ("server.nic0",)
    stall_probability: float = 0.5
    stall_ns_range: Tuple[int, int] = (1 * units.MS, 3 * units.MS)
    bus_targets: Tuple[str, ...] = ("client",)
    max_bus_transients: int = 3
    checkpoint: bool = True
    telemetry: bool = False             # attach a repro.telemetry hub
    scheduler: str = "wheel"            # event queue: "wheel" or "heap"
    # Resilience knobs (the flap/overload/drain presets in PROFILES).
    standby_nic: bool = False           # add "nic1" as a migration target
    supervisor: Optional[SupervisorConfig] = None
    # Scripted live migration mid-stream: > 0 migrates
    # ``migrate_bindname`` at that offset (relative to server start).
    migrate_at_s: float = 0.0
    migrate_bindname: str = "tivopc.NetStreamer"
    migrate_target: Optional[str] = None
    # Deterministic flap schedule: repeated short stalls (well below the
    # watchdog death threshold) that exercise quarantine, not recovery.
    flap_target: str = "client.nic0"
    flap_count: int = 0
    flap_at_s: float = 1.0              # first stall, after server start
    flap_spacing_s: float = 0.02
    flap_stall_ns: int = 3_500_000
    # Which supervisor outcomes the invariant checker demands.
    expect_quarantine: bool = False
    expect_admission: bool = False


# Named presets for the chaos CLI (``--profile``).  Each is a complete
# ChaosProfile; command-line overrides (``--seconds``) are applied on
# top with dataclasses.replace.
PROFILES: Dict[str, ChaosProfile] = {
    # The original soak: noise + transients + one hard crash.
    "default": ChaosProfile(),
    # Planned drain: no failures at all — a scripted live migration of
    # the network Streamer onto the client's standby NIC mid-stream.
    # The invariants demand a completed cutover and an exactly-once
    # stream (every packet the server sent handled exactly once).
    "drain": ChaosProfile(
        name="drain", crash_probability=0.0, stall_probability=0.0,
        standby_nic=True, supervisor=SupervisorConfig(),
        migrate_at_s=2.0, migrate_target="nic1"),
    # Flapping firmware: bursts of sub-threshold stalls on the client
    # NIC.  No device ever dies; the supervisor must quarantine the
    # flapper (exactly once per burst), drain it, and un-quarantine it
    # after probation.
    "flap": ChaosProfile(
        name="flap", crash_probability=0.0, stall_probability=0.0,
        flap_count=3, supervisor=SupervisorConfig(),
        expect_quarantine=True),
    # Overload: heavy channel noise drives the retransmit-rate EWMA
    # over the brownout threshold; the supervisor must engage
    # priority-aware admission control at the executive.
    "overload": ChaosProfile(
        name="overload", crash_probability=0.0, stall_probability=0.0,
        loss_range=(0.25, 0.35),
        supervisor=SupervisorConfig(brownout_enter=50.0,
                                    brownout_exit=10.0),
        expect_admission=True),
}


def generate_plan(seed: int, profile: Optional[ChaosProfile] = None
                  ) -> FaultPlan:
    """Deterministically derive a fault schedule from ``seed``."""
    profile = profile or ChaosProfile()
    rng = random.Random((seed << 1) ^ _PLAN_SALT)
    plan = FaultPlan()

    # Channel noise arms before the first media chunk flows, so the
    # reliable data plane's wire-attempt accounting covers the whole
    # stream and the exactly-once identity is checkable afterwards.
    plan.channel_noise(
        round(profile.noise_at_s * units.SECOND),
        StreamerOffcode.DATA_LABEL,
        loss=rng.uniform(*profile.loss_range),
        corrupt=rng.uniform(*profile.corrupt_range))

    start_ns = round(profile.warmup_seconds * units.SECOND)
    horizon_ns = start_ns + round(profile.seconds * units.SECOND)

    # Bus transients: soft errors sprinkled through the stream.
    for _ in range(rng.randint(0, profile.max_bus_transients)):
        plan.bus_transients(rng.randint(start_ns, horizon_ns),
                            rng.choice(profile.bus_targets),
                            count=rng.randint(1, 3))

    # A short firmware stall — below the watchdog threshold, so it must
    # NOT produce an incident.
    if profile.stall_targets and rng.random() < profile.stall_probability:
        plan.stall_device(
            rng.randint(start_ns + round(0.5 * units.SECOND),
                        horizon_ns - round(1.0 * units.SECOND)),
            rng.choice(profile.stall_targets),
            duration_ns=rng.randint(*profile.stall_ns_range))

    # One hard crash mid-stream; the window leaves room for detection,
    # degraded redeploy, and a meaningful post-recovery stream.
    if profile.crash_targets and rng.random() < profile.crash_probability:
        plan.crash_device(
            rng.randint(start_ns + round(0.8 * units.SECOND),
                        horizon_ns - round(2.0 * units.SECOND)),
            rng.choice(profile.crash_targets))

    # Deterministic flap burst (flap profile): each stall is shorter
    # than the watchdog's death threshold, so the device oscillates
    # suspect→alive without ever producing an incident — exactly the
    # signal the supervisor's flap detector quarantines on.
    for i in range(profile.flap_count):
        plan.stall_device(
            start_ns + round((profile.flap_at_s
                              + i * profile.flap_spacing_s) * units.SECOND),
            profile.flap_target, duration_ns=profile.flap_stall_ns)
    return plan


@dataclass
class ChaosRun:
    """Everything a completed scenario exposes to the invariant checker."""

    seed: int
    profile: ChaosProfile
    plan: FaultPlan
    testbed: Testbed
    client: OffloadedClient
    server: OffloadedServer
    # Scripted-migration outcome: {"record": MigrationRecord} on
    # success, {"error": exc} on failure, empty when none was scheduled.
    migration: dict = field(default_factory=dict)


@dataclass
class ChaosReport:
    """Verdict for one seed."""

    seed: int
    violations: List[str] = field(default_factory=list)
    incidents: int = 0
    retransmits: int = 0
    dup_dropped: int = 0
    chunks_received: int = 0
    migrations: int = 0

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations


def run_chaos_scenario(seed: int, profile: Optional[ChaosProfile] = None
                       ) -> ChaosRun:
    """Run the offloaded TiVoPC pipeline under the seed's fault plan.

    Staging matters: the client deploys and the noise arms during the
    warmup window, *then* the server starts — so every media chunk
    crosses an already-noise-armed reliable channel.  After the horizon
    the server stops and the run drains, letting in-flight frames land
    before the invariants take their snapshot.
    """
    profile = profile or ChaosProfile()
    plan = generate_plan(seed, profile)
    testbed = Testbed(TestbedConfig(
        seed=seed, fault_plan=plan, watchdog=WatchdogConfig(),
        checkpoint=CheckpointConfig() if profile.checkpoint else None,
        telemetry=profile.telemetry,
        standby_nic=profile.standby_nic,
        supervisor=profile.supervisor,
        scheduler=profile.scheduler))
    testbed.start()
    client = OffloadedClient(testbed, host_fallback=True)
    client.start()
    testbed.run(profile.warmup_seconds)
    server = OffloadedServer(testbed)
    server.start()
    migration: dict = {}
    if profile.migrate_at_s > 0.0:
        before = min(profile.migrate_at_s, profile.seconds)
        testbed.run(before)
        testbed.sim.spawn(
            _scripted_migration(testbed, profile, migration),
            name="chaos-migrate")
        testbed.run(profile.seconds - before)
    else:
        testbed.run(profile.seconds)
    server.stop()
    testbed.run(profile.drain_seconds)
    return ChaosRun(seed=seed, profile=profile, plan=plan,
                    testbed=testbed, client=client, server=server,
                    migration=migration)


def _scripted_migration(testbed: Testbed, profile: ChaosProfile,
                        outcome: dict):
    """Disposable wrapper: a failed migration must surface as an
    invariant violation, not crash the simulator (nobody awaits this)."""
    try:
        record = yield from testbed.client_runtime.migrate(
            profile.migrate_bindname, target=profile.migrate_target)
    except Exception as exc:
        outcome["error"] = exc
    else:
        outcome["record"] = record


def check_invariants(run: ChaosRun) -> List[str]:
    """The soak's pass/fail oracle; returns human-readable violations."""
    violations: List[str] = []
    testbed = run.testbed
    injector = testbed.fault_injector

    # 1. The schedule actually executed.
    for event in injector.skipped:
        violations.append(
            f"fault event not applied: {event.kind.value} "
            f"on {event.target!r} at {event.at_ns} ns")

    # 2. Every incident recovered (and none failed outright).
    runtimes = {"client": testbed.client_runtime,
                "server": testbed.server_runtime}
    for name, runtime in runtimes.items():
        for incident in runtime.incidents:
            if incident.failed or not incident.recovered:
                violations.append(
                    f"{name} incident on {incident.device!r} not "
                    f"recovered (error={incident.error!r})")

    # 3. Crashed devices were detected and fenced.
    for event in injector.applied:
        if event.kind.value != "device-crash":
            continue
        host, _, device = event.target.partition(".")
        runtime = runtimes.get(host)
        if runtime is None or device not in runtime.failed_devices:
            violations.append(
                f"crashed device {event.target!r} never detected")
            continue
        health = injector.devices[event.target].health
        if health.state not in (health.CRASHED, health.FENCED):
            violations.append(
                f"crashed device {event.target!r} is {health.state}, "
                "neither crashed nor fenced")

    # 4. Exactly-once accounting on every noise-armed reliable channel.
    #    The identity counts wire attempts; a channel torn down by a
    #    crash may carry one in-flight frame whose verdict never landed.
    for runtime in runtimes.values():
        for channel in runtime.executive.channels:
            if channel._rel is None:
                continue
            stats = channel.stats()
            imbalance = stats.sent - (stats.delivered + stats.dropped)
            slack = 1 if channel.closed else 0
            if not 0 <= imbalance <= slack:
                violations.append(
                    f"channel #{stats.channel_id} ({stats.label!r}) "
                    f"leaks accounting: sent={stats.sent} "
                    f"delivered={stats.delivered} dropped={stats.dropped}")
            if stats.corrupted + stats.dup_dropped > stats.dropped:
                violations.append(
                    f"channel #{stats.channel_id} ({stats.label!r}) "
                    "drop breakdown exceeds total drops")

    # 5. The Figure-8 pipeline survived: every component deployed and
    #    running on a healthy site.
    for bindname in _CLIENT_BINDNAMES:
        offcode = testbed.client_runtime.locate(bindname)
        if offcode is None:
            violations.append(f"{bindname} missing after the soak")
        elif offcode.state != OffcodeState.RUNNING:
            violations.append(
                f"{bindname} is {offcode.state.name}, not RUNNING")

    # 6. The stream made real progress end to end.
    if run.server.packets_sent == 0:
        violations.append("server sent no packets")
    if run.client.chunks_received == 0:
        violations.append("client handled no chunks")
    if run.client.frames_shown == 0:
        violations.append("no frames reached the display")
    if run.client.bytes_recorded == 0:
        violations.append("nothing reached the recording")

    # 7. Scripted live migration (drain profile): the cutover completed
    #    on the requested target with every unacked queue drained, and
    #    the stream stayed exactly-once across it — every chunk the
    #    server sent was handled exactly once (no loss, no duplicates).
    profile = run.profile
    if profile.migrate_at_s > 0.0:
        record = run.migration.get("record")
        error = run.migration.get("error")
        if error is not None:
            violations.append(f"live migration raised: {error!r}")
        elif record is None:
            violations.append("live migration never completed")
        else:
            if not record.completed:
                violations.append(
                    f"migration of {record.bindname!r} did not complete "
                    f"(error={record.error!r})")
            if (profile.migrate_target is not None
                    and record.destination != profile.migrate_target):
                violations.append(
                    f"migration landed on {record.destination!r}, "
                    f"wanted {profile.migrate_target!r}")
            if not record.drained:
                violations.append(
                    "migration cut over with unacked messages in flight")
        sent = run.server.packets_sent
        handled = run.client.chunks_received
        if handled != sent:
            violations.append(
                "stream not exactly-once across migration: "
                f"server sent {sent}, client handled {handled}")

    # 8. Supervisor policy outcomes demanded by the profile.
    supervisor = testbed.client_runtime.supervisor
    if profile.expect_quarantine:
        if supervisor is None or supervisor.quarantines != 1:
            count = supervisor.quarantines if supervisor else 0
            violations.append(
                f"expected exactly one quarantine, saw {count}")
        elif supervisor.config.drain and supervisor.drains_completed == 0:
            violations.append(
                "quarantine drained nothing "
                f"(started={supervisor.drains_started} "
                f"failed={supervisor.drains_failed})")
        if testbed.client_runtime.incidents:
            violations.append(
                "sub-threshold flapping produced a recovery incident")
    if profile.expect_admission:
        if supervisor is None or supervisor.admission.engagements == 0:
            violations.append(
                "overload never engaged admission control "
                f"(retransmit EWMA peaked below the brownout threshold)")
    return violations


def _report(run: ChaosRun) -> ChaosReport:
    retransmits = dup_dropped = 0
    for runtime in (run.testbed.client_runtime, run.testbed.server_runtime):
        for channel in runtime.executive.channels:
            stats = channel.stats()
            retransmits += stats.retransmits
            dup_dropped += stats.dup_dropped
    return ChaosReport(
        seed=run.seed, violations=check_invariants(run),
        incidents=(len(run.testbed.client_runtime.incidents)
                   + len(run.testbed.server_runtime.incidents)),
        retransmits=retransmits, dup_dropped=dup_dropped,
        chunks_received=run.client.chunks_received,
        migrations=(len(run.testbed.client_runtime.migrations)
                    + len(run.testbed.server_runtime.migrations)))


def soak(seeds: Sequence[int],
         profile: Optional[ChaosProfile] = None,
         verbose: bool = False) -> List[ChaosReport]:
    """Run every seed and report; printing is left to :func:`main`."""
    reports = []
    for seed in seeds:
        report = _report(run_chaos_scenario(seed, profile))
        reports.append(report)
        if verbose:
            status = "ok" if report.ok else "FAIL"
            print(f"seed {seed:4d}: {status}  "
                  f"incidents={report.incidents} "
                  f"migrations={report.migrations} "
                  f"retransmits={report.retransmits} "
                  f"dup_dropped={report.dup_dropped} "
                  f"chunks={report.chunks_received}")
            for violation in report.violations:
                print(f"           - {violation}")
    return reports


def _parse_seeds(spec: str) -> List[int]:
    if ":" in spec:
        lo, _, hi = spec.partition(":")
        return list(range(int(lo), int(hi)))
    return [int(part) for part in spec.split(",")]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.faults.chaos --seeds 0:50 --profile drain``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default="0:10",
                        help="seed range 'LO:HI' (half-open) or 'a,b,c'")
    parser.add_argument("--profile", default="default",
                        choices=sorted(PROFILES),
                        help="fault-schedule preset: default (noise + "
                             "crash), drain (scripted live migration), "
                             "flap (quarantine), overload (admission)")
    parser.add_argument("--seconds", type=float, default=6.0,
                        help="streaming horizon per seed (sim seconds)")
    parser.add_argument("--no-checkpoint", action="store_true",
                        help="soak without periodic checkpointing")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="run the first seed with telemetry attached "
                             "and write trace/metrics artifacts to DIR")
    args = parser.parse_args(argv)
    profile = replace(PROFILES[args.profile], seconds=args.seconds,
                      checkpoint=not args.no_checkpoint)
    seeds = _parse_seeds(args.seeds)
    reports: List[ChaosReport] = []
    if args.artifacts and seeds:
        from repro.telemetry.export import write_artifacts
        traced = run_chaos_scenario(seeds[0],
                                    replace(profile, telemetry=True))
        paths = write_artifacts(
            traced.testbed.telemetry, args.artifacts,
            prefix=f"chaos-{args.profile}-seed{seeds[0]}")
        for fmt, path in sorted(paths.items()):
            print(f"artifact [{fmt}]: {path}")
        report = _report(traced)
        reports.append(report)
        status = "ok" if report.ok else "FAIL"
        print(f"seed {report.seed:4d}: {status}  (traced)")
        for violation in report.violations:
            print(f"           - {violation}")
        seeds = seeds[1:]
    reports.extend(soak(seeds, profile, verbose=True))
    failed = [r for r in reports if not r.ok]
    print(f"{len(reports) - len(failed)}/{len(reports)} seeds passed")
    for report in failed:
        print(f"reproduce: PYTHONPATH=src python -m repro.faults.chaos "
              f"--seeds {report.seed}:{report.seed + 1} "
              f"--profile {args.profile} "
              f"--seconds {args.seconds}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
