"""Fault plans — declarative failure schedules on the simulation clock.

A :class:`FaultPlan` is the experiment's failure script: *what* breaks,
*when* (in sim ns), and *how badly*.  Keeping it declarative means chaos
scenarios and benchmarks can print, diff and replay their failure
history, and a deterministic-replay test can assert two same-seed runs
experienced byte-identical fault sequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from repro.errors import ReproError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind(enum.Enum):
    """The fault taxonomy (see docs/fault-model.md)."""

    DEVICE_CRASH = "device-crash"        # embedded CPU dies, stays dead
    DEVICE_STALL = "device-stall"        # firmware wedges, may resume
    DEVICE_RESUME = "device-resume"      # stalled firmware recovers
    BUS_TRANSIENT = "bus-transient"      # soft interconnect error, replayed
    CHANNEL_NOISE = "channel-noise"      # message loss/corruption in flight


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names the victim (device name, bus name, or channel
    label); ``arg`` carries kind-specific detail (transient count, or a
    ``(loss, corrupt)`` probability pair).
    """

    at_ns: int
    kind: FaultKind
    target: str
    arg: Any = None

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ReproError(f"fault scheduled in the past: {self.at_ns}")


class FaultPlan:
    """An ordered schedule of fault events.

    Builders return ``self`` so plans chain::

        plan = (FaultPlan()
                .stall_device(2_000_000, "nic0", duration_ns=1_000_000)
                .crash_device(8_000_000, "nic0"))
    """

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    # -- builders ----------------------------------------------------------------

    def crash_device(self, at_ns: int, device: str) -> "FaultPlan":
        """Hard-kill ``device`` at ``at_ns``; it never comes back."""
        self.events.append(FaultEvent(at_ns, FaultKind.DEVICE_CRASH, device))
        return self

    def stall_device(self, at_ns: int, device: str,
                     duration_ns: int) -> "FaultPlan":
        """Wedge ``device`` at ``at_ns`` and resume it ``duration_ns``
        later (the firmware-hang-then-recover failure mode)."""
        if duration_ns <= 0:
            raise ReproError(
                f"stall duration must be positive: {duration_ns}")
        self.events.append(FaultEvent(at_ns, FaultKind.DEVICE_STALL, device))
        self.events.append(FaultEvent(at_ns + duration_ns,
                                      FaultKind.DEVICE_RESUME, device))
        return self

    def bus_transients(self, at_ns: int, bus: str,
                       count: int = 1) -> "FaultPlan":
        """Arm ``count`` soft errors on ``bus`` (each doubles one
        transaction's serialization delay)."""
        if count <= 0:
            raise ReproError(f"transient count must be positive: {count}")
        self.events.append(FaultEvent(at_ns, FaultKind.BUS_TRANSIENT, bus,
                                      arg=count))
        return self

    def channel_noise(self, at_ns: int, label: str, loss: float = 0.0,
                      corrupt: float = 0.0) -> "FaultPlan":
        """From ``at_ns``, drop / corrupt messages on every channel
        labelled ``label`` with the given probabilities.  UNRELIABLE
        channels surface the faults to receivers; RELIABLE channels arm
        their ack/retransmit protocol and still deliver exactly once."""
        if not 0 <= loss <= 1 or not 0 <= corrupt <= 1 or loss + corrupt > 1:
            raise ReproError(
                f"invalid noise probabilities: loss={loss} corrupt={corrupt}")
        self.events.append(FaultEvent(at_ns, FaultKind.CHANNEL_NOISE, label,
                                      arg=(loss, corrupt)))
        return self

    # -- consumption -------------------------------------------------------------

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.at_ns)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {len(self.events)} event(s)>"
