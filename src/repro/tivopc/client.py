"""Video Client implementations (Section 6.4, Figures 7 and 8).

* :class:`MeasurementClient` — a minimal receiver used by the server
  experiments: it records packet arrival times for the jitter figures
  without doing media work.
* :class:`UserSpaceClient` — the non-offloaded client: every chunk is
  received through the full host stack, software-decoded on the host
  CPU, blitted over the bus into the GPU framebuffer, and appended to
  the recording over host NFS.
* :class:`OffloadedClient` — the Figure-8 deployment: Streamer at the
  NIC and at the Smart Disk (Gang), Decoder Ganged with the Streamer
  and Pulled onto the GPU by the Display, File Pulled with the disk
  Streamer.  "The offloading is complete in the sense that there are no
  components left on the host processor" (Table 4's punchline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro import units
from repro.errors import InterruptError
from repro.core.channel import BatchConfig, ChannelConfig
from repro.core.guid import guid_from_name
from repro.core.runtime import DeploymentSpec
from repro.core.layout.constraints import ConstraintType
from repro.core.odf import DeviceClassFilter, OdfDocument, OdfImport
from repro.core.offcode import OffcodeState
from repro.core.sites import DeviceSite
from repro.hostos.nfs import HostNfsClient, RemoteFile
from repro.hw.device import DeviceClass
from repro.media.decoder import SoftwareDecoder
from repro.sim.engine import Event, Process
from repro.tivopc.components import (
    DecoderOffcode,
    DisplayOffcode,
    FileOffcode,
    IDECODER,
    IDISPLAY,
    IFILE,
    ISTREAMER,
    StreamerOffcode,
)
from repro.tivopc.metrics import JitterCollector
from repro.tivopc.testbed import Testbed

__all__ = ["MeasurementClient", "UserSpaceClient", "UserClientCosts",
           "OffloadedClient", "USER_CLIENT_COSTS",
           "NetStreamerOffcode", "DiskStreamerOffcode"]

_FRAME_BYTES = 8 * 1024


class MeasurementClient:
    """Receives the stream and records arrival times (jitter probe)."""

    def __init__(self, testbed: Testbed) -> None:
        self.testbed = testbed
        self.socket = testbed.client.stack.socket(
            testbed.config.media_port)
        self.jitter = JitterCollector()
        self._process: Optional[Process] = None

    def start(self) -> None:
        """Begin recording arrivals."""
        self._process = self.testbed.sim.spawn(self._loop(),
                                               name="measure-client")

    def stop(self) -> None:
        """Stop the receive loop."""
        if self._process is not None and self._process.alive:
            self._process.interrupt("stop")
        self._process = None

    def _loop(self) -> Generator[Event, None, None]:
        try:
            while True:
                packet = yield from self.socket.recvfrom()
                self.jitter.record(packet.received_at_ns)
        except InterruptError:
            pass


@dataclass(frozen=True)
class UserClientCosts:
    """Calibrated per-chunk application stage of the host client.

    ``drift_sigma`` models slow minutes-scale load variation (GUI
    repaints, allocator behaviour): every 5 s the mean is rescaled by a
    fresh gauss(1, drift_sigma) factor, which is what gives the
    client's CPU samples their window-to-window spread (Table 4's
    0.32 % for the user-space client).
    """

    app_cpu_mean_ns: int = 150 * units.US
    app_cpu_sigma_ns: int = 45 * units.US
    drift_sigma: float = 0.08
    drift_period_ns: int = 5 * units.SECOND


USER_CLIENT_COSTS = UserClientCosts()


class UserSpaceClient:
    """The fully host-resident client of Table 4's middle row."""

    def __init__(self, testbed: Testbed,
                 costs: UserClientCosts = USER_CLIENT_COSTS) -> None:
        self.testbed = testbed
        self.costs = costs
        self.kernel = testbed.client.kernel
        self.socket = testbed.client.stack.socket(
            testbed.config.media_port)
        self.nfs = HostNfsClient(self.kernel, testbed.nas_address)
        self.recording = RemoteFile(self.nfs,
                                    testbed.config.recording_handle)
        self.decoder = SoftwareDecoder(self.kernel)
        self.gpu = testbed.client_gpu
        self.rng = testbed.rng.stream("user-client")
        self.jitter = JitterCollector()
        self.chunks_received = 0
        self.frames_shown = 0
        self._buffered = 0
        self._drift = 1.0
        self._process: Optional[Process] = None

    def start(self) -> None:
        """Begin the receive/decode/record loop."""
        self._process = self.testbed.sim.spawn(self._loop(),
                                               name="user-client")
        self.testbed.sim.spawn(self._drift_loop(), name="client-drift")

    def stop(self) -> None:
        """Stop the client loop."""
        if self._process is not None and self._process.alive:
            self._process.interrupt("stop")
        self._process = None

    def _drift_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.testbed.sim.timeout(self.costs.drift_period_ns)
            self._drift = max(0.3, self.rng.gauss(1.0,
                                                  self.costs.drift_sigma))

    def _loop(self) -> Generator[Event, None, None]:
        try:
            while True:
                packet = yield from self.socket.recvfrom()
                self.jitter.record(packet.received_at_ns)
                self.chunks_received += 1
                yield from self._handle_chunk(packet.size_bytes)
        except InterruptError:
            pass

    def _handle_chunk(self, size: int) -> Generator[Event, None, None]:
        # Store for later playback (write-behind NFS append).
        yield from self.recording.append(size)
        # Decode at frame granularity; blit the raw frame over the bus.
        self._buffered += size
        while self._buffered >= _FRAME_BYTES:
            self._buffered -= _FRAME_BYTES
            raw = yield from self.decoder.decode(_FRAME_BYTES)
            yield from self.gpu.host_blit(raw)
            self.frames_shown += 1
        # Calibrated application stage (GUI, parsing, bookkeeping).
        cost = max(0, round(self.rng.gauss(
            self.costs.app_cpu_mean_ns * self._drift,
            self.costs.app_cpu_sigma_ns)))
        if cost:
            yield from self.kernel.cpu.execute(cost, context="client-app")

    @property
    def frames_shown_total(self) -> int:
        """Alias for frames_shown (API parity with OffloadedClient)."""
        return self.frames_shown

    @property
    def bytes_recorded(self) -> int:
        """Bytes appended to the recording so far."""
        return self.recording.write_offset


class NetStreamerOffcode(StreamerOffcode):
    """The Figure-8 Streamer instance at the NIC."""

    BINDNAME = "tivopc.NetStreamer"
    INTERFACES = (ISTREAMER,)


class DiskStreamerOffcode(StreamerOffcode):
    """The Figure-8 Streamer instance at the Smart Disk."""

    BINDNAME = "tivopc.DiskStreamer"
    INTERFACES = (ISTREAMER,)


NET_STREAMER_GUID = guid_from_name("tivopc.NetStreamer")
DISK_STREAMER_GUID = guid_from_name("tivopc.DiskStreamer")
DECODER_GUID = guid_from_name("tivopc.Decoder")
DISPLAY_GUID = guid_from_name("tivopc.Display")
CLIENT_FILE_GUID = guid_from_name("tivopc.client.File")


class OffloadedClient:
    """The fully offloaded Figure-8 client, deployed through HYDRA.

    With ``host_fallback=True`` the depot also carries a host build of
    the network Streamer and a recovery hook is armed: when the
    watchdog declares the NIC dead, the runtime redeploys the Streamer
    on the host processor and the hook rewires the media plane (two
    unicast channels replace the dead multicast channel), so the
    stream finishes host-side — the paper's host-based configuration
    as a degraded mode.
    """

    NET_STREAMER_ODF = "/tivopc/client/streamer-net.odf"
    DISK_STREAMER_ODF = "/tivopc/client/streamer-disk.odf"
    DECODER_ODF = "/tivopc/client/decoder.odf"
    DISPLAY_ODF = "/tivopc/client/display.odf"
    FILE_ODF = "/tivopc/client/file.odf"

    def __init__(self, testbed: Testbed,
                 host_fallback: bool = False,
                 batch: Optional[BatchConfig] = None) -> None:
        self.testbed = testbed
        self.runtime = testbed.client_runtime
        self.mux = testbed.client_mux()
        self.host_fallback = host_fallback
        # Optional vectored-dispatch watermarks for the media data plane;
        # None keeps the classic one-transaction-per-chunk path.
        self.batch = batch
        self.net_streamer: Optional[NetStreamerOffcode] = None
        self.disk_streamer: Optional[DiskStreamerOffcode] = None
        self.decoder: Optional[DecoderOffcode] = None
        self.display: Optional[DisplayOffcode] = None
        self.file: Optional[FileOffcode] = None
        self.data_channel = None
        self._register()

    # -- manifests and depot ---------------------------------------------------------

    def _register(self) -> None:
        testbed = self.testbed
        library = self.runtime.library
        library.register(self.FILE_ODF, OdfDocument(
            bindname="tivopc.File", guid=CLIENT_FILE_GUID,
            interfaces=[IFILE],
            targets=[DeviceClassFilter(DeviceClass.STORAGE)],
            image_bytes=24 * 1024))
        library.register(self.DISPLAY_ODF, OdfDocument(
            bindname="tivopc.Display", guid=DISPLAY_GUID,
            interfaces=[IDISPLAY],
            targets=[DeviceClassFilter(DeviceClass.DISPLAY)],
            image_bytes=12 * 1024))
        library.register(self.DECODER_ODF, OdfDocument(
            bindname="tivopc.Decoder", guid=DECODER_GUID,
            interfaces=[IDECODER],
            imports=[OdfImport(file=self.DISPLAY_ODF,
                               bindname="tivopc.Display",
                               guid=DISPLAY_GUID,
                               reference=ConstraintType.PULL)],
            # "the Decoder Offcode could be placed either at the NIC or
            # at the GPU"; the Pull to Display decides for the GPU.
            targets=[DeviceClassFilter(DeviceClass.NETWORK),
                     DeviceClassFilter(DeviceClass.DISPLAY)],
            image_bytes=48 * 1024))
        library.register(self.DISK_STREAMER_ODF, OdfDocument(
            bindname="tivopc.DiskStreamer", guid=DISK_STREAMER_GUID,
            interfaces=[ISTREAMER],
            imports=[OdfImport(file=self.FILE_ODF,
                               bindname="tivopc.File",
                               guid=CLIENT_FILE_GUID,
                               reference=ConstraintType.PULL)],
            targets=[DeviceClassFilter(DeviceClass.STORAGE)],
            image_bytes=20 * 1024))
        library.register(self.NET_STREAMER_ODF, OdfDocument(
            bindname="tivopc.NetStreamer", guid=NET_STREAMER_GUID,
            interfaces=[ISTREAMER],
            imports=[
                OdfImport(file=self.DISK_STREAMER_ODF,
                          bindname="tivopc.DiskStreamer",
                          guid=DISK_STREAMER_GUID,
                          reference=ConstraintType.GANG),
                OdfImport(file=self.DECODER_ODF,
                          bindname="tivopc.Decoder",
                          guid=DECODER_GUID,
                          reference=ConstraintType.GANG),
            ],
            targets=[DeviceClassFilter(DeviceClass.NETWORK)],
            image_bytes=20 * 1024))

        depot = self.runtime.depot
        depot.register(NET_STREAMER_GUID,
                       lambda site: NetStreamerOffcode(
                           site, port_mux=self.mux,
                           listen_port=testbed.config.media_port),
                       device_class=DeviceClass.NETWORK)
        depot.register(DISK_STREAMER_GUID, DiskStreamerOffcode,
                       device_class=DeviceClass.STORAGE)
        depot.register(DECODER_GUID, DecoderOffcode)
        depot.register(DISPLAY_GUID, DisplayOffcode,
                       device_class=DeviceClass.DISPLAY)
        depot.register(CLIENT_FILE_GUID,
                       lambda site: FileOffcode(
                           site, testbed.disk_nfs,
                           handle=testbed.config.recording_handle),
                       device_class=DeviceClass.STORAGE)

        if self.host_fallback:
            # The host build of the network Streamer reads from a real
            # UDP socket; the socket is opened lazily, at recovery
            # time, when the NIC mux no longer claims the media port.
            depot.register(NET_STREAMER_GUID,
                           lambda site: NetStreamerOffcode(
                               site,
                               socket=testbed.client.stack.socket(
                                   testbed.config.media_port),
                               listen_port=testbed.config.media_port),
                           device_class=DeviceClass.HOST)
            # Host builds for the disk-side components too, so a Smart
            # Disk death (or an overlapping double failure) also has a
            # fallback.  The ODF targets exclude HOST, so these builds
            # are only reachable through a degraded re-solve — the
            # baseline Figure-8 layout is unchanged.
            depot.register(DISK_STREAMER_GUID, DiskStreamerOffcode,
                           device_class=DeviceClass.HOST)
            depot.register(DISPLAY_GUID,
                           lambda site: DisplayOffcode(
                               site, gpu=testbed.client_gpu),
                           device_class=DeviceClass.HOST)
            depot.register(CLIENT_FILE_GUID,
                           lambda site: FileOffcode(
                               site,
                               HostNfsClient(testbed.client.kernel,
                                             testbed.nas_address),
                               handle=testbed.config.recording_handle),
                           device_class=DeviceClass.HOST)
            self.runtime.add_recovery_hook(self._recovery_hook)

    # -- fault recovery ----------------------------------------------------------------

    @staticmethod
    def _site_healthy(offcode) -> bool:
        site = offcode.site
        return (not isinstance(site, DeviceSite)
                or site.device.health.ok)

    @staticmethod
    def _has_open_data_channel(streamer, peer) -> bool:
        return any(
            not ch.closed and ch.connected
            and ch.config.label == StreamerOffcode.DATA_LABEL
            and any(ep.bound_offcode is peer for ep in ch.endpoints)
            for ch in streamer.channels)

    def _recovery_hook(self, device: str,
                       incident) -> Generator[Event, None, None]:
        """Rewire the media plane after *any* recovery touching Figure 8.

        Generic and idempotent: refresh every component reference
        (recovery may have replaced instances on new sites), re-attach
        Pull-mates that are co-located but unattached, then give the
        network Streamer one unicast data channel per healthy consumer
        it cannot currently reach.  A consumer whose device has already
        died (an overlapping double failure) is skipped — its own
        incident will rewire it — and consumers already reachable over
        an open data channel are left alone, so running the hook twice
        wires nothing twice.
        """
        runtime = self.runtime
        self.net_streamer = runtime.locate("tivopc.NetStreamer")
        self.disk_streamer = runtime.locate("tivopc.DiskStreamer")
        self.decoder = runtime.locate("tivopc.Decoder")
        self.display = runtime.locate("tivopc.Display")
        self.file = runtime.locate("tivopc.File")

        # Pull-mates wire directly when co-located.
        if (self.decoder is not None and self.display is not None
                and self.decoder.site is self.display.site
                and self.decoder.display is not self.display):
            self.decoder.attach_display(self.display)
        if (self.disk_streamer is not None and self.file is not None
                and self.disk_streamer.site is self.file.site
                and self.disk_streamer.file_offcode is not self.file):
            self.disk_streamer.attach_file(self.file)

        streamer = self.net_streamer
        if (streamer is None or streamer.state != OffcodeState.RUNNING
                or not self._site_healthy(streamer)):
            return
        rewired = False
        for peer in (self.decoder, self.disk_streamer):
            if (peer is None or peer.state != OffcodeState.RUNNING
                    or not self._site_healthy(peer)):
                continue
            if self._has_open_data_channel(streamer, peer):
                continue
            # The peer-DMA provider cannot source a host-rooted
            # multicast, so rewiring uses one unicast channel per
            # consumer; a host-side streamer also loses the zero-copy
            # pinned path.
            config = (ChannelConfig.unicast().reliable().sequential()
                      .labeled(StreamerOffcode.DATA_LABEL))
            config = (config.copied() if streamer.location == "host"
                      else config.zero_copy())
            channel = runtime.executive.create_channel_for_offcode(
                config, streamer)
            runtime.executive.connect_offcode(channel, peer)
            rewired = True
        if rewired:
            self.data_channel = None
            # Driver/daemon work for the rewiring itself.
            yield from streamer.site.execute(
                5_000, context="recovery-rewire")

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> None:
        """Deploy the Figure-8 Offcodes and wire the data plane."""
        self.testbed.sim.spawn(self._bring_up(), name="offloaded-client")

    def _bring_up(self) -> Generator[Event, None, None]:
        result = yield from self.runtime.deploy(DeploymentSpec(
            odf_paths=(self.NET_STREAMER_ODF,)))
        runtime = self.runtime
        self.net_streamer = result.offcode
        self.disk_streamer = runtime.get_offcode("tivopc.DiskStreamer")
        self.decoder = runtime.get_offcode("tivopc.Decoder")
        self.display = runtime.get_offcode("tivopc.Display")
        self.file = runtime.get_offcode("tivopc.File")

        # Verify the layout landed as Figure 8 dictates.
        assert self.net_streamer.location == "nic0"
        assert self.disk_streamer.location == "disk0"
        assert self.decoder.location == "gpu0"
        assert self.display.location == "gpu0"
        assert self.file.location == "disk0"

        # Pull-mates wire directly (co-located by construction).
        self.decoder.attach_display(self.display)
        self.disk_streamer.attach_file(self.file)

        # The Figure-8 data plane: one multicast channel from the NIC
        # Streamer to the Decoder (GPU) and the disk Streamer — a single
        # bus transaction per media packet on a peer-to-peer bus.
        config = (ChannelConfig.multicast().reliable().sequential()
                  .zero_copy().labeled(StreamerOffcode.DATA_LABEL))
        if self.batch is not None:
            config = config.batched(max_bytes=self.batch.max_bytes,
                                    max_calls=self.batch.max_calls,
                                    deadline_ns=self.batch.deadline_ns,
                                    adaptive=self.batch.adaptive)
        channel = runtime.executive.create_channel_for_offcode(
            config, self.net_streamer)
        runtime.executive.connect_offcode(channel, self.decoder)
        runtime.executive.connect_offcode(channel, self.disk_streamer)
        self.data_channel = channel

    def stop(self) -> None:
        """Stop the NIC streamer (tears its subtree down)."""
        if self.net_streamer is not None:
            self.testbed.sim.spawn(
                self.runtime.stop_offcode("tivopc.NetStreamer"))

    # -- playback (the paper's "replay the stored media stream") --------------------------

    def start_playback(self) -> None:
        """Stream the recording from the Smart Disk to the Decoder:
        "a Streamer component running on the disk controller will
        transfer previously stored packets to the Decoder"."""
        self.testbed.sim.spawn(self._playback_loop(), name="playback")

    def _playback_loop(self) -> Generator[Event, None, None]:
        config = (ChannelConfig.unicast().zero_copy()
                  .labeled(StreamerOffcode.DATA_LABEL))
        channel = self.runtime.executive.create_channel_for_offcode(
            config, self.disk_streamer)
        self.runtime.executive.connect_offcode(channel, self.decoder)
        endpoint = channel.endpoint_of(self.disk_streamer)
        stream = self.testbed.config.stream
        sim = self.testbed.sim
        try:
            while self.file.bytes_written > self.file.bytes_read:
                yield sim.timeout(stream.interval_ns)
                got = yield from self.file.Read(stream.chunk_bytes)
                if got <= 0:
                    break
                yield from endpoint.write(("playback", got), got)
        except InterruptError:
            pass

    # -- counters -----------------------------------------------------------------------

    @property
    def chunks_received(self) -> int:
        """Chunks the NIC streamer has handled."""
        return (self.net_streamer.chunks_handled
                if self.net_streamer else 0)

    @property
    def frames_shown(self) -> int:
        """Frames the Display Offcode committed."""
        return self.display.frames_shown if self.display else 0

    @property
    def bytes_recorded(self) -> int:
        """Bytes the File Offcode wrote to the NAS."""
        return self.file.bytes_written if self.file else 0
