"""The GUI — TiVoPC's one host-resident component (Table 1).

"The user interface contains a viewing area ... and several controls
used to rewind, pause and play the movie."  It is the only component
*not* implemented as an Offcode: it stays a host process, and "a simple
Link constraint is sufficient between both Streamers and the GUI since
only control information passes between them" — its channels carry a
handful of small Calls, not media.

:class:`GuiController` wraps a deployed :class:`OffloadedClient`: it
opens a control channel to the network Streamer (transparent proxy over
the IStreamer interface) and exposes the appliance verbs.  Pause
freezes the viewing path while recording continues; play resumes live
viewing; rewind replays the recording from the Smart Disk.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import HydraError
from repro.core.channel import ChannelConfig
from repro.core.proxy import Proxy
from repro.sim.engine import Event
from repro.tivopc.client import OffloadedClient
from repro.tivopc.components import ISTREAMER

__all__ = ["GuiController"]


class GuiController:
    """Host-side user controls for the offloaded TiVoPC client."""

    def __init__(self, client: OffloadedClient) -> None:
        self.client = client
        self.runtime = client.runtime
        self._proxy: Optional[Proxy] = None
        self.control_calls = 0

    def _streamer_proxy(self) -> Proxy:
        """Lazily open the GUI <-> Streamer control channel (Link-class:
        low-volume control traffic, copying semantics are fine)."""
        if self._proxy is None:
            if self.client.net_streamer is None:
                raise HydraError(
                    "client not deployed yet; run the simulator past "
                    "OffloadedClient.start() first")
            channel = self.runtime.create_channel(
                ChannelConfig.unicast().copied()
                .labeled("tivopc.gui-control"))
            self.runtime.connect_offcode(channel, self.client.net_streamer)
            self._proxy = Proxy(ISTREAMER, channel,
                                channel.creator_endpoint)
        return self._proxy

    # -- the appliance verbs -----------------------------------------------------

    def pause(self) -> Generator[Event, None, bool]:
        """Freeze the picture; the recording keeps growing."""
        result = yield from self._streamer_proxy().Pause()
        self.control_calls += 1
        return result

    def play(self) -> Generator[Event, None, bool]:
        """Resume live viewing."""
        result = yield from self._streamer_proxy().Resume()
        self.control_calls += 1
        return result

    def is_paused(self) -> Generator[Event, None, bool]:
        """Query the Streamer's viewing state."""
        result = yield from self._streamer_proxy().IsPaused()
        self.control_calls += 1
        return result

    def rewind(self) -> None:
        """Replay the stored stream from the Smart Disk."""
        self.control_calls += 1
        self.client.start_playback()
