"""The three Video Server implementations (Section 6.4, Figure 7).

1. :class:`SimpleServer` — "uses two UDP socket endpoints.  Every 5 ms,
   a movie frame is read to a statically allocated buffer of size 1 kB,
   then a connected UDP socket ... is used to send the packet."  Full
   host path: timed sleep through the scheduler, NFS read with a copy to
   user space, copying `sendto`.
2. :class:`SendfileServer` — "utilizes the 'sendfile' system call":
   the file lands in kernel buffers by DMA and the NIC's scatter-gather
   engine sends it without a CPU copy; only descriptor work remains.
3. :class:`OffloadedServer` — "implemented as a simple Offcode residing
   at the networking device.  It uses the File Offcode to read the data
   from the NAS device, and the Broadcast Offcode to transmit" — both
   deployed through HYDRA onto the server NIC, paced by the firmware
   timer.

The host servers carry a calibrated per-iteration *application stage*
(CPU slice + blocking wait) standing in for the user-space machinery the
paper does not decompose (frame parsing, GUI interaction, allocator
work, occasional page-cache stalls).  Every other cost — timer-tick
quantization, dispatch latency, syscalls, buffer copies and their L2
traffic, NFS round trips, interrupts — is mechanistic.  Calibration
values and the resulting fit are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from repro import units
from repro.errors import InterruptError
from repro.core.guid import guid_from_name
from repro.core.runtime import DeploymentSpec
from repro.core.layout.constraints import ConstraintType
from repro.core.odf import DeviceClassFilter, OdfDocument, OdfImport
from repro.hostos.nfs import DeviceNfsClient, HostNfsClient, RemoteFile
from repro.hw.device import DeviceClass
from repro.net.packet import Address
from repro.sim.engine import Event, Process
from repro.tivopc.components import (
    BroadcastOffcode,
    FileOffcode,
    IBROADCAST,
    IFILE,
)
from repro.tivopc.testbed import Testbed

__all__ = ["HostServerCosts", "SimpleServer", "SendfileServer",
           "OffloadedServer", "SIMPLE_COSTS", "SENDFILE_COSTS"]

BROADCAST_GUID = guid_from_name("tivopc.Broadcast")
SERVER_FILE_GUID = guid_from_name("tivopc.File")


@dataclass(frozen=True)
class HostServerCosts:
    """Calibrated per-iteration application stage of a host server.

    The blocking part has two components because the kernel's timer
    grid filters sub-tick variance out of the observed intervals: a
    lognormal base wait, plus an occasional multi-millisecond *stall*
    (page-cache miss, allocator walk) that survives the grid and gives
    the sendfile row its measured spread.
    """

    app_cpu_mean_ns: int
    app_cpu_sigma_ns: int
    app_wait_mean_ns: int
    app_wait_sigma_ns: int
    stall_probability: float = 0.0
    stall_mean_ns: int = 0
    stall_sigma_ns: int = 0


# Calibration targets: Table 2 rows (6.99/7.00/0.55 and 6.00/5.99/0.47)
# and Table 3 rows (7.50 % and 6.20 % total CPU).
SIMPLE_COSTS = HostServerCosts(
    app_cpu_mean_ns=315 * units.US, app_cpu_sigma_ns=100 * units.US,
    app_wait_mean_ns=1_060 * units.US, app_wait_sigma_ns=460 * units.US)

SENDFILE_COSTS = HostServerCosts(
    app_cpu_mean_ns=190 * units.US, app_cpu_sigma_ns=60 * units.US,
    app_wait_mean_ns=25 * units.US, app_wait_sigma_ns=40 * units.US,
    stall_probability=0.043, stall_mean_ns=1_800 * units.US,
    stall_sigma_ns=300 * units.US)


def _lognormal_ns(rng, mean_ns: int, sigma_ns: int) -> int:
    """Draw a non-negative delay with the given mean and std-dev.

    Blocking application delays are skewed (mostly short, occasionally
    long: allocator stalls, page-cache misses), so a lognormal matches
    the paper's smooth single-mode jitter histograms better than a
    truncated normal — and it permits sigma > mean, which the Sendfile
    row requires.
    """
    if mean_ns <= 0:
        return 0
    if sigma_ns <= 0:
        return mean_ns
    ratio_sq = (sigma_ns / mean_ns) ** 2
    sigma_ln = math.sqrt(math.log1p(ratio_sq))
    mu_ln = math.log(mean_ns) - sigma_ln ** 2 / 2
    return round(rng.lognormvariate(mu_ln, sigma_ln))


class _HostServerBase:
    """Shared loop: sleep 5 ms, produce one chunk, send it."""

    name = "abstract"

    def __init__(self, testbed: Testbed, costs: HostServerCosts) -> None:
        self.testbed = testbed
        self.costs = costs
        self.kernel = testbed.server.kernel
        self.stack = testbed.server.stack
        self.socket = self.stack.socket()
        self.nfs = HostNfsClient(self.kernel, testbed.nas_address)
        self.remote = RemoteFile(self.nfs, testbed.config.movie_handle)
        self.rng = testbed.rng.stream(f"server-{self.name}")
        self.packets_sent = 0
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError(f"{self.name} server already started")
        self._process = self.testbed.sim.spawn(
            self._loop(), name=f"{self.name}-server")

    def stop(self) -> None:
        if self._process is not None and self._process.alive:
            self._process.interrupt("stop")
        self._process = None

    def _loop(self) -> Generator[Event, None, None]:
        config = self.testbed.config.stream
        destination = self.testbed.client_media_address
        try:
            while True:
                yield from self.kernel.sleep(config.interval_ns)
                yield from self._produce_chunk(config.chunk_bytes)
                yield from self._app_stage()
                yield from self._send_chunk(destination,
                                            config.chunk_bytes)
                self.packets_sent += 1
        except InterruptError:
            pass

    def _app_stage(self) -> Generator[Event, None, None]:
        cpu = max(0, round(self.rng.gauss(self.costs.app_cpu_mean_ns,
                                          self.costs.app_cpu_sigma_ns)))
        wait = _lognormal_ns(self.rng, self.costs.app_wait_mean_ns,
                             self.costs.app_wait_sigma_ns)
        if (self.costs.stall_probability
                and self.rng.random() < self.costs.stall_probability):
            wait += max(0, round(self.rng.gauss(self.costs.stall_mean_ns,
                                                self.costs.stall_sigma_ns)))
        if cpu:
            yield from self.kernel.cpu.execute(cpu, context="server-app")
        if wait:
            yield self.testbed.sim.timeout(wait)

    def _produce_chunk(self, size: int) -> Generator[Event, None, None]:
        raise NotImplementedError

    def _send_chunk(self, destination: Address, size: int
                    ) -> Generator[Event, None, None]:
        raise NotImplementedError


class SimpleServer(_HostServerBase):
    """read() + sendto(): two syscalls and two payload copies."""

    name = "simple"

    def __init__(self, testbed: Testbed,
                 costs: HostServerCosts = SIMPLE_COSTS) -> None:
        super().__init__(testbed, costs)

    def _produce_chunk(self, size: int) -> Generator[Event, None, None]:
        yield from self.kernel.syscall("read")
        yield from self.remote.read(size)
        yield from self.kernel.copy_to_user(size, context="server-read")

    def _send_chunk(self, destination: Address, size: int
                    ) -> Generator[Event, None, None]:
        yield from self.socket.sendto(destination, size,
                                      payload=("chunk", self.packets_sent))


class SendfileServer(_HostServerBase):
    """sendfile(): DMA into kernel buffers, scatter-gather out."""

    name = "sendfile"

    def __init__(self, testbed: Testbed,
                 costs: HostServerCosts = SENDFILE_COSTS) -> None:
        super().__init__(testbed, costs)

    def _produce_chunk(self, size: int) -> Generator[Event, None, None]:
        # One syscall covers read + send; the payload stays in kernel
        # buffers ("the file content is copied into a kernel buffer by
        # the device's DMA engine") so no copy_to_user happens and the
        # data never streams through the L2 on the CPU's behalf.
        yield from self.kernel.syscall("sendfile", cost_ns=2_500)
        yield from self.remote.read(size)

    def _send_chunk(self, destination: Address, size: int
                    ) -> Generator[Event, None, None]:
        yield from self.socket.sendto_gather(
            destination, size, payload=("chunk", self.packets_sent))


class OffloadedServer:
    """The offload-aware server: Broadcast + File Offcodes at the NIC.

    Deployment is genuine HYDRA: ODFs registered in the server runtime's
    library (Broadcast Pulls File so both land on the NIC), depot
    factories injecting the firmware port mux and the NAS address, and a
    ``CreateOffcode`` call that runs the full Figure-5 pipeline.
    """

    name = "offloaded"

    BROADCAST_ODF = "/tivopc/server/broadcast.odf"
    FILE_ODF = "/tivopc/server/file.odf"

    def __init__(self, testbed: Testbed) -> None:
        self.testbed = testbed
        self.runtime = testbed.server_runtime
        self.mux = testbed.server_mux()
        self.broadcast: Optional[BroadcastOffcode] = None
        self.file: Optional[FileOffcode] = None
        self._register()

    def _register(self) -> None:
        testbed = self.testbed
        library = self.runtime.library
        library.register(self.FILE_ODF, OdfDocument(
            bindname="tivopc.File", guid=SERVER_FILE_GUID,
            interfaces=[IFILE],
            targets=[DeviceClassFilter(DeviceClass.NETWORK)],
            image_bytes=24 * 1024))
        library.register(self.BROADCAST_ODF, OdfDocument(
            bindname="tivopc.Broadcast", guid=BROADCAST_GUID,
            interfaces=[IBROADCAST],
            imports=[OdfImport(file=self.FILE_ODF,
                               bindname="tivopc.File",
                               guid=SERVER_FILE_GUID,
                               reference=ConstraintType.PULL)],
            targets=[DeviceClassFilter(DeviceClass.NETWORK)],
            image_bytes=20 * 1024))

        def make_file(site) -> FileOffcode:
            client = DeviceNfsClient(self.mux, testbed.nas_address)
            return FileOffcode(site, client,
                               handle=testbed.config.movie_handle)

        def make_broadcast(site) -> BroadcastOffcode:
            return BroadcastOffcode(
                site, self.mux, testbed.client_media_address,
                stream=testbed.config.stream,
                rng=testbed.rng.stream("firmware-timer"),
                require_file=True)

        self.runtime.depot.register(SERVER_FILE_GUID, make_file,
                                    device_class=DeviceClass.NETWORK)
        self.runtime.depot.register(BROADCAST_GUID, make_broadcast,
                                    device_class=DeviceClass.NETWORK)

    def start(self) -> None:
        """Spawn the HYDRA deployment and begin broadcasting."""
        self.testbed.sim.spawn(self._bring_up(), name="offloaded-server")

    def _bring_up(self) -> Generator[Event, None, None]:
        result = yield from self.runtime.deploy(DeploymentSpec(
            odf_paths=(self.BROADCAST_ODF,)))
        self.broadcast = result.offcode
        self.file = self.runtime.get_offcode("tivopc.File")
        assert self.broadcast.location == "nic0"
        assert self.file.location == "nic0"
        self.broadcast.attach_file(self.file)

    def stop(self) -> None:
        """Stop the Broadcast Offcode (releases its subtree)."""
        if self.broadcast is not None:
            self.testbed.sim.spawn(
                self.runtime.stop_offcode("tivopc.Broadcast"))

    @property
    def packets_sent(self) -> int:
        """Packets the Broadcast Offcode has transmitted."""
        return self.broadcast.packets_sent if self.broadcast else 0
