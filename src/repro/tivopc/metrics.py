"""Measurement machinery for the TiVoPC evaluation.

The paper's three instruments (Section 6.4):

* **packet jitter** — inter-arrival times at the client, reported as a
  histogram, a CDF and median/average/std-dev rows (Figure 9, Table 2);
* **CPU utilization** — sampled every 5 seconds over the run, reported
  as median/average/std-dev (Tables 3 and 4);
* **L2 miss rate** — kernel L2 miss rate sampled every 5 seconds,
  normalized to the idle system (Figure 10).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro import units
from repro.hw.cache import Cache, CacheStats
from repro.hw.cpu import Cpu, CpuSampler
from repro.sim.engine import Event, Simulator

__all__ = ["SummaryStats", "JitterCollector", "PeriodicSampler",
           "histogram", "cdf_points"]


@dataclass(frozen=True)
class SummaryStats:
    """Median / average / standard deviation, the paper's table row."""

    median: float
    average: float
    stdev: float
    count: int

    @staticmethod
    def of(values: Sequence[float]) -> "SummaryStats":
        if not values:
            return SummaryStats(0.0, 0.0, 0.0, 0)
        return SummaryStats(
            median=statistics.median(values),
            average=statistics.fmean(values),
            stdev=statistics.pstdev(values) if len(values) > 1 else 0.0,
            count=len(values))

    def row(self, scale: float = 1.0) -> Tuple[float, float, float]:
        """(median, average, stdev) scaled — a table row."""
        return (self.median * scale, self.average * scale,
                self.stdev * scale)


class JitterCollector:
    """Records packet arrival times; reports inter-arrival statistics."""

    def __init__(self) -> None:
        self.arrivals_ns: List[int] = []

    def record(self, arrival_ns: int) -> None:
        """Note one packet arrival time."""
        self.arrivals_ns.append(arrival_ns)

    @property
    def packet_count(self) -> int:
        """Arrivals recorded so far."""
        return len(self.arrivals_ns)

    def intervals_ms(self, discard_first: int = 5) -> List[float]:
        """Inter-arrival gaps in milliseconds (warmup packets dropped)."""
        times = sorted(self.arrivals_ns)
        deltas = [units.ns_to_ms(b - a) for a, b in zip(times, times[1:])]
        return deltas[discard_first:]

    def stats(self, discard_first: int = 5) -> SummaryStats:
        """Median/average/stddev of the inter-arrival gaps."""
        return SummaryStats.of(self.intervals_ms(discard_first))


class PeriodicSampler:
    """Samples CPU utilization and L2 miss rate every ``period_ns``.

    Run :meth:`process` on the simulator for the duration of an
    experiment; the paper's cadence (every 5 s) is the default.
    """

    def __init__(self, sim: Simulator, cpu: Cpu,
                 cache: Optional[Cache] = None,
                 period_ns: int = 5 * units.SECOND) -> None:
        self.sim = sim
        self.cpu_sampler = CpuSampler(cpu)
        self.cache = cache
        self.period_ns = period_ns
        # Lazy pins: sampling marks the window boundary without forcing
        # the cache to classify its deferred touches mid-run; the pins
        # resolve (one ordered log replay) when results are read.
        self._last_pin = cache.stats_pin() if cache else None
        self._window_pins: List[Tuple[object, object]] = []

    def process(self) -> Generator[Event, None, None]:
        """The sampling loop; spawn on the simulator for the run."""
        while True:
            yield self.sim.timeout(self.period_ns)
            self.cpu_sampler.sample()
            if self.cache is not None:
                pin = self.cache.stats_pin()
                self._window_pins.append((self._last_pin, pin))
                self._last_pin = pin

    # -- results -----------------------------------------------------------------

    @property
    def cache_windows(self) -> List[CacheStats]:
        """Per-window counter deltas (resolves the pins)."""
        return [cur.resolve().delta(prev.resolve())
                for prev, cur in self._window_pins]

    def cpu_stats(self) -> SummaryStats:
        """Summary over the per-window CPU utilizations."""
        return SummaryStats.of(self.cpu_sampler.utilizations())

    def miss_rates(self) -> List[float]:
        """Per-window L2 miss rates."""
        return [w.miss_rate for w in self.cache_windows if w.accesses]

    def miss_rate_stats(self) -> SummaryStats:
        """Summary over the per-window miss rates."""
        return SummaryStats.of(self.miss_rates())


def histogram(values: Sequence[float], bin_width: float,
              lo: Optional[float] = None, hi: Optional[float] = None
              ) -> List[Tuple[float, int]]:
    """Fixed-width histogram: list of (bin left edge, count)."""
    if not values:
        return []
    if bin_width <= 0:
        raise ValueError(f"bin width must be positive: {bin_width}")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    bins: List[Tuple[float, int]] = []
    edge = lo
    while edge <= hi:
        count = sum(1 for v in values if edge <= v < edge + bin_width)
        bins.append((edge, count))
        edge += bin_width
    return bins


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) points."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]
