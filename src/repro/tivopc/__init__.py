"""TiVoPC — the paper's case-study application (Section 6).

Components (:mod:`~repro.tivopc.components`), the experimental testbed
(:mod:`~repro.tivopc.testbed`), the three Video Server variants
(:mod:`~repro.tivopc.server`), the client variants
(:mod:`~repro.tivopc.client`) and the measurement machinery
(:mod:`~repro.tivopc.metrics`).
"""

from repro.tivopc.client import (
    MeasurementClient,
    OffloadedClient,
    USER_CLIENT_COSTS,
    UserClientCosts,
    UserSpaceClient,
)
from repro.tivopc.components import (
    BroadcastOffcode,
    DecoderOffcode,
    DisplayOffcode,
    FileOffcode,
    StreamerOffcode,
)
from repro.tivopc.gui import GuiController
from repro.tivopc.metrics import (
    JitterCollector,
    PeriodicSampler,
    SummaryStats,
    cdf_points,
    histogram,
)
from repro.tivopc.population import (
    CHUNK_TOLERANCES,
    FidelityTolerances,
    FidelityValidation,
    PopulationConfig,
    PopulationResult,
    SubscriberStats,
    client_seed,
    run_population,
    validate_fidelity,
)
from repro.tivopc.server import (
    OffloadedServer,
    SENDFILE_COSTS,
    SIMPLE_COSTS,
    SendfileServer,
    SimpleServer,
)
from repro.tivopc.testbed import Host, MEDIA_PORT, Testbed, TestbedConfig

__all__ = [
    "BroadcastOffcode",
    "CHUNK_TOLERANCES",
    "DecoderOffcode",
    "DisplayOffcode",
    "FidelityTolerances",
    "FidelityValidation",
    "FileOffcode",
    "GuiController",
    "Host",
    "JitterCollector",
    "MEDIA_PORT",
    "MeasurementClient",
    "OffloadedClient",
    "OffloadedServer",
    "PeriodicSampler",
    "PopulationConfig",
    "PopulationResult",
    "SENDFILE_COSTS",
    "SIMPLE_COSTS",
    "SendfileServer",
    "SimpleServer",
    "StreamerOffcode",
    "SubscriberStats",
    "SummaryStats",
    "Testbed",
    "TestbedConfig",
    "USER_CLIENT_COSTS",
    "UserClientCosts",
    "UserSpaceClient",
    "cdf_points",
    "client_seed",
    "histogram",
    "run_population",
    "validate_fidelity",
]
