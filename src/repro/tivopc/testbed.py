"""The TiVoPC experimental testbed (Section 6.4).

Reproduces the paper's setup: "two 2.4 GHz Intel Pentium IV computers
with 512 MB RAM and 256 kB L2 cache ... interconnected by a Dell
PowerConnect 6024 Gigabit switch through a programmable 3Com 3C985B-SX
NIC", plus the NAS that stores the media.  Concretely:

* ``server`` — P4 host, programmable NIC, kernel + UDP stack, a HYDRA
  runtime (used by the offloaded server variant);
* ``client`` — P4 host with programmable NIC, GPU and "Smart Disk" (the
  paper's second programmable NIC exporting an NFS-backed block device,
  modelled as a storage-class device with its own switch station and a
  firmware NFS client);
* ``nas`` — a host running the NFS service;
* one gigabit switch connecting all stations.

Kernels start their timer ticks and idle daemons at :meth:`start`, so
the idle baselines of Tables 3/4 and Figure 10 exist before any server
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.core.checkpoint import CheckpointConfig
from repro.core.runtime import HydraRuntime
from repro.core.watchdog import WatchdogConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hostos.kernel import Kernel, KernelConfig
from repro.hw.bus import BusSpec
from repro.hostos.nfs import DeviceNfsClient, NFS_PORT, NfsServer
from repro.hostos.sockets import UdpStack
from repro.hw.machine import Machine, MachineSpec
from repro.hw.nic import NicSpec
from repro.media.mpeg import StreamConfig
from repro.net.devport import DeviceNetPort, NicPortMux
from repro.resilience import SupervisorConfig
from repro.net.packet import Address
from repro.net.switch import Switch, SwitchSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = ["TestbedConfig", "Host", "Testbed", "MEDIA_PORT"]

MEDIA_PORT = 9000


@dataclass(frozen=True)
class TestbedConfig:
    """Knobs of the experimental setup."""

    __test__ = False        # not a pytest test class, despite the name

    seed: int = 0
    stream: StreamConfig = field(default_factory=StreamConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    media_port: int = MEDIA_PORT
    movie_handle: str = "movie.mpg"
    recording_handle: str = "recording.mpg"
    # I/O bus of the client machine.  The default supports peer-to-peer
    # transfers; swap in BusSpec.pci_legacy() to study the paper's
    # footnote 2 (PCIe moves a packet to GPU *and* disk in one
    # transaction; classic PCI must stage through host memory).
    client_bus: BusSpec = field(default_factory=BusSpec)
    # Chaos knobs (both default off = byte-identical baseline runs).
    # ``fault_plan`` schedules failures; device targets are qualified
    # as "<host>.<device>" ("client.nic0") and bus targets as the host
    # name.  ``watchdog`` arms heartbeat monitoring on both HYDRA
    # runtimes.
    fault_plan: Optional[FaultPlan] = None
    watchdog: Optional[WatchdogConfig] = None
    # Periodic offcode checkpointing (Section 3.4 management channel):
    # when set, both runtimes snapshot checkpointable offcodes over OOB
    # into their depot stores so recovery can restore rather than
    # cold-start.
    checkpoint: Optional[CheckpointConfig] = None
    # End-to-end tracing + metrics (repro.telemetry): attaches a
    # Telemetry hub to the simulator and binds every subsystem's
    # counters into its registry.  Off by default — the disabled path
    # costs one attribute check per instrumented site.
    telemetry: bool = False
    # Resilience knobs (repro.resilience).  ``standby_nic`` adds a
    # second programmable NIC ("nic1") to the client, registered as a
    # standby device: the layout solver never places on it unless a
    # migration explicitly targets it, so baseline placement stays
    # byte-identical.  ``supervisor`` arms the client runtime's
    # self-healing loop (quarantine, drain, admission control).
    standby_nic: bool = False
    supervisor: Optional[SupervisorConfig] = None
    # Event-queue implementation: "wheel" (default, the hierarchical
    # timer wheel) or "heap" (flat binary heap).  Both pop in identical
    # (time, priority, seq) order; the heap exists as the differential-
    # test reference (tests/test_sim_differential.py).
    scheduler: str = "wheel"


@dataclass
class Host:
    """One machine plus its OS-level attachments."""

    machine: Machine
    kernel: Kernel
    stack: UdpStack

    @property
    def name(self) -> str:
        """The machine's name."""
        return self.machine.name

    @property
    def nic(self):
        """The host's primary NIC."""
        return self.machine.device("nic0")


class Testbed:
    """The assembled two-hosts-plus-NAS world."""

    __test__ = False        # not a pytest test class, despite the name

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()
        self.sim = Simulator(scheduler=self.config.scheduler)
        self.rng = RandomStreams(self.config.seed)
        # Seed-derived named streams for any subsystem that wants its
        # own deterministic RNG (e.g. channel backoff jitter).
        self.sim.rng_streams = self.rng
        self.switch = Switch(self.sim, SwitchSpec(),
                             rng=self.rng.stream("switch"))

        self.nas = self._make_host("nas")
        self.server = self._make_host("server")
        self.client = self._make_host("client", bus=self.config.client_bus)

        # NAS service.
        self.nfs_server = NfsServer(self.nas.kernel, self.rng)

        # Client peripherals: GPU and the NFS-backed Smart Disk with its
        # own switch station (it is physically a second NIC).
        self.client_gpu = self.client.machine.add_gpu()
        self.client_disk = self.client.machine.add_disk()
        self.disk_port = DeviceNetPort(self.client_disk, self.switch,
                                       "client-disk")
        self.disk_nfs = DeviceNfsClient(self.disk_port, self.nas_address)
        self.client_disk.attach_backing(self.disk_nfs)

        # Standby migration target: a second programmable NIC on the
        # client, added before the runtime enumerates devices.  It is
        # deliberately *not* attached to the switch — a migrated network
        # Offcode keeps receiving through the primary NIC's firmware
        # port mux (claim() adopts the live binding and its buffered
        # frames), which is what makes the cutover lossless.
        if self.config.standby_nic:
            self.client.machine.add_nic(NicSpec(name="nic1"))

        # HYDRA runtimes for the offload-aware variants.
        self.server_runtime = HydraRuntime(self.server.machine,
                                           kernel=self.server.kernel)
        self.client_runtime = HydraRuntime(self.client.machine,
                                           kernel=self.client.kernel)
        if self.config.standby_nic:
            self.client_runtime.standby_devices.add("nic1")

        # Firmware port muxes (lazy: only offloaded variants claim them).
        self._server_mux: Optional[NicPortMux] = None
        self._client_mux: Optional[NicPortMux] = None
        self._started = False

        # Chaos plumbing: one injector over every device and bus in the
        # testbed, armed at start() when the config carries a plan.
        self.fault_injector: Optional[FaultInjector] = None
        if self.config.fault_plan is not None:
            devices = {f"{host.name}.{name}": device
                       for host in (self.nas, self.server, self.client)
                       for name, device in host.machine.devices.items()}
            buses = {host.name: host.machine.bus
                     for host in (self.nas, self.server, self.client)}
            self.fault_injector = FaultInjector(
                self.sim, self.config.fault_plan,
                devices=devices, buses=buses,
                executives=[self.server_runtime.executive,
                            self.client_runtime.executive],
                rng=self.rng.stream("faults"))

        # Telemetry hub (lazy import keeps the untraced path free of the
        # subsystem entirely).  Bound last: the adapters enumerate the
        # runtimes, buses and injector built above.
        self.telemetry = None
        if self.config.telemetry:
            from repro.telemetry import Telemetry
            from repro.telemetry.adapters import bind_testbed
            self.telemetry = Telemetry.attach(self.sim)
            bind_testbed(self.telemetry.registry, self)

    # -- construction helpers ------------------------------------------------------

    def _make_host(self, name: str,
                   bus: Optional[BusSpec] = None) -> Host:
        machine = Machine(self.sim, MachineSpec(
            name=name, bus=bus or BusSpec()))
        kernel = Kernel(machine, self.rng, self.config.kernel)
        machine.add_nic()
        stack = UdpStack(kernel, name)
        stack.attach_nic(machine.device("nic0"), self.switch)
        return Host(machine=machine, kernel=kernel, stack=stack)

    # -- addresses --------------------------------------------------------------------

    @property
    def nas_address(self) -> Address:
        """The NFS service's (host, port)."""
        return Address("nas", NFS_PORT)

    @property
    def client_media_address(self) -> Address:
        """Where the media stream is sent."""
        return Address("client", self.config.media_port)

    # -- lifecycle ---------------------------------------------------------------------

    def start(self) -> None:
        """Boot kernels (ticks + idle daemons) and the NFS service."""
        if self._started:
            return
        self._started = True
        self.server.kernel.start()
        self.client.kernel.start()
        self.nas.kernel.start(with_background=False)
        self.nfs_server.start()
        if self.config.watchdog is not None:
            self.server_runtime.start_watchdog(self.config.watchdog)
            self.client_runtime.start_watchdog(self.config.watchdog)
        if self.config.checkpoint is not None:
            self.server_runtime.start_checkpoints(self.config.checkpoint)
            self.client_runtime.start_checkpoints(self.config.checkpoint)
        if self.config.supervisor is not None:
            self.client_runtime.start_supervisor(self.config.supervisor)
        if self.fault_injector is not None:
            self.fault_injector.start()

    def server_mux(self) -> NicPortMux:
        """Firmware ports on the server NIC (offloaded server only)."""
        if self._server_mux is None:
            self._server_mux = NicPortMux(self.server.nic, "server")
        return self._server_mux

    def client_mux(self) -> NicPortMux:
        """Firmware ports on the client NIC (offloaded client only)."""
        if self._client_mux is None:
            self._client_mux = NicPortMux(self.client.nic, "client")
        return self._client_mux

    def run(self, seconds: float) -> None:
        """Advance simulated time by ``seconds``."""
        self.sim.run(until=self.sim.now + units.s_to_ns(seconds))
