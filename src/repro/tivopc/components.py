"""TiVoPC Offcodes — the components of Table 1 / Figure 7.

Six components make up the application (Section 6.2): GUI, Streamer,
Decoder, Display, File and Broadcast.  "All the components except the
GUI" become Offcodes; the GUI stays a host process (it only exchanges
control traffic over OOB channels).

Each component is one Offcode class, written once and placed by the
layout resolver; device-specific ability (GPU decode assist, smart-disk
NFS backing, NIC wire access) is reached through the execution site, so
the classes match the paper's "same component at both devices" reuse
(the two Streamer instances of Figure 8 share :class:`StreamerOffcode`).

Data-plane wiring follows Figure 8: the network-side Streamer feeds a
multicast channel whose endpoints are the Decoder (Gang -> GPU via the
Pull to Display) and the disk-side Streamer (Gang -> Smart Disk, Pull
with File).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ChannelError, DeviceFailedError, OffcodeError
from repro.core.channel import Channel, Message
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.offcode import Offcode
from repro.core.sites import DeviceSite, ExecutionSite
from repro.hostos.nfs import RemoteFile
from repro.media.mpeg import StreamConfig
from repro.net.packet import Address
from repro.sim.engine import Event

__all__ = [
    "ISTREAMER", "IDECODER", "IDISPLAY", "IFILE", "IBROADCAST",
    "StreamerOffcode", "DecoderOffcode", "DisplayOffcode",
    "FileOffcode", "BroadcastOffcode",
]

# -- interfaces (WSDL-equivalent specs) -----------------------------------------------

ISTREAMER = InterfaceSpec.from_methods(
    "tivopc.IStreamer",
    (MethodSpec("ChunksHandled", params=(), result="int"),
     MethodSpec("Pause", params=(), result="bool"),
     MethodSpec("Resume", params=(), result="bool"),
     MethodSpec("IsPaused", params=(), result="bool")))

IDECODER = InterfaceSpec.from_methods(
    "tivopc.IDecoder",
    (MethodSpec("FramesDecoded", params=(), result="int"),))

IDISPLAY = InterfaceSpec.from_methods(
    "tivopc.IDisplay",
    (MethodSpec("FramesShown", params=(), result="int"),))

IFILE = InterfaceSpec.from_methods(
    "tivopc.IFile",
    (MethodSpec("Read", params=(("size", "int"),), result="int"),
     MethodSpec("Append", params=(("size", "int"),), result="int"),
     MethodSpec("BytesStored", params=(), result="int"),))

IBROADCAST = InterfaceSpec.from_methods(
    "tivopc.IBroadcast",
    (MethodSpec("PacketsSent", params=(), result="int"),))

# Per-chunk firmware costs of the data plane.
_EXTRACT_NS = 3_000           # payload extraction / frame-type parse
_FORWARD_NS = 1_200           # channel descriptor handling
_FRAME_BYTES = 8 * 1024       # ~one SD frame at the 200 kB/s workload


class StreamerOffcode(Offcode):
    """Handles incoming packets and forwards payloads (Section 6.2).

    Two roles, chosen by construction:

    * **network role** — a packet source supplies packets (a firmware
      port binding on a NIC, or a host UDP socket when the component
      falls back to the host after a NIC failure); each payload is
      extracted and written to every outbound data channel (the
      Figure-8 multicast toward Decoder and disk Streamer, or a pair of
      unicast channels after host-fallback rewiring);
    * **disk role** — packets arrive *on* the data channel; each is
      handed to the co-located File Offcode unmodified ("storing the
      received frames, without modification, at the storage device, so
      that the source of the media packet becomes oblivious").
    """

    BINDNAME = "tivopc.Streamer"
    INTERFACES = (ISTREAMER,)

    def __init__(self, site: ExecutionSite, port_mux=None,
                 listen_port: int = 9000, socket=None) -> None:
        super().__init__(site)
        self.port_mux = port_mux            # network role, on-NIC build
        self.socket = socket                # network role, host build
        self.listen_port = listen_port
        self.binding = None
        self.data_channel: Optional[Channel] = None
        self.data_channels: list = []
        self.file_offcode: Optional["FileOffcode"] = None   # disk role
        self.chunks_handled = 0
        self.paused = False
        self._channel_ready: Event = site.sim.event()
        # Migration quiesce: prepare_migrate raises the flag, the
        # receive loop parks between chunks and signals here.
        self._draining = False
        self._parked: Event = site.sim.event()

    @property
    def _network_role(self) -> bool:
        return self.port_mux is not None or self.socket is not None

    def ChunksHandled(self) -> int:
        return self.chunks_handled

    def Pause(self) -> bool:
        """GUI control: freeze the viewing path (recording continues).

        A paused network Streamer keeps storing the stream — the
        appliance's defining trick — but marks forwarded chunks so the
        Decoder skips them.
        """
        self.paused = True
        return True

    def Resume(self) -> bool:
        """GUI control: resume live decoding."""
        self.paused = False
        return True

    def IsPaused(self) -> bool:
        return self.paused

    DATA_LABEL = "tivopc.media"

    def on_channel_attached(self, channel: Channel) -> None:
        super().on_channel_attached(channel)
        if channel.config.label != self.DATA_LABEL:
            return                  # OOB / proxy channels: not the data plane
        if self._network_role:
            # Network role: an outbound data channel.  The regular path
            # uses one multicast channel; after host fallback the
            # recovery hook wires one unicast channel per consumer.
            self.data_channels.append(channel)
            if self.data_channel is None:
                self.data_channel = channel
            if not self._channel_ready.triggered:
                self._channel_ready.succeed()
        else:
            # Disk role: inbound; handle chunks as they arrive.
            channel.endpoint_of(self).install_call_handler(
                self._on_chunk_message)

    # -- network role ------------------------------------------------------------------

    def on_start(self) -> Generator[Event, None, None]:
        yield from super().on_start()
        if self.port_mux is not None:
            # claim() (vs bind()) takes over an existing binding — after
            # a live migration the port is still bound by the previous
            # instance, and its queue holds the frames that arrived
            # during the cutover; adopting it loses none of them.
            claim = getattr(self.port_mux, "claim", None)
            self.binding = (claim(self.listen_port) if claim is not None
                            else self.port_mux.bind(self.listen_port))

    def main(self) -> Optional[Generator[Event, None, None]]:
        if not self._network_role:
            return None
        return self._receive_loop()

    def _receive_loop(self) -> Generator[Event, None, None]:
        # "The OOB-channel is usually used to notify the Offcode
        # regarding ... availability of other channels": wait for wiring.
        if not self._channel_ready.triggered:
            yield self._channel_ready
        while True:
            if self._draining:
                # Park at a chunk boundary: nothing half-forwarded, no
                # pending recv holding a getter slot.  The migration
                # tears this instance down; until then, stay put.
                if not self._parked.triggered:
                    self._parked.succeed()
                yield self.site.sim.event()
                continue
            if self.binding is not None:
                packet = yield from self.binding.recv()
            else:
                packet = yield from self.socket.recvfrom()
            yield from self.site.execute(_EXTRACT_NS, context="streamer")
            # In-band viewing flag: while paused the chunk still travels
            # (the disk Streamer must keep recording) but carries a
            # marker telling the Decoder not to render it.
            payload = (("paused", packet.payload) if self.paused
                       else packet.payload)
            for channel in list(self.data_channels):
                if channel.closed:
                    self.data_channels.remove(channel)
                    continue
                try:
                    endpoint = channel.endpoint_of(self)
                    yield from endpoint.write(payload, packet.size_bytes)
                except (ChannelError, DeviceFailedError):
                    # A consumer's device died under this write.  The
                    # streamer itself is healthy: drop the dead channel
                    # and keep serving the survivors; recovery will
                    # rewire (and replay the unacked frames) shortly.
                    self.data_channels.remove(channel)
                    if self.data_channel is channel:
                        self.data_channel = None
            self.chunks_handled += 1

    # -- migration quiesce -------------------------------------------------------------

    def prepare_migrate(self) -> Generator[Event, None, None]:
        """Park the receive loop at a chunk boundary.

        Writes inside the loop are synchronous, so once the loop parks
        every forwarded chunk has been acked (or is sitting in the
        channel's unacked buffer, which the drain phase then empties) —
        the cutover is exactly-once without replay.
        """
        if not self._network_role or self._main_process is None:
            return
        self._draining = True
        if not self._parked.triggered:
            yield self._parked

    # -- checkpoint/restore ------------------------------------------------------------

    def snapshot(self):
        """Stream progress: chunk counter and the viewing-pause flag."""
        return {"chunks_handled": self.chunks_handled,
                "paused": self.paused}

    def restore(self, state) -> None:
        self.chunks_handled = int(state.get("chunks_handled", 0))
        self.paused = bool(state.get("paused", False))

    # -- disk role ----------------------------------------------------------------------

    def attach_file(self, file_offcode: "FileOffcode") -> None:
        """Wire the Pull-mate File Offcode (co-located by the layout)."""
        if file_offcode.site is not self.site:
            raise OffcodeError(
                "Pull(streamer,file) violated: different sites")
        self.file_offcode = file_offcode

    def _on_chunk_message(self, message: Message
                          ) -> Generator[Event, None, None]:
        yield from self.site.execute(_EXTRACT_NS, context="streamer")
        if self.file_offcode is not None:
            yield from self.file_offcode.Append(message.size_bytes)
        self.chunks_handled += 1


class DecoderOffcode(Offcode):
    """Decodes the MPEG stream (Section 6.2).

    On a GPU site the decode uses the device's MPEG assist; on any other
    site it charges a software-decode cost to that site's processor.
    The decoded frame goes to the Pull-mate Display Offcode.
    """

    BINDNAME = "tivopc.Decoder"
    INTERFACES = (IDECODER,)
    SOFT_DECODE_NS_PER_BYTE = 9

    def __init__(self, site: ExecutionSite,
                 frame_bytes: int = _FRAME_BYTES) -> None:
        super().__init__(site)
        self.frame_bytes = frame_bytes
        self.display: Optional["DisplayOffcode"] = None
        self.bytes_buffered = 0
        self.frames_decoded = 0

    def FramesDecoded(self) -> int:
        return self.frames_decoded

    def attach_display(self, display: "DisplayOffcode") -> None:
        """Wire the Pull-mate Display (must be co-located)."""
        if display.site is not self.site:
            raise OffcodeError(
                "Pull(decoder,display) violated: different sites")
        self.display = display

    def on_channel_attached(self, channel: Channel) -> None:
        super().on_channel_attached(channel)
        if channel.config.label == StreamerOffcode.DATA_LABEL:
            channel.endpoint_of(self).install_call_handler(self._on_chunk)

    def snapshot(self):
        """Decode progress: partial-frame buffer and frame counter."""
        return {"bytes_buffered": self.bytes_buffered,
                "frames_decoded": self.frames_decoded}

    def restore(self, state) -> None:
        self.bytes_buffered = int(state.get("bytes_buffered", 0))
        self.frames_decoded = int(state.get("frames_decoded", 0))

    def _on_chunk(self, message: Message) -> Generator[Event, None, None]:
        if (isinstance(message.payload, tuple) and message.payload
                and message.payload[0] == "paused"):
            return   # viewing is paused; the disk path still records
        self.bytes_buffered += message.size_bytes
        while self.bytes_buffered >= self.frame_bytes:
            self.bytes_buffered -= self.frame_bytes
            raw = yield from self._decode_frame(self.frame_bytes)
            self.frames_decoded += 1
            if self.display is not None:
                yield from self.display.show_frame(raw)

    def _decode_frame(self, compressed: int
                      ) -> Generator[Event, None, int]:
        site = self.site
        if isinstance(site, DeviceSite) and hasattr(site.device,
                                                    "decode_frame"):
            return (yield from site.device.decode_frame(compressed))
        yield from site.execute(compressed * self.SOFT_DECODE_NS_PER_BYTE,
                                context="decoder")
        return compressed * 20


class DisplayOffcode(Offcode):
    """Owns the viewing surface (Section 6.2).

    On a GPU the frame is committed straight to the framebuffer; the
    host build wraps "a memory map of the GPU's physical memory" and
    pays the bus crossing via ``host_blit``.
    """

    BINDNAME = "tivopc.Display"
    INTERFACES = (IDISPLAY,)

    def __init__(self, site: ExecutionSite, gpu=None) -> None:
        """``gpu`` is required only for the host build (blit target)."""
        super().__init__(site)
        self._host_gpu = gpu
        self.frames_shown = 0

    def FramesShown(self) -> int:
        return self.frames_shown

    def snapshot(self):
        return {"frames_shown": self.frames_shown}

    def restore(self, state) -> None:
        self.frames_shown = int(state.get("frames_shown", 0))

    def show_frame(self, raw_bytes: int) -> Generator[Event, None, None]:
        """Commit one decoded frame via the site-appropriate path."""
        site = self.site
        if isinstance(site, DeviceSite) and hasattr(site.device,
                                                    "display_frame"):
            yield from site.device.display_frame(raw_bytes)
        elif self._host_gpu is not None:
            yield from self._host_gpu.host_blit(raw_bytes)
        else:
            yield from site.execute(20_000, context="display")
        self.frames_shown += 1


class FileOffcode(Offcode):
    """File-level APIs over the NAS (Section 6.2).

    Construction injects an NFS client (host or device flavour); reads
    go through a read-ahead :class:`RemoteFile`, writes are
    write-behind.  On the Smart Disk this is "an NFS Offcode that
    implements various parts of the NFS protocol".
    """

    BINDNAME = "tivopc.File"
    INTERFACES = (IFILE,)

    def __init__(self, site: ExecutionSite, nfs_client,
                 handle: str = "movie.mpg",
                 window_bytes: int = 64 * 1024) -> None:
        super().__init__(site)
        self.remote = RemoteFile(nfs_client, handle,
                                 window_bytes=window_bytes)
        self.bytes_read = 0
        self.bytes_written = 0

    def Read(self, size: int) -> Generator[Event, None, int]:
        got = yield from self.remote.read(size)
        self.bytes_read += got
        return got

    def Append(self, size: int) -> Generator[Event, None, int]:
        yield from self.remote.append(size)
        self.bytes_written += size
        return size

    def BytesStored(self) -> int:
        return self.bytes_written

    def snapshot(self):
        """Counters plus the remote file's append cursor — a restored
        File keeps appending where the dead device's instance left off
        instead of overwriting the recording from offset zero."""
        state = {"bytes_read": self.bytes_read,
                 "bytes_written": self.bytes_written}
        for attr in ("write_offset", "read_offset"):
            value = getattr(self.remote, attr, None)
            if isinstance(value, int):
                state[attr] = value
        return state

    def restore(self, state) -> None:
        self.bytes_read = int(state.get("bytes_read", 0))
        self.bytes_written = int(state.get("bytes_written", 0))
        for attr in ("write_offset", "read_offset"):
            if attr in state and hasattr(self.remote, attr):
                setattr(self.remote, attr, int(state[attr]))


class BroadcastOffcode(Offcode):
    """Paces the movie onto the wire (Section 6.2, server side).

    The firmware timer makes this the precise sender of Table 2: the
    loop sleeps against an *absolute* schedule (no drift) and the only
    deviation is firmware timer granularity — no ticks, no scheduler,
    no run queue.
    """

    BINDNAME = "tivopc.Broadcast"
    INTERFACES = (IBROADCAST,)
    # Firmware timer granularity (one-sided, microcontroller tick).
    TIMER_JITTER_SIGMA_NS = 43_000

    def __init__(self, site: ExecutionSite, port_mux, destination: Address,
                 stream: Optional[StreamConfig] = None,
                 rng=None, source_port: int = 9001,
                 require_file: bool = False) -> None:
        super().__init__(site)
        self.port_mux = port_mux
        self.destination = destination
        self.stream = stream or StreamConfig()
        self.rng = rng
        self.source_port = source_port
        self.require_file = require_file
        self.file_offcode: Optional[FileOffcode] = None
        self.packets_sent = 0
        self._file_ready: Event = site.sim.event()

    def PacketsSent(self) -> int:
        return self.packets_sent

    def attach_file(self, file_offcode: FileOffcode) -> None:
        """Wire the Pull-mate File (must be co-located)."""
        if file_offcode.site is not self.site:
            raise OffcodeError(
                "Pull(broadcast,file) violated: different sites")
        self.file_offcode = file_offcode
        if not self._file_ready.triggered:
            self._file_ready.succeed()

    def main(self) -> Generator[Event, None, None]:
        sim = self.site.sim
        if self.require_file and self.file_offcode is None:
            yield self._file_ready
        deadline = sim.now
        while True:
            deadline += self.stream.interval_ns
            wait = deadline - sim.now
            if self.rng is not None:
                wait += abs(round(self.rng.gauss(
                    0, self.TIMER_JITTER_SIGMA_NS)))
            if wait > 0:
                yield sim.timeout(wait)
            size = self.stream.chunk_bytes
            if self.file_offcode is not None:
                yield from self.file_offcode.Read(size)
            yield from self.port_mux.send(
                self.source_port, self.destination, size,
                payload=("chunk", self.packets_sent))
            self.packets_sent += 1
