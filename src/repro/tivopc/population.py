"""Subscriber-appliance populations at two fidelity tiers.

The paper evaluates ONE TiVoPC appliance; the ROADMAP's north star is
"heavy traffic from millions of users".  This module makes a *population*
of independent subscriber appliances a first-class workload, at two
fidelity tiers sharing one result schema:

* ``fidelity="detailed"`` — every subscriber is a full
  :class:`~repro.tivopc.testbed.Testbed` running the absolutely-paced
  offloaded pipeline (:class:`~repro.tivopc.server.OffloadedServer`
  firmware timer → switch → client NIC →
  :class:`~repro.tivopc.client.MeasurementClient`).  ~90 simulation
  events per chunk: NIC rings, switch hops, bus transactions, kernel
  ticks.  The ground truth.

* ``fidelity="chunk"`` — the scale model: one simulator hosts every
  subscriber in the shard, each subscriber is a single process taking
  ONE event per chunk on the Streamer→Decoder path.  Timing constants
  (deploy delay, wire latency, firmware timer jitter) are calibrated
  against the detailed tier and *validated* by
  :func:`validate_fidelity` within pinned tolerances
  (:data:`CHUNK_TOLERANCES`), so a 10^6-subscriber capacity run is a
  laptop job whose error bars are measured, not assumed.

Determinism contract: a subscriber's result depends only on
``(population config, fleet_seed, global client id)`` — per-client RNG
streams derive from the *fleet* seed and the *global* id (never the
shard seed), so re-partitioning the same population into a different
shard count reproduces every subscriber point-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro import units
from repro.errors import ReproError
from repro.media.decoder import ChunkDecodeModel
from repro.media.mpeg import StreamConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = ["PopulationConfig", "SubscriberStats", "PopulationResult",
           "FidelityTolerances", "FidelityValidation", "CHUNK_TOLERANCES",
           "client_seed", "run_population", "validate_fidelity"]

# -- calibrated chunk-tier constants ----------------------------------------------------
#
# Measured against the detailed tier (OffloadedServer at 1 kB / 5 ms,
# seeds 0..7): HYDRA deploy completes ~0.82 ms after start, the first
# chunk leaves one interval later, and an arrival trails its firmware
# deadline by the NIC/switch wire time.  The firmware timer's one-sided
# granularity jitter is the BroadcastOffcode constant.
CHUNK_DEPLOY_NS = 820_000            # Figure-5 deployment pipeline latency
CHUNK_WIRE_NS = 55_000               # NIC ring + switch + NIC ring
CHUNK_TIMER_JITTER_SIGMA_NS = 43_000  # BroadcastOffcode.TIMER_JITTER_SIGMA_NS


@dataclass(frozen=True)
class PopulationConfig:
    """One population workload, independent of how it is sharded."""

    clients: int = 64
    seconds: float = 2.0
    stream: StreamConfig = field(default_factory=StreamConfig)
    fidelity: str = "chunk"            # "chunk" | "detailed"
    # Per-chunk Bernoulli delivery loss of the scale model (the detailed
    # tier's baseline media path is lossless, so fidelity validation
    # runs at 0.0).
    loss_rate: float = 0.0
    fleet_seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ReproError(f"population needs >= 1 client: {self.clients}")
        if self.seconds <= 0:
            raise ReproError(f"seconds must be positive: {self.seconds}")
        if self.fidelity not in ("chunk", "detailed"):
            raise ReproError(
                f"unknown fidelity tier: {self.fidelity!r} "
                "(expected 'chunk' or 'detailed')")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ReproError(f"loss_rate out of [0, 1): {self.loss_rate}")


@dataclass
class SubscriberStats:
    """One subscriber appliance's run, in either fidelity tier."""

    gid: int                      # global client id within the fleet
    chunks_sent: int = 0
    chunks_delivered: int = 0
    chunks_lost: int = 0
    bytes_delivered: int = 0
    frames_decoded: int = 0
    first_arrival_ns: int = -1    # startup delay (QoE)
    completion_ns: int = -1       # last chunk arrival (QoE)
    gap_sum_ms: float = 0.0       # inter-arrival accumulators (QoE jitter)
    gap_count: int = 0
    gap_max_ms: float = 0.0

    @property
    def mean_gap_ms(self) -> float:
        """Mean inter-arrival gap — the per-client jitter figure."""
        return self.gap_sum_ms / self.gap_count if self.gap_count else 0.0

    def conservation_imbalance(self) -> int:
        """``sent - (delivered + lost)`` — must be exactly 0."""
        return self.chunks_sent - (self.chunks_delivered + self.chunks_lost)


@dataclass
class PopulationResult:
    """All subscribers of one (sub-)population plus engine accounting."""

    fidelity: str
    subscribers: List[SubscriberStats]
    events: int                   # simulation events dispatched
    sim_ns: int                   # simulated time covered

    def totals(self) -> Dict[str, int]:
        """Summed conservation counters over the population."""
        return {
            "chunks_sent": sum(s.chunks_sent for s in self.subscribers),
            "chunks_delivered": sum(s.chunks_delivered
                                    for s in self.subscribers),
            "chunks_lost": sum(s.chunks_lost for s in self.subscribers),
            "frames_decoded": sum(s.frames_decoded
                                  for s in self.subscribers),
        }


def client_seed(fleet_seed: int, gid: int) -> int:
    """The per-subscriber seed: ``hash(fleet_seed, "client", gid)``.

    Derived through :class:`~repro.sim.rng.RandomStreams` from the fleet
    root and the *global* client id, so the draw sequence of subscriber
    ``gid`` does not depend on which shard runs it.
    """
    return RandomStreams(fleet_seed).derive(f"client:{gid}")


# -- chunk fidelity: the scale model ----------------------------------------------------


def _chunk_subscriber(sim: Simulator, stats: SubscriberStats,
                      rng: random.Random, config: PopulationConfig,
                      horizon_ns: int) -> Generator[int, None, None]:
    """One subscriber as ONE process with ONE event per chunk.

    Mirrors the detailed pipeline's timing structure: the firmware pacer
    is *anchored* (``deadline += interval``; jitter never accumulates as
    drift, exactly like :class:`~repro.tivopc.components.
    BroadcastOffcode`), a chunk's arrival trails its deadline by the
    wire constant, and delivery is Bernoulli under ``loss_rate``.  The
    Streamer→Decoder work — extraction, forwarding, frame accumulation —
    collapses into :class:`~repro.media.decoder.ChunkDecodeModel`
    arithmetic inside the single wakeup.
    """
    interval = config.stream.interval_ns
    chunk_bytes = config.stream.chunk_bytes
    loss = config.loss_rate
    sigma = CHUNK_TIMER_JITTER_SIGMA_NS
    decoder = ChunkDecodeModel()
    gauss = rng.gauss
    rand = rng.random
    deadline = CHUNK_DEPLOY_NS
    prev_arrival = -1
    while True:
        deadline += interval
        if deadline > horizon_ns:
            break
        # One-sided firmware timer granularity, as the detailed model.
        target = deadline + abs(round(gauss(0.0, sigma)))
        wait = target - sim.now
        if wait > 0:
            yield wait              # bare-int fused sleep: zero allocation
        stats.chunks_sent += 1
        if loss and rand() < loss:
            stats.chunks_lost += 1
            continue
        arrival = sim.now + CHUNK_WIRE_NS
        stats.chunks_delivered += 1
        stats.bytes_delivered += chunk_bytes
        stats.frames_decoded += decoder.on_chunk(chunk_bytes)
        if stats.first_arrival_ns < 0:
            stats.first_arrival_ns = arrival
        elif prev_arrival >= 0:
            gap_ms = units.ns_to_ms(arrival - prev_arrival)
            stats.gap_sum_ms += gap_ms
            stats.gap_count += 1
            if gap_ms > stats.gap_max_ms:
                stats.gap_max_ms = gap_ms
        stats.completion_ns = arrival
        prev_arrival = arrival


def _run_chunk_population(gids: Sequence[int], config: PopulationConfig,
                          stream_seed: Optional[int] = None
                          ) -> PopulationResult:
    """All subscribers of the shard share one simulator."""
    sim = Simulator()
    sim.rng_streams = RandomStreams(
        config.fleet_seed if stream_seed is None else stream_seed)
    horizon_ns = units.s_to_ns(config.seconds)
    subscribers = []
    for gid in gids:
        stats = SubscriberStats(gid=gid)
        rng = random.Random(client_seed(config.fleet_seed, gid))
        sim.spawn(_chunk_subscriber(sim, stats, rng, config, horizon_ns),
                  name=f"subscriber-{gid}")
        subscribers.append(stats)
    sim.run(until=horizon_ns)
    return PopulationResult(fidelity="chunk", subscribers=subscribers,
                            events=sim.events_processed, sim_ns=sim.now)


# -- detailed fidelity: one full appliance per subscriber -------------------------------


def _run_detailed_subscriber(gid: int,
                             config: PopulationConfig) -> SubscriberStats:
    """One subscriber = one Testbed running the offloaded pipeline."""
    from repro.tivopc.client import MeasurementClient
    from repro.tivopc.server import OffloadedServer
    from repro.tivopc.testbed import Testbed, TestbedConfig

    testbed = Testbed(TestbedConfig(
        seed=client_seed(config.fleet_seed, gid), stream=config.stream))
    testbed.start()
    client = MeasurementClient(testbed)
    client.start()
    server = OffloadedServer(testbed)
    server.start()
    testbed.run(config.seconds)

    stats = SubscriberStats(gid=gid)
    stats.chunks_sent = server.packets_sent
    arrivals = client.jitter.arrivals_ns
    stats.chunks_delivered = len(arrivals)
    # The media path is lossless; anything outstanding is in flight at
    # the horizon, which the conservation accounting records as lost.
    stats.chunks_lost = stats.chunks_sent - stats.chunks_delivered
    stats.bytes_delivered = stats.chunks_delivered * \
        config.stream.chunk_bytes
    decoder = ChunkDecodeModel()
    for _ in range(stats.chunks_delivered):
        stats.frames_decoded += decoder.on_chunk(config.stream.chunk_bytes)
    if arrivals:
        stats.first_arrival_ns = arrivals[0]
        stats.completion_ns = arrivals[-1]
        for a, b in zip(arrivals, arrivals[1:]):
            gap_ms = units.ns_to_ms(b - a)
            stats.gap_sum_ms += gap_ms
            stats.gap_count += 1
            if gap_ms > stats.gap_max_ms:
                stats.gap_max_ms = gap_ms
    stats._events = testbed.sim.events_processed   # type: ignore[attr-defined]
    stats._violations = _channel_violations(testbed)  # type: ignore[attr-defined]
    return stats


def _channel_violations(testbed) -> List[str]:
    from repro.telemetry.adapters import check_channel_conservation
    problems = []
    for runtime in (testbed.server_runtime, testbed.client_runtime):
        problems.extend(check_channel_conservation(runtime.executive))
    return problems


def _run_detailed_population(gids: Sequence[int],
                             config: PopulationConfig) -> PopulationResult:
    subscribers = []
    events = 0
    violations: List[str] = []
    for gid in gids:
        stats = _run_detailed_subscriber(gid, config)
        events += stats.__dict__.pop("_events", 0)
        violations.extend(stats.__dict__.pop("_violations", []))
        subscribers.append(stats)
    result = PopulationResult(fidelity="detailed", subscribers=subscribers,
                              events=events,
                              sim_ns=units.s_to_ns(config.seconds))
    result.channel_violations = violations   # type: ignore[attr-defined]
    return result


def run_population(gids: Sequence[int], config: PopulationConfig,
                   stream_seed: Optional[int] = None) -> PopulationResult:
    """Run the subscribers ``gids`` of ``config``'s population.

    ``gids`` are *global* client ids (the fleet runner passes one
    shard's slice); results depend only on ``(config, gid)`` per
    subscriber, never on the grouping.  ``stream_seed`` roots the shared
    simulator's named streams (the fleet runner passes the shard seed);
    subscriber behaviour never draws from them, so it cannot perturb
    the per-client determinism contract.
    """
    if config.fidelity == "chunk":
        return _run_chunk_population(gids, config, stream_seed)
    return _run_detailed_population(gids, config)


# -- fidelity validation ----------------------------------------------------------------


@dataclass(frozen=True)
class FidelityTolerances:
    """Pinned acceptance bands for the scale model vs the ground truth."""

    # Relative error allowed on per-subscriber delivered-chunk counts.
    chunks_rel: float = 0.02
    # Relative error allowed on per-subscriber completion times.
    completion_rel: float = 0.02
    # Absolute error allowed on loss totals (the lossless baseline must
    # agree exactly; in-flight horizon chunks grant the slack).
    loss_abs: int = 1
    # Relative error allowed on per-subscriber mean inter-arrival gaps.
    gap_rel: float = 0.02


# The committed bar: the chunk tier must stay inside these bands against
# the detailed tier or the fleet's capacity numbers are meaningless.
CHUNK_TOLERANCES = FidelityTolerances()


@dataclass
class FidelityValidation:
    """Outcome of one chunk-vs-detailed comparison."""

    clients: int
    tolerances: FidelityTolerances
    failures: List[str]
    max_chunks_rel: float
    max_completion_rel: float
    max_loss_abs: int
    max_gap_rel: float

    @property
    def ok(self) -> bool:
        """True when every subscriber stayed inside the bands."""
        return not self.failures


def _rel(measured: float, truth: float) -> float:
    return abs(measured - truth) / truth if truth else abs(measured)


def validate_fidelity(config: Optional[PopulationConfig] = None,
                      tolerances: FidelityTolerances = CHUNK_TOLERANCES
                      ) -> FidelityValidation:
    """Run both tiers on a small population; compare subscriber by
    subscriber.

    The detailed tier is the truth.  Chunk counts, completion times,
    loss totals and mean gaps must land inside ``tolerances`` for every
    subscriber — the returned :class:`FidelityValidation` lists each
    violation with its numbers, and the maxima are reported so the
    margin is visible even when the validation passes.
    """
    config = config or PopulationConfig(clients=2, seconds=2.0)
    if config.loss_rate:
        raise ReproError(
            "fidelity validation needs loss_rate=0.0: the detailed "
            "tier's media path is lossless")
    gids = list(range(config.clients))
    from dataclasses import replace
    detailed = run_population(
        gids, replace(config, fidelity="detailed"))
    chunk = run_population(gids, replace(config, fidelity="chunk"))

    failures: List[str] = []
    max_chunks = max_completion = max_gap = 0.0
    max_loss = 0
    for truth, model in zip(detailed.subscribers, chunk.subscribers):
        chunks_rel = _rel(model.chunks_delivered, truth.chunks_delivered)
        completion_rel = _rel(model.completion_ns, truth.completion_ns)
        loss_abs = abs(model.chunks_lost - truth.chunks_lost)
        gap_rel = _rel(model.mean_gap_ms, truth.mean_gap_ms)
        max_chunks = max(max_chunks, chunks_rel)
        max_completion = max(max_completion, completion_rel)
        max_loss = max(max_loss, loss_abs)
        max_gap = max(max_gap, gap_rel)
        if chunks_rel > tolerances.chunks_rel:
            failures.append(
                f"client {truth.gid}: delivered chunks off by "
                f"{chunks_rel:.2%} ({model.chunks_delivered} vs "
                f"{truth.chunks_delivered})")
        if completion_rel > tolerances.completion_rel:
            failures.append(
                f"client {truth.gid}: completion off by "
                f"{completion_rel:.2%} ({model.completion_ns} vs "
                f"{truth.completion_ns} ns)")
        if loss_abs > tolerances.loss_abs:
            failures.append(
                f"client {truth.gid}: loss totals differ by {loss_abs} "
                f"({model.chunks_lost} vs {truth.chunks_lost})")
        if gap_rel > tolerances.gap_rel:
            failures.append(
                f"client {truth.gid}: mean gap off by {gap_rel:.2%} "
                f"({model.mean_gap_ms:.4f} vs {truth.mean_gap_ms:.4f} ms)")
    return FidelityValidation(
        clients=config.clients, tolerances=tolerances, failures=failures,
        max_chunks_rel=max_chunks, max_completion_rel=max_completion,
        max_loss_abs=max_loss, max_gap_rel=max_gap)
