"""Registered memory regions for one-sided verbs.

An :class:`RdmaRegion` is the remote half of the RDMA contract: a run
of memory the owner *registered* with the RDMA engine and advertised by
``rkey``.  After registration the owner's CPU is out of the picture —
remote peers read, write and compare-and-swap the region through the
engine's DMA path alone ("RDMA is Turing complete, we just did not know
it yet!"): no descriptor ring, no dispatch, no remote Offcode ever
scheduled.

Registration is priced like the real thing: host regions pin user pages
through the :class:`~repro.core.memory.MemoryManager` (get_user_pages),
device regions allocate device-local memory, and either way the engine
charges an MTT/MPT update before the rkey is live.

The simulation moves costs, not bytes, so a region carries two small
stores standing in for its contents: ``objects`` (arbitrary payloads at
byte offsets — what a KV value slot holds) and ``words`` (64-bit
integers at byte offsets — what atomics operate on).  Both are plain
dicts: a read of a never-written offset returns ``None`` / 0, exactly
like zeroed memory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import RdmaError

__all__ = ["RdmaRegion"]

_rkey_counter = itertools.count(0x1000)


@dataclass
class RdmaRegion:
    """One registered memory region, addressed remotely by ``rkey``."""

    owner: str                     # "host" or a device name
    size: int
    label: str = ""
    rkey: int = field(default_factory=lambda: next(_rkey_counter))
    base: int = 0
    revoked: bool = False
    # Content stand-ins (the sim moves costs, not bytes).
    objects: Dict[int, Any] = field(default_factory=dict)
    words: Dict[int, int] = field(default_factory=dict)
    # Backing bookkeeping so deregistration can release what
    # registration acquired (a PinnedRegion or a device MemoryRegion).
    backing: Optional[object] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise RdmaError(f"region size must be positive: {self.size}")

    # -- bounds ------------------------------------------------------------------

    def check(self, offset: int, length: int) -> None:
        """Validate one access; raises on revoked regions and overruns.

        This is the engine-side protection check every verb passes —
        the simulation analogue of the rkey/PD validation an RNIC does
        per work request.
        """
        if self.revoked:
            raise RdmaError(
                f"rkey {self.rkey:#x} ({self.label!r}) has been revoked")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise RdmaError(
                f"access [{offset}, {offset + length}) outside region "
                f"{self.label!r} of {self.size} bytes")

    # -- content stand-ins --------------------------------------------------------

    def read_object(self, offset: int) -> Any:
        """The payload stored at ``offset`` (None if never written)."""
        return self.objects.get(offset)

    def write_object(self, offset: int, value: Any) -> None:
        """Store a payload at ``offset``."""
        self.objects[offset] = value

    def load_word(self, offset: int) -> int:
        """The 64-bit word at ``offset`` (0 if never stored)."""
        return self.words.get(offset, 0)

    def store_word(self, offset: int, value: int) -> None:
        """Store a 64-bit word at ``offset``."""
        self.words[offset] = value

    def compare_and_swap(self, offset: int, expected: int,
                         desired: int) -> int:
        """Atomic CAS on the word at ``offset``; returns the old value.

        Atomicity is free in a discrete-event world — the engine
        serializes atomics on the target region, which a single-threaded
        simulator does by construction.
        """
        old = self.load_word(offset)
        if old == expected:
            self.words[offset] = desired
        return old

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "revoked" if self.revoked else "live"
        return (f"<RdmaRegion rkey={self.rkey:#x} owner={self.owner} "
                f"size={self.size} {state}>")
