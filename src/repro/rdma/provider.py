"""The RDMA channel provider — a one-sided substrate behind the same
cost-metric interface as every two-sided provider.

One :class:`RdmaProvider` exists per rdma-featured device (the "RNIC");
:class:`~repro.core.runtime.HydraRuntime` registers it alongside the
device's :class:`~repro.core.providers.DmaChannelProvider`, and the
Channel Executive ranks the two like any other pair.  The one-sided
price list is strictly cheaper than the descriptor-ring path — no
per-message host descriptor, no completion interrupt, polled CQs — so
over an RNIC the executive (and hence the ILP layout solver, which
prices edges through the same ``cost()``) picks RDMA without being
told to.

The provider serves two publics:

* **channels** — ordinary two-sided channels whose wire protocol is
  "one-sided write + completion notify": the initiator posts a WR and
  rings a doorbell, the engine bus-masters the payload, and the target
  discovers it by polling — nobody takes an interrupt, and the vectored
  path submits a whole batch behind one doorbell.
* **verbs** — :meth:`register_mr` / :meth:`create_qp` /
  :meth:`create_cq` for applications that want the raw one-sided API
  (the KV cache's gets never create a channel at all).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from repro.errors import DeviceFailedError, RdmaError
from repro.core.call import CallBatch
from repro.core.channel import Buffering, Channel, Endpoint
from repro.core.memory import MemoryManager
from repro.core.providers import (ChannelProvider, CostMetric,
                                  _LOCAL_COPY_NS_PER_BYTE)
from repro.core.sites import ExecutionSite, HostSite
from repro.hw.device import ProgrammableDevice
from repro.hw.machine import Machine
from repro.rdma.mr import RdmaRegion
from repro.rdma.verbs import (CQ_POLL_NS, DOORBELL_NS, MR_REGISTER_NS,
                              POST_WR_NS, WR_ENGINE_NS, CompletionQueue,
                              QueuePair, RdmaStats)
from repro.sim.engine import Event

__all__ = ["RdmaProvider", "RDMA_FEATURE"]

# DeviceSpec feature that marks a device as an RDMA engine.
RDMA_FEATURE = "rdma"


class RdmaProvider(ChannelProvider):
    """Host <-> one RNIC channels over one-sided verbs."""

    def __init__(self, machine: Machine, device: ProgrammableDevice,
                 memory: MemoryManager, kernel=None) -> None:
        if not device.spec.has_feature(RDMA_FEATURE):
            raise RdmaError(
                f"device {device.name} does not advertise the "
                f"{RDMA_FEATURE!r} feature")
        self.machine = machine
        self.device = device
        self.memory = memory
        self.kernel = kernel
        self.name = f"rdma-{device.name}"
        self.stats = RdmaStats()
        self.regions: List[RdmaRegion] = []
        self._pin_cursor = itertools.count(0x9000_0000, 0x0100_0000)

    # -- ChannelProvider interface ---------------------------------------------------

    def can_serve(self, src: ExecutionSite, dst: ExecutionSite,
                  config) -> bool:
        """Exactly {host, this RNIC} on this machine."""
        sites = {src.name, dst.name}
        if sites != {"host", self.device.name}:
            return False
        host = src if isinstance(src, HostSite) else dst
        return isinstance(host, HostSite) and host.machine is self.machine

    def cost(self, src: ExecutionSite, dst: ExecutionSite,
             config) -> CostMetric:
        """One-sided pricing: WR + doorbell + engine + CQ poll.

        Versus the DMA ring (arbitration + 500 host descriptor + 900
        device descriptor, host_cpu 500): the initiator pays 400 ns of
        CPU and the engine 400 ns of firmware, with no interrupt on
        either end — cheaper on both axes, so the executive picks this
        provider over the descriptor ring wherever both can serve.
        """
        bus = self.device.bus
        base_latency = (bus.spec.arbitration_ns + POST_WR_NS + DOORBELL_NS
                        + WR_ENGINE_NS + CQ_POLL_NS)
        if config.buffering is Buffering.DIRECT:
            return CostMetric(latency_ns=base_latency,
                              throughput_bps=bus.spec.bandwidth_bps,
                              host_cpu_ns=POST_WR_NS + DOORBELL_NS)
        # COPY mode bounces through a kernel buffer before the WR posts.
        return CostMetric(latency_ns=base_latency + 2_000,
                          throughput_bps=bus.spec.bandwidth_bps,
                          host_cpu_ns=4_500)

    def transfer(self, channel: Channel, source: Endpoint,
                 destinations: List[Endpoint], size_bytes: int
                 ) -> Generator[Event, None, None]:
        """One message as one-sided-write + polled notify.

        The initiator (host or RNIC firmware) posts a single WR and
        rings the doorbell; the engine moves the payload; the receiving
        side pays one CQ poll.  No descriptor rings, no ISR.
        """
        size = max(1, size_bytes)
        to_device = isinstance(source.site, HostSite)
        posted_here = 0
        try:
            if to_device:
                yield from self._copy_in(channel, source.site, size)
                yield from source.site.execute(POST_WR_NS + DOORBELL_NS,
                                               context="rdma-channel")
                self._count(posted=1, writes=1, doorbells=1,
                            bytes_written=size)
                posted_here = 1
                yield from self.device.run_on_device(WR_ENGINE_NS,
                                                     context="rdma-channel")
                yield from self.device.dma_from_host(size)
                # The target's poll loop notices the landed payload.
                yield from self.device.run_on_device(CQ_POLL_NS,
                                                     context="rdma-channel")
            else:
                yield from self.device.run_on_device(
                    POST_WR_NS + DOORBELL_NS + WR_ENGINE_NS,
                    context="rdma-channel")
                self._count(posted=1, writes=1, doorbells=1,
                            bytes_written=size)
                posted_here = 1
                yield from self.device.dma_to_host(size)
                host = self._host_site(channel)
                if host is not None:
                    yield from host.execute(CQ_POLL_NS,
                                            context="rdma-channel")
                yield from self._copy_out(channel, host, size)
        except DeviceFailedError:
            # The WR was posted but the engine died: account it failed
            # so `posted == completed + failed` survives the crash, then
            # let the channel's retry/drop machinery see the error.
            self.stats.failed += posted_here
            raise
        self.stats.completed += 1

    def transfer_vectored(self, channel: Channel, source: Endpoint,
                          destinations: List[Endpoint], batch: CallBatch
                          ) -> Generator[Event, None, None]:
        """A whole batch behind one doorbell and one CQ poll.

        The initiator posts every WR back to back (cheap queue appends),
        one MMIO write submits them all, the engine gathers the payloads
        in a single scatter-gather transaction, and one poll drains the
        batch's completions — the amortization ``bench_rdma_kv``
        measures.
        """
        if not self.device.supports_vectored_dma:
            yield from ChannelProvider.transfer_vectored(
                self, channel, source, destinations, batch)
            return
        sizes = batch.entry_sizes()
        count = batch.count
        to_device = isinstance(source.site, HostSite)
        posted_here = 0
        try:
            if to_device:
                yield from self._copy_in(channel, source.site,
                                         batch.size_bytes)
                yield from source.site.execute(
                    POST_WR_NS * count + DOORBELL_NS,
                    context="rdma-channel")
                self._count(posted=count, writes=count, doorbells=1,
                            bytes_written=batch.size_bytes)
                posted_here = count
                yield from self.device.run_on_device(WR_ENGINE_NS * count,
                                                     context="rdma-channel")
                yield from self.device.dma_from_host_vectored(sizes)
                yield from self.device.run_on_device(CQ_POLL_NS,
                                                     context="rdma-channel")
            else:
                yield from self.device.run_on_device(
                    POST_WR_NS * count + DOORBELL_NS + WR_ENGINE_NS * count,
                    context="rdma-channel")
                self._count(posted=count, writes=count, doorbells=1,
                            bytes_written=batch.size_bytes)
                posted_here = count
                yield from self.device.dma_to_host_vectored(sizes)
                host = self._host_site(channel)
                if host is not None:
                    yield from host.execute(CQ_POLL_NS,
                                            context="rdma-channel")
                yield from self._copy_out(channel, host, batch.size_bytes)
        except DeviceFailedError:
            self.stats.failed += posted_here
            raise
        self.stats.completed += count

    # -- verb API (the raw one-sided surface) -----------------------------------------

    def register_mr(self, owner: str, size: int, label: str = ""
                    ) -> Generator[Event, None, RdmaRegion]:
        """Register ``size`` bytes of ``owner``'s memory; returns the
        rkey-carrying region handle.

        Host regions pin user pages (get_user_pages); device regions
        allocate device-local memory on the owner; either way the engine
        charges an MTT/MPT update before the rkey is live.
        """
        if owner == "host":
            backing = yield from self.memory.pin(next(self._pin_cursor),
                                                 size)
        else:
            owner_dev = self.machine.devices.get(owner)
            if owner_dev is None:
                raise RdmaError(f"unknown region owner {owner!r}")
            backing = owner_dev.memory.allocate(size,
                                                label=label or "rdma-mr")
        yield from self.device.run_on_device(MR_REGISTER_NS,
                                             context="rdma-mr")
        region = RdmaRegion(owner=owner, size=size, label=label,
                            backing=backing)
        self.regions.append(region)
        return region

    def deregister_mr(self, region: RdmaRegion) -> None:
        """Revoke the rkey and release the backing pin/allocation."""
        if region.revoked:
            raise RdmaError(f"rkey {region.rkey:#x} already revoked")
        region.revoked = True
        backing, region.backing = region.backing, None
        if backing is None:
            return
        if region.owner == "host":
            self.memory.unpin(backing)
        else:
            owner_dev = self.machine.devices.get(region.owner)
            if owner_dev is not None and not owner_dev.health.crashed:
                owner_dev.memory.free(backing)

    def create_cq(self, site: ExecutionSite,
                  mode: str = "polled") -> CompletionQueue:
        """A completion queue on ``site`` (``polled`` or ``interrupt``)."""
        return CompletionQueue(site, mode=mode, kernel=self.kernel)

    def create_qp(self, site: ExecutionSite,
                  cq: Optional[CompletionQueue] = None) -> QueuePair:
        """A queue pair from ``site`` through this provider's engine."""
        # NB: an empty CompletionQueue is falsy (it has __len__), so the
        # presence test must be identity, not truthiness.
        if cq is None:
            cq = self.create_cq(site)
        return QueuePair(site, self.device, cq, self.stats)

    # -- internals --------------------------------------------------------------------

    def _count(self, posted: int, writes: int, doorbells: int,
               bytes_written: int) -> None:
        self.stats.posted += posted
        self.stats.writes += writes
        self.stats.doorbells += doorbells
        self.stats.bytes_written += bytes_written

    def _host_site(self, channel: Channel) -> Optional[HostSite]:
        return next((e.site for e in channel.endpoints
                     if isinstance(e.site, HostSite)), None)

    def _copy_in(self, channel: Channel, host, size: int
                 ) -> Generator[Event, None, None]:
        if channel.config.buffering is not Buffering.COPY:
            return
        if self.kernel is not None:
            yield from self.kernel.copy_from_user(size, context="channel")
        else:
            yield from host.execute(round(size * _LOCAL_COPY_NS_PER_BYTE),
                                    context="channel")

    def _copy_out(self, channel: Channel, host, size: int
                  ) -> Generator[Event, None, None]:
        if channel.config.buffering is not Buffering.COPY or host is None:
            return
        if self.kernel is not None:
            yield from self.kernel.copy_to_user(size, context="channel")
        else:
            yield from host.execute(round(size * _LOCAL_COPY_NS_PER_BYTE),
                                    context="channel")
