"""Offloaded key-value cache: one-sided gets against a smart disk.

The first non-video workload.  A :class:`KvCacheOffcode` lives on the
smart disk and owns the table; its slot array is registered as an RDMA
region through the RNIC, so a **get is a one-sided read** — the host
posts read WRs against the disk's registered region, rings one doorbell
per batch, and the RNIC bus-masters the slots back.  Neither the disk's
CPU nor the host kernel runs on the hot path: no descriptor rings, no
dispatch, no interrupt.

Slot discipline makes the one-sided read safe without a lookup RPC:
``slot_offset(key)`` hashes the key to a fixed 64-byte slot, and the
slot stores the ``(key, value)`` pair, so the reader *validates* the
key it got.  A hash collision (two keys, one slot) or a missing entry
reads back the wrong key or ``None`` — the client falls back to the
two-sided :meth:`KvCacheOffcode.Get` RPC, which consults the full
table.  Fallback is therefore a correctness path, not just a failure
path, and the chaos drill leans on it: **crash the RNIC mid-get** and
every in-flight verb completes as ``status="error"``, the client flips
to the RPC path (the disk and its DMA channel are untouched), and the
existing watchdog/recovery machinery fences the dead NIC.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.core.channel import ChannelConfig
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.odf import DeviceClassFilter, OdfDocument
from repro.core.offcode import Offcode
from repro.core.runtime import DeploymentSpec, HydraRuntime
from repro.core.watchdog import WatchdogConfig
from repro.faults import FaultInjector, FaultPlan
from repro.hw import DeviceClass, Machine, NicSpec
from repro.rdma.mr import RdmaRegion
from repro.rdma.provider import RDMA_FEATURE
from repro.sim.engine import Event, Simulator

__all__ = ["IKVCACHE", "KvCacheOffcode", "KvClient", "KvWorld",
           "SLOT_BYTES", "build_kv_world", "slot_offset",
           "run_kv_scenario", "run_kv_chaos"]

# One cache slot: key digest + length-prefixed value, padded — the unit
# a one-sided get reads.
SLOT_BYTES = 64

IKVCACHE = InterfaceSpec.from_methods(
    "IKvCache",
    (MethodSpec("Get", params=(("key", "string"),), result="any"),
     MethodSpec("Put", params=(("key", "string"), ("value", "any")),
                result="int"),
     MethodSpec("Size", params=(), result="int")))


def slot_offset(key: str, slots: int) -> int:
    """The fixed region offset of ``key``'s slot (stable across runs)."""
    return (zlib.crc32(key.encode("utf-8")) % slots) * SLOT_BYTES


class KvCacheOffcode(Offcode):
    """The table owner: serves two-sided RPCs, mirrors slots for RDMA."""

    BINDNAME = "rdma.KvCache"
    INTERFACES = (IKVCACHE,)
    # A get is a hash-table probe, far lighter than the media pipeline.
    DISPATCH_COST_NS = 800

    def __init__(self, site, guid=None) -> None:
        super().__init__(site, guid)
        self.table: Dict[str, object] = {}
        self.region: Optional[RdmaRegion] = None
        self.slots = 0
        self.rpc_gets = 0
        self.rpc_puts = 0

    def bind_region(self, region: RdmaRegion) -> None:
        """Adopt a registered region as the slot array's public face."""
        self.region = region
        self.slots = region.size // SLOT_BYTES
        for key, value in self.table.items():
            region.write_object(slot_offset(key, self.slots), (key, value))

    # -- IKvCache -----------------------------------------------------------------

    def Get(self, key):
        """Two-sided get: the fallback (and collision-proof) path."""
        self.rpc_gets += 1
        yield from self.site.execute(600, context="kv-probe")
        return self.table.get(key)

    def Put(self, key, value):
        """Insert/update; mirrors the slot so one-sided readers see it."""
        self.rpc_puts += 1
        self.table[key] = value
        if self.region is not None and not self.region.revoked:
            self.region.write_object(slot_offset(key, self.slots),
                                     (key, value))
        yield from self.site.execute(900, context="kv-insert")
        return len(self.table)

    def Size(self):
        yield from self.site.execute(200, context="kv-probe")
        return len(self.table)


class KvClient:
    """Host-side cache client: one-sided fast path, RPC slow path.

    ``get_batch`` posts one read WR per key and rings a single doorbell;
    completions carrying the wrong key (collision), no value (miss), or
    an error status (dead engine) are re-fetched through the two-sided
    proxy.  The first errored batch flips :attr:`one_sided_ok` off so a
    crashed RNIC costs one failed doorbell, not one per batch.
    """

    def __init__(self, qp, region: RdmaRegion, proxy, slots: int) -> None:
        self.qp = qp
        self.region = region
        self.proxy = proxy
        self.slots = slots
        self.one_sided_ok = True
        self.one_sided_hits = 0
        self.fallback_gets = 0

    def get_batch(self, keys: List[str]
                  ) -> Generator[Event, None, Dict[str, object]]:
        """Fetch every key exactly once; returns ``{key: value}``."""
        results: Dict[str, object] = {}
        fallback: List[str] = []
        if self.one_sided_ok:
            wr_to_key: Dict[int, str] = {}
            for key in keys:
                wr_id = self.qp.post_read(
                    self.region, slot_offset(key, self.slots), SLOT_BYTES)
                wr_to_key[wr_id] = key
            completions = yield from self.qp.ring_doorbell()
            for completion in completions:
                key = wr_to_key[completion.wr_id]
                slot = completion.value if completion.ok else None
                if (isinstance(slot, tuple) and len(slot) == 2
                        and slot[0] == key):
                    results[key] = slot[1]
                    self.one_sided_hits += 1
                else:
                    fallback.append(key)
            if any(not c.ok for c in completions):
                self.one_sided_ok = False
        else:
            fallback = list(keys)
        for key in fallback:
            results[key] = yield from self.proxy.Get(key)
            self.fallback_gets += 1
        return results

    def get_rpc(self, keys: List[str]
                ) -> Generator[Event, None, Dict[str, object]]:
        """The all-two-sided baseline the benchmark compares against."""
        results: Dict[str, object] = {}
        for key in keys:
            results[key] = yield from self.proxy.Get(key)
        return results


@dataclass
class KvWorld:
    """Everything a scenario or test needs to drive the cache."""

    sim: Simulator
    machine: Machine
    runtime: HydraRuntime
    nic: object
    disk: object
    provider: object = None
    cache: Optional[KvCacheOffcode] = None
    proxy: object = None
    region: Optional[RdmaRegion] = None
    client: Optional[KvClient] = None
    report: dict = field(default_factory=dict)


def build_kv_world(slots: int = 256) -> KvWorld:
    """One machine: an RDMA-capable NIC (the engine) + a smart disk."""
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_nic(NicSpec(extra_features=(RDMA_FEATURE,)))
    disk = machine.add_disk()
    runtime = HydraRuntime(machine)
    odf = OdfDocument(
        bindname=KvCacheOffcode.BINDNAME,
        guid=KvCacheOffcode(runtime.host_site).guid,
        interfaces=[IKVCACHE],
        targets=[DeviceClassFilter(DeviceClass.STORAGE),
                 DeviceClassFilter(DeviceClass.HOST)],
        image_bytes=48 * 1024)
    runtime.library.register("/offcodes/kv_cache.odf", odf)
    runtime.depot.register(odf.guid, KvCacheOffcode)
    world = KvWorld(sim=sim, machine=machine, runtime=runtime, nic=nic,
                    disk=disk)
    world.report["slots"] = slots
    return world


def deploy_cache(world: KvWorld, slots: int = 256
                 ) -> Generator[Event, None, None]:
    """Deploy the offcode, register the MR, build the client."""
    result = yield from world.runtime.deploy(
        DeploymentSpec(odf_paths=("/offcodes/kv_cache.odf",)))
    world.proxy = result.proxy
    world.cache = world.runtime.get_offcode(KvCacheOffcode.BINDNAME)
    world.report["placement"] = world.cache.location
    provider = world.runtime.rdma_provider(world.nic.name)
    world.provider = provider
    world.region = yield from provider.register_mr(
        world.cache.location if world.cache.location != "host" else "host",
        slots * SLOT_BYTES, label="kv-table")
    world.cache.bind_region(world.region)
    world.client = KvClient(provider.create_qp(world.runtime.host_site),
                            world.region, world.proxy, slots)


def _value_of(key: str) -> str:
    return f"v:{key}"


def run_kv_scenario(keys: int = 96, batch: int = 8,
                    slots: int = 256) -> dict:
    """Populate the cache, then fetch everything both ways.

    Returns the timing/accounting report the benchmark and the example
    read: one-sided batched gets vs the same gets as two-sided RPCs.
    """
    world = build_kv_world(slots=slots)
    sim = world.sim
    names = [f"key-{i:04d}" for i in range(keys)]

    def application():
        yield from deploy_cache(world, slots=slots)
        for name in names:
            yield from world.proxy.Put(name, _value_of(name))
        host_cpu_before = world.machine.cpu.total_busy
        started = sim.now
        one_sided: Dict[str, object] = {}
        for start in range(0, len(names), batch):
            got = yield from world.client.get_batch(
                names[start:start + batch])
            one_sided.update(got)
        one_sided_ns = sim.now - started
        one_sided_cpu = world.machine.cpu.total_busy - host_cpu_before
        host_cpu_before = world.machine.cpu.total_busy
        started = sim.now
        rpc: Dict[str, object] = {}
        for start in range(0, len(names), batch):
            got = yield from world.client.get_rpc(
                names[start:start + batch])
            rpc.update(got)
        rpc_ns = sim.now - started
        rpc_cpu = world.machine.cpu.total_busy - host_cpu_before
        stats = world.provider.stats
        world.report.update(
            keys=keys, batch=batch,
            one_sided_ns=one_sided_ns, rpc_ns=rpc_ns,
            one_sided_host_cpu_ns=one_sided_cpu,
            rpc_host_cpu_ns=rpc_cpu,
            one_sided_hits=world.client.one_sided_hits,
            fallback_gets=world.client.fallback_gets,
            rdma_reads=stats.reads, doorbells=stats.doorbells,
            imbalance=stats.imbalance,
            sim_ns=sim.now, events=sim.events_processed,
            correct=(one_sided == rpc
                     and one_sided == {n: _value_of(n) for n in names}))

    sim.run_until_event(sim.spawn(application()))
    return world.report


def run_kv_chaos(seed: int = 0, keys: int = 80, batch: int = 8,
                 slots: int = 256, crash_at_ns: int = 2_000_000) -> dict:
    """The chaos drill: crash the RNIC mid-get, recover via fallback.

    Asserts exactly-once results (every key fetched once, correct
    value), the one-sided conservation law, and a recovered watchdog
    incident for the dead NIC.  Returns the report for the CLI/CI.
    """
    world = build_kv_world(slots=slots)
    sim = world.sim
    names = [f"key-{i:04d}" for i in range(keys)]
    results: Dict[str, object] = {}
    fetched: List[str] = []

    def application():
        yield from deploy_cache(world, slots=slots)
        world.runtime.start_watchdog(WatchdogConfig())
        for name in names:
            yield from world.proxy.Put(name, _value_of(name))
        for start in range(0, len(names), batch):
            chunk = names[start:start + batch]
            got = yield from world.client.get_batch(chunk)
            results.update(got)
            fetched.extend(chunk)
            # Pace the batches so the crash lands mid-run.
            yield sim.timeout(250_000)

    plan = FaultPlan().crash_device(crash_at_ns, world.nic.name)
    injector = FaultInjector(sim, plan,
                             devices={world.nic.name: world.nic},
                             rng=random.Random(seed))
    injector.start()
    done = sim.spawn(application())
    sim.run_until_event(done)
    # Let the watchdog declare the death and finish the incident.
    sim.run(until=sim.now + 50_000_000)

    stats = world.provider.stats
    incidents = [i for i in world.runtime.incidents
                 if i.device == world.nic.name]
    report = {
        "seed": seed,
        "keys": keys,
        "exactly_once": (sorted(fetched) == sorted(names)
                         and len(fetched) == len(set(fetched))),
        "correct": results == {n: _value_of(n) for n in names},
        "one_sided_hits": world.client.one_sided_hits,
        "fallback_gets": world.client.fallback_gets,
        "fell_back": not world.client.one_sided_ok,
        "posted": stats.posted,
        "completed": stats.completed,
        "failed": stats.failed,
        "conservation_ok": stats.imbalance == 0,
        "incident_recovered": bool(incidents) and incidents[0].recovered,
    }
    report["ok"] = (report["exactly_once"] and report["correct"]
                    and report["fell_back"] and report["conservation_ok"]
                    and report["incident_recovered"]
                    and report["failed"] > 0)
    return report
