"""In-network packet telemetry: a sPIN handler offcode on the NIC.

The second non-video workload.  A :class:`FlowTelemetryOffcode` deploys
onto a :class:`~repro.hw.spin.SpinNic` (its ODF *requires* the ``spin``
feature, so the layout resolver can only place it on a handler-capable
NIC) and installs a three-handler packet program:

* **header** — per-flow packet/byte counters, denylist filtering
  (blocked destination ports DROP in-network), and 1-in-N sampling
  (every Nth packet escalates TO_HOST for deep inspection);
* **payload** — a checksum walk over the payload bytes (the part the
  cycle budget prices by size: jumbo frames would blow the per-packet
  budget, so the device model punts them to the host path unrun);
* **completion** — handled-packet bookkeeping.

Everything else — counters, flow table, the ``Snapshot`` control RPC —
is ordinary Offcode machinery; only the per-packet path runs in the
NIC's receive pipeline.  The host CPU sees exactly the sampled and
over-budget packets, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.odf import (DeviceClassFilter, OdfDocument,
                            SoftwareRequirements)
from repro.core.offcode import Offcode
from repro.core.runtime import DeploymentSpec, HydraRuntime
from repro.hw import DeviceClass, Machine
from repro.hw.spin import DROP, SPIN_FEATURE, TO_HOST, SpinHandlers
from repro.net.packet import Address, Packet
from repro.net.switch import Switch
from repro.sim.engine import Event, Simulator

__all__ = ["ITELEMETRY", "FlowTelemetryOffcode", "FilterWorld",
           "build_filter_world", "run_filter_scenario"]

ITELEMETRY = InterfaceSpec.from_methods(
    "IFlowTelemetry",
    (MethodSpec("Snapshot", params=(), result="any"),
     MethodSpec("Block", params=(("port", "int"),), result="bool"),
     MethodSpec("SetSampling", params=(("every", "int"),), result="bool")))


class FlowTelemetryOffcode(Offcode):
    """Counts, filters and samples flows from inside the NIC."""

    BINDNAME = "rdma.FlowTelemetry"
    INTERFACES = (ITELEMETRY,)

    def __init__(self, site, guid=None) -> None:
        super().__init__(site, guid)
        self.flows: Dict[Tuple, List[int]] = {}   # flow -> [pkts, bytes]
        self.blocked_ports: set = set()
        self.sample_every = 0                     # 0 = no sampling
        self._seen = 0
        self._handled = 0

    # -- lifecycle -----------------------------------------------------------------

    def on_start(self) -> Generator[Event, None, None]:
        """Install the packet program on the hosting SpinNic."""
        yield from super().on_start()
        device = getattr(self.site, "device", None)
        if device is not None and hasattr(device, "install_handlers"):
            device.install_handlers(SpinHandlers(
                header=self._header, payload=self._payload,
                completion=self._completion))

    # -- the packet program (runs in the NIC's rx path) -----------------------------

    def _header(self, packet) -> Optional[str]:
        flow = packet.flow()
        stats = self.flows.setdefault(flow, [0, 0])
        stats[0] += 1
        stats[1] += packet.size_bytes
        if packet.dst.port in self.blocked_ports:
            return DROP
        self._seen += 1
        if self.sample_every and self._seen % self.sample_every == 0:
            return TO_HOST
        return None

    def _payload(self, packet) -> Optional[str]:
        # The checksum itself is modeled cost (payload_ns_per_byte);
        # logic-wise the packet is simply absorbed in-network.
        return None

    def _completion(self, packet) -> None:
        self._handled += 1

    # -- IFlowTelemetry --------------------------------------------------------------

    def Snapshot(self):
        """Per-flow counters as rows (marshal-friendly, no tuple keys)."""
        yield from self.site.execute(500 + 50 * len(self.flows),
                                     context="telemetry-snapshot")
        return [[src_h, src_p, dst_h, dst_p, stats[0], stats[1]]
                for (src_h, src_p, dst_h, dst_p), stats
                in sorted(self.flows.items())]

    def Block(self, port):
        yield from self.site.execute(300, context="telemetry-config")
        self.blocked_ports.add(port)
        return True

    def SetSampling(self, every):
        yield from self.site.execute(300, context="telemetry-config")
        self.sample_every = max(0, every)
        return True


@dataclass
class FilterWorld:
    """The wired-up appliance: SpinNic on a switch, offcode deployed."""

    sim: Simulator
    machine: Machine
    runtime: HydraRuntime
    nic: object
    switch: Switch
    gen_tx: object = None
    telemetry: Optional[FlowTelemetryOffcode] = None
    proxy: object = None
    report: dict = field(default_factory=dict)


def build_filter_world() -> FilterWorld:
    """An appliance whose SpinNic sits on a switch next to a generator."""
    sim = Simulator()
    machine = Machine(sim)
    nic = machine.add_spin_nic()
    runtime = HydraRuntime(machine)
    switch = Switch(sim)
    # The NIC is the appliance's station; the traffic generator is a
    # bare station that never receives.
    transmit = switch.attach("appliance", nic.receive_packet)
    nic.attach_wire(transmit)
    gen_tx = switch.attach("gen", lambda packet: None)
    odf = OdfDocument(
        bindname=FlowTelemetryOffcode.BINDNAME,
        guid=FlowTelemetryOffcode(runtime.host_site).guid,
        interfaces=[ITELEMETRY],
        targets=[DeviceClassFilter(DeviceClass.NETWORK)],
        requirements=SoftwareRequirements(features=(SPIN_FEATURE,)),
        image_bytes=24 * 1024)
    runtime.library.register("/offcodes/flow_telemetry.odf", odf)
    runtime.depot.register(odf.guid, FlowTelemetryOffcode)
    return FilterWorld(sim=sim, machine=machine, runtime=runtime,
                       nic=nic, switch=switch, gen_tx=gen_tx)


def deploy_filter(world: FilterWorld) -> Generator[Event, None, None]:
    """Deploy the telemetry offcode onto the SpinNic."""
    result = yield from world.runtime.deploy(
        DeploymentSpec(odf_paths=("/offcodes/flow_telemetry.odf",)))
    world.proxy = result.proxy
    world.telemetry = world.runtime.get_offcode(
        FlowTelemetryOffcode.BINDNAME)
    world.report["placement"] = world.telemetry.location


def run_filter_scenario(packets: int = 400, flows: int = 8,
                        sample_every: int = 10,
                        blocked_port: int = 6667,
                        jumbo_every: int = 50) -> dict:
    """Blast flows at the appliance; telemetry never wakes the host.

    A mix of ordinary 1 KB datagrams across ``flows`` flows (one of
    which targets the blocked port), plus a jumbo frame every
    ``jumbo_every`` packets whose payload-walk cost exceeds the handler
    budget (punted to the host path by the device model).
    """
    world = build_filter_world()
    sim = world.sim
    nic = world.nic

    def application():
        yield from deploy_filter(world)
        yield from world.proxy.Block(blocked_port)
        yield from world.proxy.SetSampling(sample_every)
        started = sim.now
        host_cpu_before = world.machine.cpu.total_busy
        for index in range(packets):
            flow_id = index % flows
            port = blocked_port if flow_id == 0 else 9000 + flow_id
            jumbo = jumbo_every and index % jumbo_every == jumbo_every - 1
            packet = Packet(
                src=Address("gen", 5000 + flow_id),
                dst=Address("appliance", port),
                size_bytes=48_000 if jumbo else 1024,
                sent_at_ns=sim.now)
            world.gen_tx(packet)
            # Line pacing: ~1 kB at gigabit every ~10 µs.
            yield sim.timeout(10_000)
        # Drain the last frames through the switch and the NIC.
        yield sim.timeout(2_000_000)
        elapsed_ns = sim.now - started
        host_cpu = world.machine.cpu.total_busy - host_cpu_before
        snapshot = yield from world.proxy.Snapshot()
        world.report.update(
            packets=packets,
            elapsed_ns=elapsed_ns,
            flows_observed=len(snapshot),
            flow_rows=snapshot,
            spin_handled=nic.spin_handled,
            spin_dropped=nic.spin_dropped,
            spin_to_host=nic.spin_to_host,
            spin_consumed=nic.spin_consumed,
            budget_overruns=nic.budget_overruns,
            handler_ns_total=nic.handler_ns_total,
            host_rx_packets=nic.host_rx_ring.total_put,
            host_cpu_ns=host_cpu,
            rx_packets=nic.rx_packets,
            sim_ns=sim.now, events=sim.events_processed)

    sim.run_until_event(sim.spawn(application()))
    report = world.report
    report["accounted"] = (
        report["spin_handled"] + report["budget_overruns"]
        == report["rx_packets"])
    return report
