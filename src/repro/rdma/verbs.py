"""One-sided verbs: work requests, completion queues, queue pairs.

The verb lifecycle mirrors a real RNIC's:

1. **post** — :meth:`QueuePair.post_read` / ``post_write`` /
   ``post_compare_and_swap`` append a :class:`WorkRequest` to the send
   queue.  Posting is a plain method (no simulated time passes); the
   host CPU cost of building the WRs is charged when the doorbell
   rings, so a batch of posts amortizes into one submission.
2. **doorbell** — :meth:`QueuePair.ring_doorbell` is the only place
   simulated time is spent: one MMIO write submits *every* pending WR,
   the engine moves the batch as a single scatter-gather bus
   transaction (PR 2's vectored verbs), and one completion event covers
   the lot.  This is where "amortized descriptors and interrupts" comes
   from — the benchmark's win is this loop.
3. **complete** — every WR ends as a :class:`Completion` in the
   :class:`CompletionQueue`: ``polled`` mode charges a cheap CQ poll on
   the initiator, ``interrupt`` mode raises one coalesced interrupt per
   doorbell (never per WR).

The remote side never appears in the lifecycle: no descriptor ring, no
dispatch, no remote Offcode scheduled.  A verb against a crashed engine
(or a region whose owner died) fails *as a completion* — the accounting
law ``posted == completed + failed`` stays checkable mid-chaos.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.errors import DeviceFailedError, RdmaError
from repro.rdma.mr import RdmaRegion
from repro.sim.engine import Event

__all__ = ["WorkRequest", "Completion", "CompletionQueue", "QueuePair",
           "RdmaStats"]

# Verb-engine cost constants (the RDMA analogue of providers.py's
# descriptor costs).  Posting a WR is a user-space queue append; the
# doorbell is one uncached MMIO write; the engine spends WR-processing
# time per request; a CQ poll is a cache-hot read of the completion
# entry.  Compare _DESCRIPTOR_HOST_NS=500 / _DESCRIPTOR_DEVICE_NS=900
# on the two-sided path: the one-sided path replaces both with
# 150 + 120 on the initiator and nothing at all on the target CPU.
POST_WR_NS = 150
DOORBELL_NS = 250
WR_ENGINE_NS = 400
CQ_POLL_NS = 120
MR_REGISTER_NS = 2_000
CAS_WIRE_BYTES = 16

_wr_counter = itertools.count(1)


@dataclass
class WorkRequest:
    """One posted verb, not yet completed."""

    op: str                        # "read" | "write" | "cas"
    region: RdmaRegion
    offset: int
    length: int
    value: Any = None              # write payload
    expected: int = 0              # cas operands
    desired: int = 0
    wr_id: int = field(default_factory=lambda: next(_wr_counter))


@dataclass
class Completion:
    """The terminal record of one work request."""

    wr_id: int
    op: str
    status: str                    # "ok" | "error"
    value: Any = None              # read result / CAS old value
    error: str = ""
    completed_at_ns: int = 0

    @property
    def ok(self) -> bool:
        """True when the verb executed."""
        return self.status == "ok"


class CompletionQueue:
    """Where completions land; polled or interrupt-driven.

    ``polled`` charges :data:`CQ_POLL_NS` per completion on the
    initiating site when the doorbell drains.  ``interrupt`` raises one
    coalesced host interrupt per doorbell (charged through the kernel's
    ISR path when one is attached) — per-WR interrupts never happen, by
    construction.
    """

    MODES = ("polled", "interrupt")

    def __init__(self, site, mode: str = "polled", kernel=None) -> None:
        if mode not in self.MODES:
            raise RdmaError(f"unknown CQ mode {mode!r}; "
                            f"pick one of {self.MODES}")
        self.site = site
        self.mode = mode
        self.kernel = kernel
        self._entries: List[Completion] = []
        self.interrupts = 0
        self.polls = 0

    def push(self, completion: Completion) -> None:
        """Engine-side append (no cost here; the doorbell charges it)."""
        self._entries.append(completion)

    def poll(self) -> List[Completion]:
        """Drain every pending completion (non-blocking)."""
        entries, self._entries = self._entries, []
        self.polls += 1
        return entries

    def __len__(self) -> int:
        return len(self._entries)

    def notify(self, count: int = 1) -> Generator[Event, None, None]:
        """Charge the notification cost for one doorbell's ``count``
        completions — priced by the batch it covers, not by whatever
        undrained entries happen to sit in the queue."""
        if self.mode == "interrupt":
            self.interrupts += 1
            if self.kernel is not None:
                yield from self.kernel.isr()
            return
        yield from self.site.execute(CQ_POLL_NS * max(1, count),
                                     context="rdma-cq")


@dataclass
class RdmaStats:
    """One engine's one-sided accounting (the conservation inputs).

    The one-sided law is ``posted == completed + failed``: the two-sided
    ``sent == delivered + dropped`` cannot describe verbs because
    nothing is ever "delivered" — there is no receive path to count at.
    """

    posted: int = 0
    completed: int = 0
    failed: int = 0
    reads: int = 0
    writes: int = 0
    cas: int = 0
    doorbells: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def imbalance(self) -> int:
        """posted - (completed + failed); nonzero = WRs lost in flight."""
        return self.posted - (self.completed + self.failed)


class QueuePair:
    """An initiator's submission context toward one RDMA engine.

    ``engine`` is the RNIC executing the verbs (an rdma-featured
    :class:`~repro.hw.device.ProgrammableDevice`); ``site`` is the
    initiating execution site whose CPU pays for posts and doorbells.
    Regions may live anywhere on the engine's bus — host memory, the
    engine's own local memory, or a peer device's (the smart-disk KV
    region) — the engine bus-masters the transfer either way.
    """

    def __init__(self, site, engine, cq: CompletionQueue,
                 stats: RdmaStats) -> None:
        self.site = site
        self.engine = engine
        self.cq = cq
        self.stats = stats
        self._pending: List[WorkRequest] = []

    # -- posting (no simulated time) ------------------------------------------------

    def post_read(self, region: RdmaRegion, offset: int,
                  length: int) -> int:
        """Queue a one-sided read; returns the wr_id."""
        region.check(offset, length)
        wr = WorkRequest(op="read", region=region, offset=offset,
                         length=max(1, length))
        self._pending.append(wr)
        self.stats.posted += 1
        return wr.wr_id

    def post_write(self, region: RdmaRegion, offset: int, value: Any,
                   length: int) -> int:
        """Queue a one-sided write; returns the wr_id."""
        region.check(offset, length)
        wr = WorkRequest(op="write", region=region, offset=offset,
                         length=max(1, length), value=value)
        self._pending.append(wr)
        self.stats.posted += 1
        return wr.wr_id

    def post_compare_and_swap(self, region: RdmaRegion, offset: int,
                              expected: int, desired: int) -> int:
        """Queue an atomic CAS on a 64-bit word; returns the wr_id."""
        region.check(offset, 8)
        wr = WorkRequest(op="cas", region=region, offset=offset,
                         length=8, expected=expected, desired=desired)
        self._pending.append(wr)
        self.stats.posted += 1
        return wr.wr_id

    @property
    def pending(self) -> int:
        """WRs posted but not yet submitted by a doorbell."""
        return len(self._pending)

    # -- doorbell -------------------------------------------------------------------

    def ring_doorbell(self) -> Generator[Event, None, List[Completion]]:
        """Submit every pending WR as one batch; returns its completions.

        One initiator-CPU charge covers all the posts plus the MMIO
        write; the engine gathers same-direction verbs into single
        scatter-gather bus transactions; one CQ notification (poll or
        coalesced interrupt) covers the whole batch.  Failures — a dead
        engine, a dead region owner, an engine crash mid-transfer —
        surface as ``status="error"`` completions, never as lost WRs.
        """
        batch, self._pending = self._pending, []
        if not batch:
            return []
        yield from self.site.execute(
            POST_WR_NS * len(batch) + DOORBELL_NS, context="rdma-post")
        self.stats.doorbells += 1
        completions: List[Completion] = []
        try:
            yield from self.engine.run_on_device(
                WR_ENGINE_NS * len(batch), context="rdma-engine")
            for direction, group in self._grouped(batch):
                yield from self._move(direction, group)
            for wr in batch:
                completions.append(self._apply(wr))
        except DeviceFailedError as exc:
            done = {c.wr_id for c in completions}
            for wr in batch:
                if wr.wr_id not in done:
                    completions.append(self._fail(wr, repr(exc)))
        for completion in completions:
            completion.completed_at_ns = self.site.sim.now
            self.cq.push(completion)
        yield from self.cq.notify(len(completions))
        return completions

    # -- engine internals -------------------------------------------------------------

    def _grouped(self, batch: List[WorkRequest]):
        """Same-direction runs, preserving program order across flips."""
        run: List[WorkRequest] = []
        direction = None
        for wr in batch:
            wr_dir = "out" if wr.op == "write" else "in"
            if wr.op == "cas":
                wr_dir = "cas"
            if direction is not None and wr_dir != direction:
                yield direction, run
                run = []
            direction = wr_dir
            run.append(wr)
        if run:
            yield direction, run

    def _memory_name(self, location: str) -> str:
        from repro.hw.bus import HOST_MEMORY
        return HOST_MEMORY if location == "host" else location

    def _owner_dead(self, region: RdmaRegion) -> bool:
        if region.owner == "host":
            return False
        if region.owner == self.engine.name:
            return False          # the engine barrier already covers it
        owner = self.engine.bus.endpoint(region.owner)
        health = getattr(owner, "health", None)
        return health is not None and health.crashed

    def _move(self, direction: str, group: List[WorkRequest]
              ) -> Generator[Event, None, None]:
        """One scatter-gather bus transaction for a same-direction run.

        Dead-owner WRs are excluded from the wire (they fail in
        :meth:`_apply` without moving bytes).
        """
        live = [wr for wr in group if not self._owner_dead(wr.region)]
        if not live:
            return
        initiator_mem = self._memory_name(self.site.name)
        yield from self.engine.health.barrier()
        if direction == "cas":
            # Atomics are tiny round trips, never gathered.
            for wr in live:
                target = self._memory_name(wr.region.owner)
                yield from self._wire(initiator_mem, target,
                                      [CAS_WIRE_BYTES])
            return
        by_owner: dict = {}
        for wr in live:
            by_owner.setdefault(wr.region.owner, []).append(wr.length)
        for owner, sizes in by_owner.items():
            target = self._memory_name(owner)
            if direction == "in":
                src, dst = target, initiator_mem
            else:
                src, dst = initiator_mem, target
            yield from self._wire(src, dst, sizes)

    def _wire(self, src: str, dst: str, sizes: List[int]
              ) -> Generator[Event, None, None]:
        """One scatter-gather transaction, or two when the engine must
        loop the data through itself (initiator and region share a
        memory — the RNIC still bus-masters the round trip)."""
        bus = self.engine.bus
        if src == dst == self.engine.name:
            return          # engine-local access, no bus transaction
        hops = ([(src, self.engine.name), (self.engine.name, dst)]
                if src == dst else [(src, dst)])
        for hop_src, hop_dst in hops:
            if len(sizes) == 1:
                yield from bus.transfer(hop_src, hop_dst, sizes[0])
            else:
                yield from bus.transfer_scatter(hop_src, hop_dst, sizes)

    def _apply(self, wr: WorkRequest) -> Completion:
        """Data semantics at completion time (costs already paid)."""
        if self._owner_dead(wr.region):
            return self._fail(
                wr, f"region owner {wr.region.owner} has crashed")
        try:
            wr.region.check(wr.offset, wr.length)
        except RdmaError as exc:
            return self._fail(wr, str(exc))
        if wr.op == "read":
            self.stats.reads += 1
            self.stats.completed += 1
            self.stats.bytes_read += wr.length
            return Completion(wr_id=wr.wr_id, op="read", status="ok",
                              value=wr.region.read_object(wr.offset))
        if wr.op == "write":
            wr.region.write_object(wr.offset, wr.value)
            self.stats.writes += 1
            self.stats.completed += 1
            self.stats.bytes_written += wr.length
            return Completion(wr_id=wr.wr_id, op="write", status="ok")
        old = wr.region.compare_and_swap(wr.offset, wr.expected,
                                         wr.desired)
        self.stats.cas += 1
        self.stats.completed += 1
        return Completion(wr_id=wr.wr_id, op="cas", status="ok", value=old)

    def _fail(self, wr: WorkRequest, error: str) -> Completion:
        self.stats.failed += 1
        return Completion(wr_id=wr.wr_id, op=wr.op, status="error",
                          error=error)
