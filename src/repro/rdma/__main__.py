"""CLI for the RDMA substrate scenarios (the CI substrate-smoke job).

Usage::

    python -m repro.rdma kv                  # one-sided vs RPC report
    python -m repro.rdma chaos --seeds 0:10  # RNIC-crash drill sweep
    python -m repro.rdma filter              # sPIN telemetry report

``chaos`` exits non-zero if any seed fails its invariants (exactly-once
results, one-sided conservation, recovered incident) — that exit code
is the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.rdma.filter import run_filter_scenario
from repro.rdma.kv import run_kv_chaos, run_kv_scenario


def _parse_seeds(spec: str):
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return range(int(lo), int(hi))
    return [int(s) for s in spec.split(",")]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.rdma")
    sub = parser.add_subparsers(dest="command", required=True)
    kv = sub.add_parser("kv", help="one-sided KV gets vs two-sided RPC")
    kv.add_argument("--keys", type=int, default=96)
    kv.add_argument("--batch", type=int, default=8)
    chaos = sub.add_parser("chaos", help="RNIC-crash recovery drill")
    chaos.add_argument("--seeds", default="0:5",
                       help="range lo:hi or comma list")
    fil = sub.add_parser("filter", help="sPIN packet-telemetry filter")
    fil.add_argument("--packets", type=int, default=400)
    args = parser.parse_args(argv)

    if args.command == "kv":
        report = run_kv_scenario(keys=args.keys, batch=args.batch)
        print(json.dumps(report, indent=2))
        speedup = report["rpc_ns"] / max(1, report["one_sided_ns"])
        print(f"one-sided speedup: {speedup:.2f}x", file=sys.stderr)
        return 0 if report["correct"] and speedup > 1.0 else 1

    if args.command == "chaos":
        failures = 0
        for seed in _parse_seeds(args.seeds):
            report = run_kv_chaos(seed=seed)
            print(json.dumps(report))
            if not report["ok"]:
                failures += 1
        if failures:
            print(f"{failures} seed(s) failed", file=sys.stderr)
        return 1 if failures else 0

    report = run_filter_scenario(packets=args.packets)
    report.pop("flow_rows", None)
    print(json.dumps(report, indent=2))
    return 0 if report["accounted"] else 1


if __name__ == "__main__":
    sys.exit(main())
