"""repro.rdma — the one-sided offload substrate.

Registered memory regions (:mod:`repro.rdma.mr`), one-sided verbs with
doorbell batching and completion queues (:mod:`repro.rdma.verbs`), the
:class:`~repro.rdma.provider.RdmaProvider` channel provider, and two
non-video scenarios built on top: the offloaded key-value cache
(:mod:`repro.rdma.kv`) and the sPIN packet-telemetry filter
(:mod:`repro.rdma.filter`).

The scenario modules are imported lazily — ``import repro.rdma`` pulls
in only the substrate, not the workloads.
"""

from __future__ import annotations

from repro.rdma.mr import RdmaRegion
from repro.rdma.provider import RDMA_FEATURE, RdmaProvider
from repro.rdma.verbs import (Completion, CompletionQueue, QueuePair,
                              RdmaStats, WorkRequest)

__all__ = ["RdmaRegion", "RdmaProvider", "RDMA_FEATURE", "WorkRequest",
           "Completion", "CompletionQueue", "QueuePair", "RdmaStats",
           "kv", "filter"]


def __getattr__(name):
    if name in ("kv", "filter"):
        import importlib
        return importlib.import_module(f"repro.rdma.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
