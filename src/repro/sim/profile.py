"""Hot-loop profiling for the discrete-event simulator.

A :class:`SimProfiler` attaches to a :class:`repro.sim.engine.Simulator`
(``sim.attach_profiler(profiler)``) and observes every event the main
loop processes.  For each *category* — the name of the process the event
wakes, or the event's class when no process is waiting — it accumulates:

* **event counts** — how many loop iterations the category consumed;
* **simulated-time attribution** — how far the clock advanced to reach
  each of the category's events (who "owns" simulated time);
* **wall-time hotspots** — real seconds spent inside the callbacks the
  category triggered (who "owns" your CPU while simulating).

When no profiler is attached the loop pays exactly one ``is None`` check
per event, so the hook is free in production runs.  While attached, the
profiler *replaces* the loop's dispatch: :meth:`SimProfiler.observe`
runs the event's callbacks itself, bracketed by wall-clock reads.

>>> from repro.sim import Simulator, SimProfiler
>>> sim = Simulator()
>>> profiler = SimProfiler(sim)
>>> sim.attach_profiler(profiler)
>>> # ... spawn processes, sim.run(...) ...
>>> sim.detach_profiler()
>>> # print(profiler.render())
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from repro.sim.engine import Process, Simulator, Timer

__all__ = ["CategoryStats", "SimProfiler", "profiled"]

# Collapse per-instance suffixes ("worker-3" -> "worker-N") so fleets of
# identical processes aggregate into one category.
_INSTANCE_SUFFIX = re.compile(r"-\d+$")


class CategoryStats:
    """Accumulated counters for one event category."""

    __slots__ = ("events", "wall_s", "sim_ns")

    def __init__(self) -> None:
        self.events = 0        # loop iterations
        self.wall_s = 0.0      # real seconds inside callbacks
        self.sim_ns = 0        # simulated ns the clock advanced to get here

    def as_dict(self) -> Dict[str, float]:
        """The counters as a JSON-serializable dict."""
        return {"events": self.events, "wall_s": self.wall_s,
                "sim_ns": self.sim_ns}


class SimProfiler:
    """Per-category event/time attribution for a simulator's main loop."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.categories: Dict[str, CategoryStats] = {}
        self.total = CategoryStats()
        self._last_now = sim.now
        self._attach_wall: Optional[float] = None
        self.wall_elapsed_s = 0.0

    # -- loop hook (called by Simulator.step) -----------------------------

    def observe(self, event) -> None:
        """Dispatch ``event`` and charge it to its category.

        Called by the main loop *in place of* ``event._process()``; the
        event's callbacks run inside the wall-clock bracket so the
        hotspot numbers include process resumption and everything the
        resumed generator does before its next yield.
        """
        sim = self.sim
        advanced = sim.now - self._last_now
        self._last_now = sim.now
        label = self._label(event)
        start = perf_counter()
        event._process()
        elapsed = perf_counter() - start
        stats = self.categories.get(label)
        if stats is None:
            stats = self.categories[label] = CategoryStats()
        stats.events += 1
        stats.wall_s += elapsed
        stats.sim_ns += advanced
        total = self.total
        total.events += 1
        total.wall_s += elapsed
        total.sim_ns += advanced

    def observe_cont(self, process) -> None:
        """Dispatch a fused-sleep continuation and charge its process.

        Called by the main loop *in place of* the inlined generator
        resume when a fused ``clock.after`` entry pops.
        """
        sim = self.sim
        advanced = sim.now - self._last_now
        self._last_now = sim.now
        label = _INSTANCE_SUFFIX.sub("-N", process.name)
        start = perf_counter()
        sim._resume_cont(process)
        elapsed = perf_counter() - start
        stats = self.categories.get(label)
        if stats is None:
            stats = self.categories[label] = CategoryStats()
        stats.events += 1
        stats.wall_s += elapsed
        stats.sim_ns += advanced
        total = self.total
        total.events += 1
        total.wall_s += elapsed
        total.sim_ns += advanced

    @staticmethod
    def _label(event) -> str:
        """Category for an event: waiting process's name, else event class."""
        if isinstance(event, Timer):
            fn = event.fn
            name = getattr(fn, "__qualname__", None) or getattr(
                fn, "__name__", "fn")
            return f"timer:{_INSTANCE_SUFFIX.sub('-N', name)}"
        callbacks = event.callbacks
        if callbacks:
            owner = getattr(callbacks[0], "__self__", None)
            if isinstance(owner, Process):
                return _INSTANCE_SUFFIX.sub("-N", owner.name)
        return type(event).__name__

    # -- lifecycle helpers -------------------------------------------------

    def mark_attached(self) -> None:
        """Note the wall clock so :attr:`wall_elapsed_s` covers the run."""
        self._attach_wall = perf_counter()
        self._last_now = self.sim.now

    def mark_detached(self) -> None:
        """Close the wall-clock window opened by :meth:`mark_attached`."""
        if self._attach_wall is not None:
            self.wall_elapsed_s += perf_counter() - self._attach_wall
            self._attach_wall = None

    # -- reporting ---------------------------------------------------------

    def hotspots(self, limit: Optional[int] = None) -> List[tuple]:
        """``(label, CategoryStats)`` pairs, hottest wall time first."""
        ranked = sorted(self.categories.items(),
                        key=lambda kv: kv[1].wall_s, reverse=True)
        return ranked[:limit] if limit is not None else ranked

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable report (JSON-serializable)."""
        return {
            "total": self.total.as_dict(),
            "wall_elapsed_s": self.wall_elapsed_s,
            "categories": {label: stats.as_dict()
                           for label, stats in self.hotspots()},
        }

    def render(self, limit: int = 20) -> str:
        """Human-readable hotspot table, hottest first."""
        total = self.total
        lines = [
            f"simulator profile: {total.events} events, "
            f"{total.wall_s * 1e3:.1f} ms in callbacks, "
            f"{total.sim_ns / 1e6:.1f} ms simulated",
            f"{'category':32s} {'events':>8s} {'ev%':>6s} "
            f"{'wall ms':>9s} {'wall%':>6s} {'sim ms':>9s} {'sim%':>6s}",
        ]
        ev_total = total.events or 1
        wall_total = total.wall_s or 1.0
        sim_total = total.sim_ns or 1
        for label, stats in self.hotspots(limit):
            lines.append(
                f"{label:32s} {stats.events:8d} "
                f"{100.0 * stats.events / ev_total:5.1f}% "
                f"{stats.wall_s * 1e3:9.2f} "
                f"{100.0 * stats.wall_s / wall_total:5.1f}% "
                f"{stats.sim_ns / 1e6:9.2f} "
                f"{100.0 * stats.sim_ns / sim_total:5.1f}%")
        return "\n".join(lines)


@contextmanager
def profiled(sim: Simulator) -> Iterator[SimProfiler]:
    """Attach a fresh profiler for the duration of a ``with`` block.

    >>> with profiled(sim) as profiler:
    ...     sim.run(until=1_000_000)
    >>> # print(profiler.render())
    """
    profiler = SimProfiler(sim)
    sim.attach_profiler(profiler)
    profiler.mark_attached()
    try:
        yield profiler
    finally:
        profiler.mark_detached()
        sim.detach_profiler()
