"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.engine.Simulator` — clock + event queue
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Process`,
  :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.AnyOf`,
  :class:`~repro.sim.engine.AllOf`
* :class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Container`
* :class:`~repro.sim.rng.RandomStreams`
* :class:`~repro.sim.profile.SimProfiler` — hot-loop attribution
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.profile import SimProfiler, profiled
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Process",
    "RandomStreams",
    "Resource",
    "SimProfiler",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "profiled",
]
