"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.engine.Simulator` — clock + event queue
* :class:`~repro.sim.engine.Clock` (``sim.clock``) — the blessed
  scheduling API — and its cancellable :class:`~repro.sim.engine.Timer`
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Process`,
  :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.AnyOf`,
  :class:`~repro.sim.engine.AllOf`
* :class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Container`
* :class:`~repro.sim.rng.RandomStreams`
* :class:`~repro.sim.profile.SimProfiler` — hot-loop attribution
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Clock,
    Event,
    Process,
    Simulator,
    Timeout,
    Timer,
)
from repro.sim.profile import SimProfiler, profiled
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "Container",
    "Event",
    "Timer",
    "Process",
    "RandomStreams",
    "Resource",
    "SimProfiler",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "profiled",
]
