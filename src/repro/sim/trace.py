"""Structured simulation tracing — the thin textual consumer.

Attach a :class:`Tracer` to a simulator (``sim.tracer = Tracer(sim)``)
and every :func:`emit` site produces timestamped records.  Emit sites
live where the offload path does work: channel writes, retransmits and
in-flight faults (``repro.core.channel``), proxy deadline misses
(``repro.core.proxy``), watchdog beats and death declarations
(``repro.core.watchdog``), recovery (``repro.core.runtime``), bus
transients (``repro.hw.bus``) and fault injection
(``repro.faults.injector``).  Tracing is off by default and costs one
attribute check per emit site when disabled.

Since the telemetry subsystem landed, :func:`emit` routes through
``sim.telemetry`` when one is attached: the hub forwards each record to
the tracer (this API is unchanged) *and* keeps it as a zero-duration
instant alongside the causal span tree, so textual emits appear in
exported Perfetto traces.  :class:`Tracer` itself stays a bounded
buffer of :class:`TraceRecord` — a consumer, not the instrumentation
layer.

>>> from repro.sim import Simulator, Tracer
>>> sim = Simulator()
>>> sim.tracer = Tracer(sim, categories={"offcode"})
>>> # ... run a deployment ...
>>> # print(sim.tracer.render())
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, List, Optional, Set

from repro import units

__all__ = ["TraceRecord", "Tracer"]


class TraceRecord:
    """One trace event.

    A ``__slots__`` class (not a dataclass): traced runs mint one per
    emit, so allocation cost matters.  Instances are treated as
    immutable; equality compares field values so determinism tests can
    diff whole trace buffers.
    """

    __slots__ = ("time_ns", "category", "message", "fields")

    def __init__(self, time_ns: int, category: str, message: str,
                 fields: tuple = ()) -> None:
        self.time_ns = time_ns
        self.category = category
        self.message = message
        self.fields = fields

    def __repr__(self) -> str:
        return (f"TraceRecord(time_ns={self.time_ns}, "
                f"category={self.category!r}, message={self.message!r}, "
                f"fields={self.fields!r})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time_ns == other.time_ns
                and self.category == other.category
                and self.message == other.message
                and self.fields == other.fields)

    def __hash__(self) -> int:
        return hash((self.time_ns, self.category, self.message, self.fields))

    def render(self) -> str:
        """One-line human-readable form."""
        extra = ""
        if self.fields:
            extra = " " + " ".join(f"{k}={v!r}" for k, v in self.fields)
        return (f"[{units.ns_to_ms(self.time_ns):12.3f}ms] "
                f"{self.category:10s} {self.message}{extra}")


class Tracer:
    """A bounded, category-filtered trace buffer."""

    def __init__(self, sim, categories: Optional[Iterable[str]] = None,
                 capacity: int = 10_000) -> None:
        self.sim = sim
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None)
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.emitted = 0
        self.enabled = True

    def wants(self, category: str) -> bool:
        """Whether a record of ``category`` would be kept."""
        if not self.enabled:
            return False
        return self.categories is None or category in self.categories

    def emit(self, category: str, message: str, **fields: Any) -> None:
        """Record an event at the current simulated time."""
        if not self.wants(category):
            return
        self.emitted += 1
        self.records.append(TraceRecord(
            time_ns=self.sim.now, category=category, message=message,
            fields=tuple(sorted(fields.items()))))

    # -- inspection ------------------------------------------------------------

    def of_category(self, category: str) -> List[TraceRecord]:
        """All buffered records of one category."""
        return [r for r in self.records if r.category == category]

    def since(self, time_ns: int) -> List[TraceRecord]:
        """Records at or after ``time_ns``."""
        return [r for r in self.records if r.time_ns >= time_ns]

    def render(self, category: Optional[str] = None) -> str:
        """Multi-line rendering (optionally one category)."""
        records = (self.of_category(category) if category
                   else list(self.records))
        return "\n".join(r.render() for r in records)

    def clear(self) -> None:
        """Drop all buffered records."""
        self.records.clear()


def emit(sim, category: str, message: str, **fields: Any) -> None:
    """Module-level helper: emit if ``sim`` has a telemetry hub or tracer.

    A telemetry hub takes precedence and forwards to the tracer itself
    (one record either way); with neither attached this is a pair of
    attribute checks and a return.
    """
    telemetry = getattr(sim, "telemetry", None)
    if telemetry is not None:
        telemetry.log(category, message, **fields)
        return
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(category, message, **fields)
