"""Synchronisation primitives for simulated processes.

Three primitives cover every need in the reproduction:

* :class:`Store` — an optionally-bounded FIFO of items; the message-queue
  building block used for NIC rings, socket buffers and channel endpoints.
* :class:`Resource` — a counted semaphore with FIFO fairness; models CPUs,
  DMA engines and bus ownership.
* :class:`Container` — a continuous level (bytes of buffer space, joules).

All ``get``/``put``/``request`` operations return events, so processes wait
with ``yield``:

>>> from repro.sim.engine import Simulator
>>> sim = Simulator()
>>> store = Store(sim)
>>> def producer(sim, store):
...     yield sim.timeout(5)
...     yield store.put("hello")
>>> def consumer(sim, store, out):
...     item = yield store.get()
...     out.append((sim.now, item))
>>> out = []
>>> _ = sim.spawn(producer(sim, store)); _ = sim.spawn(consumer(sim, store, out))
>>> sim.run(); out
[(5, 'hello')]
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["Store", "Resource", "Container"]


class Store:
    """FIFO item store with optional capacity.

    ``put`` blocks when the store holds ``capacity`` items; ``get`` blocks
    when it is empty.  With ``drop_when_full=True`` a put on a full store
    succeeds immediately with value ``False`` and the item is dropped —
    this models *unreliable* channels and fixed-size hardware rings.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 drop_when_full: bool = False) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.drop_when_full = drop_when_full
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self.dropped = 0      # items discarded because the store was full
        self.total_put = 0    # successful puts (excludes drops)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        """True when a bounded store holds ``capacity`` items."""
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event triggers when accepted.

        For drop-mode stores the event always triggers immediately with
        True (stored) or False (dropped).
        """
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            self.total_put += 1
            event.succeed(True)
        elif not self.full:
            self.items.append(item)
            self.total_put += 1
            event.succeed(True)
        elif self.drop_when_full:
            self.dropped += 1
            event.succeed(False)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Remove and return the oldest item (event value = item)."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        elif self._putters:
            putter, item = self._putters.popleft()
            putter.succeed(True)
            self.total_put += 1
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def forget_getters(self) -> int:
        """Discard every queued getter; returns how many were dropped.

        A consumer killed while parked on :meth:`get` leaves its event in
        the getter queue; a later ``put`` would hand the item to that
        corpse and the item would silently vanish.  Takeover paths (a
        migrated offcode re-claiming a NIC port binding) call this before
        installing the new reader.  The abandoned events are never
        succeeded — their processes are already dead.
        """
        dropped = len(self._getters)
        self._getters.clear()
        return dropped

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            putter, item = self._putters.popleft()
            self.items.append(item)
            self.total_put += 1
            putter.succeed(True)


class Resource:
    """Counted semaphore with FIFO fairness.

    ``request()`` returns an event that triggers when a slot is granted;
    the holder must later call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # occupancy bookkeeping for utilization statistics
        self._busy_since: Optional[int] = None
        self.busy_time = 0

    @property
    def available(self) -> int:
        """Unclaimed slots."""
        return self.capacity - self.in_use

    def request(self) -> Event:
        """Event that triggers when a slot is granted (FIFO)."""
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; the oldest waiter (if any) gets it directly."""
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the slot directly to the next waiter; in_use is unchanged.
            self._grant(self._waiters.popleft(), already_counted=True)
        else:
            self.in_use -= 1
            if self.in_use == 0 and self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None

    def _grant(self, event: Event, already_counted: bool = False) -> None:
        if not already_counted:
            if self.in_use == 0:
                self._busy_since = self.sim.now
            self.in_use += 1
        event.succeed(self)

    def utilization(self, since: int = 0) -> float:
        """Fraction of wall time with at least one holder, from ``since``."""
        window = self.sim.now - since
        if window <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - max(self._busy_since, since)
        return min(1.0, busy / window)


class Container:
    """A continuous level between 0 and ``capacity`` (bytes, joules, ...)."""

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError(f"container capacity must be positive: {capacity}")
        if not 0 <= init <= capacity:
            raise SimulationError(f"init level {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.level = init
        self._getters: Deque[tuple] = deque()  # (event, amount)
        self._putters: Deque[tuple] = deque()

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (event-pends) above capacity."""
        if amount <= 0:
            raise SimulationError(f"put amount must be positive: {amount}")
        event = Event(self.sim)
        if self.level + amount <= self.capacity:
            self.level += amount
            event.succeed()
            self._drain_getters()
        else:
            self._putters.append((event, amount))
        return event

    def get(self, amount: float) -> Event:
        """Take ``amount``; blocks (event-pends) below the level."""
        if amount <= 0:
            raise SimulationError(f"get amount must be positive: {amount}")
        event = Event(self.sim)
        if amount <= self.level:
            self.level -= amount
            event.succeed()
            self._drain_putters()
        else:
            self._getters.append((event, amount))
        return event

    def _drain_getters(self) -> None:
        while self._getters and self._getters[0][1] <= self.level:
            event, amount = self._getters.popleft()
            self.level -= amount
            event.succeed()

    def _drain_putters(self) -> None:
        while self._putters and self.level + self._putters[0][1] <= self.capacity:
            event, amount = self._putters.popleft()
            self.level += amount
            event.succeed()
