"""Deterministic random-number streams.

Every stochastic model component (OS noise, link jitter, workload
generators) draws from its own named stream derived from one root seed.
Named derivation means adding a new consumer never perturbs the draws of
existing ones, so experiments stay reproducible as the model grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent named :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def derive(self, name: str) -> int:
        """The stable 64-bit seed for ``name`` under this root seed.

        This is the hash behind :meth:`stream`, exposed so seeds can
        cross process boundaries as plain integers: the fleet runner
        derives per-shard and per-client seeds here
        (``hash(fleet_seed, shard_id)``) and ships them to workers,
        where they reconstruct identical streams.
        """
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(root_seed, name)`` so the
        same name always yields the same sequence for a given root seed.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(self.derive(name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(
            f"{self.root_seed}/fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
