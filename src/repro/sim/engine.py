"""Discrete-event simulation engine.

This is the substrate everything else runs on: hardware models, the
simulated OS, the network, and HYDRA offcodes all execute as *processes*
on a :class:`Simulator`.

The design follows the classic event/process style (cf. SimPy) but is
implemented from scratch so the reproduction has no external runtime
dependencies:

* Time is integer nanoseconds (see :mod:`repro.units`).
* An :class:`Event` is a one-shot occurrence that processes can wait on.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the engine resumes it with the event's value (or throws the
  event's exception into it) when the event triggers.
* The event queue is a binary heap keyed by ``(time, priority, seq)``;
  ``seq`` is a monotonically increasing tie-breaker, which makes runs
  fully deterministic.

Hot-path design notes
---------------------
Every simulated nanosecond in this repository flows through this loop,
so three per-event costs are engineered away:

* **Allocation** — every event class carries ``__slots__`` (no instance
  dicts), and the fast-path timeouts handed out by :meth:`Simulator.delay`
  are recycled through a free list by the main loop instead of being
  garbage after one trigger.
* **Cancellation** — :meth:`Process.interrupt` never scans the abandoned
  event's callback list (an O(n) ``list.remove`` when n waiters share an
  event); the stale callback entry simply stays registered and
  :meth:`Process._resume` drops wakeups from events it is no longer
  waiting on (*lazy cancellation*).
* **Observation** — the loop counts processed events
  (:attr:`Simulator.events_processed`) and exposes a profiler hook
  (:meth:`Simulator.attach_profiler`) that costs one ``is None`` check
  per event when disabled.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, log):
...     for _ in range(3):
...         yield sim.timeout(10)
...         log.append(sim.now)
>>> log = []
>>> _ = sim.spawn(pinger(sim, log))
>>> sim.run()
>>> log
[10, 20, 30]
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import InterruptError, ProcessError, SchedulingError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

# Event lifecycle states.
PENDING = "pending"        # not yet triggered
TRIGGERED = "triggered"    # value set, sitting in the queue
PROCESSED = "processed"    # callbacks have run

# Scheduling priorities: URGENT events (process resumptions caused by
# interrupts) run before NORMAL events at the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that carries a value or an exception.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules them on the simulator; once the simulator pops them their
    callbacks run and they become *processed*.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "defused")

    # Class flag: instances may be recycled by the main loop after their
    # callbacks run.  Only _PooledTimeout raises it.
    _poolable = False

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = PENDING
        self.defused = False

    # -- inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise ProcessError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._state == PENDING:
            raise ProcessError("event value inspected before trigger")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` ns."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception after ``delay`` ns."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: int,
                 priority: int = NORMAL) -> None:
        if self._state != PENDING:
            raise ProcessError(f"event {self!r} triggered twice")
        self._ok = ok
        self._value = value
        self._state = TRIGGERED
        self.sim._push(self, delay, priority)

    # -- internals -------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks.  Called by the simulator main loop only."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._trigger(True, value, delay)


class _PooledTimeout(Event):
    """A recyclable fast-path timeout (see :meth:`Simulator.delay`).

    Contract: exactly one waiter, which yields the event immediately and
    never retains a reference past its trigger.  The main loop resets
    and recycles instances through the simulator's free list, so holding
    one after it fires would observe an unrelated later timeout.
    """

    __slots__ = ("delay",)

    _poolable = True

    def __init__(self, sim: "Simulator", delay: int, value: Any) -> None:
        # Born triggered; the caller (Simulator.delay) pushes the heap
        # entry, skipping the generic _trigger state checks.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = TRIGGERED
        self.defused = False
        self.delay = delay

    def _process(self) -> None:
        # Single-waiter fast path: invoke in place and reuse the
        # callbacks list instead of swapping in a fresh one.
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            callback = callbacks[0]
            callbacks.clear()
            callback(self)


class Initialize(Event):
    """Internal event used to start a process at spawn time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int = 0) -> None:
        super().__init__(sim)
        self._trigger(True, None, delay)


class Process(Event):
    """A running generator.  The process *is* an event: it triggers when
    the generator returns (success, value = return value) or raises
    (failure).  Other processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_interrupted")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None,
                 delay: int = 0) -> None:
        if not hasattr(generator, "throw"):
            raise ProcessError(
                f"spawn() requires a generator, got {type(generator).__name__}"
                " (did you forget to call the process function?)")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._interrupted = False
        self._waiting_on: Optional[Event] = None
        start = Initialize(sim, delay)
        start.callbacks.append(self._resume)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process.

        The process must currently be waiting on an event; the pending
        wait is abandoned *lazily*: the stale callback registration is
        left in place (no O(n) scan of the waited event's callback
        list) and :meth:`_resume` discards the wakeup when the
        abandoned event eventually triggers.
        """
        if not self.alive:
            raise ProcessError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is None or self._interrupted:
            raise ProcessError(
                f"cannot interrupt {self.name}: it is not waiting")
        self._interrupted = True
        wakeup = Event(self.sim)
        wakeup._trigger(False, InterruptError(cause), 0, priority=URGENT)
        wakeup.defused = True  # interrupts are delivered, never escape
        wakeup.callbacks.append(self._resume)
        self._waiting_on = wakeup

    # -- engine plumbing -------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._state != PENDING:
            # Stale wakeup arriving after the process already finished.
            return
        waiting = self._waiting_on
        if waiting is not None and event is not waiting:
            # Lazy cancellation: a wakeup from a wait this process
            # abandoned (interrupt() re-aimed _waiting_on).  Drop it
            # without touching the event, so an undelivered failure
            # still escalates from the main loop.
            return
        self._waiting_on = None
        self._interrupted = False
        self.sim._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered.
                event.defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._trigger(True, stop.value, 0)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._trigger(False, exc, 0)
            return
        self.sim._active_process = None

        if not isinstance(target, Event):
            raise ProcessError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances")
        if target.sim is not self.sim:
            raise ProcessError(
                f"process {self.name!r} yielded an event from another simulator")
        if target._state == PROCESSED:
            # Already-processed events resume the waiter immediately (at the
            # current timestamp) rather than deadlocking.
            relay = Event(self.sim)
            relay._trigger(target._ok, target._value, 0, priority=URGENT)
            if not target._ok:
                relay.defused = True
            relay.callbacks.append(self._resume)
            self._waiting_on = relay
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} state={self._state}>"


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ProcessError("condition mixes events from simulators")
        self._pending = sum(1 for e in self.events if not e.processed)
        if self._check_now():
            return
        for event in self.events:
            if not event.processed:
                event.callbacks.append(self._on_child)

    def _check_now(self) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.processed and e._ok}


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers.

    Value is a dict of the already-processed successful children.  If the
    first child to trigger failed, the condition fails with its exception.
    """

    __slots__ = ()

    def _check_now(self) -> bool:
        for event in self.events:
            if event.processed:
                if event._ok:
                    self.succeed(self._collect())
                else:
                    event.defused = True
                    self.fail(event._value)
                return True
        if not self.events:
            self.succeed({})
            return True
        return False

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if event._ok:
            self.succeed(self._collect())
        else:
            event.defused = True
            self.fail(event._value)


class AllOf(_Condition):
    """Triggers once all child events have triggered successfully."""

    __slots__ = ()

    def _check_now(self) -> bool:
        for event in self.events:
            if event.processed and not event._ok:
                event.defused = True
                self.fail(event._value)
                return True
        if self._pending == 0:
            self.succeed(self._collect())
            return True
        return False

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Simulator:
    """The discrete-event engine: a clock plus an ordered event queue.

    ``event_pool_size`` bounds the free list of recycled fast-path
    timeouts (see :meth:`delay`); 0 disables pooling entirely, which the
    determinism tests use to prove pooling never changes a run.
    """

    DEFAULT_POOL_SIZE = 256

    def __init__(self, event_pool_size: Optional[int] = None) -> None:
        self.now: int = 0
        self._queue: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Optional structured tracing (see repro.sim.trace.Tracer).
        self.tracer = None
        # Optional telemetry hub (see repro.telemetry.Telemetry); None
        # keeps every instrumented site at a single attribute check.
        self.telemetry = None
        # Optional hot-loop profiler (see repro.sim.profile.SimProfiler).
        self._profiler = None
        # Free list of recycled _PooledTimeout instances.
        self._pool_limit = (self.DEFAULT_POOL_SIZE if event_pool_size is None
                            else max(0, event_pool_size))
        self._timeout_pool: List[_PooledTimeout] = []
        # Observability counters (cheap ints, always on).
        self.events_processed = 0
        self.pool_recycled = 0     # fast-path timeouts served from the pool

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def delay(self, delay: int, value: Any = None) -> Event:
        """Fast-path timeout for engine-internal hot loops.

        Semantically identical to :meth:`timeout` but the returned event
        is drawn from (and recycled back into) a free list by the main
        loop, skipping the generic trigger machinery.  Callers must
        honour the single-waiter contract: yield the event immediately
        and never retain a reference after it fires.  ``cpu.execute``,
        bus transfers and the kernel tick/daemon loops qualify; anything
        that stores events (conditions, stores, return descriptors) must
        use :meth:`timeout`.
        """
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            event._value = value
            event._ok = True
            event._state = TRIGGERED
            event.defused = False
            event.delay = delay
            self.pool_recycled += 1
        else:
            event = _PooledTimeout(self, delay, value)
        self._seq += 1
        heappush(self._queue, (self.now + delay, NORMAL, self._seq, event))
        return event

    def spawn(self, generator: Generator[Event, Any, Any],
              name: Optional[str] = None, delay: int = 0) -> Process:
        """Start ``generator`` as a process after ``delay`` ns."""
        return Process(self, generator, name=name, delay=delay)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    # -- profiling -------------------------------------------------------

    def attach_profiler(self, profiler) -> None:
        """Install a :class:`repro.sim.profile.SimProfiler` on the loop."""
        self._profiler = profiler

    def detach_profiler(self) -> None:
        """Remove the profiler (the loop reverts to one check per event)."""
        self._profiler = None

    # -- queue -------------------------------------------------------------

    def _push(self, event: Event, delay: int, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} ns in the past")
        self._seq += 1
        heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SchedulingError("step() on an empty event queue")
        when, _prio, _seq, event = heappop(self._queue)
        if when < self.now:
            raise SchedulingError("event queue corrupted: time went backwards")
        self.now = when
        self.events_processed += 1
        profiler = self._profiler
        if profiler is None:
            event._process()
        else:
            profiler.observe(event)
        if event._ok is False and not event.defused and not event.callbacks:
            # A failure nobody waited on must not pass silently.
            raise event._value
        if event._poolable and len(self._timeout_pool) < self._pool_limit:
            # Recycle the fast-path timeout for the next delay() call.
            event._state = PENDING
            event._value = None
            event._ok = None
            self._timeout_pool.append(event)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier, so back-to-back ``run`` calls compose.
        """
        if until is not None and until < self.now:
            raise SchedulingError(
                f"run(until={until}) is in the past (now={self.now})")
        # The step() body is inlined here: at ~100 ns of call overhead per
        # event, the indirection costs ~1 % of a typical run.  Keep this
        # loop in lockstep with step().
        queue = self._queue
        pool = self._timeout_pool
        pool_limit = self._pool_limit
        pop = heappop
        horizon = float("inf") if until is None else until
        while queue and queue[0][0] <= horizon:
            when, _prio, _seq, event = pop(queue)
            if when < self.now:
                raise SchedulingError(
                    "event queue corrupted: time went backwards")
            self.now = when
            self.events_processed += 1
            profiler = self._profiler
            if profiler is None:
                event._process()
            else:
                profiler.observe(event)
            if event._ok is False and not event.defused and not event.callbacks:
                # A failure nobody waited on must not pass silently.
                raise event._value
            if event._poolable and len(pool) < pool_limit:
                # Recycle the fast-path timeout for the next delay() call.
                event._state = PENDING
                event._value = None
                event._ok = None
                pool.append(event)
        if until is not None and self.now < until:
            self.now = until

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception on failure, or :class:`ProcessError`
        if the queue drains (or ``limit`` passes) first.
        """
        while not event.processed:
            if not self._queue:
                raise ProcessError("simulation deadlocked waiting for event")
            if limit is not None and self._queue[0][0] > limit:
                raise ProcessError(
                    f"event not processed by t={limit} (now={self.now})")
            self.step()
        if event._ok:
            return event._value
        raise event._value
