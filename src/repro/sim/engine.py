"""Discrete-event simulation engine.

This is the substrate everything else runs on: hardware models, the
simulated OS, the network, and HYDRA offcodes all execute as *processes*
on a :class:`Simulator`.

The design follows the classic event/process style (cf. SimPy) but is
implemented from scratch so the reproduction has no external runtime
dependencies:

* Time is integer nanoseconds (see :mod:`repro.units`).
* An :class:`Event` is a one-shot occurrence that processes can wait on.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the engine resumes it with the event's value (or throws the
  event's exception into it) when the event triggers.
* The queue orders entries by ``(time, priority, seq)``; ``seq`` is a
  monotonically increasing tie-breaker, which makes runs fully
  deterministic regardless of the backing data structure.

Scheduling goes through the blessed :class:`Clock` surface
(``sim.clock``)::

    yield sim.clock.after(10)            # sleep 10 ns (fused fast path)
    timer = sim.clock.every(1000, tick)  # periodic, cancellable
    yield sim.clock.timeout(10, "hi")    # a storable/combinable Event
    yield sim.clock.fence()              # run after everything at `now`

Hot-path design notes
---------------------
Every simulated nanosecond in this repository flows through this loop,
so the per-event costs are engineered away:

* **The queue is a hierarchical timer wheel**, not a binary heap.  A
  small *active* heap holds only the entries inside the current
  granularity window; behind it sit two fixed-slot wheels (L0: 256
  slots x 256 ns, L1: 256 slots x 65.5 us) and a far-future overflow
  heap.  Most inserts are an O(1) ``list.append`` plus a bitmap OR;
  the heap's O(log n) churn is paid only inside a 256 ns window, where
  n is tiny.  Occupied slots are tracked in an integer bitmap so the
  refill scan is one ``(occ & -occ).bit_length()``.  ``Simulator(
  scheduler="heap")`` disables the wheels (every insert goes to the
  active heap), giving a reference engine for differential tests; both
  modes pop entries in the identical ``(time, priority, seq)`` order.
* **The delay->resume pattern is fused.**  ``yield clock.after(dt)``
  does not build an Event at all: the engine schedules the *process
  itself* as a queue entry and resumes its generator directly when the
  entry pops (no callback list, no trigger state machine).  The small
  :class:`_Deferred` request objects are recycled through a free list
  (``event_pool_size`` bounds it, ``pool_recycled`` counts reuse).
* **Cancellation is lazy but bounded.**  :meth:`Process.interrupt` and
  :meth:`Timer.cancel` never scan the active heap; a cancelled wheel
  entry is removed in place when its slot is reachable (O(slot)) and
  otherwise left to be dropped at pop time.  The ``dead_timers`` gauge
  counts entries awaiting lazy reclamation and :meth:`Simulator.reclaim`
  sweeps them out; it auto-runs when the count passes a threshold.
* **Observation** — the loop counts processed events
  (:attr:`Simulator.events_processed`) and exposes a profiler hook
  (:meth:`Simulator.attach_profiler`) that costs one ``is None`` check
  per event when disabled.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, log):
...     for _ in range(3):
...         yield sim.clock.after(10)
...         log.append(sim.now)
>>> log = []
>>> _ = sim.spawn(pinger(sim, log))
>>> sim.run()
>>> log
[10, 20, 30]
"""

from __future__ import annotations

import warnings
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import InterruptError, ProcessError, SchedulingError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Clock",
    "Timer",
    "Simulator",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]

# Event lifecycle states.
PENDING = "pending"        # not yet triggered
TRIGGERED = "triggered"    # value set, sitting in the queue
PROCESSED = "processed"    # callbacks have run

# Scheduling priorities: URGENT events (process resumptions caused by
# interrupts) run before NORMAL events at the same timestamp; FENCE
# events (clock.fence) run after everything else at the same timestamp.
URGENT = 0
NORMAL = 1
FENCE = 2

# Timer-wheel geometry.  L0 covers [l0_base, l0_base + 65_536) ns in
# 256 ns slots; one L1 slot spans exactly the whole L0 wheel
# (1 << _L1_SHIFT == _SLOTS << _L0_SHIFT), so an L1 cascade re-bases L0
# with no remainder.  Anything beyond L1 (16.8 ms out) heaps in
# _overflow until the wheels advance far enough to absorb it.
_L0_SHIFT = 8
_L1_SHIFT = 16
_SLOTS = 256
_L0_SPAN = _SLOTS << _L0_SHIFT
_L1_SPAN = _SLOTS << _L1_SHIFT

_INF = float("inf")

# Lazy-cancelled entries trigger a full reclaim() sweep past this count,
# bounding dead-entry growth without any hot-path bookkeeping.
_RECLAIM_THRESHOLD = 4096


class Event:
    """A one-shot occurrence that carries a value or an exception.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail`
    schedules them on the simulator; once the simulator pops them their
    callbacks run and they become *processed*.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "defused")

    # Class defaults read by the main loop's entry dispatch: a popped
    # entry whose seq matches obj._cont_seq is a fused continuation,
    # one found in obj._stale_seqs is an abandoned one.  Plain events
    # are neither; Process and Timer shadow these as needed.
    _cont_seq = 0
    _stale_seqs: Optional[set] = None

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = PENDING
        self.defused = False

    # -- inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise ProcessError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._state == PENDING:
            raise ProcessError("event value inspected before trigger")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully after ``delay`` ns."""
        self._trigger(True, value, delay)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception after ``delay`` ns."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._trigger(False, exc, delay)
        return self

    def _trigger(self, ok: bool, value: Any, delay: int,
                 priority: int = NORMAL) -> None:
        if self._state != PENDING:
            raise ProcessError(f"event {self!r} triggered twice")
        self._ok = ok
        self._value = value
        self._state = TRIGGERED
        self.sim._push(self, delay, priority)

    # -- internals -------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks.  Called by the simulator main loop only."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._trigger(True, value, delay)


class _Deferred:
    """A value-carrying fused-sleep request from :meth:`Clock.after`.

    Not an event: yielding one tells the engine to schedule the process
    itself as the queue entry (no Event allocation, no callback list)
    and resume the generator directly with ``value``.  Plain sleeps
    (``value=None``) skip even this object: :meth:`Clock.after` returns
    the bare integer delay and the engine fuses it directly.  Contract:
    yield it immediately, exactly once; instances are recycled through
    the simulator's free list after each use, and reusing one raises.
    To store or combine a sleep (conditions, stores), use
    :meth:`Clock.timeout` instead.
    """

    __slots__ = ("delay", "value")

    def __init__(self) -> None:
        self.delay = -1
        self.value = None


class Timer:
    """A cancellable scheduled call, from ``clock.after/at/every``.

    One-shot timers run ``fn()`` once at their deadline; periodic timers
    (:meth:`Clock.every`) reschedule at exact multiples of the period
    (``anchor + k * period``) *before* invoking ``fn``, so the schedule
    never drifts and ``fn`` may cancel the timer.  Timers are queue
    entries themselves, not Events: they cannot be yielded or combined.
    """

    __slots__ = ("sim", "fn", "period", "anchor", "fires", "when",
                 "_cancelled", "_entry_seq")

    # Event-protocol defaults so the main loop's post-dispatch checks
    # (failure escalation, continuation match) pass through untouched.
    _ok = True
    defused = False
    callbacks = ()
    _cont_seq = 0
    _stale_seqs: Optional[set] = None

    def __init__(self, sim: "Simulator", fn: Callable[[], Any],
                 period: Optional[int], when: int,
                 anchor: Optional[int] = None) -> None:
        self.sim = sim
        self.fn = fn
        self.period = period
        self.anchor = when if anchor is None else anchor
        self.fires = 0
        self.when: Optional[int] = when
        self._cancelled = False
        self._entry_seq = sim._insert(when, NORMAL, self)

    @property
    def active(self) -> bool:
        """True while the timer still has a scheduled firing."""
        return not self._cancelled and self.when is not None

    def cancel(self) -> bool:
        """Stop the timer.  Returns False if it already fired/cancelled.

        The queue entry is removed in place when it sits in a wheel
        slot (O(slot length)); entries already promoted to the active
        heap (or parked in the overflow heap) are dropped lazily at pop
        time and counted in :attr:`Simulator.dead_timers` meanwhile.
        """
        if self._cancelled or self.when is None:
            return False
        self._cancelled = True
        sim = self.sim
        if not sim._discard(self.when, self._entry_seq, self):
            sim.dead_timers += 1
            if sim.dead_timers >= _RECLAIM_THRESHOLD:
                sim.reclaim()
        return True

    def _process(self) -> None:
        # Called by the main loop when the entry pops (event path).
        if self._cancelled:
            self.sim.dead_timers -= 1
            return
        if self.period is not None:
            # Reschedule first (exact arithmetic, zero drift) so fn()
            # may cancel() the very firing it is handling.
            self.fires += 1
            when = self.anchor + (self.fires + 1) * self.period
            self.when = when
            self._entry_seq = self.sim._insert(when, NORMAL, self)
        else:
            self.fires = 1
            self.when = None
        self.fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "every" if self.period is not None else "once"
        return f"<Timer {kind} when={self.when} cancelled={self._cancelled}>"


class Initialize(Event):
    """Internal event used to start a process at spawn time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int = 0) -> None:
        super().__init__(sim)
        self._trigger(True, None, delay)


class Process(Event):
    """A running generator.  The process *is* an event: it triggers when
    the generator returns (success, value = return value) or raises
    (failure).  Other processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_interrupted",
                 "_cont_seq", "_cont_value", "_stale_seqs")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None,
                 delay: int = 0) -> None:
        if not hasattr(generator, "throw"):
            raise ProcessError(
                f"spawn() requires a generator, got {type(generator).__name__}"
                " (did you forget to call the process function?)")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._interrupted = False
        self._waiting_on: Optional[Event] = None
        # Fused-sleep state: while the process sleeps via clock.after,
        # its queue entry's seq is recorded here (no Event exists).
        # Seqs of entries abandoned by interrupt() collect in
        # _stale_seqs until the pop (or a reclaim sweep) drops them.
        self._cont_seq = 0
        self._cont_value: Any = None
        self._stale_seqs: Optional[set] = None
        start = Initialize(sim, delay)
        start.callbacks.append(self._resume)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process.

        The process must currently be waiting on an event or a fused
        sleep; the pending wait is abandoned *lazily*: the stale
        callback registration (or queue entry) stays in place — no O(n)
        scan — and is discarded when it eventually pops.  Abandoned
        fused-sleep entries are visible in
        :attr:`Simulator.dead_timers` until then.
        """
        if not self.alive:
            raise ProcessError(f"cannot interrupt finished process {self.name}")
        if self._interrupted or (self._waiting_on is None
                                 and not self._cont_seq):
            raise ProcessError(
                f"cannot interrupt {self.name}: it is not waiting")
        cont = self._cont_seq
        if cont:
            # Abandon the fused sleep: remember the seq so the queue
            # entry is dropped at pop (or swept by reclaim) instead of
            # resuming the process.
            self._cont_seq = 0
            self._cont_value = None
            stale = self._stale_seqs
            if stale is None:
                stale = self._stale_seqs = set()
            stale.add(cont)
            sim = self.sim
            sim.dead_timers += 1
            if sim.dead_timers >= _RECLAIM_THRESHOLD:
                sim.reclaim()
        self._interrupted = True
        wakeup = Event(self.sim)
        wakeup._trigger(False, InterruptError(cause), 0, priority=URGENT)
        wakeup.defused = True  # interrupts are delivered, never escape
        wakeup.callbacks.append(self._resume)
        self._waiting_on = wakeup

    # -- engine plumbing -------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._state != PENDING:
            # Stale wakeup arriving after the process already finished.
            return
        waiting = self._waiting_on
        if waiting is not None:
            if event is not waiting:
                # Lazy cancellation: a wakeup from a wait this process
                # abandoned (interrupt() re-aimed _waiting_on).  Drop it
                # without touching the event, so an undelivered failure
                # still escalates from the main loop.
                return
        elif self._cont_seq:
            # Fused sleep in progress; drop wakeups from abandoned waits.
            return
        self._waiting_on = None
        self._interrupted = False
        self.sim._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered.
                event.defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self._trigger(True, stop.value, 0)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._trigger(False, exc, 0)
            return
        self.sim._active_process = None
        self._bind(target)

    def _bind(self, target: Any) -> None:
        """Park the process on whatever the generator yielded."""
        cls = target.__class__
        if cls is int:
            self.sim._fuse_int(self, target)
            return
        if cls is _Deferred:
            self.sim._fuse(self, target)
            return
        if not isinstance(target, Event):
            raise ProcessError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances or integer "
                "delays (clock.after)")
        if target.sim is not self.sim:
            raise ProcessError(
                f"process {self.name!r} yielded an event from another simulator")
        if target._state == PROCESSED:
            # Already-processed events resume the waiter immediately (at the
            # current timestamp) rather than deadlocking.
            relay = Event(self.sim)
            relay._trigger(target._ok, target._value, 0, priority=URGENT)
            if not target._ok:
                relay.defused = True
            relay.callbacks.append(self._resume)
            self._waiting_on = relay
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} state={self._state}>"


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if not isinstance(event, Event):
                raise ProcessError(
                    f"conditions require Event instances, got {event!r}; "
                    "clock.after() handles must be yielded directly — "
                    "use clock.timeout() for combinable sleeps")
            if event.sim is not sim:
                raise ProcessError("condition mixes events from simulators")
        self._pending = sum(1 for e in self.events if not e.processed)
        if self._check_now():
            return
        for event in self.events:
            if not event.processed:
                event.callbacks.append(self._on_child)

    def _check_now(self) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.processed and e._ok}


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers.

    Value is a dict of the already-processed successful children.  If the
    first child to trigger failed, the condition fails with its exception.
    """

    __slots__ = ()

    def _check_now(self) -> bool:
        for event in self.events:
            if event.processed:
                if event._ok:
                    self.succeed(self._collect())
                else:
                    event.defused = True
                    self.fail(event._value)
                return True
        if not self.events:
            self.succeed({})
            return True
        return False

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if event._ok:
            self.succeed(self._collect())
        else:
            event.defused = True
            self.fail(event._value)


class AllOf(_Condition):
    """Triggers once all child events have triggered successfully."""

    __slots__ = ()

    def _check_now(self) -> bool:
        for event in self.events:
            if event.processed and not event._ok:
                event.defused = True
                self.fail(event._value)
                return True
        if self._pending == 0:
            self.succeed(self._collect())
            return True
        return False

    def _on_child(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Clock:
    """The blessed scheduling surface, attached as ``sim.clock``.

    All in-tree code schedules through this one choke point so the
    wheel's fast path stays optimizable and profilable:

    * :meth:`after` — relative sleep (fused fast path) or one-shot call
    * :meth:`at` — absolute-time variant of :meth:`after`
    * :meth:`every` — drift-free periodic call, cancellable
    * :meth:`timeout` — a plain storable/combinable :class:`Timeout`
    * :meth:`fence` — quiesce point after all work at the current instant
    """

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self.sim.now

    def after(self, delay: int, fn: Optional[Callable[[], Any]] = None,
              *, value: Any = None):
        """Schedule ``delay`` ns from now.

        Without ``fn`` this returns a fused-sleep token for a process to
        yield immediately: the engine schedules the process itself as
        the queue entry and resumes the generator with ``value`` — no
        Event is allocated.  For plain sleeps the token *is* the integer
        delay (hot loops may equivalently ``yield delay_ns`` directly).
        With ``fn`` it returns a cancellable :class:`Timer` that calls
        ``fn()`` at the deadline.
        """
        if fn is None:
            if value is None:
                if delay < 0:
                    raise SchedulingError(f"negative timeout delay: {delay}")
                return delay
            sim = self.sim
            if delay < 0:
                raise SchedulingError(f"negative timeout delay: {delay}")
            pool = sim._deferred_pool
            if pool:
                deferred = pool.pop()
                sim.pool_recycled += 1
            else:
                deferred = _Deferred()
            deferred.delay = delay
            deferred.value = value
            return deferred
        sim = self.sim
        delay = int(delay)
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        return Timer(sim, fn, None, sim.now + delay)

    def at(self, when: int, fn: Optional[Callable[[], Any]] = None,
           *, value: Any = None):
        """Absolute-time :meth:`after`: schedule at ``when`` ns."""
        when = int(when)
        now = self.sim.now
        if when < now:
            raise SchedulingError(
                f"clock.at({when}) is in the past (now={now})")
        if fn is None:
            return self.after(when - now, value=value)
        return Timer(self.sim, fn, None, when)

    def every(self, period: int, fn: Callable[[], Any],
              *, first: Optional[int] = None) -> Timer:
        """Call ``fn()`` every ``period`` ns, starting ``first`` (default
        ``period``) ns from now.  Firings land at exact multiples of the
        period — the schedule accumulates zero drift.  Returns the
        cancellable :class:`Timer`.
        """
        period = int(period)
        if period <= 0:
            raise SchedulingError(f"clock.every() period must be positive: "
                                  f"{period}")
        sim = self.sim
        start = sim.now + (period if first is None else int(first))
        if start < sim.now:
            raise SchedulingError(f"clock.every() first firing in the past: "
                                  f"{start}")
        return Timer(sim, fn, period, start, anchor=start - period)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """A plain :class:`Timeout` event ``delay`` ns out.

        Unlike :meth:`after` handles, the returned event may be stored,
        shared, or combined with :meth:`Simulator.any_of` /
        :meth:`Simulator.all_of`.
        """
        return Timeout(self.sim, int(delay), value)

    def fence(self, value: Any = None) -> Event:
        """An event that runs after *everything* already scheduled at the
        current instant (including URGENT wakeups), for quiesce points.
        """
        event = Event(self.sim)
        event._trigger(True, value, 0, priority=FENCE)
        return event


class Simulator:
    """The discrete-event engine: a clock plus an ordered event queue.

    ``event_pool_size`` bounds the free list of recycled fused-sleep
    handles (see :meth:`Clock.after`); 0 disables pooling entirely,
    which the determinism tests use to prove pooling never changes a
    run.  ``scheduler`` selects the queue implementation: ``"wheel"``
    (default, hierarchical timer wheel) or ``"heap"`` (single binary
    heap, the differential-test reference).  Both produce the identical
    ``(time, priority, seq)`` pop order.
    """

    DEFAULT_POOL_SIZE = 256

    # One-shot deprecation latches (class-level: warn once per run, not
    # once per simulator).
    _delay_warned = False
    _schedule_warned = False

    def __init__(self, event_pool_size: Optional[int] = None,
                 scheduler: str = "wheel") -> None:
        if scheduler not in ("wheel", "heap"):
            raise ValueError(f"unknown scheduler {scheduler!r}; "
                             "expected 'wheel' or 'heap'")
        self.scheduler = scheduler
        self.now: int = 0
        self._seq = 0
        # The active window holds every entry inside [*, _active_end) as
        # a sorted list consumed left-to-right via _active_pos (popping
        # is an index bump, not a heap sift); the run loop only ever
        # pops from here.  Late arrivals land via C bisect.insort.  In
        # flat ("heap") mode the window is infinite, so the wheels
        # below stay empty.
        self._active: List = []
        self._active_pos = 0
        self._active_end = _INF if scheduler == "heap" else 0
        # Slot occupancy lives in bytearrays (mutated in place, so the
        # run loop can cache references): occ[i] is 1 iff slot i holds
        # entries; the refill scan is a single C-level .find(1).
        self._l0: List[List] = [[] for _ in range(_SLOTS)]
        self._l0_base = 0
        self._l0_end = _L0_SPAN
        self._l0_occ = bytearray(_SLOTS)
        self._l1: List[List] = [[] for _ in range(_SLOTS)]
        self._l1_base = 0
        self._l1_end = _L1_SPAN
        self._l1_occ = bytearray(_SLOTS)
        self._overflow: List = []
        self._active_process: Optional[Process] = None
        # The blessed scheduling API (Clock.after/at/every/timeout/fence).
        self.clock = Clock(self)
        # Optional structured tracing (see repro.sim.trace.Tracer).
        self.tracer = None
        # Optional telemetry hub (see repro.telemetry.Telemetry); None
        # keeps every instrumented site at a single attribute check.
        self.telemetry = None
        # Optional hot-loop profiler (see repro.sim.profile.SimProfiler).
        self._profiler = None
        # Free list of recycled fused-sleep handles (_Deferred).
        self._pool_limit = (self.DEFAULT_POOL_SIZE if event_pool_size is None
                            else max(0, event_pool_size))
        self._deferred_pool: List[_Deferred] = []
        # Observability counters (cheap ints, always on).
        self.events_processed = 0
        self.pool_recycled = 0     # fused-sleep handles served from the pool
        self.fused_resumes = 0     # events dispatched via the fused fast path
        self.dead_timers = 0       # cancelled entries awaiting lazy removal

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def delay(self, delay: int, value: Any = None) -> _Deferred:
        """Deprecated: use ``sim.clock.after(delay, value=value)``."""
        if not Simulator._delay_warned:
            Simulator._delay_warned = True
            warnings.warn(
                "Simulator.delay() is deprecated; use "
                "sim.clock.after(delay, value=...) instead",
                DeprecationWarning, stacklevel=2)
        return self.clock.after(delay, value=value)

    def schedule(self, fn: Callable[[], Any], delay: int = 0) -> Timer:
        """Deprecated: use ``sim.clock.after(delay, fn)``."""
        if not Simulator._schedule_warned:
            Simulator._schedule_warned = True
            warnings.warn(
                "Simulator.schedule() is deprecated; use "
                "sim.clock.after(delay, fn) instead",
                DeprecationWarning, stacklevel=2)
        return self.clock.after(delay, fn)

    def spawn(self, generator: Generator[Event, Any, Any],
              name: Optional[str] = None, delay: int = 0) -> Process:
        """Start ``generator`` as a process after ``delay`` ns."""
        return Process(self, generator, name=name, delay=delay)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    # -- profiling -------------------------------------------------------

    def attach_profiler(self, profiler) -> None:
        """Install a :class:`repro.sim.profile.SimProfiler` on the loop."""
        self._profiler = profiler

    def detach_profiler(self) -> None:
        """Remove the profiler (the loop reverts to one check per event)."""
        self._profiler = None

    # -- queue: inserts ----------------------------------------------------

    def _insert(self, when: int, priority: int, obj: Any) -> int:
        """Route one entry to the active heap or the wheels.  Returns seq."""
        self._seq = seq = self._seq + 1
        entry = (when, priority, seq, obj)
        if when < self._active_end:
            insort(self._active, entry, self._active_pos)
        elif when < self._l0_end:
            i = (when - self._l0_base) >> _L0_SHIFT
            self._l0[i].append(entry)
            self._l0_occ[i] = 1
        elif when < self._l1_end:
            i = (when - self._l1_base) >> _L1_SHIFT
            self._l1[i].append(entry)
            self._l1_occ[i] = 1
        else:
            heappush(self._overflow, entry)
        return seq

    def _wheel_insert(self, when: int, entry: tuple) -> None:
        """Insert a pre-built entry known to be >= _active_end."""
        if when < self._l0_end:
            i = (when - self._l0_base) >> _L0_SHIFT
            self._l0[i].append(entry)
            self._l0_occ[i] = 1
        elif when < self._l1_end:
            i = (when - self._l1_base) >> _L1_SHIFT
            self._l1[i].append(entry)
            self._l1_occ[i] = 1
        else:
            heappush(self._overflow, entry)

    def _push(self, event: Event, delay: int, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay} ns in the past")
        self._insert(self.now + delay, priority, event)

    def _fuse_int(self, process: Process, delay: int) -> None:
        """Schedule ``process`` itself for a plain fused sleep."""
        if delay < 0:
            raise SchedulingError(f"negative timeout delay: {delay}")
        process._cont_seq = self._insert(self.now + delay, NORMAL, process)

    def _fuse(self, process: Process, deferred: _Deferred) -> None:
        """Schedule ``process`` itself for a value-carrying fused sleep."""
        delay = deferred.delay
        if delay < 0:
            raise ProcessError(
                "clock.after() handle reused: yield each handle exactly "
                "once, immediately (use clock.timeout() to store sleeps)")
        seq = self._insert(self.now + delay, NORMAL, process)
        process._cont_seq = seq
        process._cont_value = deferred.value
        deferred.delay = -1
        deferred.value = None
        pool = self._deferred_pool
        if len(pool) < self._pool_limit:
            pool.append(deferred)

    # -- queue: removal / maintenance --------------------------------------

    def _discard(self, when: int, seq: int, obj: Any) -> bool:
        """Try to remove entry ``(when, NORMAL, seq, obj)`` in place.

        Only wheel slots allow cheap removal (an O(slot-length) list
        scan); entries in the active or overflow heaps return False and
        are dropped lazily at pop time.
        """
        if when < self._active_end:
            return False
        entry = (when, NORMAL, seq, obj)
        if when < self._l0_end:
            i = (when - self._l0_base) >> _L0_SHIFT
            slot = self._l0[i]
            try:
                slot.remove(entry)
            except ValueError:
                return False
            if not slot:
                self._l0_occ[i] = 0
            return True
        if when < self._l1_end:
            i = (when - self._l1_base) >> _L1_SHIFT
            slot = self._l1[i]
            try:
                slot.remove(entry)
            except ValueError:
                return False
            if not slot:
                self._l1_occ[i] = 0
            return True
        return False

    def reclaim(self) -> int:
        """Sweep cancelled timers and abandoned fused sleeps from every
        bucket.  O(pending entries); preserves ordering.  Returns the
        number of entries removed.  Runs automatically once
        ``dead_timers`` passes an internal threshold, bounding
        dead-entry growth without hot-path bookkeeping.
        """
        def alive(entry) -> bool:
            obj = entry[3]
            if obj.__class__ is Timer:
                return not obj._cancelled
            stale = obj._stale_seqs
            if stale is not None and entry[2] in stale:
                stale.discard(entry[2])
                return False
            return True

        removed = 0
        # Mutate the containers in place: the run loop caches references
        # to them, and reclaim() may run mid-loop (cancel/interrupt from
        # inside a dispatched callback).  The active window is left
        # alone — the loop consumes it by index, so compacting it here
        # would shift entries under the loop's cursor; its dead entries
        # are bounded by one wheel slot's population and drop at pop.
        for wheel, occ in ((self._l0, self._l0_occ),
                           (self._l1, self._l1_occ)):
            i = occ.find(1)
            while i >= 0:
                slot = wheel[i]
                kept = [e for e in slot if alive(e)]
                if len(kept) != len(slot):
                    removed += len(slot) - len(kept)
                    slot[:] = kept
                    if not slot:
                        occ[i] = 0
                i = occ.find(1, i + 1)
        overflow = self._overflow
        kept = [e for e in overflow if alive(e)]
        if len(kept) != len(overflow):
            removed += len(overflow) - len(kept)
            overflow[:] = kept
            heapify(overflow)
        self.dead_timers -= removed
        return removed

    # -- queue: refill ------------------------------------------------------

    def _refill(self, horizon) -> bool:
        """Feed the empty active heap from the wheels/overflow.

        Moves the earliest pending slot into the active heap and
        advances the window, cascading L1 -> L0 and overflow -> L1 as
        needed.  Returns False (windows untouched at the decision
        point) when the earliest pending entry lies beyond ``horizon``
        or nothing is pending.  Precondition: the active heap is empty.
        """
        active = self._active
        if active:
            # Precondition: the window is drained, so everything left
            # in the list is consumed prefix.
            del active[:]
        self._active_pos = 0
        while True:
            occ = self._l0_occ
            i = occ.find(1)
            if i >= 0:
                start = self._l0_base + (i << _L0_SHIFT)
                if start > horizon:
                    # Every entry in the slot is >= its window start.
                    return False
                slot = self._l0[i]
                active.extend(slot)
                del slot[:]
                occ[i] = 0
                # Batch: widen the window over further occupied slots
                # until it holds a decent run of entries — sparse
                # workloads otherwise pay one refill per slot for ~2
                # events each.  When the rest of the wheel is empty,
                # claim its whole span so the next refill cascades
                # straight from L1.
                end_i = i
                while len(active) < 32:
                    nxt = occ.find(1, end_i + 1)
                    if nxt < 0:
                        end_i = _SLOTS - 1
                        break
                    nxt_slot = self._l0[nxt]
                    active.extend(nxt_slot)
                    del nxt_slot[:]
                    occ[nxt] = 0
                    end_i = nxt
                active.sort()
                self._active_end = self._l0_base + ((end_i + 1) << _L0_SHIFT)
                return True
            occ = self._l1_occ
            j = occ.find(1)
            if j >= 0:
                slot = self._l1[j]
                if min(slot)[0] > horizon:
                    # Check before cascading so a too-far horizon never
                    # advances the windows without materializing work.
                    return False
                # Cascade: this L1 slot's window spans exactly the whole
                # L0 wheel, so re-base L0 on it and redistribute.
                base = self._l1_base + (j << _L1_SHIFT)
                self._l0_base = base
                self._l0_end = base + _L0_SPAN
                l0 = self._l0
                l0_occ = self._l0_occ
                for entry in slot:
                    k = (entry[0] - base) >> _L0_SHIFT
                    l0[k].append(entry)
                    l0_occ[k] = 1
                del slot[:]
                occ[j] = 0
                continue
            overflow = self._overflow
            if overflow:
                first = overflow[0][0]
                if first > horizon:
                    return False
                # Re-base L1 so it covers the overflow head, then drain
                # everything inside the new window into its slots.
                base = (first >> _L1_SHIFT) << _L1_SHIFT
                self._l1_base = base
                end = base + _L1_SPAN
                self._l1_end = end
                l1 = self._l1
                l1_occ = self._l1_occ
                pop = heappop
                while overflow and overflow[0][0] < end:
                    entry = pop(overflow)
                    k = (entry[0] - base) >> _L1_SHIFT
                    l1[k].append(entry)
                    l1_occ[k] = 1
                continue
            return False

    # -- queue: inspection ---------------------------------------------------

    def peek(self) -> Optional[int]:
        """Timestamp of the next event, or None if the queue is empty."""
        active = self._active
        pos = self._active_pos
        if pos < len(active):
            return active[pos][0]
        i = self._l0_occ.find(1)
        if i >= 0:
            return min(self._l0[i])[0]
        i = self._l1_occ.find(1)
        if i >= 0:
            return min(self._l1[i])[0]
        if self._overflow:
            return self._overflow[0][0]
        return None

    # -- dispatch ------------------------------------------------------------

    def _resume_cont(self, process: Process) -> None:
        """Resume a fused-sleep continuation (non-inlined path: step(),
        profiler).  Keep in lockstep with the run() fast path.
        """
        self.fused_resumes += 1
        value = process._cont_value
        process._cont_value = None
        process._cont_seq = 0
        self._active_process = process
        try:
            target = process._generator.send(value)
        except StopIteration as stop:
            self._active_process = None
            process._trigger(True, stop.value, 0)
            return
        except BaseException as exc:
            self._active_process = None
            process._trigger(False, exc, 0)
            return
        self._active_process = None
        process._bind(target)

    def step(self) -> None:
        """Process exactly one event."""
        active = self._active
        pos = self._active_pos
        if pos >= len(active):
            if not self._refill(_INF):
                raise SchedulingError("step() on an empty event queue")
            pos = 0
        elif pos >= 4096:
            # Shed the consumed prefix so flat-mode runs stay bounded.
            del active[:pos]
            pos = 0
        when, _prio, seq, obj = active[pos]
        self._active_pos = pos + 1
        if when < self.now:
            raise SchedulingError("event queue corrupted: time went backwards")
        self.now = when
        self.events_processed += 1
        profiler = self._profiler
        if obj._cont_seq == seq:
            # A fused sleep: the entry is the process itself.
            if profiler is None:
                self._resume_cont(obj)
            else:
                profiler.observe_cont(obj)
            return
        stale = obj._stale_seqs
        if stale is not None and seq in stale:
            # Lazily-cancelled entry (interrupted fused sleep).
            stale.discard(seq)
            self.dead_timers -= 1
            return
        if profiler is None:
            obj._process()
        else:
            profiler.observe(obj)
        if obj._ok is False and not obj.defused and not obj.callbacks:
            # A failure nobody waited on must not pass silently.
            raise obj._value

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains, or until simulated time ``until``.

        With ``until``, the clock is advanced to exactly ``until`` even if
        the last event fires earlier, so back-to-back ``run`` calls compose.
        """
        if until is not None and until < self.now:
            raise SchedulingError(
                f"run(until={until}) is in the past (now={self.now})")
        if self._profiler is not None:
            self._run_profiled(until)
            return
        # The dispatch bodies are inlined here: at ~100 ns of call
        # overhead per event, indirection would cost ~20 % of a typical
        # run.  Keep this loop in lockstep with step()/_resume_cont().
        # Wheel-window state is cached in locals; it only changes inside
        # _refill(), so the caches are refreshed each outer iteration.
        # (The occupancy bytearray, slot lists and active list are
        # mutated in place, never rebound, so those references stay
        # valid throughout.)
        horizon = _INF if until is None else until
        active = self._active
        dpool = self._deferred_pool
        pool_limit = self._pool_limit
        # sim._active_process only matters to telemetry span attribution;
        # skip the per-event stores when no hub is attached.
        telem = self.telemetry is not None
        now = self.now
        processed = 0
        fused = 0
        ai = self._active_pos
        try:
            while True:
                active_end = self._active_end
                l0 = self._l0
                l0_occ = self._l0_occ
                l0_base = self._l0_base
                l0_end = self._l0_end
                while True:
                    try:
                        entry = active[ai]
                    except IndexError:
                        break
                    when = entry[0]
                    if when > horizon:
                        break
                    ai += 1
                    if ai >= 4096:
                        # Shed the consumed prefix (flat mode never
                        # refills, so this is what bounds its memory).
                        del active[:ai]
                        ai = 0
                    # Published before any user code runs: _insert needs
                    # the cursor as its insort lower bound, and step()/
                    # peek() may be called re-entrantly.
                    self._active_pos = ai
                    obj = entry[3]
                    if when < now:
                        raise SchedulingError(
                            "event queue corrupted: time went backwards")
                    self.now = now = when
                    processed += 1
                    seq = entry[2]
                    if obj._cont_seq == seq:
                        # Fused sleep: resume the generator directly, and
                        # if it immediately sleeps again, fuse again
                        # without leaving the loop.
                        fused += 1
                        value = obj._cont_value
                        if value is not None:
                            obj._cont_value = None
                        obj._cont_seq = 0
                        if telem:
                            self._active_process = obj
                        try:
                            target = obj._generator.send(value)
                        except StopIteration as stop:
                            obj._trigger(True, stop.value, 0)
                            continue
                        except BaseException as exc:
                            obj._trigger(False, exc, 0)
                            continue
                        tcls = target.__class__
                        if tcls is int:
                            # Plain sleep token (clock.after fast path).
                            if target < 0:
                                raise SchedulingError(
                                    f"negative timeout delay: {target}")
                            when2 = when + target
                            self._seq = seq2 = self._seq + 1
                            obj._cont_seq = seq2
                            if when2 < active_end:
                                insort(active, (when2, NORMAL, seq2, obj), ai)
                            elif when2 < l0_end:
                                i = (when2 - l0_base) >> _L0_SHIFT
                                l0[i].append((when2, NORMAL, seq2, obj))
                                l0_occ[i] = 1
                            else:
                                self._wheel_insert(
                                    when2, (when2, NORMAL, seq2, obj))
                        elif tcls is _Deferred:
                            delay = target.delay
                            if delay < 0:
                                raise ProcessError(
                                    "clock.after() handle reused: yield "
                                    "each handle exactly once, immediately "
                                    "(use clock.timeout() to store sleeps)")
                            when2 = when + delay
                            self._seq = seq2 = self._seq + 1
                            obj._cont_seq = seq2
                            obj._cont_value = target.value
                            target.delay = -1
                            target.value = None
                            if len(dpool) < pool_limit:
                                dpool.append(target)
                            if when2 < active_end:
                                insort(active, (when2, NORMAL, seq2, obj), ai)
                            else:
                                self._wheel_insert(
                                    when2, (when2, NORMAL, seq2, obj))
                        else:
                            obj._bind(target)
                        continue
                    stale = obj._stale_seqs
                    if stale is not None and seq in stale:
                        # Lazily-cancelled entry (interrupted fused sleep).
                        stale.discard(seq)
                        self.dead_timers -= 1
                        continue
                    obj._process()
                    if obj._ok is False and not obj.defused and not obj.callbacks:
                        # A failure nobody waited on must not pass silently.
                        raise obj._value
                self._active_pos = ai
                if ai < len(active):
                    break     # next runnable entry lies beyond the horizon
                if not self._refill(horizon):
                    break
                ai = 0        # _refill rebuilt the window and reset the cursor
        finally:
            self.events_processed += processed
            self.fused_resumes += fused
            if telem:
                self._active_process = None
        if until is not None and self.now < until:
            self.now = until

    def _run_profiled(self, until: Optional[int]) -> None:
        """The run loop with a profiler attached: per-event dispatch goes
        through :meth:`SimProfiler.observe` / ``observe_cont`` so wall
        time is attributed.  Keep semantics in lockstep with run().
        """
        horizon = _INF if until is None else until
        active = self._active
        while True:
            pos = self._active_pos
            if pos >= len(active):
                if not self._refill(horizon):
                    break
                continue
            entry = active[pos]
            when = entry[0]
            if when > horizon:
                break
            if pos >= 4096:
                del active[:pos]
                pos = 0
            self._active_pos = pos + 1
            if when < self.now:
                raise SchedulingError(
                    "event queue corrupted: time went backwards")
            self.now = when
            self.events_processed += 1
            seq = entry[2]
            obj = entry[3]
            profiler = self._profiler   # may detach mid-run
            if obj._cont_seq == seq:
                if profiler is None:
                    self._resume_cont(obj)
                else:
                    profiler.observe_cont(obj)
                continue
            stale = obj._stale_seqs
            if stale is not None and seq in stale:
                stale.discard(seq)
                self.dead_timers -= 1
                continue
            if profiler is None:
                obj._process()
            else:
                profiler.observe(obj)
            if obj._ok is False and not obj.defused and not obj.callbacks:
                raise obj._value
        if until is not None and self.now < until:
            self.now = until

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception on failure, or :class:`ProcessError`
        if the queue drains (or ``limit`` passes) first.
        """
        while not event.processed:
            upcoming = self.peek()
            if upcoming is None:
                raise ProcessError("simulation deadlocked waiting for event")
            if limit is not None and upcoming > limit:
                raise ProcessError(
                    f"event not processed by t={limit} (now={self.now})")
            self.step()
        if event._ok:
            return event._value
        raise event._value
