"""Priority-aware admission control for the Channel Executive.

When a device brownouts (retransmit storm, saturated firmware CPU), the
worst response is to keep queueing: every parked call holds a window
slot and a sequencer turn, and the backlog outlives the brownout.  The
supervisor instead *sheds at the submission edge*: while engaged, calls
on channels below the protected priority are refused immediately with
:class:`~repro.errors.AdmissionShedError`.

Channel priorities follow the OOB convention
(:class:`~repro.core.channel.ChannelConfig`): 0 is the low-priority OOB
class, the default application class is 1, and anything the operator
marks latency-critical sits above that.  Shedding applies only to the
*call* path (``send_call``); raw endpoint writes — OOB management
traffic, checkpoint shipping, the data plane — are never shed, so the
machinery that ends a brownout cannot be starved by it.

The controller is attached to a
:class:`~repro.core.executive.ChannelExecutive`, which stamps it onto
every channel it creates; ``engaged`` flips are O(1) and observed by
every channel immediately.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["AdmissionController"]


class AdmissionController:
    """Engage/disengage load shedding; count what was refused."""

    def __init__(self, protect_priority: int = 2) -> None:
        # Calls on channels with priority < protect_priority are shed
        # while engaged; >= passes untouched.
        self.protect_priority = protect_priority
        self.engaged = False
        self.engaged_at_ns: Optional[int] = None
        self.engagements = 0
        self.admitted = 0
        self.shed_by_priority: Dict[int, int] = {}

    @property
    def shed_total(self) -> int:
        """Calls refused across all priorities."""
        return sum(self.shed_by_priority.values())

    def engage(self, now_ns: Optional[int] = None) -> None:
        """Start shedding (idempotent)."""
        if self.engaged:
            return
        self.engaged = True
        self.engaged_at_ns = now_ns
        self.engagements += 1

    def disengage(self) -> None:
        """Stop shedding (idempotent)."""
        self.engaged = False
        self.engaged_at_ns = None

    def admit(self, priority: int) -> bool:
        """Admission decision for one call on a channel of ``priority``."""
        if self.engaged and priority < self.protect_priority:
            self.shed_by_priority[priority] = (
                self.shed_by_priority.get(priority, 0) + 1)
            return False
        self.admitted += 1
        return True
