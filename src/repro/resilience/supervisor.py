"""The self-healing supervisor loop.

Reactive recovery (watchdog → checkpoint restore → replay) handles
devices that *die*.  The supervisor handles devices that *misbehave*:

* **Flapping** — a device that repeatedly stalls and recovers trips the
  watchdog into ``suspect`` and back without ever dying.  Each recovery
  is a transition recorded by the watchdog; when enough of them land
  inside the flap window, the supervisor quarantines the device
  (excluded from layout like a failed one, but alive) and — policy
  permitting — drains its offcodes elsewhere via live migration.
* **Probation** — a quarantined device that stays quiet for the
  probation window is un-quarantined; new suspect transitions during
  probation extend it.  One quarantine decision is made per flap
  episode: the transitions that triggered it are consumed, so the same
  burst can never be double-counted.
* **Brownout** — an EWMA over the executive-wide retransmit rate
  detects overload; crossing the enter threshold engages priority-aware
  admission control at the Channel Executive
  (:class:`~repro.resilience.admission.AdmissionController`), and
  falling below the exit threshold (hysteresis) disengages it.

The supervisor duck-types against :class:`~repro.core.runtime.HydraRuntime`
(this package must not import ``repro.core``): it needs ``sim``,
``watchdog``, ``executive``, ``quarantined_devices``, ``failed_devices``,
``device_runtimes`` and the ``migrate`` verb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.errors import HydraError
from repro.resilience.admission import AdmissionController
from repro.sim.trace import emit as trace_emit

__all__ = ["SupervisorConfig", "SupervisorDecision", "Supervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs of the self-healing loop."""

    period_ns: int = 5_000_000           # policy tick: 5 ms
    # Flap detection: this many suspect→alive recoveries inside the
    # window quarantines the device.
    flap_window_ns: int = 60_000_000
    flap_threshold: int = 2
    # Probation: quarantined devices that stay quiet this long return
    # to service; new suspect transitions restart the clock.
    probation_ns: int = 100_000_000
    # Drain policy: migrate offcodes off a freshly-quarantined device.
    drain: bool = True
    # Brownout detection: EWMA of retransmits/second over the whole
    # executive.  Enter > exit gives hysteresis.
    brownout_enter: float = 200.0
    brownout_exit: float = 50.0
    ewma_alpha: float = 0.3
    # Channels below this priority are shed while admission control is
    # engaged (the OOB convention: 0 = OOB, 1 = default application).
    protect_priority: int = 2

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ValueError("supervisor period must be positive")
        if self.flap_threshold < 1:
            raise ValueError("flap threshold must be at least 1")
        if self.brownout_exit > self.brownout_enter:
            raise ValueError("brownout exit threshold above enter "
                             "threshold (hysteresis inverted)")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("EWMA alpha must be in (0, 1]")


@dataclass
class SupervisorDecision:
    """One policy action, for tests and post-mortems."""

    at_ns: int
    action: str         # quarantine | unquarantine | drain | shed-on | shed-off
    device: str = ""
    detail: str = ""


class Supervisor:
    """Policy loop consuming watchdog + channel health signals."""

    def __init__(self, runtime, config: Optional[SupervisorConfig] = None
                 ) -> None:
        self.runtime = runtime
        self.sim = runtime.sim
        self.config = config or SupervisorConfig()
        self.admission = AdmissionController(
            protect_priority=self.config.protect_priority)
        self.decisions: List[SupervisorDecision] = []
        self.quarantines = 0
        self.unquarantines = 0
        self.drains_started = 0
        self.drains_completed = 0
        self.drains_failed = 0
        self.retransmit_rate_ewma = 0.0
        # Per-device episode state: transitions before this index are
        # consumed (already led to a decision).
        self._episode_start: Dict[str, int] = {}
        self._quarantined_at: Dict[str, int] = {}
        self._probation_deadline: Dict[str, int] = {}
        self._last_retransmits = 0
        self._process = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Supervisor":
        """Arm the policy loop (idempotent)."""
        if self._process is None:
            self.runtime.executive.set_admission(self.admission)
            self._process = self.sim.spawn(self._loop(), name="supervisor")
        return self

    def _loop(self) -> Generator[Any, Any, None]:
        while True:
            yield self.sim.timeout(self.config.period_ns)
            drains = self._scan_flaps()
            self._scan_probation()
            self._scan_brownout()
            for device in drains:
                yield from self._drain(device)

    # -- flap detection --------------------------------------------------------

    def _scan_flaps(self) -> List[str]:
        watchdog = self.runtime.watchdog
        if watchdog is None:
            return []
        now = self.sim.now
        to_drain: List[str] = []
        for device in sorted(watchdog._watches):
            if (device in self.runtime.quarantined_devices
                    or device in self.runtime.failed_devices):
                continue
            transitions = watchdog.transitions_of(device)
            start = self._episode_start.get(device, 0)
            recoveries = [at for at, status in transitions[start:]
                          if status == "alive"
                          and at > now - self.config.flap_window_ns]
            if len(recoveries) < self.config.flap_threshold:
                continue
            # Exactly one quarantine per episode: consume the evidence.
            self._episode_start[device] = len(transitions)
            self._quarantine(device, len(recoveries))
            if self.config.drain:
                to_drain.append(device)
        return to_drain

    def _quarantine(self, device: str, recoveries: int) -> None:
        now = self.sim.now
        self.runtime.quarantined_devices.add(device)
        self.runtime.executive.invalidate_cost_cache()
        self._quarantined_at[device] = now
        self._probation_deadline[device] = now + self.config.probation_ns
        self.quarantines += 1
        self.decisions.append(SupervisorDecision(
            at_ns=now, action="quarantine", device=device,
            detail=f"{recoveries} recoveries in flap window"))
        trace_emit(self.sim, "fault",
                   f"supervisor quarantined {device} "
                   f"({recoveries} stall/recover cycles)")
        tel = self.sim.telemetry
        if tel is not None:
            tel.instant(f"quarantine.{device}", category="supervisor",
                        track="supervisor", recoveries=recoveries)

    def _scan_probation(self) -> None:
        watchdog = self.runtime.watchdog
        now = self.sim.now
        for device in sorted(self._probation_deadline):
            if device not in self.runtime.quarantined_devices:
                self._probation_deadline.pop(device, None)
                continue
            if now < self._probation_deadline[device]:
                continue
            since = self._quarantined_at.get(device, 0)
            relapsed = False
            if watchdog is not None:
                relapsed = any(
                    at > since and status != "alive"
                    for at, status in watchdog.transitions_of(device))
            if relapsed:
                # Still flapping under quarantine: restart the clock and
                # consume the relapse so it cannot also start an episode.
                self._quarantined_at[device] = now
                self._probation_deadline[device] = (
                    now + self.config.probation_ns)
                if watchdog is not None:
                    self._episode_start[device] = len(
                        watchdog.transitions_of(device))
                continue
            self.runtime.quarantined_devices.discard(device)
            self.runtime.executive.invalidate_cost_cache()
            self._probation_deadline.pop(device, None)
            self._quarantined_at.pop(device, None)
            if watchdog is not None:
                self._episode_start[device] = len(
                    watchdog.transitions_of(device))
            self.unquarantines += 1
            self.decisions.append(SupervisorDecision(
                at_ns=now, action="unquarantine", device=device,
                detail="probation served"))
            trace_emit(self.sim, "fault",
                       f"supervisor un-quarantined {device} after probation")

    # -- drain-and-rebalance ---------------------------------------------------

    def _drain(self, device: str) -> Generator[Any, Any, None]:
        runtime = self.runtime
        device_runtime = runtime.device_runtimes.get(device)
        if device_runtime is None:
            return
        victims = [bindname for bindname in sorted(device_runtime.offcodes)
                   if not bindname.startswith("hydra.")]
        for bindname in victims:
            self.drains_started += 1
            self.decisions.append(SupervisorDecision(
                at_ns=self.sim.now, action="drain", device=device,
                detail=bindname))
            try:
                yield from runtime.migrate(bindname)
            except HydraError as exc:
                self.drains_failed += 1
                trace_emit(self.sim, "fault",
                           f"drain of {bindname} off {device} failed: {exc}")
            else:
                self.drains_completed += 1

    # -- brownout / admission control -------------------------------------------

    def _scan_brownout(self) -> None:
        config = self.config
        total = sum(ch.stats().retransmits
                    for ch in self.runtime.executive.channels)
        delta = total - self._last_retransmits
        self._last_retransmits = total
        rate = delta / (config.period_ns / 1e9)
        self.retransmit_rate_ewma = (
            config.ewma_alpha * rate
            + (1.0 - config.ewma_alpha) * self.retransmit_rate_ewma)
        if (not self.admission.engaged
                and self.retransmit_rate_ewma > config.brownout_enter):
            self.admission.engage(self.sim.now)
            self.decisions.append(SupervisorDecision(
                at_ns=self.sim.now, action="shed-on",
                detail=f"retransmit EWMA {self.retransmit_rate_ewma:.0f}/s"))
            trace_emit(self.sim, "fault",
                       "supervisor engaged admission control "
                       f"(retransmit EWMA {self.retransmit_rate_ewma:.0f}/s)")
        elif (self.admission.engaged
              and self.retransmit_rate_ewma < config.brownout_exit):
            self.admission.disengage()
            self.decisions.append(SupervisorDecision(
                at_ns=self.sim.now, action="shed-off",
                detail=f"retransmit EWMA {self.retransmit_rate_ewma:.0f}/s"))
            trace_emit(self.sim, "fault",
                       "supervisor disengaged admission control")
