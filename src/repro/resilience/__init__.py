"""Proactive resilience: live migration, supervision, admission control.

The fault subsystems built so far are *reactive*: a device crashes, the
watchdog declares it dead, recovery restores from checkpoint and replays
unacked traffic.  This package adds the proactive half of the operations
story — move an offcode off a device **before** it dies or saturates:

* :mod:`repro.resilience.migration` — the bookkeeping of one live
  cutover (:class:`MigrationRecord`) and the bounded holding queue that
  fences proxy calls while it runs (:class:`HoldingGate`).
* :mod:`repro.resilience.admission` — priority-aware load shedding at
  the Channel Executive (:class:`AdmissionController`).
* :mod:`repro.resilience.supervisor` — the self-healing policy loop
  (:class:`Supervisor`): quarantine flapping devices, drain them via
  :meth:`~repro.core.runtime.HydraRuntime.migrate`, engage admission
  control on brownout, un-quarantine after probation.

Layering: these modules are imported *by* ``repro.core`` (the runtime's
``migrate`` verb uses the record and gate), so nothing here may import
from ``repro.core`` — the supervisor duck-types against the runtime.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.migration import HoldingGate, MigrationRecord
from repro.resilience.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "AdmissionController",
    "HoldingGate",
    "MigrationRecord",
    "Supervisor",
    "SupervisorConfig",
]
