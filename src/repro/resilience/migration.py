"""Bookkeeping and fencing primitives for one live offcode migration.

A migration is a six-step cutover (quiesce → checkpoint → re-solve →
restore → replay → rebind) driven by
:meth:`repro.core.runtime.HydraRuntime.migrate`.  This module holds the
pieces that must stay free of ``repro.core`` imports:

* :class:`MigrationRecord` — the durable account of one cutover,
  appended to ``runtime.migrations`` before the first side effect so a
  failed attempt is never invisible.
* :class:`HoldingGate` — a bounded holding queue for proxy calls.
  While the gate is closed, callers park on a shared event; when the
  bound is hit further callers are shed with
  :class:`~repro.errors.AdmissionShedError` (bounded memory, bounded
  latency — a migration must not turn into an unbounded queue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.errors import AdmissionShedError
from repro.sim.engine import Event, Simulator

__all__ = ["MigrationRecord", "HoldingGate"]


@dataclass
class MigrationRecord:
    """One live migration, from request to completion (or failure).

    Mirrors :class:`~repro.core.runtime.RecoveryIncident` closely enough
    that recovery hooks written against incidents (``device`` +
    ``victims`` attributes) run unchanged during a migration rewire.
    """

    bindname: str
    source: str                          # device the offcode left
    target: Optional[str]                # requested destination (None = solver's choice)
    started_at_ns: int
    destination: Optional[str] = None    # where it actually landed
    quiesced_at_ns: Optional[int] = None
    restored_at_ns: Optional[int] = None
    completed_at_ns: Optional[int] = None
    failed_at_ns: Optional[int] = None
    error: Optional[BaseException] = None
    drained: bool = False       # cooperative drain emptied every unacked queue
    restored: bool = False      # snapshot state applied on the destination
    replayed: int = 0           # unacked RELIABLE messages re-sent post-cutover
    shed: int = 0               # proxy calls shed by the holding gate
    held_peak: int = 0          # peak calls parked in the holding gate
    hook_errors: List[BaseException] = field(default_factory=list)
    placement: Dict[str, str] = field(default_factory=dict)
    reports: List[Any] = field(default_factory=list)  # teardown CleanupReports

    # Recovery hooks address incidents by the device that changed.
    @property
    def device(self) -> str:
        """The source device, under the incident-hook naming."""
        return self.source

    @property
    def victims(self) -> List[str]:
        """The migrated offcode, under the incident-hook naming."""
        return [self.bindname]

    @property
    def completed(self) -> bool:
        """True once the cutover finished and the gate reopened."""
        return self.completed_at_ns is not None

    @property
    def failed(self) -> bool:
        """True if the migration aborted."""
        return self.failed_at_ns is not None

    @property
    def downtime_ns(self) -> Optional[int]:
        """Blackout window: calls fenced until the offcode ran again."""
        if self.quiesced_at_ns is None or self.restored_at_ns is None:
            return None
        return self.restored_at_ns - self.quiesced_at_ns


class HoldingGate:
    """A bounded fence for in-flight work during a cutover.

    ``close()`` arms the gate; subsequent :meth:`wait` calls park on one
    shared event until :meth:`open` releases them all at once.  At most
    ``capacity`` callers may park; the rest are shed immediately with
    :class:`~repro.errors.AdmissionShedError`.  The gate is reusable,
    but each close creates a *fresh* event so late wakeups from a prior
    cycle can never leak through.
    """

    def __init__(self, sim: Simulator, capacity: int = 64) -> None:
        self.sim = sim
        self.capacity = capacity
        self._barrier: Optional[Event] = None
        self.waiting = 0
        self.held_peak = 0
        self.shed = 0
        self.released = 0

    @property
    def closed(self) -> bool:
        """True while callers are being fenced."""
        return self._barrier is not None

    def close(self) -> None:
        """Arm the fence (idempotent)."""
        if self._barrier is None:
            self._barrier = Event(self.sim)

    def open(self) -> None:
        """Release every parked caller and let new ones pass (idempotent)."""
        barrier, self._barrier = self._barrier, None
        if barrier is not None:
            barrier.succeed()

    def wait(self) -> Generator[Event, Any, None]:
        """Process generator: pass through, park, or shed.

        Loops because the gate may have been closed again by the time a
        released waiter is rescheduled (back-to-back migrations).
        """
        while True:
            barrier = self._barrier
            if barrier is None:
                return
            if self.waiting >= self.capacity:
                self.shed += 1
                raise AdmissionShedError(
                    f"holding gate full ({self.capacity} calls parked); "
                    "call shed during migration")
            self.waiting += 1
            self.held_peak = max(self.held_peak, self.waiting)
            try:
                yield barrier
            finally:
                self.waiting -= 1
            self.released += 1
