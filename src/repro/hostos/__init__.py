"""Simulated host operating system.

Substitutes for the testbed's Linux 2.6.15 kernels (DESIGN.md §2):
timer ticks and background daemons, scheduler wakeup latency, UDP
sockets with copying and scatter-gather send paths, and NFS.
"""

from repro.hostos.kernel import BackgroundLoadConfig, Kernel, KernelConfig
from repro.hostos.nfs import (
    DeviceNfsClient,
    HostNfsClient,
    NFS_PORT,
    NfsRequest,
    NfsResponse,
    NfsServer,
    NfsServerConfig,
    RemoteFile,
)
from repro.hostos.scheduler import SchedulerSpec, WakeupModel
from repro.hostos.sockets import UdpSocket, UdpStack

__all__ = [
    "BackgroundLoadConfig",
    "DeviceNfsClient",
    "HostNfsClient",
    "Kernel",
    "KernelConfig",
    "NFS_PORT",
    "NfsRequest",
    "NfsResponse",
    "NfsServer",
    "NfsServerConfig",
    "RemoteFile",
    "SchedulerSpec",
    "UdpSocket",
    "UdpStack",
    "WakeupModel",
]
