"""UDP socket stack for the simulated host OS.

Implements the two host transmit paths the evaluation compares:

* :meth:`UdpSocket.sendto` — the Simple-server path: syscall, copy of the
  payload from user space into a kernel buffer (through the L2), software
  checksum, then DMA to the NIC.
* :meth:`UdpSocket.sendto_gather` — the scatter-gather path used by
  ``sendfile``: the payload already sits in kernel/DMA buffers, so no CPU
  copy occurs; only descriptor setup is charged.  The paper notes this
  requires scatter-gather hardware support on the NIC, so the call checks
  the device feature and falls back to a copying send without it.

Receive side: the NIC's host path DMAs the frame into the host ring and
raises an interrupt; the stack's handler charges ISR + softirq + checksum
and appends to the bound socket's queue.  ``recvfrom`` then pays the
syscall and the copy to user space.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import SocketError
from repro.hw.nic import Nic
from repro.hostos.kernel import Kernel
from repro.net.packet import Address, Packet
from repro.sim.engine import Event
from repro.sim.resources import Store

__all__ = ["UdpStack", "UdpSocket"]

_EPHEMERAL_BASE = 32768


class UdpSocket:
    """A bound UDP socket on a host kernel."""

    def __init__(self, stack: "UdpStack", port: int,
                 rx_capacity: int = 512) -> None:
        self.stack = stack
        self.port = port
        self.queue: Store = Store(stack.kernel.sim, capacity=rx_capacity,
                                  drop_when_full=True)
        self.closed = False
        self.tx_packets = 0
        self.rx_packets = 0

    @property
    def address(self) -> Address:
        """This socket's (host, port) address."""
        return Address(self.stack.host_name, self.port)

    # -- transmit ---------------------------------------------------------------

    def sendto(self, dst: Address, size_bytes: int, payload=None
               ) -> Generator[Event, None, Packet]:
        """Standard copying send path (user buffer -> kernel -> NIC)."""
        self._check_open()
        kernel = self.stack.kernel
        yield from kernel.syscall("sendto")
        yield from kernel.copy_from_user(size_bytes, context="kernel-net")
        yield from kernel.checksum(size_bytes)
        return (yield from self._transmit(dst, size_bytes, payload))

    def sendto_gather(self, dst: Address, size_bytes: int, payload=None
                      ) -> Generator[Event, None, Packet]:
        """Zero-copy send of data already in kernel buffers.

        Needs NIC scatter-gather support; otherwise the kernel copies the
        data into a linear socket buffer first (the fallback the paper
        describes for hardware without the feature).
        """
        self._check_open()
        kernel = self.stack.kernel
        if self.stack.nic.spec.has_feature("scatter-gather"):
            # Descriptor setup only: a handful of cache lines, tiny CPU cost.
            yield from kernel.cpu.execute(1_500, context="kernel-net")
        else:
            yield from kernel.copy_from_user(size_bytes, context="kernel-net")
            yield from kernel.checksum(size_bytes)
        return (yield from self._transmit(dst, size_bytes, payload))

    def _transmit(self, dst: Address, size_bytes: int, payload
                  ) -> Generator[Event, None, Packet]:
        packet = Packet(src=self.address, dst=dst, size_bytes=size_bytes,
                        payload=payload)
        packet.sent_at_ns = self.stack.kernel.sim.now
        yield from self.stack.nic.transmit_from_host(packet)
        self.tx_packets += 1
        return packet

    # -- receive -----------------------------------------------------------------

    def recvfrom(self) -> Generator[Event, None, Packet]:
        """Block until a datagram arrives; pays syscall + copy-to-user."""
        self._check_open()
        kernel = self.stack.kernel
        packet: Packet = yield self.queue.get()
        yield from kernel.syscall("recvfrom")
        yield from kernel.copy_to_user(packet.size_bytes, context="kernel-net")
        self.rx_packets += 1
        return packet

    def recvfrom_kernel(self) -> Generator[Event, None, Packet]:
        """Kernel-internal receive (NFS client, in-kernel consumers):
        no syscall crossing and no copy to user space — the payload is
        consumed where the DMA left it."""
        self._check_open()
        packet: Packet = yield self.queue.get()
        yield from self.stack.kernel.cpu.execute(1_200, context="kernel-net")
        self.rx_packets += 1
        return packet

    def sendto_kernel(self, dst: Address, size_bytes: int, payload=None
                      ) -> Generator[Event, None, Packet]:
        """Kernel-internal send: RPC header work, no syscall, no user
        copy; the NIC checksums and gathers the payload itself."""
        self._check_open()
        yield from self.stack.kernel.cpu.execute(2_000, context="kernel-net")
        return (yield from self._transmit(dst, size_bytes, payload))

    def close(self) -> None:
        """Unbind; the port becomes reusable."""
        if not self.closed:
            self.closed = True
            self.stack._unbind(self.port)

    def _check_open(self) -> None:
        if self.closed:
            raise SocketError(f"socket {self.address} is closed")


class UdpStack:
    """Per-host UDP stack: port table, NIC attachment, receive bottom half."""

    def __init__(self, kernel: Kernel, host_name: str) -> None:
        self.kernel = kernel
        self.host_name = host_name
        self.nic: Optional[Nic] = None
        self._ports: Dict[int, UdpSocket] = {}
        self._next_ephemeral = _EPHEMERAL_BASE
        self.rx_delivered = 0
        self.rx_no_listener = 0
        kernel.udp = self

    # -- setup -------------------------------------------------------------------

    def attach_nic(self, nic: Nic, switch) -> None:
        """Wire a NIC to a switch under this host's name."""
        if self.nic is not None:
            raise SocketError(f"{self.host_name}: stack already has a NIC")
        self.nic = nic
        transmit = switch.attach(self.host_name, nic.receive_packet)
        nic.attach_wire(transmit)
        nic.set_interrupt_handler(self._on_interrupt)

    # -- sockets -------------------------------------------------------------------

    def socket(self, port: Optional[int] = None) -> UdpSocket:
        """Bind a new UDP socket (ephemeral port when ``port`` is None)."""
        if port is None:
            while self._next_ephemeral in self._ports:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._ports:
            raise SocketError(f"{self.host_name}: port {port} already bound")
        sock = UdpSocket(self, port)
        self._ports[port] = sock
        return sock

    def _unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    # -- receive bottom half -----------------------------------------------------------

    def _on_interrupt(self, vector: str, payload) -> None:
        if vector != "rx":
            return
        self.kernel.sim.spawn(self._rx_bottom_half(),
                              name=f"{self.host_name}-rx-bh")

    def _rx_bottom_half(self) -> Generator[Event, None, None]:
        kernel = self.kernel
        assert self.nic is not None
        yield from kernel.isr()
        packet: Packet = yield self.nic.host_rx_ring.get()
        yield from kernel.cpu.execute(kernel.config.softirq_per_packet_ns,
                                      context="kernel-net")
        if not self.nic.spec.has_feature("csum-offload"):
            yield from kernel.checksum(packet.size_bytes)
        if packet.received_at_ns is None:
            packet.received_at_ns = kernel.sim.now
        sock = self._ports.get(packet.dst.port)
        if sock is None or sock.closed:
            self.rx_no_listener += 1
            return
        yield sock.queue.put(packet)
        self.rx_delivered += 1
