"""NFS substrate: NAS server, host client, device client, remote files.

The testbed stores all media on a NAS reached over NFS (Section 6.1):
the Video Server reads movies from it, and the client's "Smart Disk" is
a programmable NIC whose firmware speaks enough NFS to store and reload
the stream.  Three pieces reproduce that arrangement:

* :class:`NfsServer` — the NAS service: receives read/write requests on
  UDP port 2049, applies a disk-array service-time distribution, replies
  with the data (reads) or an ack (writes).
* :class:`HostNfsClient` — the host kernel's client: requests go through
  the full host socket stack (syscalls, copies, interrupts), which is
  precisely why host-based file access perturbs the host CPU and cache.
* :class:`DeviceNfsClient` — the firmware client used by the Smart Disk
  and offloaded Offcodes: requests leave straight from the device port
  and responses are consumed in device memory; the host never notices.

:class:`RemoteFile` adds sequential read-ahead / write-behind buffering
on top of either client, mirroring the kernel page cache behaviour that
lets ``sendfile`` (and the offloaded server's prefetching File Offcode)
hide the NAS round-trip.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro import units
from repro.errors import FileSystemError
from repro.hostos.kernel import Kernel
from repro.hostos.sockets import UdpStack
from repro.net.devport import DeviceNetPort
from repro.net.packet import Address
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "NFS_PORT",
    "NfsRequest",
    "NfsResponse",
    "NfsServerConfig",
    "NfsServer",
    "HostNfsClient",
    "DeviceNfsClient",
    "RemoteFile",
]

NFS_PORT = 2049
_REQUEST_WIRE_BYTES = 120     # RPC header + file handle + offsets
_RESPONSE_OVERHEAD_BYTES = 96

_req_ids = itertools.count(1)


@dataclass
class NfsRequest:
    """An NFS read or write request (carried as a packet payload)."""

    op: str                   # "read" | "write"
    handle: str
    offset: int
    size: int
    req_id: int


@dataclass
class NfsResponse:
    """Reply to an :class:`NfsRequest`."""

    req_id: int
    size: int                 # bytes of data carried (reads) or acked (writes)
    ok: bool = True


@dataclass(frozen=True)
class NfsServerConfig:
    """NAS service-time distribution (disk array with a large cache)."""

    service_mean_ns: int = 550 * units.US
    service_sigma_ns: int = 220 * units.US
    service_min_ns: int = 80 * units.US


class NfsServer:
    """The NAS: serves reads/writes with a stochastic service time."""

    def __init__(self, kernel: Kernel, rng: RandomStreams,
                 config: Optional[NfsServerConfig] = None) -> None:
        if kernel.udp is None:
            raise FileSystemError("NFS server needs a socket stack")
        self.kernel = kernel
        self.config = config or NfsServerConfig()
        self.rng = rng.stream(f"nfs-server-{kernel.machine.name}")
        self.stack: UdpStack = kernel.udp
        self.socket = self.stack.socket(NFS_PORT)
        self.files: Dict[str, int] = {}   # handle -> stored byte count
        self.reads_served = 0
        self.writes_served = 0

    def start(self) -> None:
        """Spawn the serve loop on the NAS kernel."""
        self.kernel.sim.spawn(self._serve_loop(), name="nfs-server")

    def _serve_loop(self) -> Generator[Event, None, None]:
        while True:
            packet = yield from self.socket.recvfrom()
            request: NfsRequest = packet.payload
            self.kernel.sim.spawn(self._serve_one(request, packet.src),
                                  name="nfs-serve")

    def _serve_one(self, request: NfsRequest, reply_to: Address
                   ) -> Generator[Event, None, None]:
        service = max(self.config.service_min_ns,
                      round(self.rng.gauss(self.config.service_mean_ns,
                                           self.config.service_sigma_ns)))
        yield self.kernel.sim.timeout(service)
        if request.op == "read":
            stored = self.files.get(request.handle)
            size = request.size if stored is None else min(
                request.size, max(0, stored - request.offset))
            self.reads_served += 1
            response = NfsResponse(req_id=request.req_id, size=size)
            wire = size + _RESPONSE_OVERHEAD_BYTES
        elif request.op == "write":
            end = request.offset + request.size
            if end > self.files.get(request.handle, 0):
                self.files[request.handle] = end
            self.writes_served += 1
            response = NfsResponse(req_id=request.req_id, size=request.size)
            wire = _RESPONSE_OVERHEAD_BYTES
        else:
            response = NfsResponse(req_id=request.req_id, size=0, ok=False)
            wire = _RESPONSE_OVERHEAD_BYTES
        yield from self.socket.sendto(reply_to, wire, payload=response)


class _PendingTable:
    """Matches NFS responses to outstanding requests by req_id."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._pending: Dict[int, Event] = {}

    def register(self, req_id: int) -> Event:
        event = self.sim.event()
        self._pending[req_id] = event
        return event

    def resolve(self, response: NfsResponse) -> None:
        event = self._pending.pop(response.req_id, None)
        if event is not None:
            event.succeed(response)


class HostNfsClient:
    """NFS client running in the host kernel (full host-path costs)."""

    def __init__(self, kernel: Kernel, server: Address) -> None:
        if kernel.udp is None:
            raise FileSystemError("NFS client needs a socket stack")
        self.kernel = kernel
        self.server = server
        self.socket = kernel.udp.socket()
        self._pending = _PendingTable(kernel.sim)
        kernel.sim.spawn(self._response_loop(), name="nfs-client-rx")

    def _response_loop(self) -> Generator[Event, None, None]:
        # Kernel-internal: NFS replies land in the page cache, never in
        # a user buffer.
        while True:
            packet = yield from self.socket.recvfrom_kernel()
            self._pending.resolve(packet.payload)

    def _call(self, op: str, handle: str, offset: int, size: int,
              wire_bytes: int) -> Generator[Event, None, NfsResponse]:
        request = NfsRequest(op=op, handle=handle, offset=offset,
                             size=size, req_id=next(_req_ids))
        waiter = self._pending.register(request.req_id)
        yield from self.socket.sendto_kernel(self.server, wire_bytes,
                                             payload=request)
        response: NfsResponse = yield waiter
        if not response.ok:
            raise FileSystemError(f"NFS {op} on {handle!r} failed")
        return response

    def read(self, handle: str, offset: int, size: int
             ) -> Generator[Event, None, int]:
        """Fetch ``size`` bytes; returns bytes actually read."""
        response = yield from self._call("read", handle, offset, size,
                                         _REQUEST_WIRE_BYTES)
        return response.size

    def write(self, handle: str, offset: int, size: int
              ) -> Generator[Event, None, int]:
        """Store ``size`` bytes; returns bytes acked."""
        response = yield from self._call(
            "write", handle, offset, size, size + _REQUEST_WIRE_BYTES)
        return response.size


class DeviceNfsClient:
    """NFS client in device firmware — zero host involvement.

    Also exports the ``read_block``/``write_block`` interface expected by
    :meth:`repro.hw.disk.SmartDisk.attach_backing`, so a smart disk can
    be backed by it directly (the paper's NFS Offcode).
    """

    BLOCK_HANDLE = "smartdisk.img"

    def __init__(self, port: DeviceNetPort, server: Address) -> None:
        self.port = port
        self.server = server
        self.binding = port.bind()
        self._pending = _PendingTable(port.device.sim)
        port.device.sim.spawn(self._response_loop(), name="devnfs-rx")
        self.reads = 0
        self.writes = 0

    def _response_loop(self) -> Generator[Event, None, None]:
        while True:
            packet = yield from self.binding.recv()
            self._pending.resolve(packet.payload)

    def _call(self, op: str, handle: str, offset: int, size: int,
              wire_bytes: int) -> Generator[Event, None, NfsResponse]:
        request = NfsRequest(op=op, handle=handle, offset=offset,
                             size=size, req_id=next(_req_ids))
        waiter = self._pending.register(request.req_id)
        yield from self.port.send(self.binding.number, self.server,
                                  wire_bytes, payload=request)
        response: NfsResponse = yield waiter
        if not response.ok:
            raise FileSystemError(f"device NFS {op} on {handle!r} failed")
        return response

    def read(self, handle: str, offset: int, size: int
             ) -> Generator[Event, None, int]:
        """Firmware NFS read; returns bytes read."""
        response = yield from self._call("read", handle, offset, size,
                                         _REQUEST_WIRE_BYTES)
        self.reads += 1
        return response.size

    def write(self, handle: str, offset: int, size: int
              ) -> Generator[Event, None, int]:
        """Firmware NFS write; returns bytes acked."""
        response = yield from self._call(
            "write", handle, offset, size, size + _REQUEST_WIRE_BYTES)
        self.writes += 1
        return response.size

    # -- SmartDisk backing interface -------------------------------------------

    def read_block(self, lba: int, size: int) -> Generator[Event, None, None]:
        """SmartDisk backing hook: fetch one block."""
        yield from self.read(self.BLOCK_HANDLE, lba * size, size)

    def write_block(self, lba: int, size: int) -> Generator[Event, None, None]:
        """SmartDisk backing hook: store one block."""
        yield from self.write(self.BLOCK_HANDLE, lba * size, size)


class RemoteFile:
    """Sequential file with read-ahead and write-behind over an NFS client.

    Read-ahead is the mechanism that lets ``sendfile`` and the offloaded
    File Offcode serve packets without waiting out an NFS round trip: a
    background fetch keeps ``window_bytes`` of data ahead of the reader.
    """

    def __init__(self, client, handle: str,
                 window_bytes: int = 64 * 1024,
                 chunk_bytes: int = 8 * 1024) -> None:
        if window_bytes < chunk_bytes:
            raise FileSystemError("read-ahead window smaller than chunk")
        self.client = client
        self.handle = handle
        self.window_bytes = window_bytes
        self.chunk_bytes = chunk_bytes
        self._sim = self._client_sim(client)
        self.read_offset = 0          # next byte the app will consume
        self.fetched_offset = 0       # next byte read-ahead will request
        self.buffered = 0
        self.write_offset = 0
        self._fetch_in_flight = False
        self._buffer_grew: Optional[Event] = None
        self.readahead_stalls = 0

    @staticmethod
    def _client_sim(client) -> Simulator:
        if hasattr(client, "kernel"):
            return client.kernel.sim
        if hasattr(client, "port"):
            return client.port.device.sim
        if hasattr(client, "sim"):
            return client.sim
        raise FileSystemError(
            f"cannot locate a simulator on NFS client {client!r}")

    # -- reading -----------------------------------------------------------------

    def read(self, size: int) -> Generator[Event, None, int]:
        """Consume ``size`` sequential bytes, stalling only on empty buffer."""
        if size <= 0:
            raise FileSystemError(f"read size must be positive: {size}")
        self._kick_readahead()
        while self.buffered < size:
            self.readahead_stalls += 1
            self._kick_readahead()
            self._buffer_grew = self._sim.event()
            yield self._buffer_grew
        self.buffered -= size
        self.read_offset += size
        self._kick_readahead()
        return size

    def _kick_readahead(self) -> None:
        if self._fetch_in_flight:
            return
        if self.fetched_offset - self.read_offset >= self.window_bytes:
            return
        self._fetch_in_flight = True
        self._sim.spawn(self._fetch(), name=f"readahead-{self.handle}")

    def _fetch(self) -> Generator[Event, None, None]:
        try:
            while self.fetched_offset - self.read_offset < self.window_bytes:
                got = yield from self.client.read(
                    self.handle, self.fetched_offset, self.chunk_bytes)
                # An empty read means EOF on a finite file; for the
                # streaming workload files are unbounded, so got == chunk.
                if got <= 0:
                    break
                self.fetched_offset += got
                self.buffered += got
                if self._buffer_grew is not None:
                    event, self._buffer_grew = self._buffer_grew, None
                    event.succeed()
        finally:
            self._fetch_in_flight = False

    # -- writing ------------------------------------------------------------------

    def append(self, size: int) -> Generator[Event, None, None]:
        """Write-behind append: returns once the write is *issued*.

        Durability is not part of the evaluation; the TiVoPC Streamer
        only needs store-and-forget semantics.
        """
        if size <= 0:
            raise FileSystemError(f"append size must be positive: {size}")
        offset = self.write_offset
        self.write_offset += size
        self._sim.spawn(self._flush(offset, size),
                        name=f"writebehind-{self.handle}")
        yield self._sim.timeout(0)

    def _flush(self, offset: int, size: int) -> Generator[Event, None, None]:
        yield from self.client.write(self.handle, offset, size)
