"""Simulated host operating-system kernel.

Attaches on top of a :class:`repro.hw.machine.Machine` and provides the
OS artifacts the paper's evaluation depends on:

* a **periodic timer tick** charging ISR time (the "system noise" of
  Tsafrir et al., cited by the paper for its timeliness argument);
* **background daemons** reproducing the testbed's idle baseline
  (the paper's idle system shows 2.86 % CPU and a nonzero L2 miss rate
  that Figure 10 normalizes against);
* **timed sleeps** that suffer tick quantization and scheduler latency
  (see :mod:`repro.hostos.scheduler`);
* **syscall and buffer-copy costs** that charge host CPU time *and*
  stream the copied bytes through the L2 model — the mechanism behind
  the Simple server's 7 % L2 miss-rate increase in Figure 10.

Everything is parameterized by :class:`KernelConfig`; the defaults are
calibrated so an otherwise-idle machine reproduces the paper's idle rows
(Tables 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro import units
from repro.errors import OSError_
from repro.hw.cache import Cache
from repro.hw.machine import Machine
from repro.hostos.scheduler import SchedulerSpec, WakeupModel
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams

__all__ = ["KernelConfig", "BackgroundLoadConfig", "Kernel"]


@dataclass(frozen=True)
class BackgroundLoadConfig:
    """The idle system's daemons (cron, logging, kernel threads).

    Calibration: wake every 10 ms and burn a truncated-normal slice of
    CPU whose mean yields the paper's idle utilization of ~2.86 % with a
    per-5-second-window standard deviation of ~0.09 %.  Each slice walks
    part of a dedicated working set so the idle system also has a
    baseline L2 miss rate to normalize Figure 10 against.
    """

    period_ns: int = 10 * units.MS
    work_mean_ns: int = 266 * units.US
    work_sigma_ns: int = 180 * units.US
    work_min_ns: int = 30 * units.US
    # The daemons' working set deliberately exceeds the 256 kB L2 (real
    # kernels walk more state than fits), giving the idle system the
    # nonzero baseline miss rate Figure 10 normalizes against.
    working_set_bytes: int = 768 * 1024
    touch_bytes_per_wake: int = 80 * 1024


@dataclass(frozen=True)
class KernelConfig:
    """Cost parameters of the simulated kernel (Linux 2.6.15-class)."""

    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    background: BackgroundLoadConfig = field(
        default_factory=BackgroundLoadConfig)
    tick_cost_ns: int = 2_000             # timer ISR + timekeeping
    syscall_ns: int = 900                 # entry/exit, P4 sysenter era
    context_switch_ns: int = 6_000
    interrupt_ns: int = 7_000             # ISR entry + device ack
    softirq_per_packet_ns: int = 9_000    # IP/UDP receive processing
    copy_ns_per_byte: float = 0.9         # memcpy incl. cache stalls
    checksum_ns_per_byte: float = 0.35
    # Address-space layout for cache charging (disjoint regions).
    kernel_text_base: int = 0x0100_0000
    kernel_buffer_base: int = 0x0200_0000
    user_buffer_base: int = 0x0800_0000
    background_base: int = 0x0400_0000


class Kernel:
    """The OS instance for one machine."""

    def __init__(self, machine: Machine, rng: RandomStreams,
                 config: Optional[KernelConfig] = None) -> None:
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.config = config or KernelConfig()
        self.rng = rng.fork(f"kernel-{machine.name}")
        self.wakeup = WakeupModel(self.config.scheduler,
                                  self.rng.stream("scheduler"),
                                  cpu=machine.cpu)
        self.cpu = machine.cpu
        self.l2: Cache = machine.l2
        self.ticks = 0
        self.syscalls: Dict[str, int] = {}
        self._started = False
        # Rolling offsets so successive copies stream through the cache
        # instead of reusing one hot buffer (packet buffers rotate in a
        # real kernel's slab/page allocators).
        self._kbuf_cursor = 0
        self._ubuf_cursor = 0
        # Installed by the socket stack when a NIC is attached.
        self.udp = None

    # -- lifecycle --------------------------------------------------------------

    def start(self, with_background: bool = True) -> None:
        """Begin the tick loop and (optionally) the idle daemons."""
        if self._started:
            raise OSError_(f"kernel on {self.machine.name} already started")
        self._started = True
        self.sim.spawn(self._tick_loop(), name=f"{self.machine.name}-ticks")
        if with_background:
            self.sim.spawn(self._background_loop(),
                           name=f"{self.machine.name}-daemons")

    def _tick_loop(self) -> Generator[Event, None, None]:
        tick = self.config.scheduler.tick_ns
        while True:
            # Bare-int yield: the allocation-free fused sleep (1 kHz per
            # host — the single hottest timeout site in the simulation).
            yield tick
            self.ticks += 1
            # The tick handler touches a small slice of kernel text/data.
            self.l2.touch_range(self.config.kernel_text_base, 512)
            yield from self.cpu.execute(self.config.tick_cost_ns,
                                        context="kernel-tick")

    def _background_loop(self) -> Generator[Event, None, None]:
        cfg = self.config.background
        work_rng = self.rng.stream("background-work")
        addr_rng = self.rng.stream("background-addr")
        while True:
            yield cfg.period_ns
            work = max(cfg.work_min_ns,
                       round(work_rng.gauss(cfg.work_mean_ns,
                                            cfg.work_sigma_ns)))
            # Walk a random window of the daemons' working set.  When the
            # set is cache-resident these mostly hit; streaming server
            # traffic evicts it and drives the miss rate up (Figure 10).
            offset = addr_rng.randrange(
                0, max(1, cfg.working_set_bytes - cfg.touch_bytes_per_wake))
            self.l2.touch_range(self.config.background_base + offset,
                                 cfg.touch_bytes_per_wake)
            yield from self.cpu.execute(work, context="idle-daemons")

    # -- timed sleep ---------------------------------------------------------------

    def sleep(self, duration_ns: int) -> Generator[Event, None, None]:
        """Sleep with realistic wakeup error (tick quantization + dispatch).

        The caller also pays a context switch on the CPU when it resumes.
        """
        if duration_ns < 0:
            raise OSError_(f"negative sleep: {duration_ns}")
        nominal_wake = self.sim.now + duration_ns
        extra = self.wakeup.wakeup_delay_ns(nominal_wake)
        yield duration_ns + extra
        yield from self.cpu.execute(self.config.context_switch_ns,
                                    context="kernel-sched")

    # -- syscall / copy accounting ---------------------------------------------------

    def syscall(self, name: str, cost_ns: int = 0
                ) -> Generator[Event, None, None]:
        """Charge syscall entry/exit plus ``cost_ns`` of kernel work."""
        self.syscalls[name] = self.syscalls.get(name, 0) + 1
        self.l2.touch_range(self.config.kernel_text_base + 4096, 256)
        yield from self.cpu.execute(self.config.syscall_ns + cost_ns,
                                    context="kernel-syscall")

    def copy_to_user(self, size: int, context: str = "kernel-copy"
                     ) -> Generator[Event, None, None]:
        """Kernel buffer -> user buffer: read one region, write another."""
        yield from self._copy(size, context, self._next_kbuf(size),
                              self._next_ubuf(size))

    def copy_from_user(self, size: int, context: str = "kernel-copy"
                       ) -> Generator[Event, None, None]:
        """User buffer -> kernel buffer."""
        yield from self._copy(size, context, self._next_ubuf(size),
                              self._next_kbuf(size))

    def _copy(self, size: int, context: str, src: int, dst: int
              ) -> Generator[Event, None, None]:
        if size < 0:
            raise OSError_(f"negative copy size: {size}")
        if size == 0:
            return
        self.l2.touch_range(src, size)
        self.l2.touch_range(dst, size, write=True)
        yield from self.cpu.execute(
            round(size * self.config.copy_ns_per_byte), context=context)

    def checksum(self, size: int, context: str = "kernel-net"
                 ) -> Generator[Event, None, None]:
        """Software checksum: read the payload once, charge per-byte cost."""
        self.l2.touch_range(self._next_kbuf(size), size)
        yield from self.cpu.execute(
            round(size * self.config.checksum_ns_per_byte), context=context)

    def _next_kbuf(self, size: int) -> int:
        # Rotate through a 1 MB ring of kernel buffer addresses.
        addr = self.config.kernel_buffer_base + self._kbuf_cursor
        self._kbuf_cursor = (self._kbuf_cursor + size) % (1 << 20)
        return addr

    def _next_ubuf(self, size: int) -> int:
        addr = self.config.user_buffer_base + self._ubuf_cursor
        self._ubuf_cursor = (self._ubuf_cursor + size) % (1 << 20)
        return addr

    # -- interrupts --------------------------------------------------------------------

    def isr(self, extra_ns: int = 0) -> Generator[Event, None, None]:
        """Interrupt service: ISR cost + a touch of kernel text."""
        self.l2.touch_range(self.config.kernel_text_base + 8192, 384)
        yield from self.cpu.execute(self.config.interrupt_ns + extra_ns,
                                    context="kernel-isr")
