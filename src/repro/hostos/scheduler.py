"""Scheduler wakeup-latency model.

The paper's jitter argument (Section 1.1, "Timeliness guarantees", and
the Tsafrir et al. citation on OS noise) is that a general-purpose kernel
cannot wake a process at a precise instant: the wakeup is quantized to
the periodic timer tick and then delayed by run-queue contention and
dispatch overhead.  Peripheral firmware has none of that, which is why
the offloaded TiVoPC server achieves a packet-interval standard
deviation of 37 microseconds against ~500 for the host servers.

The model composes three delays for every timed wakeup:

1. **Tick quantization** — a sleep expiring between ticks waits for the
   next tick edge (uniform in ``[0, tick)`` for an unaligned sleeper).
2. **Dispatch latency** — a half-normal draw modelling softirq and
   scheduler work before the task actually runs.
3. **Run-queue penalty** — a per-waiting-task surcharge when the CPU has
   runnable competitors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.errors import OSError_
from repro.hw.cpu import Cpu

__all__ = ["SchedulerSpec", "WakeupModel"]


@dataclass(frozen=True)
class SchedulerSpec:
    """Timer and dispatch parameters (defaults: Linux 2.6.15, HZ=1000)."""

    hz: int = 1000
    dispatch_sigma_ns: int = 120_000      # half-normal sigma, ~0.12 ms
    runqueue_penalty_ns: int = 60_000     # per runnable competitor

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise OSError_(f"HZ must be positive: {self.hz}")

    @property
    def tick_ns(self) -> int:
        """Timer period (1 second / HZ)."""
        return units.SECOND // self.hz


class WakeupModel:
    """Samples the extra delay a timed wakeup suffers on a host kernel."""

    def __init__(self, spec: SchedulerSpec, rng: random.Random,
                 cpu: Optional[Cpu] = None) -> None:
        self.spec = spec
        self.rng = rng
        self.cpu = cpu

    def quantization_ns(self, wake_time_ns: int) -> int:
        """Delay until the first tick edge at or after ``wake_time_ns``."""
        tick = self.spec.tick_ns
        remainder = wake_time_ns % tick
        return 0 if remainder == 0 else tick - remainder

    def dispatch_ns(self) -> int:
        """Half-normal dispatch latency draw."""
        return abs(round(self.rng.gauss(0, self.spec.dispatch_sigma_ns)))

    def runqueue_ns(self) -> int:
        """Penalty proportional to current run-queue depth."""
        if self.cpu is None:
            return 0
        return self.cpu.queue_depth * self.spec.runqueue_penalty_ns

    def wakeup_delay_ns(self, wake_time_ns: int) -> int:
        """Total extra delay for a sleep that nominally expires at
        ``wake_time_ns`` (absolute simulated time)."""
        return (self.quantization_ns(wake_time_ns)
                + self.dispatch_ns()
                + self.runqueue_ns())
