"""The HYDRA framework — the paper's primary contribution.

Public surface, by concern:

* **Programming model**: :class:`~repro.core.offcode.Offcode`,
  :class:`~repro.core.interfaces.InterfaceSpec`,
  :class:`~repro.core.odf.OdfDocument`/:class:`~repro.core.odf.OdfLibrary`,
  :class:`~repro.core.proxy.Proxy`, :class:`~repro.core.call.Call`.
* **Channels**: :class:`~repro.core.channel.Channel` and its config
  enums, providers, and the
  :class:`~repro.core.executive.ChannelExecutive`.
* **Runtime**: :class:`~repro.core.runtime.HydraRuntime` (the
  Offloading Access Layer facade), the deployment pipeline, depot,
  loaders, hierarchical resources and memory services.
* **Layout optimization** (Section 5): :mod:`repro.core.layout`.
"""

from repro.errors import (
    DeviceFailedError,
    OffloadTimeoutError,
    RetryBudgetExceededError,
)
from repro.core.call import (
    BatchEntry,
    Call,
    CallBatch,
    CallPolicy,
    ReturnDescriptor,
    make_call,
)
from repro.core.channel import (
    BatchConfig,
    Buffering,
    Channel,
    ChannelConfig,
    ChannelKind,
    ChannelStats,
    CorruptedPayload,
    Endpoint,
    Message,
    Reliability,
    RetransmitConfig,
    SequencedMessage,
    SyncMode,
)
from repro.core.checkpoint import (
    Checkpoint,
    CheckpointConfig,
    CheckpointService,
    CheckpointStore,
    checkpointable,
)
from repro.core.deployment import (
    DeploymentPipeline,
    DeploymentReport,
    OOB_CHANNEL_CONFIG,
)
from repro.core.depot import DepotEntry, OffcodeDepot
from repro.core.devruntime import DeviceRuntime
from repro.core.executive import (
    BatcherStats,
    ChannelBatcher,
    ChannelExecutive,
)
from repro.core.guid import Guid, guid_from_name, parse_guid
from repro.core.interfaces import IOFFCODE, InterfaceSpec, MethodSpec
from repro.core.loader import (
    DeviceLinkedLoader,
    HostLinkedLoader,
    LoaderRegistry,
    LoadReport,
    OffcodeImage,
    compile_for_target,
)
from repro.core.memory import MemoryManager, PinnedRegion
from repro.core.odf import (
    DeviceClassFilter,
    OdfDocument,
    OdfImport,
    OdfLibrary,
    SoftwareRequirements,
)
from repro.core.offcode import Offcode, OffcodeState
from repro.core.providers import (
    CostMetric,
    DmaChannelProvider,
    LoopbackProvider,
    PeerDmaProvider,
)
from repro.core.proxy import Proxy
from repro.core.pseudo import (
    ChannelExecutiveOffcode,
    HeapOffcode,
    RuntimeOffcode,
)
from repro.core.resources import FinalizerFailure, ResourceNode, ResourceTree
from repro.core.rings import Descriptor, DescriptorRing
from repro.core.runtime import (
    CleanupReport,
    CreateOffcodeResult,
    DeploymentResult,
    DeploymentSpec,
    HydraRuntime,
    RecoveryIncident,
)
from repro.core.sites import DeviceSite, ExecutionSite, HostSite
from repro.core.watchdog import DeviceWatchdog, WatchdogConfig
from repro.core.wsdl import parse_wsdl, write_wsdl

__all__ = [
    "BatchConfig",
    "BatchEntry",
    "BatcherStats",
    "Buffering",
    "Call",
    "CallBatch",
    "CallPolicy",
    "Channel",
    "ChannelConfig",
    "ChannelBatcher",
    "ChannelExecutive",
    "ChannelExecutiveOffcode",
    "ChannelKind",
    "ChannelStats",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointService",
    "CheckpointStore",
    "CleanupReport",
    "CorruptedPayload",
    "CostMetric",
    "CreateOffcodeResult",
    "DeploymentPipeline",
    "DeploymentResult",
    "DeploymentReport",
    "DeploymentSpec",
    "DepotEntry",
    "Descriptor",
    "DescriptorRing",
    "DeviceClassFilter",
    "DeviceFailedError",
    "DeviceLinkedLoader",
    "DeviceRuntime",
    "DeviceSite",
    "DeviceWatchdog",
    "DmaChannelProvider",
    "Endpoint",
    "FinalizerFailure",
    "ExecutionSite",
    "Guid",
    "HeapOffcode",
    "HostLinkedLoader",
    "HostSite",
    "HydraRuntime",
    "IOFFCODE",
    "InterfaceSpec",
    "LoadReport",
    "LoaderRegistry",
    "LoopbackProvider",
    "MemoryManager",
    "Message",
    "MethodSpec",
    "OOB_CHANNEL_CONFIG",
    "OdfDocument",
    "OdfImport",
    "OdfLibrary",
    "Offcode",
    "OffcodeDepot",
    "OffcodeImage",
    "OffcodeState",
    "OffloadTimeoutError",
    "PeerDmaProvider",
    "PinnedRegion",
    "Proxy",
    "RecoveryIncident",
    "Reliability",
    "ResourceNode",
    "ResourceTree",
    "RetransmitConfig",
    "RetryBudgetExceededError",
    "ReturnDescriptor",
    "RuntimeOffcode",
    "SequencedMessage",
    "SoftwareRequirements",
    "SyncMode",
    "WatchdogConfig",
    "checkpointable",
    "compile_for_target",
    "guid_from_name",
    "make_call",
    "parse_guid",
    "parse_wsdl",
    "write_wsdl",
]
