"""Pseudo Offcodes — runtime services with Offcode faces.

"We distinguish between pseudo Offcodes and user Offcodes.  Pseudo
Offcodes are runtime components that happen to be implemented as
Offcodes ... having the Offcodes communicate with the run-time through
pseudo Offcodes is an easy way of limiting the number of symbols that
need to be resolved" (Section 4).  The paper names two examples, both
implemented here, plus the channel executive that Figure 3's code
obtains through ``GetOffcode``:

* ``hydra.Runtime`` — :class:`RuntimeOffcode`: lets any Offcode look up
  peers registered at the runtime by bind name.
* ``hydra.Heap`` — :class:`HeapOffcode`: "provides an interface to the
  OS memory routines" (site-local allocation).
* ``hydra.ChannelExecutive`` — :class:`ChannelExecutiveOffcode`.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.errors import HydraError
from repro.core.interfaces import InterfaceSpec, MethodSpec
from repro.core.offcode import Offcode
from repro.core.sites import ExecutionSite
from repro.hw.device import MemoryRegion
from repro.sim.engine import Event

__all__ = ["RuntimeOffcode", "HeapOffcode", "ChannelExecutiveOffcode",
           "IRUNTIME", "IHEAP", "ICHANNEL_EXECUTIVE"]


IRUNTIME = InterfaceSpec.from_methods(
    "hydra.IRuntime",
    (
        MethodSpec("GetOffcodeLocation", params=(("bindname", "string"),),
                   result="string"),
        MethodSpec("ListOffcodes", params=(), result="any"),
    ),
)

IHEAP = InterfaceSpec.from_methods(
    "hydra.IHeap",
    (
        MethodSpec("Alloc", params=(("size", "int"),), result="int"),
        MethodSpec("Free", params=(("address", "int"),), result="bool"),
        MethodSpec("UsedBytes", params=(), result="int"),
    ),
)

ICHANNEL_EXECUTIVE = InterfaceSpec.from_methods(
    "hydra.IChannelExecutive",
    (
        MethodSpec("ProviderCount", params=(), result="int"),
        MethodSpec("ChannelCount", params=(), result="int"),
    ),
)


class RuntimeOffcode(Offcode):
    """``hydra.Runtime``: peer discovery for Offcodes."""

    BINDNAME = "hydra.Runtime"
    INTERFACES = (IRUNTIME,)

    def __init__(self, site: ExecutionSite, registry) -> None:
        """``registry`` is the owning :class:`HydraRuntime` (duck-typed:
        needs ``locate(bindname)`` and ``registered_bindnames()``)."""
        super().__init__(site)
        self._registry = registry

    def GetOffcodeLocation(self, bindname: str) -> str:
        offcode = self._registry.locate(bindname)
        if offcode is None:
            raise HydraError(f"no offcode registered as {bindname!r}")
        return offcode.location

    def ListOffcodes(self):
        return sorted(self._registry.registered_bindnames())


class HeapOffcode(Offcode):
    """``hydra.Heap``: site-local memory services."""

    BINDNAME = "hydra.Heap"
    INTERFACES = (IHEAP,)
    ALLOC_COST_NS = 800

    def __init__(self, site: ExecutionSite) -> None:
        super().__init__(site)
        self._regions: Dict[int, MemoryRegion] = {}

    def Alloc(self, size: int) -> Generator[Event, None, int]:
        yield from self.site.execute(self.ALLOC_COST_NS,
                                     context="hydra-heap")
        region = self.site.allocate(size, label="heap-alloc")
        self._regions[region.base] = region
        return region.base

    def Free(self, address: int) -> Generator[Event, None, bool]:
        yield from self.site.execute(self.ALLOC_COST_NS // 2,
                                     context="hydra-heap")
        region = self._regions.pop(address, None)
        if region is None:
            return False
        self.site.free(region)
        return True

    def UsedBytes(self) -> int:
        return sum(r.size for r in self._regions.values())


class ChannelExecutiveOffcode(Offcode):
    """``hydra.ChannelExecutive``: introspection over the executive."""

    BINDNAME = "hydra.ChannelExecutive"
    INTERFACES = (ICHANNEL_EXECUTIVE,)

    def __init__(self, site: ExecutionSite, executive) -> None:
        super().__init__(site)
        self._executive = executive

    def ProviderCount(self) -> int:
        return len(self._executive.providers)

    def ChannelCount(self) -> int:
        return len(self._executive.channels)
