"""The device-side half of the HYDRA runtime.

"Both the host OS and the target device firmware must support the
interfaces defined by the programming API and implement the runtime
functionality" (Section 4).  :class:`DeviceRuntime` is that firmware
support: it owns the device's execution site, hosts the Offcodes placed
there, and exposes the device-local pseudo Offcodes (``hydra.Heap`` and
a device-scoped ``hydra.Runtime``) that user Offcodes link against —
keeping the set of symbols the dynamic loader must resolve small.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import OffcodeError
from repro.core.offcode import Offcode
from repro.core.sites import DeviceSite
from repro.hw.device import ProgrammableDevice

__all__ = ["DeviceRuntime"]


class DeviceRuntime:
    """Firmware runtime for one programmable device."""

    def __init__(self, device: ProgrammableDevice) -> None:
        self.device = device
        self.site = DeviceSite(device)
        self.offcodes: Dict[str, Offcode] = {}
        device.firmware = self

    @property
    def name(self) -> str:
        """The underlying device's name."""
        return self.device.name

    def host_offcode(self, offcode: Offcode) -> None:
        """Register an Offcode as resident on this device."""
        if offcode.site is not self.site:
            raise OffcodeError(
                f"{offcode.bindname} was built for site "
                f"{offcode.site.name!r}, not {self.name!r}")
        if offcode.bindname in self.offcodes:
            raise OffcodeError(
                f"{self.name} already hosts {offcode.bindname!r}")
        self.offcodes[offcode.bindname] = offcode

    def evict_offcode(self, bindname: str) -> Offcode:
        """Remove a resident Offcode (stop/failure teardown path)."""
        try:
            return self.offcodes.pop(bindname)
        except KeyError:
            raise OffcodeError(
                f"{self.name} does not host {bindname!r}") from None

    def find(self, bindname: str) -> Optional[Offcode]:
        """Resident Offcode by bind name, or None."""
        return self.offcodes.get(bindname)

    @property
    def resident_count(self) -> int:
        """Number of Offcodes currently hosted on this device."""
        return len(self.offcodes)
