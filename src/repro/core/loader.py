"""Dynamic Offcode loading (Section 4.2).

Two strategies, both of which the runtime supports:

* **host-linked** — "fully perform the linking process at the host, and
  only transfer the Offcode when it is ready to be deployed (at a
  specific memory region)": the host loader calls the device's
  ``AllocateOffcodeMemory``, "dynamically generates a linker file
  adjusted by the returned address and links the Offcode object", then
  DMAs the finished image across.  Cheap for the device.
* **device-linked** — the "naive" scheme: ship the object file plus its
  symbol table and let the device firmware resolve relocations.  Simple
  for the host but "quite expensive in terms of device resources" — the
  device CPU is an order of magnitude slower per symbol, and the
  relocation metadata consumes device memory.

Pseudo Offcodes exist partly to shrink the symbol count: user Offcodes
import the runtime through a handful of pseudo-Offcode interfaces, so
only those few symbols need resolving (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.errors import LoaderError
from repro.core.odf import OdfDocument
from repro.core.sites import DeviceSite, ExecutionSite, HostSite
from repro.hw.bus import HOST_MEMORY
from repro.hw.device import MemoryRegion, ProgrammableDevice
from repro.sim.engine import Event

__all__ = ["OffcodeImage", "LoadReport", "OffcodeLoader",
           "HostLinkedLoader", "DeviceLinkedLoader", "LoaderRegistry"]

# Linking cost constants (host CPU at a few GHz vs device at hundreds of MHz).
_HOST_LINK_FIXED_NS = 40_000
_HOST_LINK_PER_SYMBOL_NS = 900
_HOST_COMPILE_PER_KB_NS = 350_000
_DEVICE_LINK_FIXED_NS = 120_000
_DEVICE_LINK_PER_SYMBOL_NS = 11_000
_DEVICE_PLACE_NS = 25_000
_SYMBOL_TABLE_BYTES_PER_SYMBOL = 48


@dataclass
class OffcodeImage:
    """An Offcode binary ready to ship: size plus unresolved symbols."""

    bindname: str
    size_bytes: int
    undefined_symbols: int
    compiled: bool = False

    @staticmethod
    def from_odf(odf: OdfDocument,
                 uses_pseudo_offcodes: bool = True) -> "OffcodeImage":
        """Derive an image from a manifest.

        With pseudo Offcodes the runtime surface collapses to one symbol
        per imported interface plus the IOffcode entry points; without
        them every runtime call is a distinct unresolved symbol.
        """
        if uses_pseudo_offcodes:
            symbols = 4 + len(odf.imports) + len(odf.interfaces)
        else:
            symbols = 40 + 8 * (len(odf.imports) + len(odf.interfaces))
        return OffcodeImage(bindname=odf.bindname,
                            size_bytes=odf.image_bytes,
                            undefined_symbols=symbols)


@dataclass
class LoadReport:
    """What one load cost, and where the code landed."""

    bindname: str
    strategy: str
    region: MemoryRegion
    host_cpu_ns: int
    device_cpu_ns: int
    transferred_bytes: int
    elapsed_ns: int


class OffcodeLoader:
    """The generic loader interface implemented per target device."""

    strategy = "abstract"

    def load(self, image: OffcodeImage, device: ProgrammableDevice,
             host_site: ExecutionSite
             ) -> Generator[Event, None, LoadReport]:
        """Place ``image`` on ``device``; returns a :class:`LoadReport`."""
        raise NotImplementedError

    @staticmethod
    def allocate_offcode_memory(device: ProgrammableDevice, size: int,
                                label: str) -> MemoryRegion:
        """The device-exported ``AllocateOffcodeMemory`` entry point."""
        try:
            return device.memory.allocate(size, label=label)
        except Exception as exc:
            raise LoaderError(
                f"{device.name}: AllocateOffcodeMemory({size}) failed: "
                f"{exc}") from exc


class HostLinkedLoader(OffcodeLoader):
    """Link at the host against the device-returned load address."""

    strategy = "host-linked"

    def load(self, image: OffcodeImage, device: ProgrammableDevice,
             host_site: ExecutionSite
             ) -> Generator[Event, None, LoadReport]:
        """Allocate on the device, link at the host, DMA the finished image."""
        sim = device.sim
        start = sim.now
        host_busy_before = _site_busy(host_site)
        device_busy_before = device.cpu.total_busy

        # Phase 1: size calculation + AllocateOffcodeMemory over the OOB
        # channel (a small control round trip on the bus).
        region = self.allocate_offcode_memory(device, image.size_bytes,
                                              label=image.bindname)
        yield from device.bus.transfer(HOST_MEMORY, device.name, 64)
        # Phase 2: generate the linker file and link at the host.
        link_ns = (_HOST_LINK_FIXED_NS
                   + image.undefined_symbols * _HOST_LINK_PER_SYMBOL_NS)
        yield from host_site.execute(link_ns, context="hydra-link")
        # Phase 3: transfer the finished image and place/execute it.
        yield from device.dma_from_host(image.size_bytes)
        yield from device.run_on_device(_DEVICE_PLACE_NS, context="loader")

        return LoadReport(
            bindname=image.bindname, strategy=self.strategy, region=region,
            host_cpu_ns=_site_busy(host_site) - host_busy_before,
            device_cpu_ns=device.cpu.total_busy - device_busy_before,
            transferred_bytes=image.size_bytes + 64,
            elapsed_ns=sim.now - start)


class DeviceLinkedLoader(OffcodeLoader):
    """Ship object + symbol table; the device firmware links."""

    strategy = "device-linked"

    def load(self, image: OffcodeImage, device: ProgrammableDevice,
             host_site: ExecutionSite
             ) -> Generator[Event, None, LoadReport]:
        """Ship object + symbol table; the device firmware links in place."""
        sim = device.sim
        start = sim.now
        host_busy_before = _site_busy(host_site)
        device_busy_before = device.cpu.total_busy

        table_bytes = image.undefined_symbols * _SYMBOL_TABLE_BYTES_PER_SYMBOL
        total = image.size_bytes + table_bytes
        region = self.allocate_offcode_memory(device, total,
                                              label=image.bindname)
        yield from device.dma_from_host(total)
        link_ns = (_DEVICE_LINK_FIXED_NS
                   + image.undefined_symbols * _DEVICE_LINK_PER_SYMBOL_NS)
        yield from device.run_on_device(link_ns, context="loader")
        yield from device.run_on_device(_DEVICE_PLACE_NS, context="loader")

        return LoadReport(
            bindname=image.bindname, strategy=self.strategy, region=region,
            host_cpu_ns=_site_busy(host_site) - host_busy_before,
            device_cpu_ns=device.cpu.total_busy - device_busy_before,
            transferred_bytes=total,
            elapsed_ns=sim.now - start)


def _site_busy(site: ExecutionSite) -> int:
    if isinstance(site, HostSite):
        return site.machine.cpu.total_busy
    if isinstance(site, DeviceSite):
        return site.device.cpu.total_busy
    return 0


def compile_for_target(odf: OdfDocument, host_site: ExecutionSite
                       ) -> Generator[Event, None, OffcodeImage]:
    """Adapt a *source-form* Offcode: run the target compiler at the host.

    "adapting the specific Offcode instances to the target devices either
    by executing a corresponding compiler (for open source Offcodes) or
    by invoking the dynamic linkage process" (Section 3.4).
    """
    image = OffcodeImage.from_odf(odf)
    if odf.form == "source":
        kb = max(1, odf.image_bytes // 1024)
        yield from host_site.execute(kb * _HOST_COMPILE_PER_KB_NS,
                                     context="hydra-compile")
        image.compiled = True
    return image


class LoaderRegistry:
    """Device-name -> loader selection, with a configurable default."""

    def __init__(self, default: Optional[OffcodeLoader] = None) -> None:
        self.default = default or HostLinkedLoader()
        self._by_device: Dict[str, OffcodeLoader] = {}

    def register(self, device_name: str, loader: OffcodeLoader) -> None:
        """Override the loader used for one device."""
        self._by_device[device_name] = loader

    def loader_for(self, device_name: str) -> OffcodeLoader:
        """The loader for ``device_name`` (registered or default)."""
        return self._by_device.get(device_name, self.default)
