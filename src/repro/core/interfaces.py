"""Interface metadata: methods, signatures, and the IOffcode contract.

Every Offcode "can implement multiple interfaces, each of which contains
a set of methods that perform some behavior", described in WSDL and
identified by GUID (Section 3.1).  :class:`InterfaceSpec` is the
in-memory form; :mod:`repro.core.wsdl` parses the XML form.

``IOFFCODE`` is the common interface "that is used by the runtime to
instantiate the Offcode and to obtain a specific Offcode's interface":
Initialize / StartOffcode / StopOffcode / QueryInterface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import InterfaceError
from repro.core.guid import Guid, guid_from_name

__all__ = ["MethodSpec", "InterfaceSpec", "IOFFCODE"]

# Wire types the marshaler understands (WSDL xsd subset).
WIRE_TYPES = ("int", "float", "string", "bytes", "bool", "none", "any")


@dataclass(frozen=True)
class MethodSpec:
    """One method of an interface."""

    name: str
    params: Tuple[Tuple[str, str], ...] = ()   # (param name, wire type)
    result: str = "none"
    one_way: bool = False                      # no reply expected

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise InterfaceError(f"bad method name {self.name!r}")
        for pname, ptype in self.params:
            if ptype not in WIRE_TYPES:
                raise InterfaceError(
                    f"{self.name}: unknown wire type {ptype!r} for {pname!r}")
        if self.result not in WIRE_TYPES:
            raise InterfaceError(
                f"{self.name}: unknown result type {self.result!r}")
        if self.one_way and self.result != "none":
            raise InterfaceError(
                f"{self.name}: one-way methods cannot return a value")

    @property
    def arity(self) -> int:
        """Number of declared parameters."""
        return len(self.params)


@dataclass(frozen=True)
class InterfaceSpec:
    """A named, GUID-identified set of methods."""

    name: str
    guid: Guid
    methods: Tuple[MethodSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [m.name for m in self.methods]
        if len(names) != len(set(names)):
            raise InterfaceError(
                f"interface {self.name!r} has duplicate method names")

    def method(self, name: str) -> MethodSpec:
        """Look up a method spec by name (InterfaceError if absent)."""
        for m in self.methods:
            if m.name == name:
                return m
        raise InterfaceError(
            f"interface {self.name!r} has no method {name!r}; "
            f"has {[m.name for m in self.methods]}")

    def has_method(self, name: str) -> bool:
        """True if this interface declares ``name``."""
        return any(m.name == name for m in self.methods)

    @staticmethod
    def from_methods(name: str, methods: Tuple[MethodSpec, ...],
                     guid: Optional[Guid] = None) -> "InterfaceSpec":
        """Build an interface, deriving the GUID from the name if omitted."""
        return InterfaceSpec(name=name, guid=guid or guid_from_name(name),
                             methods=methods)


# The universal Offcode lifecycle interface (Section 3.1).
IOFFCODE = InterfaceSpec.from_methods(
    "hydra.IOffcode",
    (
        MethodSpec("Initialize", params=(), result="bool"),
        MethodSpec("StartOffcode", params=(), result="bool"),
        MethodSpec("StopOffcode", params=(), result="bool"),
        MethodSpec("QueryInterface", params=(("guid", "int"),), result="any"),
    ),
)
