"""Offcode Description Files (ODF).

"An Offcode manifesto is the means by which an Offcode defines its
dependencies on peer Offcodes and its requirements from the target
device and software environment" (Section 3.3).  An ODF has three parts:

1. **package** — bind name, GUID and supported interfaces (WSDL);
2. **sw-env** — imports of peer Offcodes, each with a constraint
   reference (Link / Pull / Gang / asymmetric Gang) and priority, plus
   optional software requirements (memory, MMU, dynamic allocation);
3. **targets** — the *classes* of devices the Offcode can run on; "a
   developer is required to supply a list of potential target device
   classes" — never a concrete device (Section 3.4's intentional
   late-binding choice).

ODFs live in an :class:`OdfLibrary`, a virtual filesystem mapping paths
like ``/offcodes/checksum.odf`` to documents, so deployments resolve
imports exactly the way the paper's runtime resolves ``<file>`` entries.
Documents round-trip to the XML schema of the paper's Figure 4.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ODFError
from repro.core.guid import Guid, guid_from_name, parse_guid
from repro.core.interfaces import InterfaceSpec
from repro.core.layout.constraints import ConstraintType, parse_constraint_type
from repro.core.wsdl import parse_wsdl, write_wsdl
from repro.hw.device import DeviceClass

__all__ = [
    "DeviceClassFilter",
    "OdfImport",
    "SoftwareRequirements",
    "OdfDocument",
    "OdfLibrary",
]

# Human names appearing in ODFs mapped to canonical device classes.
_CLASS_NAMES = {
    "network device": DeviceClass.NETWORK,
    "network": DeviceClass.NETWORK,
    "storage device": DeviceClass.STORAGE,
    "storage": DeviceClass.STORAGE,
    "display device": DeviceClass.DISPLAY,
    "display": DeviceClass.DISPLAY,
    "graphics": DeviceClass.DISPLAY,
    "host": DeviceClass.HOST,
    "host cpu": DeviceClass.HOST,
}


@dataclass(frozen=True)
class DeviceClassFilter:
    """One ``<device-class>`` entry: a class plus optional attribute filters."""

    device_class: str
    bus: Optional[str] = None
    mac: Optional[str] = None
    vendor: Optional[str] = None
    class_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.device_class not in DeviceClass.ALL:
            raise ODFError(f"unknown device class {self.device_class!r}")

    def matches(self, device) -> bool:
        """True if a :class:`ProgrammableDevice` satisfies this filter."""
        return device.matches(self.device_class, bus=self.bus,
                              mac=self.mac, vendor=self.vendor)


@dataclass(frozen=True)
class OdfImport:
    """One ``<import>``: a dependency on a peer Offcode."""

    file: str
    bindname: str
    guid: Guid
    reference: ConstraintType = ConstraintType.LINK
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.file:
            raise ODFError(f"import of {self.bindname!r} has no file")
        if self.priority < 0:
            raise ODFError("import priority must be non-negative")


@dataclass(frozen=True)
class SoftwareRequirements:
    """Software-environment needs checked against a device spec."""

    min_memory_bytes: int = 0
    needs_mmu: bool = False
    needs_dynamic_alloc: bool = False
    features: Tuple[str, ...] = ()

    def satisfied_by(self, spec) -> bool:
        """Check against a :class:`repro.hw.device.DeviceSpec`."""
        if self.min_memory_bytes > spec.local_memory_bytes:
            return False
        if self.needs_mmu and not spec.has_mmu:
            return False
        if self.needs_dynamic_alloc and not spec.has_dynamic_alloc:
            return False
        return all(spec.has_feature(f) for f in self.features)


@dataclass
class OdfDocument:
    """A parsed Offcode Description File."""

    bindname: str
    guid: Guid
    interfaces: List[InterfaceSpec] = field(default_factory=list)
    imports: List[OdfImport] = field(default_factory=list)
    targets: List[DeviceClassFilter] = field(default_factory=list)
    requirements: SoftwareRequirements = field(
        default_factory=SoftwareRequirements)
    # Source form: "source" Offcodes are recompiled per target,
    # "object" Offcodes are dynamically linked (Section 3.4 / Fig. 5).
    form: str = "object"
    image_bytes: int = 64 * 1024      # binary size for the loader

    def __post_init__(self) -> None:
        if not self.bindname:
            raise ODFError("ODF needs a bindname")
        if self.form not in ("source", "object"):
            raise ODFError(f"unknown offcode form {self.form!r}")
        if self.image_bytes <= 0:
            raise ODFError("image size must be positive")
        seen = set()
        for imp in self.imports:
            if imp.bindname in seen:
                raise ODFError(
                    f"{self.bindname}: duplicate import {imp.bindname!r}")
            seen.add(imp.bindname)

    @property
    def host_capable(self) -> bool:
        """Whether the host CPU is an allowed target."""
        return any(t.device_class == DeviceClass.HOST for t in self.targets)

    def interface(self, name: str) -> InterfaceSpec:
        """Declared interface by name (ODFError if absent)."""
        for spec in self.interfaces:
            if spec.name == name:
                return spec
        raise ODFError(f"{self.bindname} exposes no interface {name!r}")

    # -- XML -------------------------------------------------------------------

    @staticmethod
    def from_xml(source: str, library: Optional["OdfLibrary"] = None
                 ) -> "OdfDocument":
        """Parse the Figure-4 XML schema.

        ``<include>`` interface references are resolved through
        ``library`` (they name WSDL documents registered there).
        """
        try:
            root = ET.fromstring(source)
        except ET.ParseError as exc:
            raise ODFError(f"malformed ODF XML: {exc}") from None
        if root.tag != "offcode":
            raise ODFError(f"ODF root must be <offcode>, got <{root.tag}>")

        package = root.find("package")
        if package is None:
            raise ODFError("ODF has no <package> section")
        bindname = _text(package, "bindname")
        guid_text = package.findtext("GUID")
        guid = parse_guid(guid_text) if guid_text else guid_from_name(bindname)

        interfaces: List[InterfaceSpec] = []
        for iface in package.findall("interface"):
            inline = iface.find("definitions")
            if inline is not None:
                interfaces.append(parse_wsdl(ET.tostring(
                    inline, encoding="unicode")))
                continue
            include = iface.findtext("include")
            if include:
                path = include.strip().strip('"')
                if library is None:
                    raise ODFError(
                        f"{bindname}: interface include {path!r} "
                        "needs an OdfLibrary to resolve")
                interfaces.append(library.load_wsdl(path))

        imports: List[OdfImport] = []
        sw_env = root.find("sw-env")
        requirements = SoftwareRequirements()
        if sw_env is not None:
            for imp in sw_env.findall("import"):
                ref = imp.find("reference")
                kind = ConstraintType.LINK
                priority = 0
                if ref is not None:
                    kind = parse_constraint_type(ref.get("type", "Link"))
                    priority = int(ref.get("pri", "0"))
                imports.append(OdfImport(
                    file=_text(imp, "file").strip('"'),
                    bindname=_text(imp, "bindname"),
                    guid=parse_guid(_text(imp, "GUID")),
                    reference=kind,
                    priority=priority,
                ))
            req = sw_env.find("requires")
            if req is not None:
                requirements = SoftwareRequirements(
                    min_memory_bytes=int(req.get("memory", "0")),
                    needs_mmu=req.get("mmu", "false").lower() == "true",
                    needs_dynamic_alloc=(
                        req.get("dynamic-alloc", "false").lower() == "true"),
                    features=tuple(f.text.strip() for f in
                                   req.findall("feature") if f.text),
                )

        targets: List[DeviceClassFilter] = []
        targets_el = root.find("targets")
        if targets_el is not None:
            for dc in targets_el.findall("device-class"):
                name = (dc.findtext("name") or "").strip().lower()
                if name not in _CLASS_NAMES:
                    raise ODFError(f"{bindname}: unknown device class "
                                   f"name {name!r}")
                class_id = dc.get("id")
                targets.append(DeviceClassFilter(
                    device_class=_CLASS_NAMES[name],
                    bus=_opt_text(dc, "bus"),
                    mac=_opt_text(dc, "mac"),
                    vendor=_opt_text(dc, "vendor"),
                    class_id=int(class_id, 0) if class_id else None,
                ))

        form = root.get("form", "object")
        image = int(root.get("image-bytes", str(64 * 1024)))
        return OdfDocument(bindname=bindname, guid=guid,
                           interfaces=interfaces, imports=imports,
                           targets=targets, requirements=requirements,
                           form=form, image_bytes=image)

    def to_xml(self) -> str:
        """Serialize back to the Figure-4 schema (inline interfaces)."""
        root = ET.Element("offcode", {"form": self.form,
                                      "image-bytes": str(self.image_bytes)})
        package = ET.SubElement(root, "package")
        ET.SubElement(package, "bindname").text = self.bindname
        ET.SubElement(package, "GUID").text = str(self.guid.value)
        for spec in self.interfaces:
            iface = ET.SubElement(package, "interface")
            iface.append(ET.fromstring(write_wsdl(spec)))
        if self.imports or self.requirements != SoftwareRequirements():
            sw_env = ET.SubElement(root, "sw-env")
            for imp in self.imports:
                el = ET.SubElement(sw_env, "import")
                ET.SubElement(el, "file").text = imp.file
                ET.SubElement(el, "bindname").text = imp.bindname
                ET.SubElement(el, "reference",
                              {"type": imp.reference.value,
                               "pri": str(imp.priority)})
                ET.SubElement(el, "GUID").text = str(imp.guid.value)
            req = self.requirements
            if req != SoftwareRequirements():
                attrs = {"memory": str(req.min_memory_bytes),
                         "mmu": str(req.needs_mmu).lower(),
                         "dynamic-alloc": str(req.needs_dynamic_alloc).lower()}
                req_el = ET.SubElement(sw_env, "requires", attrs)
                for feature in req.features:
                    ET.SubElement(req_el, "feature").text = feature
        if self.targets:
            reverse = {v: k for k, v in reversed(list(_CLASS_NAMES.items()))}
            targets = ET.SubElement(root, "targets")
            for t in self.targets:
                attrs = {}
                if t.class_id is not None:
                    attrs["id"] = hex(t.class_id)
                dc = ET.SubElement(targets, "device-class", attrs)
                ET.SubElement(dc, "name").text = reverse[t.device_class]
                for tag, value in (("bus", t.bus), ("mac", t.mac),
                                   ("vendor", t.vendor)):
                    if value:
                        ET.SubElement(dc, tag).text = value
        return ET.tostring(root, encoding="unicode")


def _text(parent: ET.Element, tag: str) -> str:
    value = parent.findtext(tag)
    if value is None or not value.strip():
        raise ODFError(f"missing <{tag}> element")
    return value.strip()


def _opt_text(parent: ET.Element, tag: str) -> Optional[str]:
    value = parent.findtext(tag)
    return value.strip() if value and value.strip() else None


class OdfLibrary:
    """A virtual filesystem of ODF and WSDL documents.

    "Typically, the runtime uses a local library that is used for
    storing the actual instances of the Offcodes" (Section 3.4); this is
    the manifest half of that library (the code half is the Depot).
    """

    def __init__(self) -> None:
        self._documents: Dict[str, OdfDocument] = {}
        self._xml: Dict[str, str] = {}
        self._wsdl: Dict[str, InterfaceSpec] = {}

    # -- registration -------------------------------------------------------------

    def register(self, path: str, document: Union[OdfDocument, str]) -> None:
        """Register an ODF under a virtual path (document or XML text)."""
        path = self._norm(path)
        if path in self._documents or path in self._xml:
            raise ODFError(f"ODF path {path!r} already registered")
        if isinstance(document, OdfDocument):
            self._documents[path] = document
        else:
            self._xml[path] = document

    def register_wsdl(self, path: str, spec: Union[InterfaceSpec, str]) -> None:
        """Register a WSDL document (spec or XML text) under a path."""
        path = self._norm(path)
        if path in self._wsdl:
            raise ODFError(f"WSDL path {path!r} already registered")
        self._wsdl[path] = (spec if isinstance(spec, InterfaceSpec)
                            else parse_wsdl(spec))

    # -- loading -------------------------------------------------------------------

    def load(self, path: str) -> OdfDocument:
        """Load (and cache) the ODF registered at ``path``."""
        path = self._norm(path)
        if path in self._documents:
            return self._documents[path]
        if path in self._xml:
            document = OdfDocument.from_xml(self._xml[path], library=self)
            self._documents[path] = document
            return document
        raise ODFError(f"no ODF registered at {path!r}; "
                       f"have {sorted(set(self._documents) | set(self._xml))}")

    def load_wsdl(self, path: str) -> InterfaceSpec:
        """The interface spec registered at ``path``."""
        path = self._norm(path)
        try:
            return self._wsdl[path]
        except KeyError:
            raise ODFError(f"no WSDL registered at {path!r}") from None

    def load_closure(self, path: str) -> List[OdfDocument]:
        """Load an ODF and, transitively, everything it imports.

        Returns documents in dependency-discovery order, root first.
        Import cycles are permitted (mutually-ganged Offcodes are legal);
        each document appears once.
        """
        ordered: List[OdfDocument] = []
        seen = set()
        stack = [self._norm(path)]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            document = self.load(current)
            ordered.append(document)
            stack.extend(self._norm(imp.file) for imp in document.imports)
        return ordered

    def load_directory(self, directory, prefix: str = "/offcodes") -> int:
        """Register every ``*.odf`` and ``*.wsdl`` file under a real
        filesystem directory.

        Files register under ``<prefix>/<relative path>`` so on-disk
        Offcode libraries (the paper's "openly accessed libraries of
        Offcodes ... provided as source code") drop straight in.
        Returns the number of documents registered.
        """
        import pathlib
        root = pathlib.Path(directory)
        if not root.is_dir():
            raise ODFError(f"not a directory: {directory}")
        count = 0
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".odf", ".wsdl") or not path.is_file():
                continue
            virtual = f"{prefix}/{path.relative_to(root).as_posix()}"
            text = path.read_text()
            if path.suffix == ".odf":
                self.register(virtual, text)
            else:
                self.register_wsdl(virtual, text)
            count += 1
        return count

    @staticmethod
    def _norm(path: str) -> str:
        path = path.strip().strip('"')
        if not path:
            raise ODFError("empty ODF path")
        return path if path.startswith("/") else "/" + path
